// Reproduces Table II: RLL-Bayesian accuracy/F1 as the number of negatives
// per group k sweeps over {2, 3, 4, 5}.
//
//   ./table2_k_sweep [--seed N] [--quick]
//
// Paper reference (real data): performance peaks at k = 3 and degrades at
// k = 4, 5 — more groups help until the extra negatives add noise.

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  const auto datasets = MakePaperDatasets(args.seed);
  size_t folds = 5;
  int epochs = 15;
  size_t groups = 1024;
  if (args.quick) {
    folds = 3;
    epochs = 4;
    groups = 256;
  }

  std::printf("TABLE II: RLL-BAYESIAN RESULTS WITH DIFFERENT k\n");
  std::printf("(seed=%llu, %zu-fold CV%s)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-4s | %-9s %-9s | %-9s %-9s\n", "k", "oral Acc", "oral F1",
              "class Acc", "class F1");
  PrintRule(52);

  BenchReporter reporter("table2_k_sweep", args);
  for (size_t k : {2u, 3u, 4u, 5u}) {
    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.epochs = epochs;
    options.trainer.groups_per_epoch = groups;
    options.trainer.negatives_per_group = k;
    options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
    options.folds = folds;
    baselines::RllVariantMethod method(options);

    std::printf("%-4zu |", k);
    for (const BenchDataset& bd : datasets) {
      Rng rng(args.seed + 7);
      ScopedTimer cell =
          reporter.Time("k=" + std::to_string(k) + "/" + bd.name,
                        static_cast<double>(bd.dataset.size()));
      auto outcome =
          baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
      if (!outcome.ok()) {
        cell.Cancel();
        std::printf("   error: %s", outcome.status().ToString().c_str());
        continue;
      }
      std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                  outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  PrintRule(52);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
