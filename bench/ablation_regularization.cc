// Ablation F: encoder regularization — the levers the paper's architecture
// leaves implicit. Compares the plain tanh encoder against dropout,
// LayerNorm, both, and an early-stopping configuration, all under the
// RLL-Bayesian pipeline.
//
//   ./ablation_regularization [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  const auto datasets = MakePaperDatasets(args.seed);
  const size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;

  std::printf("ABLATION F: ENCODER REGULARIZATION UNDER RLL-BAYESIAN\n");
  std::printf("(seed=%llu, %zu-fold CV%s)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-22s | %-9s %-9s | %-9s %-9s\n", "variant", "oral Acc",
              "oral F1", "class Acc", "class F1");
  PrintRule(68);

  struct Variant {
    const char* name;
    double dropout;
    bool layer_norm;
    double validation_fraction;
  };
  const Variant variants[] = {
      {"plain (paper)", 0.0, false, 0.0},
      {"dropout 0.2", 0.2, false, 0.0},
      {"layer norm", 0.0, true, 0.0},
      {"dropout + layer norm", 0.2, true, 0.0},
      {"early stopping", 0.0, false, 0.2},
  };

  BenchReporter reporter("ablation_regularization", args);
  for (const Variant& variant : variants) {
    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.model.dropout = variant.dropout;
    options.trainer.model.layer_norm = variant.layer_norm;
    options.trainer.epochs =
        variant.validation_fraction > 0.0 ? 2 * epochs : epochs;
    options.trainer.groups_per_epoch = groups;
    options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
    options.trainer.validation_fraction = variant.validation_fraction;
    baselines::RllVariantMethod method(options);

    std::printf("%-22s |", variant.name);
    for (const BenchDataset& bd : datasets) {
      Rng rng(args.seed + 7);
      ScopedTimer cell =
          reporter.Time(std::string(variant.name) + "/" + bd.name,
                        static_cast<double>(bd.dataset.size()));
      auto outcome =
          baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
      if (!outcome.ok()) {
        cell.Cancel();
        std::printf("   error: %s", outcome.status().ToString().c_str());
        continue;
      }
      std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                  outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  PrintRule(68);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
