// Extension experiment (the paper's §V future work): "our current model does
// not make use of any information about individual crowd workers". This
// harness adds that information — the confidence δ becomes the Dawid–Skene
// posterior, which weights each vote by the worker's estimated reliability —
// and compares it against the paper's three variants, including a
// low-vote (d = 3) regime where worker identity matters most.
//
//   ./extension_worker_aware [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;

  std::printf("EXTENSION: WORKER-AWARE CONFIDENCE (Dawid-Skene posterior "
              "as delta)\n");
  std::printf("(seed=%llu, %zu-fold CV%s)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");

  BenchReporter reporter("extension_worker_aware", args);
  for (size_t d : {3u, 5u}) {
    const auto datasets = MakePaperDatasets(args.seed, d);
    std::printf("votes per example d = %zu:\n", d);
    std::printf("%-17s | %-9s %-9s | %-9s %-9s\n", "variant", "oral Acc",
                "oral F1", "class Acc", "class F1");
    PrintRule(64);
    for (auto mode :
         {crowd::ConfidenceMode::kNone, crowd::ConfidenceMode::kMle,
          crowd::ConfidenceMode::kBayesian,
          crowd::ConfidenceMode::kWorkerAware}) {
      core::RllPipelineOptions options;
      options.trainer.model.hidden_dims = {64, 32};
      options.trainer.epochs = epochs;
      options.trainer.groups_per_epoch = groups;
      options.trainer.confidence_mode = mode;
      baselines::RllVariantMethod method(options);

      std::printf("%-17s |", method.name().c_str());
      for (const BenchDataset& bd : datasets) {
        Rng rng(args.seed + 7);
        ScopedTimer cell = reporter.Time(
            "d=" + std::to_string(d) + "/" + method.name() + "/" + bd.name,
            static_cast<double>(bd.dataset.size()));
        auto outcome =
            baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
        if (!outcome.ok()) {
          cell.Cancel();
          std::printf("   error: %s", outcome.status().ToString().c_str());
          continue;
        }
        std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                    outcome->mean.f1, bd.name == "oral" ? "|" : "");
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    PrintRule(64);
    std::printf("\n");
  }
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
