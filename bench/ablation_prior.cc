// Ablation B: strength of the Beta prior (α+β) in the Bayesian confidence
// estimator, eq. (2). Strength 0 degenerates to the MLE of eq. (1); large
// strengths pull every confidence toward the class prior. Probes the
// paper's claim that prior knowledge should guide confidence estimation
// when d is small.
//
//   ./ablation_prior [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"
#include "common/strings.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  const auto datasets = MakePaperDatasets(args.seed);
  size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;

  std::printf("ABLATION B: CONFIDENCE ESTIMATOR PRIOR STRENGTH (alpha+beta)\n");
  std::printf("(seed=%llu, %zu-fold CV%s; strength 0 = MLE)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-9s | %-9s %-9s | %-9s %-9s\n", "strength", "oral Acc",
              "oral F1", "class Acc", "class F1");
  PrintRule(56);

  BenchReporter reporter("ablation_prior", args);
  for (double strength : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.epochs = epochs;
    options.trainer.groups_per_epoch = groups;
    if (strength == 0.0) {
      options.trainer.confidence_mode = crowd::ConfidenceMode::kMle;
    } else {
      options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
      options.trainer.prior_strength = strength;
    }
    baselines::RllVariantMethod method(options);

    std::printf("%-9.1f |", strength);
    for (const BenchDataset& bd : datasets) {
      Rng rng(args.seed + 7);
      ScopedTimer cell = reporter.Time(
          StrFormat("strength=%g/%s", strength, bd.name.c_str()),
          static_cast<double>(bd.dataset.size()));
      auto outcome =
          baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
      if (!outcome.ok()) {
        cell.Cancel();
        std::printf("   error: %s", outcome.status().ToString().c_str());
        continue;
      }
      std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                  outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  PrintRule(56);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
