// Ablation D: validation of the crowd substrate — label-recovery accuracy
// of the three aggregators (majority vote, Dawid–Skene EM, GLAD) as mean
// worker ability degrades from expert-like to near-random, at d = 5 votes.
// This grounds the simulated annotators the other benchmarks rely on.
//
//   ./ablation_workers [--seed N]

#include <cstdio>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/majority_vote.h"

namespace rll::bench {
namespace {

double RecoveryAccuracy(const crowd::Aggregator& aggregator,
                        const data::Dataset& dataset) {
  auto result = aggregator.Run(dataset);
  if (!result.ok()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    correct += (result->labels[i] == dataset.true_label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

int Run(const BenchArgs& args) {
  std::printf("ABLATION D: AGGREGATOR LABEL RECOVERY vs WORKER QUALITY\n");
  std::printf("(seed=%llu, n=880, 25 workers, d=5, two-coin + item "
              "difficulty)\n\n",
              static_cast<unsigned long long>(args.seed));
  std::printf("%-14s | %-9s %-9s %-9s\n", "mean ability", "MV", "DS-EM",
              "GLAD");
  PrintRule(48);

  BenchReporter reporter("ablation_workers", args);
  for (double ability : {0.95, 0.85, 0.75, 0.65, 0.55}) {
    ScopedTimer row = reporter.Time(StrFormat("ability=%.2f", ability),
                                    880.0 * 3);
    Rng rng(args.seed);
    data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
    // Beta(c·a, c·(1−a)) has mean a; concentration 20 keeps workers near
    // the target ability.
    const double c = 20.0;
    crowd::WorkerPool pool({.num_workers = 25,
                            .sensitivity_alpha = c * ability,
                            .sensitivity_beta = c * (1.0 - ability),
                            .specificity_alpha = c * ability,
                            .specificity_beta = c * (1.0 - ability)},
                           &rng);
    pool.Annotate(&d, 5, &rng);

    std::printf("%-14.2f | %-9.3f %-9.3f %-9.3f\n", ability,
                RecoveryAccuracy(crowd::MajorityVote(), d),
                RecoveryAccuracy(crowd::DawidSkene(), d),
                RecoveryAccuracy(crowd::Glad(), d));
    std::fflush(stdout);
  }
  PrintRule(48);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
