// Microbenchmarks of the substrate the experiments run on: dense kernels,
// autograd forward/backward, RLL group sampling and training steps, and
// aggregator iterations. Run in Release mode for meaningful numbers.
//
// Unlike the table harnesses (which take --json via bench_common.h), this
// binary uses google-benchmark's native machine-readable output:
//   ./micro_ops --benchmark_out=micro.json --benchmark_out_format=json
// It does honor --threads N (stripped before google-benchmark sees the
// flag) to size the global thread pool for the parallel kernels.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "autograd/ops.h"
#include "common/arena.h"
#include "common/stopwatch.h"
#include "common/thread_registry.h"
#include "common/threading.h"
#include "obs/alloc_count.h"
#include "obs/profiler.h"
#include "baselines/raykar.h"
#include "classify/pca.h"
#include "core/embedding_index.h"
#include "core/group_sampler.h"
#include "core/rll_model.h"
#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/iwmv.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "text/linguistic_features.h"
#include "text/text_dataset.h"

namespace rll {
namespace {

// Attaches an "allocs_per_op" user counter to the enclosing benchmark:
// operator-new calls made during the timed loop divided by iterations.
// Construct it immediately before `for (auto _ : state)` so setup
// allocations stay out of the count. Surfaces in the JSON output, where
// tools/gate treats it as its own lower-is-better metric — loops that are
// allocation-free at steady state pin (near) zero and CI holds them there.
// No-op when the build does not define RLL_COUNT_ALLOCS.
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state)
      : state_(state), start_(obs::AllocationCount()) {}
  ~AllocCounter() { Done(); }

  /// Call immediately after the timed loop when the benchmark does more
  /// work before returning (SetItemsProcessed and friends allocate, and
  /// scope exit would charge that to the loop).
  void Done() {
    if (done_) return;
    done_ = true;
    if (!obs::AllocCountingActive() || state_.iterations() == 0) return;
    state_.counters["allocs_per_op"] =
        static_cast<double>(obs::AllocationCount() - start_) /
        static_cast<double>(state_.iterations());
  }

 private:
  benchmark::State& state_;
  const uint64_t start_;
  bool done_ = false;
};

void BM_Matmul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a = RandomNormal(n, n, &rng);
  Matrix b = RandomNormal(n, n, &rng);
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b));
  }
  allocs.Done();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MulInto(benchmark::State& state) {
  // Same gemm with a reused output buffer — isolates the per-call
  // allocation cost that Matmul pays.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a = RandomNormal(n, n, &rng);
  Matrix b = RandomNormal(n, n, &rng);
  Matrix out;
  MulInto(a, b, out);  // Warm the buffer; the timed loop is alloc-free.
  AllocCounter allocs(state);
  for (auto _ : state) {
    MulInto(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  allocs.Done();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MulInto)->Arg(64)->Arg(256);

void BM_RowCosine(benchmark::State& state) {
  Rng rng(2);
  Matrix a = RandomNormal(256, 32, &rng);
  Matrix b = RandomNormal(256, 32, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RowCosine(a, b));
  }
}
BENCHMARK(BM_RowCosine);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(3);
  nn::Mlp mlp({.dims = {16, 64, 32}}, &rng);
  Matrix x = RandomNormal(64, 16, &rng);
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Embed(x));
  }
}
BENCHMARK(BM_MlpForward);

void BM_MlpEmbedWorkspace(benchmark::State& state) {
  // BM_MlpForward minus the result copy: EmbedInto against a caller
  // workspace is the serve batcher's steady-state call. Expected
  // allocs_per_op: 0 after the first pass warms the buffers.
  Rng rng(3);
  nn::Mlp mlp({.dims = {16, 64, 32}}, &rng);
  Matrix x = RandomNormal(64, 16, &rng);
  Workspace ws;
  mlp.EmbedInto(x, ws);
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.EmbedInto(x, ws));
  }
}
BENCHMARK(BM_MlpEmbedWorkspace);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Mlp mlp({.dims = {16, 64, 32}}, &rng);
  nn::Adam adam(mlp.Parameters(), {});
  Matrix x = RandomNormal(64, 16, &rng);
  for (auto _ : state) {
    adam.ZeroGrad();
    ag::Var loss = ag::Mean(ag::Square(mlp.Forward(ag::Constant(x))));
    ag::Backward(loss);
    adam.Step();
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_GroupSampling(benchmark::State& state) {
  Rng rng(5);
  std::vector<int> labels(880);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = rng.Bernoulli(0.64);
  core::GroupSampler sampler(labels, {.negatives_per_group = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(1024, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_GroupSampling);

void BM_RllTrainingStep(benchmark::State& state) {
  // One batch (64 groups, k = 3) through the paper-scale encoder:
  // forward, loss, backward, Adam.
  Rng rng(6);
  data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
  core::RllModel model(
      {.input_dim = d.dim(), .hidden_dims = {64, 32}}, &rng);
  nn::Adam adam(model.Parameters(), {});
  std::vector<int> labels = d.true_labels();
  core::GroupSampler sampler(labels, {.negatives_per_group = 3});
  auto groups = sampler.Sample(64, &rng);
  std::vector<size_t> anchors, slot0, slot1, slot2, slot3;
  for (const core::Group& g : *groups) {
    anchors.push_back(g.anchor);
    slot0.push_back(g.positive);
    slot1.push_back(g.negatives[0]);
    slot2.push_back(g.negatives[1]);
    slot3.push_back(g.negatives[2]);
  }
  const std::vector<std::vector<size_t>*> slots = {&slot0, &slot1, &slot2,
                                                   &slot3};
  std::vector<Matrix> conf(4, Matrix(64, 1, 0.9));
  AllocCounter allocs(state);
  for (auto _ : state) {
    adam.ZeroGrad();
    ag::Var anchor_emb =
        model.Forward(ag::Constant(d.features().GatherRows(anchors)));
    std::vector<ag::Var> cands;
    for (const auto* slot : slots) {
      cands.push_back(
          model.Forward(ag::Constant(d.features().GatherRows(*slot))));
    }
    ag::Var loss = core::GroupNllLoss(anchor_emb, cands, conf, 10.0);
    ag::Backward(loss);
    adam.Step();
  }
  allocs.Done();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RllTrainingStep);

void BM_RllTrainingStepArena(benchmark::State& state) {
  // BM_RllTrainingStep on the arena memory plane — the shape RllTrainer
  // actually runs: graph nodes, gradients, and index blocks land in an
  // arena that Reset() recycles between steps. Expected allocs_per_op: 0
  // once the first step has sized the chunks (the delta against
  // BM_RllTrainingStep is the whole point of the arena).
  Rng rng(6);
  data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
  core::RllModel model(
      {.input_dim = d.dim(), .hidden_dims = {64, 32}}, &rng);
  nn::Adam adam(model.Parameters(), {});
  std::vector<int> labels = d.true_labels();
  core::GroupSampler sampler(labels, {.negatives_per_group = 3});
  auto groups = sampler.Sample(64, &rng);
  std::vector<size_t> anchors, slot0, slot1, slot2, slot3;
  for (const core::Group& g : *groups) {
    anchors.push_back(g.anchor);
    slot0.push_back(g.positive);
    slot1.push_back(g.negatives[0]);
    slot2.push_back(g.negatives[1]);
    slot3.push_back(g.negatives[2]);
  }
  const std::vector<std::vector<size_t>*> slots = {&slot0, &slot1, &slot2,
                                                   &slot3};
  std::vector<Matrix> conf(4, Matrix(64, 1, 0.9));
  Arena arena;
  const auto step = [&] {
    {
      ArenaScope scope(&arena);
      ag::Var anchor_emb = model.Forward(
          ag::Constant(d.features().GatherRows(anchors.data(), 64)));
      ag::VarList cands;
      cands.reserve(4);
      MatrixList slot_conf(conf.begin(), conf.end());
      for (const auto* slot : slots) {
        cands.push_back(model.Forward(
            ag::Constant(d.features().GatherRows(slot->data(), 64))));
      }
      ag::Var loss = core::GroupNllLoss(anchor_emb, cands, slot_conf, 10.0);
      ag::Backward(loss);
      adam.Step();
      // Inside the scope, like the trainer: the arena-backed grads must
      // be released while their headers are intact.
      adam.ZeroGrad();
    }
    arena.Reset();
  };
  step();  // Size the arena chunks; the timed loop is the steady state.
  AllocCounter allocs(state);
  for (auto _ : state) {
    step();
  }
  allocs.Done();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RllTrainingStepArena);

data::Dataset AnnotatedDataset(size_t votes) {
  Rng rng(7);
  data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
  crowd::WorkerPool pool({.num_workers = 25}, &rng);
  pool.Annotate(&d, votes, &rng);
  return d;
}

void BM_DawidSkene(benchmark::State& state) {
  data::Dataset d = AnnotatedDataset(5);
  crowd::DawidSkene ds;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Run(d));
  }
}
BENCHMARK(BM_DawidSkene);

void BM_Glad(benchmark::State& state) {
  data::Dataset d = AnnotatedDataset(5);
  crowd::Glad glad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(glad.Run(d));
  }
}
BENCHMARK(BM_Glad);

void BM_WorkerAnnotation(benchmark::State& state) {
  Rng rng(8);
  data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
  crowd::WorkerPool pool({.num_workers = 25}, &rng);
  for (auto _ : state) {
    pool.Annotate(&d, 5, &rng);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d.size() * 5));
}
BENCHMARK(BM_WorkerAnnotation);

void BM_SyntheticGeneration(benchmark::State& state) {
  Rng rng(9);
  const data::SyntheticConfig config = data::OralSimConfig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateSynthetic(config, &rng));
  }
}
BENCHMARK(BM_SyntheticGeneration);

void BM_Iwmv(benchmark::State& state) {
  data::Dataset d = AnnotatedDataset(5);
  crowd::Iwmv iwmv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iwmv.Run(d));
  }
}
BENCHMARK(BM_Iwmv);

void BM_RaykarEm(benchmark::State& state) {
  data::Dataset d = AnnotatedDataset(5);
  baselines::RaykarOptions options;
  options.max_em_iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::FitRaykar(d, options));
  }
}
BENCHMARK(BM_RaykarEm);

void BM_PcaFit(benchmark::State& state) {
  Rng rng(10);
  Matrix x = RandomNormal(880, 16, &rng);
  for (auto _ : state) {
    classify::Pca pca({.num_components = 8});
    benchmark::DoNotOptimize(pca.Fit(x));
  }
}
BENCHMARK(BM_PcaFit);

void BM_TranscriptGeneration(benchmark::State& state) {
  Rng rng(11);
  const text::SpeakerProfile profile;
  const text::Vocabulary& v = text::Vocabulary::Default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::GenerateTranscript(profile, v, 120, &rng));
  }
}
BENCHMARK(BM_TranscriptGeneration);

void BM_LinguisticFeatureExtraction(benchmark::State& state) {
  Rng rng(12);
  const text::Vocabulary& v = text::Vocabulary::Default();
  const text::Transcript t =
      text::GenerateTranscript(text::SpeakerProfile{}, v, 120, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::ExtractFeatures(t, v));
  }
}
BENCHMARK(BM_LinguisticFeatureExtraction);

void BM_ProfilerOverhead(benchmark::State& state) {
  // Cost of running the sampling profiler at its default 99 Hz: each
  // iteration times the same reused-buffer gemm burst twice, unprofiled
  // then profiled, and the accumulated ratio lands in "overhead_ratio"
  // (1.0 = free). tools/gate pins it lower-is-better; the ROADMAP target
  // is <= 1.05. Interleaving the two bursts inside one iteration cancels
  // machine drift that back-to-back runs would absorb into the ratio.
  Rng rng(1);
  const size_t n = 64;
  Matrix a = RandomNormal(n, n, &rng);
  Matrix b = RandomNormal(n, n, &rng);
  Matrix out;
  MulInto(a, b, out);  // Warm the buffer.
  constexpr int kReps = 200;
  if (obs::CpuProfilerRunning()) {
    state.SkipWithError("profiler already armed (--profile-out?)");
    return;
  }
  double base_ms = 0.0;
  double profiled_ms = 0.0;
  for (auto _ : state) {
    Stopwatch unprofiled;
    for (int r = 0; r < kReps; ++r) {
      MulInto(a, b, out);
      benchmark::DoNotOptimize(out.data());
    }
    base_ms += unprofiled.ElapsedMillis();
    if (!obs::StartCpuProfiler({.hz = 99}).ok()) {
      state.SkipWithError("StartCpuProfiler failed");
      return;
    }
    Stopwatch profiled;
    for (int r = 0; r < kReps; ++r) {
      MulInto(a, b, out);
      benchmark::DoNotOptimize(out.data());
    }
    profiled_ms += profiled.ElapsedMillis();
    obs::StopCpuProfiler();
    obs::ClearProfile();  // Keep per-thread buffers from filling up.
  }
  if (base_ms > 0.0) {
    state.counters["overhead_ratio"] = profiled_ms / base_ms;
  }
}
BENCHMARK(BM_ProfilerOverhead);

void BM_EmbeddingIndexQuery(benchmark::State& state) {
  Rng rng(13);
  Matrix corpus = RandomNormal(880, 32, &rng);
  core::EmbeddingIndex index;
  if (!index.Build(corpus).ok()) return;
  Matrix query = RandomNormal(1, 32, &rng);
  index.Query(query, 10);  // Warm the per-thread scratch buffers.
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(query, 10));
  }
}
BENCHMARK(BM_EmbeddingIndexQuery);

}  // namespace
}  // namespace rll

int main(int argc, char** argv) {
  rll::SetCurrentThreadName("rll-bench-main");
  // Strip --threads N (and the profiler flags) before google-benchmark
  // rejects them as unknown.
  std::string profile_out;
  int profile_hz = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      rll::SetGlobalThreads(
          static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10)));
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      profile_hz = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (!profile_out.empty()) {
    // Whole-run profile; BM_ProfilerOverhead skips itself when it finds
    // the profiler already armed.
    rll::obs::ProfilerOptions options;
    if (profile_hz > 0) options.hz = profile_hz;
    const rll::Status started = rll::obs::StartCpuProfiler(options);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!profile_out.empty()) {
    rll::obs::StopCpuProfiler();
    std::FILE* f = std::fopen(profile_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for write\n", profile_out.c_str());
      return 1;
    }
    const bool json =
        profile_out.size() >= 5 &&
        profile_out.compare(profile_out.size() - 5, 5, ".json") == 0;
    const std::string profile = json ? rll::obs::ProfileToJson() + "\n"
                                     : rll::obs::ProfileToFolded();
    std::fwrite(profile.data(), 1, profile.size(), f);
    std::fclose(f);
  }
  return 0;
}
