// Ablation C: embedding dimensionality of the RLL encoder. The paper fixes
// an architecture without reporting sensitivity; this sweep shows the
// robustness plateau and the under-capacity cliff.
//
//   ./ablation_dim [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  const auto datasets = MakePaperDatasets(args.seed);
  size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;

  std::printf("ABLATION C: RLL-BAYESIAN vs EMBEDDING DIMENSION\n");
  std::printf("(seed=%llu, %zu-fold CV%s; encoder input→64→dim)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-6s | %-9s %-9s | %-9s %-9s\n", "dim", "oral Acc", "oral F1",
              "class Acc", "class F1");
  PrintRule(54);

  BenchReporter reporter("ablation_dim", args);
  for (size_t dim : {2u, 4u, 8u, 16u, 32u, 64u}) {
    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, dim};
    options.trainer.epochs = epochs;
    options.trainer.groups_per_epoch = groups;
    options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
    baselines::RllVariantMethod method(options);

    std::printf("%-6zu |", dim);
    for (const BenchDataset& bd : datasets) {
      Rng rng(args.seed + 7);
      ScopedTimer cell =
          reporter.Time("dim=" + std::to_string(dim) + "/" + bd.name,
                        static_cast<double>(bd.dataset.size()));
      auto outcome =
          baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
      if (!outcome.ok()) {
        cell.Cancel();
        std::printf("   error: %s", outcome.status().ToString().c_str());
        continue;
      }
      std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                  outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  PrintRule(54);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
