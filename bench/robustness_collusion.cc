// Robustness experiment: aggregator and RLL degradation as a colluding
// ring replaces honest votes. All the inference models here assume
// independent worker errors; the ring violates that assumption, so this
// quantifies a failure mode the paper's evaluation never probes.
//
//   ./robustness_collusion [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"
#include "crowd/collusion.h"
#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/iwmv.h"
#include "crowd/majority_vote.h"

namespace rll::bench {
namespace {

double Recovery(const crowd::Aggregator& aggregator,
                const data::Dataset& dataset) {
  auto result = aggregator.Run(dataset);
  if (!result.ok()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    correct += (result->labels[i] == dataset.true_label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

int Run(const BenchArgs& args) {
  const size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;
  const size_t total_votes = 5;

  std::printf("ROBUSTNESS: COLLUDING RING REPLACING HONEST VOTES "
              "(oral-sim, d = %zu)\n", total_votes);
  std::printf("(seed=%llu%s; ring leader accuracy 0.55, follow prob 0.9)\n\n",
              static_cast<unsigned long long>(args.seed),
              args.quick ? ", quick mode" : "");
  std::printf("%-10s | %-7s %-7s %-7s %-7s | %-9s\n", "colluders", "MV",
              "DS-EM", "GLAD", "IWMV", "RLL-B acc");
  PrintRule(62);

  BenchReporter reporter("robustness_collusion", args);
  for (size_t colluders : {0u, 1u, 2u, 3u, 4u}) {
    ScopedTimer row =
        reporter.Time("colluders=" + std::to_string(colluders), 880.0);
    Rng rng(args.seed);
    data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
    crowd::WorkerPool pool({.num_workers = 25}, &rng);
    crowd::CollusionOptions collusion;
    const Status status = crowd::AnnotateWithCollusion(
        &d, pool, total_votes - colluders, collusion, colluders, &rng);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }

    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.epochs = epochs;
    options.trainer.groups_per_epoch = groups;
    options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
    baselines::RllVariantMethod method(options);
    Rng eval_rng(args.seed + 7);
    auto outcome =
        baselines::CrossValidateMethod(d, method, folds, &eval_rng);

    std::printf("%-10zu | %-7.3f %-7.3f %-7.3f %-7.3f | %-9.3f\n", colluders,
                Recovery(crowd::MajorityVote(), d),
                Recovery(crowd::DawidSkene(), d),
                Recovery(crowd::Glad(), d), Recovery(crowd::Iwmv(), d),
                outcome.ok() ? outcome->mean.accuracy : 0.0);
    std::fflush(stdout);
  }
  PrintRule(62);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
