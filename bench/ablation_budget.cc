// Ablation E: annotation-budget allocation. The paper's Table III asks
// "how many workers per example?"; this ablation asks the sharper practical
// question — given a FIXED total vote budget, is it better to spread votes
// uniformly (the paper's fixed-d protocol) or to allocate them adaptively
// to the most uncertain items (crowd::AnnotateAdaptively)? Reported as
// majority-vote label recovery and end-to-end RLL-Bayesian accuracy.
//
//   ./ablation_budget [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"
#include "crowd/adaptive_annotation.h"

namespace rll::bench {
namespace {

double MajorityRecovery(const data::Dataset& d) {
  size_t correct = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    correct += (d.MajorityVote(i) == d.true_label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

int Run(const BenchArgs& args) {
  const size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;

  std::printf("ABLATION E: UNIFORM vs ADAPTIVE VOTE ALLOCATION "
              "(oral-sim, fixed budget)\n");
  std::printf("(seed=%llu, %zu-fold CV%s; budget = factor x 880 votes)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-7s %-9s | %-9s %-11s | %-9s %-11s\n", "budget", "scheme",
              "MV recov", "RLL-B acc", "MV recov", "RLL-B acc");
  std::printf("%-17s | %-21s | %-21s\n", "", "(uniform)", "(adaptive)");
  PrintRule(66);

  BenchReporter reporter("ablation_budget", args);
  for (size_t factor : {3u, 5u}) {
    double recovery[2] = {0, 0};
    double accuracy[2] = {0, 0};
    for (int adaptive = 0; adaptive < 2; ++adaptive) {
      ScopedTimer cell = reporter.Time(
          "budget=" + std::to_string(factor) +
              (adaptive ? "/adaptive" : "/uniform"),
          880.0);
      Rng rng(args.seed);
      data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
      crowd::WorkerPool pool({.num_workers = 25}, &rng);
      if (adaptive) {
        crowd::AdaptiveAnnotationOptions opts;
        opts.base_votes = 1;
        opts.total_budget = factor * d.size();
        opts.votes_per_round = 2;
        auto report = crowd::AnnotateAdaptively(&d, pool, opts, &rng);
        if (!report.ok()) {
          std::printf("error: %s\n", report.status().ToString().c_str());
          return 1;
        }
      } else {
        pool.Annotate(&d, factor, &rng);
      }
      recovery[adaptive] = MajorityRecovery(d);

      core::RllPipelineOptions options;
      options.trainer.model.hidden_dims = {64, 32};
      options.trainer.epochs = epochs;
      options.trainer.groups_per_epoch = groups;
      options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
      baselines::RllVariantMethod method(options);
      Rng eval_rng(args.seed + 7);
      auto outcome =
          baselines::CrossValidateMethod(d, method, folds, &eval_rng);
      accuracy[adaptive] = outcome.ok() ? outcome->mean.accuracy : 0.0;
    }
    std::printf("%-7zu %-9s | %-9.3f %-11.3f | %-9.3f %-11.3f\n", factor,
                "", recovery[0], accuracy[0], recovery[1], accuracy[1]);
    std::fflush(stdout);
  }
  PrintRule(66);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
