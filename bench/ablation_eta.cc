// Ablation A: sensitivity of RLL-Bayesian to the softmax temperature η.
// The paper sets η "empirically on a held-out dataset" (§III-A) without
// reporting the sweep; this harness fills that gap.
//
//   ./ablation_eta [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"
#include "common/strings.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  const auto datasets = MakePaperDatasets(args.seed);
  size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t groups = args.quick ? 256 : 1024;

  std::printf("ABLATION A: RLL-BAYESIAN vs SOFTMAX TEMPERATURE eta\n");
  std::printf("(seed=%llu, %zu-fold CV%s)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-6s | %-9s %-9s | %-9s %-9s\n", "eta", "oral Acc", "oral F1",
              "class Acc", "class F1");
  PrintRule(54);

  BenchReporter reporter("ablation_eta", args);
  for (double eta : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.epochs = epochs;
    options.trainer.groups_per_epoch = groups;
    options.trainer.eta = eta;
    options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
    baselines::RllVariantMethod method(options);

    std::printf("%-6.1f |", eta);
    for (const BenchDataset& bd : datasets) {
      Rng rng(args.seed + 7);
      ScopedTimer cell =
          reporter.Time(StrFormat("eta=%g/%s", eta, bd.name.c_str()),
                        static_cast<double>(bd.dataset.size()));
      auto outcome =
          baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
      if (!outcome.ok()) {
        cell.Cancel();
        std::printf("   error: %s", outcome.status().ToString().c_str());
        continue;
      }
      std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                  outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  PrintRule(54);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
