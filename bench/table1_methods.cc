// Reproduces Table I: prediction accuracy and F1 of all 15 methods (groups
// 1–4) on the simulated oral and class datasets, 5-fold cross-validated.
//
//   ./table1_methods [--seed N] [--quick]
//
// Paper reference values (real proprietary data):
//   oral : SoftProb .815/.869 … TripletNet .847/.889 … RLL+Bayesian .888/.915
//   class: SoftProb .758/.810 … EM .606/.698 … RLL+Bayesian .879/.920
// The reproduction targets the *shape* (group 4 > group 3 ≥ groups 1–2;
// Bayesian > MLE > plain RLL), not the absolute numbers.

#include <cstdio>
#include <vector>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "common/threading.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  baselines::RegistryOptions options = baselines::DefaultRegistryOptions();
  size_t folds = 5;
  if (args.quick) {
    options.deep.epochs = 4;
    options.deep.samples_per_epoch = 256;
    options.rll.trainer.epochs = 4;
    options.rll.trainer.groups_per_epoch = 256;
    folds = 3;
  }
  const auto methods = baselines::BuildTableOneMethods(options);
  const auto datasets = MakePaperDatasets(args.seed);

  std::printf("TABLE I: PREDICTION RESULTS ON SIMULATED ORAL AND CLASS "
              "DATASETS\n");
  std::printf("(seed=%llu, %zu-fold CV%s)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-18s %-8s | %-9s %-9s | %-9s %-9s\n", "Method", "Group",
              "oral Acc", "oral F1", "class Acc", "class F1");
  PrintRule(72);

  BenchReporter reporter("table1_methods", args);
  // Every method × dataset cell is an independent pool task: each seeds a
  // private Rng from (args.seed + 7), so the table is identical at any
  // --threads value. Results land in per-cell slots and print in the
  // historical serial order afterwards.
  struct CellResult {
    Result<core::CvOutcome> outcome{Status::Internal("cell not run")};
    double wall_ms = 0.0;
  };
  std::vector<CellResult> cells(methods.size() * datasets.size());
  ParallelFor(0, cells.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      const auto& method = methods[c / datasets.size()];
      const BenchDataset& bd = datasets[c % datasets.size()];
      Rng rng(args.seed + 7);
      Stopwatch watch;
      cells[c].outcome =
          baselines::CrossValidateMethod(bd.dataset, *method, folds, &rng);
      cells[c].wall_ms = watch.ElapsedMillis();
    }
  });

  std::string last_group;
  for (size_t m = 0; m < methods.size(); ++m) {
    const auto& method = methods[m];
    if (method->group() != last_group && !last_group.empty()) PrintRule(72);
    last_group = method->group();
    std::printf("%-18s %-8s |", method->name().c_str(),
                method->group().c_str());
    for (size_t d = 0; d < datasets.size(); ++d) {
      const BenchDataset& bd = datasets[d];
      const CellResult& cell = cells[m * datasets.size() + d];
      if (!cell.outcome.ok()) {
        std::printf("   error: %s",
                    cell.outcome.status().ToString().c_str());
        continue;
      }
      const double units = static_cast<double>(bd.dataset.size());
      reporter.Record(method->name() + "/" + bd.name, cell.wall_ms,
                      cell.wall_ms > 0.0 ? units / (cell.wall_ms / 1e3)
                                         : 0.0);
      std::printf(" %-9.3f %-9.3f %s", cell.outcome->mean.accuracy,
                  cell.outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
  }
  PrintRule(72);
  std::printf("total wall time: %.1fs\n", reporter.TotalWallSeconds());
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
