// Reproduces Table III: RLL-Bayesian accuracy/F1 as the number of crowd
// workers per example d sweeps over {1, 3, 5}.
//
//   ./table3_d_sweep [--seed N] [--quick]
//
// Paper reference (real data): performance increases consistently with d —
// more votes per example make the confidence estimates more trustworthy.

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "bench/bench_common.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  size_t folds = 5;
  int epochs = 15;
  size_t groups = 1024;
  if (args.quick) {
    folds = 3;
    epochs = 4;
    groups = 256;
  }

  std::printf("TABLE III: RLL-BAYESIAN RESULTS WITH DIFFERENT d\n");
  std::printf("(seed=%llu, %zu-fold CV%s)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "");
  std::printf("%-4s | %-9s %-9s | %-9s %-9s\n", "d", "oral Acc", "oral F1",
              "class Acc", "class F1");
  PrintRule(52);

  BenchReporter reporter("table3_d_sweep", args);
  for (size_t d : {1u, 3u, 5u}) {
    // Re-annotate the same underlying data with d votes per example.
    const auto datasets = MakePaperDatasets(args.seed, d);

    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.epochs = epochs;
    options.trainer.groups_per_epoch = groups;
    options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
    options.folds = folds;
    baselines::RllVariantMethod method(options);

    std::printf("%-4zu |", d);
    for (const BenchDataset& bd : datasets) {
      Rng rng(args.seed + 7);
      ScopedTimer cell =
          reporter.Time("d=" + std::to_string(d) + "/" + bd.name,
                        static_cast<double>(bd.dataset.size()));
      auto outcome =
          baselines::CrossValidateMethod(bd.dataset, method, folds, &rng);
      if (!outcome.ok()) {
        cell.Cancel();
        std::printf("   error: %s", outcome.status().ToString().c_str());
        continue;
      }
      std::printf(" %-9.3f %-9.3f %s", outcome->mean.accuracy,
                  outcome->mean.f1, bd.name == "oral" ? "|" : "");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  PrintRule(52);
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
