// Appendix experiment: key Table I rows regenerated on the *mechanistic*
// oral dataset (simulated transcripts → linguistic features) instead of the
// Gaussian generator — a robustness check that the method ordering is not
// an artifact of one synthetic feature distribution. Also reports 95%
// bootstrap CIs over folds and a paired permutation test of RLL-Bayesian
// against the strongest baseline row.
//
//   ./appendix_text_pipeline [--seed N] [--quick]

#include <cstdio>

#include "baselines/method.h"
#include "baselines/registry.h"
#include "baselines/rll_method.h"
#include "baselines/softprob.h"
#include "baselines/triplet.h"
#include "bench/bench_common.h"
#include "classify/stats.h"
#include "crowd/worker_pool.h"
#include "text/text_dataset.h"

namespace rll::bench {
namespace {

int Run(const BenchArgs& args) {
  const size_t folds = args.quick ? 3 : 5;
  const int epochs = args.quick ? 4 : 15;
  const size_t samples = args.quick ? 256 : 1024;

  Rng rng(args.seed);
  text::TextSimConfig config;
  text::TextDatasetResult generated =
      text::GenerateOralTextDataset(config, &rng);
  data::Dataset& dataset = generated.dataset;
  crowd::WorkerPool workers({.num_workers = 25}, &rng);
  workers.Annotate(&dataset, 5, &rng);

  std::printf("APPENDIX: METHOD COMPARISON ON THE TRANSCRIPT-DERIVED ORAL "
              "DATASET\n");
  std::printf("(seed=%llu, %zu-fold CV%s, %zu linguistic features)\n\n",
              static_cast<unsigned long long>(args.seed), folds,
              args.quick ? ", quick mode" : "", dataset.dim());
  std::printf("%-14s | %-9s %-9s %-22s\n", "Method", "Acc", "F1",
              "Acc 95%% bootstrap CI");
  PrintRule(60);

  baselines::DeepBaselineOptions deep;
  deep.hidden_dims = {64, 32};
  deep.epochs = epochs;
  deep.samples_per_epoch = samples;

  core::RllPipelineOptions rll;
  rll.trainer.model.hidden_dims = {64, 32};
  rll.trainer.epochs = epochs;
  rll.trainer.groups_per_epoch = samples;
  rll.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;

  baselines::SoftProbMethod softprob;
  baselines::TripletMethod triplet(deep);
  baselines::RllVariantMethod rll_bayes(rll);
  const std::vector<const baselines::Method*> methods = {
      &softprob, &triplet, &rll_bayes};

  BenchReporter reporter("appendix_text_pipeline", args);
  std::vector<std::vector<double>> fold_accuracies;
  for (const baselines::Method* method : methods) {
    Rng eval_rng(args.seed + 7);
    ScopedTimer cell = reporter.Time(
        method->name(), static_cast<double>(dataset.size()));
    auto outcome =
        baselines::CrossValidateMethod(dataset, *method, folds, &eval_rng);
    if (!outcome.ok()) {
      cell.Cancel();
      std::printf("%-14s | error: %s\n", method->name().c_str(),
                  outcome.status().ToString().c_str());
      fold_accuracies.emplace_back();
      continue;
    }
    std::vector<double> per_fold;
    for (const auto& fold : outcome->per_fold) {
      per_fold.push_back(fold.accuracy);
    }
    fold_accuracies.push_back(per_fold);
    Rng boot_rng(args.seed + 11);
    auto ci = classify::BootstrapMeanCi(per_fold, &boot_rng);
    std::printf("%-14s | %-9.3f %-9.3f [%.3f, %.3f]\n",
                method->name().c_str(), outcome->mean.accuracy,
                outcome->mean.f1, ci.ok() ? ci->lower : 0.0,
                ci.ok() ? ci->upper : 0.0);
    std::fflush(stdout);
  }
  PrintRule(60);

  // Paired test: RLL-Bayesian vs the stronger of the two baselines, on
  // identical folds (same eval seed → same splits).
  if (fold_accuracies.size() == 3 && !fold_accuracies[2].empty()) {
    size_t rival = 0;
    double rival_mean = -1.0;
    for (size_t m = 0; m < 2; ++m) {
      if (fold_accuracies[m].empty()) continue;
      double mean = 0.0;
      for (double a : fold_accuracies[m]) mean += a;
      mean /= static_cast<double>(fold_accuracies[m].size());
      if (mean > rival_mean) {
        rival_mean = mean;
        rival = m;
      }
    }
    Rng test_rng(args.seed + 13);
    auto test = classify::PairedPermutationTest(
        fold_accuracies[2], fold_accuracies[rival], &test_rng);
    if (test.ok()) {
      std::printf(
          "paired permutation test, RLL+Bayesian vs %s over %zu folds:\n"
          "  mean accuracy difference %+.3f, p = %.3f\n",
          methods[rival]->name().c_str(), fold_accuracies[2].size(),
          test->mean_difference, test->p_value);
    }
  }
  return reporter.Finish();
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) {
  return rll::bench::Run(rll::bench::ParseArgs(argc, argv));
}
