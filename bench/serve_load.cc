// Closed-loop load generator for the inference server (src/serve/).
//
// Drives an in-process ServerCore — the identical request path the TCP
// transport uses, minus the sockets — with N client threads issuing
// newline-delimited JSON through HandleLine. Each client draws features
// from a hot set (to exercise the LRU cache) mixed with uniform corpus
// rows (to keep the batcher fed with misses), across all three request
// types. Afterwards the harness:
//
//   * reads p50/p95/p99 request latency and the batch-size distribution
//     out of the obs metric registry (the same numbers an operator sees),
//   * checks that dynamic batching actually engaged (max batch > 1), and
//   * re-embeds a sample of rows one-at-a-time and compares them bitwise
//     against the concurrently micro-batched answers — the determinism
//     claim in serve/batcher.h, checked end to end under real contention.
//
// A second, open-loop phase replays a Poisson arrival process against the
// same core: request start times are drawn from seeded exponential
// inter-arrivals at a configured offered rate, and latency is measured
// from the *scheduled* arrival — so when the server falls behind, queueing
// delay shows up in the percentiles instead of silently throttling the
// generator (the closed-loop coordinated-omission trap). The sweep's top
// rate is chosen past saturation on purpose: goodput should plateau at
// capacity while tail latency grows, and both are recorded per rate.
//
// Usage: serve_load [--quick] [--seed N] [--threads N] [--json OUT.json]
//                   [--offered-qps Q1,Q2,...]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/model_bundle.h"
#include "core/rll_model.h"
#include "data/standardize.h"
#include "obs/alloc_count.h"
#include "obs/metrics.h"
#include "serve/server_core.h"

namespace rll::bench {
namespace {

struct ClientStats {
  uint64_t requests = 0;
  uint64_t failures = 0;
};

// One client's closed loop: build a request line, hand it to the core,
// count the outcome, repeat. `hot` rows repeat often enough to hit the
// cache; the rest sweep the corpus so misses keep batches forming.
ClientStats RunClient(serve::ServerCore* core, const data::Dataset& dataset,
                      const std::vector<std::string>& request_lines,
                      size_t hot_rows, size_t iterations, uint64_t seed) {
  Rng rng(seed);
  ClientStats stats;
  for (size_t i = 0; i < iterations; ++i) {
    const size_t row = rng.Bernoulli(0.5)
                           ? rng.UniformInt(hot_rows)
                           : rng.UniformInt(dataset.size());
    const std::string& line = request_lines[row];
    const std::string response = core->HandleLine(line);
    ++stats.requests;
    if (response.find("\"ok\":true") == std::string::npos) ++stats.failures;
  }
  return stats;
}

struct OpenLoopResult {
  uint64_t issued = 0;
  uint64_t succeeded = 0;
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileOf(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Replays `count` requests whose start times follow a Poisson process at
/// `offered_qps`. A pool of dispatcher threads pulls scheduled arrivals
/// off a shared index: each sleeps until its arrival time, issues the
/// request, and charges the full scheduled-arrival-to-response interval as
/// latency. Past saturation the pool runs behind schedule, so queueing
/// delay accumulates into the measured tails — exactly what an open-loop
/// client would see.
OpenLoopResult RunOpenLoop(serve::ServerCore* core,
                           const std::vector<std::string>& request_lines,
                           double offered_qps, size_t count, size_t pool,
                           uint64_t seed) {
  // The arrival schedule is drawn up front from one seeded stream, so the
  // offered process is identical no matter how the pool gets scheduled.
  Rng rng(seed);
  std::vector<double> arrival_s(count);
  double clock_s = 0.0;
  for (size_t i = 0; i < count; ++i) {
    clock_s += -std::log(1.0 - rng.Uniform()) / offered_qps;
    arrival_s[i] = clock_s;
  }

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> succeeded{0};
  std::vector<std::vector<double>> latencies(pool);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(pool);
  for (size_t d = 0; d < pool; ++d) {
    dispatchers.emplace_back([&, d] {
      std::vector<double>& local = latencies[d];
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrival_s[i]));
        std::this_thread::sleep_until(scheduled);
        const std::string& line = request_lines[i % request_lines.size()];
        const std::string response = core->HandleLine(line);
        const auto done = std::chrono::steady_clock::now();
        if (response.find("\"ok\":true") != std::string::npos) {
          succeeded.fetch_add(1, std::memory_order_relaxed);
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(done - scheduled)
                .count());
      }
    });
  }
  for (std::thread& t : dispatchers) t.join();

  OpenLoopResult result;
  result.issued = count;
  result.succeeded = succeeded.load();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  std::vector<double> merged;
  merged.reserve(count);
  for (const std::vector<double>& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end());
  result.p50_ms = PercentileOf(merged, 0.50);
  result.p95_ms = PercentileOf(merged, 0.95);
  result.p99_ms = PercentileOf(merged, 0.99);
  return result;
}

/// Parses "--offered-qps Q1,Q2,..." out of argv (ParseArgs ignores flags
/// it does not know). The default sweep straddles saturation; it is the
/// same list in --quick mode so the recorded metric names stay stable for
/// the bench gate, only the per-rate request budget shrinks.
std::vector<double> ParseOfferedQps(int argc, char** argv) {
  std::vector<double> sweep = {4000.0, 16000.0, 64000.0};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--offered-qps") != 0) continue;
    sweep.clear();
    const char* cursor = argv[i + 1];
    while (*cursor != '\0') {
      char* end = nullptr;
      const double qps = std::strtod(cursor, &end);
      if (end == cursor) break;
      if (qps > 0.0) sweep.push_back(qps);
      cursor = *end == ',' ? end + 1 : end;
    }
  }
  return sweep;
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchReporter reporter("serve_load", args);
  const std::vector<double> offered_qps = ParseOfferedQps(argc, argv);

  // Serving needs a bundle, not a good one: a randomly initialized encoder
  // exercises the identical compute path in a fraction of the setup time.
  Rng rng(args.seed);
  data::Dataset dataset =
      GenerateSynthetic(data::OralSimConfig(), &rng);
  data::Standardizer standardizer;
  standardizer.Fit(dataset.features());
  core::RllModelConfig model_config;
  model_config.input_dim = dataset.dim();
  core::RllModel model(model_config, &rng);
  auto bundle = core::ModelBundle::Create(standardizer, model, &rng);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  serve::ServerCoreOptions options;
  options.batcher.max_batch = 32;
  options.batcher.batch_timeout_us = 200;
  options.batcher.max_queue = 1024;  // Sized to the offered load: the
  // harness measures latency under batching, not rejection behavior.
  options.cache_capacity = 256;  // Below the corpus size, so uniform
  // traffic keeps missing while the hot set stays resident.
  options.window.intervals = 120;  // 120s window: covers the whole run,
  // so the windowed percentiles below must agree with the lifetime ones.
  auto core = serve::ServerCore::Create(std::move(*bundle), &dataset,
                                        options);
  if (!core.ok()) {
    std::fprintf(stderr, "%s\n", core.status().ToString().c_str());
    return 1;
  }

  // Pre-serialize one request line per corpus row (round-robin over the
  // three types) so the measured loop is serving, not string building.
  std::vector<std::string> request_lines;
  request_lines.reserve(dataset.size());
  for (size_t r = 0; r < dataset.size(); ++r) {
    std::string features;
    for (size_t c = 0; c < dataset.dim(); ++c) {
      if (c > 0) features += ",";
      features += obs::JsonNumber(dataset.features()(r, c));
    }
    const char* type =
        r % 4 == 3 ? "neighbors" : (r % 4 == 2 ? "predict" : "embed");
    request_lines.push_back(StrFormat(
        "{\"id\":%zu,\"type\":\"%s\",\"features\":[%s]}", r, type,
        features.c_str()));
  }

  const size_t clients = args.quick ? 4 : 16;
  const size_t iterations = args.quick ? 250 : 2000;
  const size_t hot_rows = 64;

  std::vector<ClientStats> stats(clients);
  // Allocation accounting over the whole closed loop (all client threads
  // plus the batcher worker). The request path cannot be literally
  // allocation-free — promises, result rows, and response JSON cross
  // threads and so own their storage — but the per-request count must not
  // grow: the checked-in baseline pins it and tools/gate fails a rise.
  const uint64_t allocs_before = obs::AllocationCount();
  {
    auto timer = reporter.Time("closed_loop",
                               static_cast<double>(clients * iterations));
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        stats[c] = RunClient(core->get(), dataset, request_lines, hot_rows,
                             iterations, SplitSeed(args.seed, c));
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const uint64_t closed_loop_allocs = obs::AllocationCount() - allocs_before;

  uint64_t total_requests = 0, total_failures = 0;
  for (const ClientStats& s : stats) {
    total_requests += s.requests;
    total_failures += s.failures;
  }

  // Bitwise determinism check: embed a sample of raw rows directly through
  // the bundle (one at a time, no batcher) and through the typed server
  // path while the cache is warm. Any difference fails the bench.
  size_t mismatches = 0;
  const size_t sample = 32;
  for (size_t r = 0; r < sample; ++r) {
    const size_t row = (r * 7919) % dataset.size();
    serve::Request request;
    request.type = serve::RequestType::kEmbed;
    const Matrix raw = dataset.features().Row(row);
    request.features.assign(raw.data(), raw.data() + raw.size());
    const serve::Response served = core->get()->Handle(request);
    auto direct = core->get()->bundle().Embed(raw);
    if (!served.ok || !direct.ok() ||
        served.embedding.size() != direct->size()) {
      ++mismatches;
      continue;
    }
    for (size_t i = 0; i < direct->size(); ++i) {
      // Bitwise: exact representational equality, not a tolerance.
      if (served.embedding[i] != (*direct)[i]) {
        ++mismatches;
        break;
      }
    }
  }

  // metricsz scrape RTT: the per-refresh cost an operator's `rll_cli top`
  // pays, measured over the same HandleLine path the transport uses.
  const size_t scrapes = 20;
  double scrape_total_ms = 0.0;
  size_t scrape_failures = 0;
  for (size_t s = 0; s < scrapes; ++s) {
    Stopwatch scrape_timer;
    const std::string response =
        core->get()->HandleLine("{\"id\":\"bench\",\"type\":\"metricsz\"}");
    scrape_total_ms += scrape_timer.ElapsedMillis();
    if (response.find("\"ok\":true") == std::string::npos) ++scrape_failures;
  }

  // Profiler overhead on the serve path: the same single-threaded request
  // burst unprofiled then profiled at the default 99 Hz, interleaved per
  // round so machine drift cancels. Skipped when --profile-out already
  // armed the profiler for the whole run.
  double profiler_overhead = 0.0;
  if (!obs::CpuProfilerRunning()) {
    const size_t burst = args.quick ? 500 : 4000;
    const auto run_burst = [&] {
      for (size_t i = 0; i < burst; ++i) {
        core->get()->HandleLine(request_lines[i % hot_rows]);
      }
    };
    run_burst();  // Warm the burst path itself out of the measurement.
    double base_ms = 0.0;
    double profiled_ms = 0.0;
    for (int round = 0; round < 8; ++round) {
      // Alternate which leg runs first so one-directional drift (cache
      // warming, frequency scaling) cancels instead of biasing the ratio.
      const bool profiled_first = (round % 2) == 1;
      for (int leg = 0; leg < 2; ++leg) {
        const bool profiled_leg = (leg == 1) != profiled_first;
        if (profiled_leg &&
            !obs::StartCpuProfiler({.hz = 99}).ok()) {
          break;
        }
        Stopwatch timer;
        run_burst();
        (profiled_leg ? profiled_ms : base_ms) += timer.ElapsedMillis();
        if (profiled_leg) {
          obs::StopCpuProfiler();
          obs::ClearProfile();
        }
      }
    }
    if (base_ms > 0.0 && profiled_ms > 0.0) {
      profiler_overhead = profiled_ms / base_ms;
      reporter.Record("profiler_overhead_ratio", profiler_overhead);
    }
  }

  // Windowed snapshot before Shutdown, while the run is still inside the
  // 120s window configured above.
  const obs::WindowedHistogram::Snapshot windowed =
      core->get()->windowed_latency(serve::RequestType::kEmbed).GetSnapshot();

  auto& registry = obs::MetricRegistry::Global();
  const obs::Histogram* latency = registry.GetHistogram(
      "serve_request_latency_ms", {{"type", "embed"}});
  const obs::Histogram* batch_size =
      registry.GetHistogram("serve_batch_size");
  const serve::MicroBatcher& batcher = core->get()->batcher();
  const serve::EmbeddingCache& cache = core->get()->cache();

  const double p50 = latency->Percentile(0.50);
  const double p95 = latency->Percentile(0.95);
  const double p99 = latency->Percentile(0.99);
  reporter.Record("latency_p50_ms", p50);
  reporter.Record("latency_p95_ms", p95);
  reporter.Record("latency_p99_ms", p99);
  reporter.Record("cache_hit_rate", cache.HitRate());
  reporter.Record("mean_batch_size",
                  batcher.batches_run() > 0
                      ? static_cast<double>(batcher.rows_batched()) /
                            static_cast<double>(batcher.batches_run())
                      : 0.0);
  reporter.Record("max_batch_observed",
                  static_cast<double>(batcher.max_batch_observed()));
  if (obs::AllocCountingActive() && total_requests > 0) {
    reporter.Record("allocs_per_op",
                    static_cast<double>(closed_loop_allocs) /
                        static_cast<double>(total_requests));
  }

  // Windowed-vs-lifetime agreement: both views observe the identical
  // request stream through the same bucket math, so with the window
  // covering the whole run the percentiles must coincide (epoch-boundary
  // slot recycling may shave a handful of observations, hence a ratio
  // rather than an equality check). 1.0 = identical.
  const auto agreement = [](double a, double b) {
    if (a <= 0.0 || b <= 0.0) return a == b ? 1.0 : 0.0;
    return a < b ? a / b : b / a;
  };
  reporter.Record("windowed_p50_agreement", agreement(windowed.p50, p50));
  reporter.Record("windowed_p99_agreement", agreement(windowed.p99, p99));
  reporter.Record("metricsz_scrape_rtt_ms",
                  scrape_total_ms / static_cast<double>(scrapes));

  // Open-loop sweep: fixed offered rates, Poisson arrivals, latency from
  // the scheduled arrival. Runs last — after every closed-loop metric has
  // been read — so the lifetime histograms above keep describing the
  // closed loop alone, while the open-loop numbers are measured
  // client-side from the arrival schedule.
  std::vector<OpenLoopResult> open_loop(offered_qps.size());
  const size_t pool = 32;
  for (size_t p = 0; p < offered_qps.size(); ++p) {
    const double qps = offered_qps[p];
    // Budget ~0.75s (0.25s quick) of offered traffic per rate; enough for
    // stable tails at the low rates without letting the past-saturation
    // point queue unboundedly.
    const size_t count = std::max<size_t>(
        200, static_cast<size_t>(qps * (args.quick ? 0.25 : 0.75)));
    open_loop[p] = RunOpenLoop(core->get(), request_lines, qps, count, pool,
                               SplitSeed(args.seed, 1000 + p));
    const std::string prefix = StrFormat("open_loop_%.0f", qps);
    const OpenLoopResult& r = open_loop[p];
    reporter.Record(prefix + "_goodput_per_sec",
                    r.wall_s > 0.0
                        ? static_cast<double>(r.succeeded) / r.wall_s
                        : 0.0);
    reporter.Record(prefix + "_p50_ms", r.p50_ms);
    reporter.Record(prefix + "_p95_ms", r.p95_ms);
    reporter.Record(prefix + "_p99_ms", r.p99_ms);
  }

  core->get()->Shutdown();

  std::printf("serve_load: %zu clients x %zu requests (%llu total, "
              "%llu failed)\n",
              clients, iterations,
              static_cast<unsigned long long>(total_requests),
              static_cast<unsigned long long>(total_failures));
  PrintRule(64);
  std::printf("  embed latency ms    p50 %.4f  p95 %.4f  p99 %.4f\n", p50,
              p95, p99);
  std::printf("  batches %llu, mean size %.2f, max observed %llu "
              "(histogram max %.0f)\n",
              static_cast<unsigned long long>(batcher.batches_run()),
              batcher.batches_run() > 0
                  ? static_cast<double>(batcher.rows_batched()) /
                        static_cast<double>(batcher.batches_run())
                  : 0.0,
              static_cast<unsigned long long>(batcher.max_batch_observed()),
              batch_size->max());
  std::printf("  cache hit rate %.3f (%llu hits / %llu misses)\n",
              cache.HitRate(),
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  std::printf("  batched-vs-direct bitwise mismatches: %zu / %zu\n",
              mismatches, sample);
  for (size_t p = 0; p < offered_qps.size(); ++p) {
    const OpenLoopResult& r = open_loop[p];
    std::printf("  open loop @%7.0f qps: goodput %8.0f/s  "
                "p50 %.3f  p95 %.3f  p99 %.3f ms  (%llu/%llu ok)\n",
                offered_qps[p],
                r.wall_s > 0.0
                    ? static_cast<double>(r.succeeded) / r.wall_s
                    : 0.0,
                r.p50_ms, r.p95_ms, r.p99_ms,
                static_cast<unsigned long long>(r.succeeded),
                static_cast<unsigned long long>(r.issued));
  }
  std::printf("  windowed p50 %.4f p99 %.4f (agreement %.3f / %.3f), "
              "metricsz rtt %.4f ms\n",
              windowed.p50, windowed.p99, agreement(windowed.p50, p50),
              agreement(windowed.p99, p99),
              scrape_total_ms / static_cast<double>(scrapes));
  if (profiler_overhead > 0.0) {
    std::printf("  profiler overhead ratio %.4f (99 Hz, single client)\n",
                profiler_overhead);
  }

  int rc = reporter.Finish();
  if (rc == 0) rc = FinishProfile(args);
  if (total_failures > 0) {
    std::fprintf(stderr, "FAIL: %llu requests failed\n",
                 static_cast<unsigned long long>(total_failures));
    rc = 1;
  }
  for (size_t p = 0; p < offered_qps.size(); ++p) {
    if (open_loop[p].succeeded != open_loop[p].issued) {
      std::fprintf(stderr,
                   "FAIL: open loop @%.0f qps: %llu of %llu requests "
                   "failed\n",
                   offered_qps[p],
                   static_cast<unsigned long long>(open_loop[p].issued -
                                                   open_loop[p].succeeded),
                   static_cast<unsigned long long>(open_loop[p].issued));
      rc = 1;
    }
  }
  if (batcher.max_batch_observed() < 2) {
    std::fprintf(stderr,
                 "FAIL: batching never engaged (max batch %llu)\n",
                 static_cast<unsigned long long>(
                     batcher.max_batch_observed()));
    rc = 1;
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: batched embeddings differ from direct\n");
    rc = 1;
  }
  if (scrape_failures > 0) {
    std::fprintf(stderr, "FAIL: %zu metricsz scrapes failed\n",
                 scrape_failures);
    rc = 1;
  }
  if (agreement(windowed.p99, p99) < 0.9) {
    std::fprintf(stderr,
                 "FAIL: windowed p99 %.4f disagrees with lifetime %.4f\n",
                 windowed.p99, p99);
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace rll::bench

int main(int argc, char** argv) { return rll::bench::Run(argc, argv); }
