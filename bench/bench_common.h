// Shared setup for the table-reproduction harnesses: paper-scale simulated
// datasets ("oral-sim" 880×16, "class-sim" 472×14, five crowd votes each),
// default method options, and table-printing helpers.

#ifndef RLL_BENCH_BENCH_COMMON_H_
#define RLL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"

namespace rll::bench {

struct BenchDataset {
  std::string name;
  data::Dataset dataset;
};

/// Fixed seed for regenerable tables; vary with --seed to probe stability.
constexpr uint64_t kDefaultSeed = 42;

/// Both simulated paper datasets, annotated by a 25-worker pool with
/// `votes_per_example` votes each (the paper uses 5).
inline std::vector<BenchDataset> MakePaperDatasets(
    uint64_t seed, size_t votes_per_example = 5) {
  std::vector<BenchDataset> out;
  {
    Rng rng(seed);
    data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
    crowd::WorkerPool pool({.num_workers = 25}, &rng);
    pool.Annotate(&d, votes_per_example, &rng);
    out.push_back({"oral", std::move(d)});
  }
  {
    Rng rng(seed + 1);
    data::Dataset d = GenerateSynthetic(data::ClassSimConfig(), &rng);
    crowd::WorkerPool pool({.num_workers = 25}, &rng);
    pool.Annotate(&d, votes_per_example, &rng);
    out.push_back({"class", std::move(d)});
  }
  return out;
}

/// Parses --seed N and --quick from argv. Quick mode shrinks training
/// budgets so a full table regenerates in seconds (for smoke runs).
struct BenchArgs {
  uint64_t seed = kDefaultSeed;
  bool quick = false;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr,
                                                      10));
      ++i;
    }
  }
  // Keep stdout clean for the tables.
  SetLogLevel(LogLevel::kWarning);
  return args;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace rll::bench

#endif  // RLL_BENCH_BENCH_COMMON_H_
