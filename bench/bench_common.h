// Shared setup for the table-reproduction harnesses: paper-scale simulated
// datasets ("oral-sim" 880×16, "class-sim" 472×14, five crowd votes each),
// default method options, and table-printing helpers.

#ifndef RLL_BENCH_BENCH_COMMON_H_
#define RLL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_registry.h"
#include "common/threading.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"
#include "obs/json_util.h"
#include "obs/profiler.h"

namespace rll::bench {

struct BenchDataset {
  std::string name;
  data::Dataset dataset;
};

/// Fixed seed for regenerable tables; vary with --seed to probe stability.
constexpr uint64_t kDefaultSeed = 42;

/// Both simulated paper datasets, annotated by a 25-worker pool with
/// `votes_per_example` votes each (the paper uses 5).
inline std::vector<BenchDataset> MakePaperDatasets(
    uint64_t seed, size_t votes_per_example = 5) {
  std::vector<BenchDataset> out;
  {
    Rng rng(seed);
    data::Dataset d = GenerateSynthetic(data::OralSimConfig(), &rng);
    crowd::WorkerPool pool({.num_workers = 25}, &rng);
    pool.Annotate(&d, votes_per_example, &rng);
    out.push_back({"oral", std::move(d)});
  }
  {
    Rng rng(seed + 1);
    data::Dataset d = GenerateSynthetic(data::ClassSimConfig(), &rng);
    crowd::WorkerPool pool({.num_workers = 25}, &rng);
    pool.Annotate(&d, votes_per_example, &rng);
    out.push_back({"class", std::move(d)});
  }
  return out;
}

/// Parses --seed N, --quick, --threads N, --json PATH, --profile-out PATH
/// and --profile-hz N from argv. Quick mode shrinks training budgets so a
/// full table regenerates in seconds (for smoke runs); --threads sizes the
/// global thread pool (results are identical at any value — see
/// common/threading.h); --json writes a machine-readable record of the run
/// (see BenchReporter) alongside the human-readable table on stdout;
/// --profile-out arms the sampling CPU profiler for the whole run and
/// writes collapsed stacks (or the JSON report, for a .json path) at
/// Finish().
struct BenchArgs {
  uint64_t seed = kDefaultSeed;
  bool quick = false;
  /// 0 keeps the RLL_THREADS / serial default.
  size_t threads = 0;
  std::string json_path;
  std::string profile_path;
  int profile_hz = 99;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr,
                                                      10));
      ++i;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr,
                                                       10));
      ++i;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[i + 1];
      ++i;
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      args.profile_path = argv[i + 1];
      ++i;
    } else if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      args.profile_hz = static_cast<int>(std::strtol(argv[i + 1], nullptr,
                                                     10));
      ++i;
    }
  }
  if (args.threads > 0) SetGlobalThreads(args.threads);
  // Keep stdout clean for the tables.
  SetLogLevel(LogLevel::kWarning);
  SetCurrentThreadName("rll-bench-main");
  if (!args.profile_path.empty()) {
    obs::ProfilerOptions options;
    if (args.profile_hz > 0) options.hz = args.profile_hz;
    const Status started = obs::StartCpuProfiler(options);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      args.profile_path.clear();  // Nothing to write at Finish().
    }
  }
  return args;
}

/// Stops the profiler (if ParseArgs armed it) and writes the profile to
/// `args.profile_path` — collapsed stacks, or the aggregated JSON report
/// when the path ends in ".json". Returns 0, or 1 on a write failure.
inline int FinishProfile(const BenchArgs& args) {
  if (args.profile_path.empty()) return 0;
  obs::StopCpuProfiler();
  std::FILE* f = std::fopen(args.profile_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n",
                 args.profile_path.c_str());
    return 1;
  }
  const std::string& path = args.profile_path;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string profile =
      json ? obs::ProfileToJson() + "\n" : obs::ProfileToFolded();
  std::fwrite(profile.data(), 1, profile.size(), f);
  const bool write_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!write_ok) {
    std::fprintf(stderr, "write failed: %s\n", args.profile_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "profile written to %s\n", args.profile_path.c_str());
  return 0;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Collects one timing record per unit of bench work (a method × dataset
/// cell, a sweep point) and, when --json was given, writes the run as
///
///   {"bench": "table1_methods", "seed": 42, "quick": false, "threads": 1,
///    "total_wall_ms": ..., "records": [
///      {"name": "RLL+Bayesian/oral", "wall_ms": ..., "throughput": ...},
///      ...]}
///
/// so CI can diff regenerated tables without scraping stdout. Throughput
/// is units/sec for whatever unit the harness passed to Time() (examples,
/// groups), or null when no unit count was supplied.
class BenchReporter {
 public:
  BenchReporter(std::string bench_name, const BenchArgs& args)
      : bench_name_(std::move(bench_name)), args_(args) {}

  /// Times one unit of work: destroy the returned timer (leave scope) to
  /// record it. `units` is the work size for the throughput column.
  ScopedTimer Time(std::string name, double units = 0.0) {
    return ScopedTimer([this, name = std::move(name), units](double ms) {
      Record(name, ms, units > 0.0 && ms > 0.0 ? units / (ms / 1e3) : 0.0);
    });
  }

  void Record(const std::string& name, double wall_ms,
              double throughput = 0.0) {
    records_.push_back({name, wall_ms, throughput});
  }

  double TotalWallSeconds() const { return total_.ElapsedSeconds(); }

  /// Writes the JSON record if --json was given. Returns the process exit
  /// code: 0, or 1 when the file cannot be written.
  int Finish() {
    if (args_.json_path.empty()) return 0;
    std::FILE* f = std::fopen(args_.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for write\n",
                   args_.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"seed\":%llu,\"quick\":%s,"
                 "\"threads\":%zu,",
                 obs::JsonEscape(bench_name_).c_str(),
                 static_cast<unsigned long long>(args_.seed),
                 args_.quick ? "true" : "false", GlobalThreadCount());
    std::fprintf(f, "\"total_wall_ms\":%s,\"records\":[",
                 obs::JsonNumber(total_.ElapsedMillis()).c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const RecordRow& r = records_[i];
      std::fprintf(f, "%s\n{\"name\":\"%s\",\"wall_ms\":%s,\"throughput\":%s}",
                   i == 0 ? "" : ",", obs::JsonEscape(r.name).c_str(),
                   obs::JsonNumber(r.wall_ms).c_str(),
                   r.throughput > 0.0 ? obs::JsonNumber(r.throughput).c_str()
                                      : "null");
    }
    std::fprintf(f, "\n]}\n");
    const bool write_ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!write_ok) {
      std::fprintf(stderr, "write failed: %s\n", args_.json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench json written to %s\n",
                 args_.json_path.c_str());
    return 0;
  }

 private:
  struct RecordRow {
    std::string name;
    double wall_ms = 0.0;
    double throughput = 0.0;
  };

  std::string bench_name_;
  BenchArgs args_;
  Stopwatch total_;
  std::vector<RecordRow> records_;
};

}  // namespace rll::bench

#endif  // RLL_BENCH_BENCH_COMMON_H_
