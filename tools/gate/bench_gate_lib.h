// bench_gate: compares a fresh bench --json run against a checked-in
// BENCH_*.json baseline with per-metric tolerance bands, so perf
// regressions fail CI instead of landing silently.
//
// Understands three series shapes, because the repo emits all three:
//   * BenchReporter documents:    {"records":[{"name":..,"wall_ms":..}]}
//   * google-benchmark documents: {"benchmarks":[{"name":..,"real_time":..,
//                                  "time_unit":"ns"}]} (scaled to ms)
//   * checked-in reference files: any dotted key path to either an array
//     of {"name", "real_time_ms"|"wall_ms"} objects or an object of
//     bare numbers (e.g. --key micro_ops.threads_1 in BENCH_threads.json)
//
// Comparison is directional by metric name: throughput-like metrics may
// not drop below baseline/tolerance, latency-like metrics may not rise
// above baseline*tolerance, and unrecognized metrics are held to the
// two-sided band. An absolute-slack escape hatch keeps sub-noise micro
// timings (p50s of a few microseconds) from tripping ratio checks.

#ifndef RLL_TOOLS_GATE_BENCH_GATE_LIB_H_
#define RLL_TOOLS_GATE_BENCH_GATE_LIB_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/json.h"

namespace rll::gate {

struct Metric {
  std::string name;
  double value = 0.0;
};

enum class Direction {
  kLowerIsBetter,   // Latencies, wall times: current <= baseline * tol.
  kHigherIsBetter,  // Throughputs, hit rates: current >= baseline / tol.
  kBand,            // Unknown: both bounds apply.
};

/// Classifies a metric name by keyword ("latency", "_ms", "throughput",
/// "hit", ...). Unrecognized names get the conservative two-sided band.
Direction DirectionFor(const std::string& name);

const char* DirectionName(Direction direction);

struct GateOptions {
  /// Allowed degradation ratio, > 1. The default is deliberately loose:
  /// CI containers are noisy, and the gate is for 2x regressions, not 5%.
  double tolerance = 2.0;
  /// Absolute escape hatch: |current - baseline| <= abs_slack always
  /// passes, so microsecond-scale timings are not held to ratios that
  /// sit below timer noise.
  double abs_slack = 0.05;
  /// Per-metric tolerance overrides (exact name match), e.g. a known-
  /// noisy benchmark held to 10x while the rest stay at 2x.
  std::map<std::string, double> per_metric_tolerance;
  /// Baseline metrics whose name contains any of these are not compared.
  std::vector<std::string> skip_substrings;
  /// When true, a baseline metric absent from the current run fails the
  /// gate (default: reported but not fatal, so filtered runs can gate a
  /// subset).
  bool require_all = false;
};

struct MetricVerdict {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  // current / baseline; 0 when baseline is 0.
  Direction direction = Direction::kBand;
  double tolerance = 0.0;
  bool pass = true;
  bool skipped = false;
  bool missing = false;  // In the baseline but not the current run.
};

struct GateReport {
  std::vector<MetricVerdict> verdicts;  // Baseline order.
  size_t compared = 0;
  size_t failures = 0;
  size_t skipped = 0;
  size_t missing = 0;
  bool pass() const { return failures == 0; }
};

/// Pulls a (name, value) series out of a parsed bench JSON document.
/// `key` is a dotted path to the series; "" autodetects a top-level
/// "records" (BenchReporter) or "benchmarks" (google-benchmark) array.
Result<std::vector<Metric>> ExtractMetrics(const serve::JsonValue& root,
                                           const std::string& key);

/// Reads and parses `path`, then extracts as above.
Result<std::vector<Metric>> LoadMetricsFile(const std::string& path,
                                            const std::string& key);

/// Compares every baseline metric against the current run.
GateReport Compare(const std::vector<Metric>& baseline,
                   const std::vector<Metric>& current,
                   const GateOptions& options);

/// Human-readable verdict table plus a one-line PASS/FAIL summary.
std::string FormatReport(const GateReport& report);

}  // namespace rll::gate

#endif  // RLL_TOOLS_GATE_BENCH_GATE_LIB_H_
