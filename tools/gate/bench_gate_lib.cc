#include "gate/bench_gate_lib.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"

namespace rll::gate {

namespace {

std::string Lowered(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool ContainsAny(const std::string& haystack,
                 const std::vector<const char*>& needles) {
  for (const char* needle : needles) {
    if (haystack.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::vector<std::string> SplitPath(const std::string& key) {
  std::vector<std::string> parts;
  std::string part;
  for (char c : key) {
    if (c == '.') {
      parts.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  parts.push_back(part);
  return parts;
}

Result<double> TimeUnitScaleToMs(const std::string& unit) {
  if (unit == "ns") return 1e-6;
  if (unit == "us") return 1e-3;
  if (unit == "ms") return 1.0;
  if (unit == "s") return 1e3;
  return Status::InvalidArgument("unknown time_unit: " + unit);
}

/// One series entry: {"name": ..., <value member>}. Accepts the
/// BenchReporter member (wall_ms), the checked-in reference member
/// (real_time_ms), and raw google-benchmark (real_time + time_unit).
Result<Metric> MetricFromObject(const serve::JsonValue& entry) {
  if (!entry.is_object()) {
    return Status::InvalidArgument("series entry is not an object");
  }
  const serve::JsonValue* name = entry.Find("name");
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument("series entry has no string \"name\"");
  }
  Metric metric;
  metric.name = name->string;
  for (const char* member : {"wall_ms", "real_time_ms"}) {
    if (const serve::JsonValue* v = entry.Find(member);
        v != nullptr && v->is_number()) {
      metric.value = v->number;
      return metric;
    }
  }
  if (const serve::JsonValue* v = entry.Find("real_time");
      v != nullptr && v->is_number()) {
    double scale = 1.0;
    if (const serve::JsonValue* unit = entry.Find("time_unit");
        unit != nullptr && unit->is_string()) {
      RLL_ASSIGN_OR_RETURN(scale, TimeUnitScaleToMs(unit->string));
    }
    metric.value = v->number * scale;
    return metric;
  }
  return Status::InvalidArgument("entry \"" + metric.name +
                                 "\" has no wall_ms/real_time_ms/real_time");
}

Result<std::vector<Metric>> MetricsFromNode(const serve::JsonValue& node) {
  std::vector<Metric> metrics;
  if (node.is_array()) {
    metrics.reserve(node.array.size());
    for (const serve::JsonValue& entry : node.array) {
      RLL_ASSIGN_OR_RETURN(Metric metric, MetricFromObject(entry));
      // Benchmarks built with RLL_COUNT_ALLOCS attach a per-iteration
      // allocation count; gate it as its own lower-is-better metric so an
      // allocation regression fails CI like a latency regression would.
      if (const serve::JsonValue* allocs = entry.Find("allocs_per_op");
          allocs != nullptr && allocs->is_number()) {
        metrics.push_back(
            {metric.name + ".allocs_per_op", allocs->number});
      }
      // BM_ProfilerOverhead's profiled/unprofiled time ratio: pinned the
      // same way, so a profiler that gets more expensive fails CI
      // ("overhead" is already a lower-is-better keyword).
      if (const serve::JsonValue* overhead = entry.Find("overhead_ratio");
          overhead != nullptr && overhead->is_number()) {
        metrics.push_back(
            {metric.name + ".overhead_ratio", overhead->number});
      }
      metrics.push_back(std::move(metric));
    }
    return metrics;
  }
  if (node.is_object()) {
    // An object of bare numbers (e.g. table1_methods.threads_1); members
    // that are not numbers (comments, nested detail) are not metrics.
    for (const auto& [key, value] : node.object) {
      if (value.is_number()) metrics.push_back({key, value.number});
    }
    return metrics;
  }
  return Status::InvalidArgument("series node is neither array nor object");
}

}  // namespace

Direction DirectionFor(const std::string& name) {
  const std::string lowered = Lowered(name);
  // Higher-is-better first: "cache_hit_rate" must not fall through to a
  // latency rule via some other substring.
  if (ContainsAny(lowered, {"throughput", "per_sec", "per_second", "qps",
                            "hit_rate", "hitrate", "speedup", "accuracy",
                            "agreement"})) {
    return Direction::kHigherIsBetter;
  }
  if (ContainsAny(lowered, {"latency", "_ms", "wall", "time", "rtt",
                            "overhead", "rejected", "mismatch", "failure",
                            "error", "alloc"})) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kBand;
}

const char* DirectionName(Direction direction) {
  switch (direction) {
    case Direction::kLowerIsBetter:
      return "lower";
    case Direction::kHigherIsBetter:
      return "higher";
    case Direction::kBand:
      return "band";
  }
  return "band";
}

Result<std::vector<Metric>> ExtractMetrics(const serve::JsonValue& root,
                                           const std::string& key) {
  if (!key.empty()) {
    const serve::JsonValue* node = &root;
    for (const std::string& part : SplitPath(key)) {
      node = node->Find(part);
      if (node == nullptr) {
        return Status::InvalidArgument("key path not found: " + key +
                                       " (missing \"" + part + "\")");
      }
    }
    return MetricsFromNode(*node);
  }
  if (const serve::JsonValue* records = root.Find("records");
      records != nullptr) {
    return MetricsFromNode(*records);
  }
  if (const serve::JsonValue* benchmarks = root.Find("benchmarks");
      benchmarks != nullptr) {
    return MetricsFromNode(*benchmarks);
  }
  return Status::InvalidArgument(
      "document has neither \"records\" nor \"benchmarks\"; pass an "
      "explicit key path");
}

Result<std::vector<Metric>> LoadMetricsFile(const std::string& path,
                                            const std::string& key) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  RLL_ASSIGN_OR_RETURN(serve::JsonValue root, serve::ParseJson(buffer.str()));
  auto metrics = ExtractMetrics(root, key);
  if (!metrics.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   metrics.status().message());
  }
  return metrics;
}

GateReport Compare(const std::vector<Metric>& baseline,
                   const std::vector<Metric>& current,
                   const GateOptions& options) {
  std::unordered_map<std::string, double> current_by_name;
  current_by_name.reserve(current.size());
  for (const Metric& metric : current) {
    current_by_name[metric.name] = metric.value;
  }

  GateReport report;
  report.verdicts.reserve(baseline.size());
  for (const Metric& metric : baseline) {
    MetricVerdict verdict;
    verdict.name = metric.name;
    verdict.baseline = metric.value;
    verdict.direction = DirectionFor(metric.name);

    bool skip = false;
    for (const std::string& needle : options.skip_substrings) {
      if (!needle.empty() &&
          metric.name.find(needle) != std::string::npos) {
        skip = true;
        break;
      }
    }
    if (skip) {
      verdict.skipped = true;
      ++report.skipped;
      report.verdicts.push_back(std::move(verdict));
      continue;
    }

    const auto it = current_by_name.find(metric.name);
    if (it == current_by_name.end()) {
      verdict.missing = true;
      verdict.pass = !options.require_all;
      ++report.missing;
      if (!verdict.pass) ++report.failures;
      report.verdicts.push_back(std::move(verdict));
      continue;
    }
    verdict.current = it->second;

    double tolerance = options.tolerance;
    if (const auto override_it =
            options.per_metric_tolerance.find(metric.name);
        override_it != options.per_metric_tolerance.end()) {
      tolerance = override_it->second;
    }
    verdict.tolerance = tolerance;
    verdict.ratio = verdict.baseline != 0.0
                        ? verdict.current / verdict.baseline
                        : 0.0;

    ++report.compared;
    if (std::abs(verdict.current - verdict.baseline) <= options.abs_slack) {
      // Inside the absolute noise floor: never a regression, whatever the
      // ratio says.
      verdict.pass = true;
    } else if (verdict.baseline == 0.0) {
      // Ratio undefined. A zero baseline that grew past the slack is a
      // regression for lower-is-better metrics; growth is fine when
      // higher is better.
      verdict.pass = verdict.direction == Direction::kHigherIsBetter;
    } else {
      const bool not_too_high =
          verdict.current <= verdict.baseline * tolerance;
      const bool not_too_low =
          verdict.current >= verdict.baseline / tolerance;
      switch (verdict.direction) {
        case Direction::kLowerIsBetter:
          verdict.pass = not_too_high;
          break;
        case Direction::kHigherIsBetter:
          verdict.pass = not_too_low;
          break;
        case Direction::kBand:
          verdict.pass = not_too_high && not_too_low;
          break;
      }
    }
    if (!verdict.pass) ++report.failures;
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

std::string FormatReport(const GateReport& report) {
  std::string out = StrFormat("  %-40s %12s %12s %8s %-7s %s\n", "metric",
                              "baseline", "current", "ratio", "dir",
                              "verdict");
  for (const MetricVerdict& verdict : report.verdicts) {
    const char* status = "ok";
    if (verdict.skipped) {
      status = "skipped";
    } else if (verdict.missing) {
      status = verdict.pass ? "missing (ignored)" : "MISSING";
    } else if (!verdict.pass) {
      status = "FAIL";
    }
    out += StrFormat("  %-40s %12.4g %12.4g %8.3f %-7s %s\n",
                     verdict.name.c_str(), verdict.baseline,
                     verdict.current, verdict.ratio,
                     DirectionName(verdict.direction), status);
  }
  out += StrFormat(
      "%s: %zu compared, %zu failed, %zu skipped, %zu missing\n",
      report.pass() ? "PASS" : "FAIL", report.compared, report.failures,
      report.skipped, report.missing);
  return out;
}

}  // namespace rll::gate
