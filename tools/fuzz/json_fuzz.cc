// libFuzzer harness for the serving protocol's JSON parser. The parser is
// the one component that consumes bytes straight off the network, so it
// gets fuzzed: any input must either parse into a JsonValue or return a
// non-OK Status — never crash, hang, or trip a sanitizer.
//
// Built by the RLL_FUZZ CMake option. Under clang this links the real
// libFuzzer (-fsanitize=fuzzer,address); under other compilers
// RLL_FUZZ_STANDALONE provides a main() that replays files given on the
// command line (corpus regression mode), so the harness itself compiles
// everywhere.
//
//   ./json_fuzz tools/fuzz/corpus -max_total_time=30   # fuzzing (clang)
//   ./json_fuzz tools/fuzz/corpus/*.json               # replay (any)

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "serve/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const rll::Result<rll::serve::JsonValue> parsed =
      rll::serve::ParseJson(text);
  if (parsed.ok()) {
    // Touch the parse tree so dead-result elimination cannot hide bugs,
    // and exercise Find on objects (the hot accessor in the server).
    const rll::serve::JsonValue& v = *parsed;
    if (v.is_object()) (void)v.Find("type");
    if (v.is_array() && !v.array.empty()) (void)v.array.front().is_null();
  }
  return 0;
}

#if defined(RLL_FUZZ_STANDALONE)
// Corpus replay driver for toolchains without libFuzzer: runs the target
// once over each file argument and exits 0 unless the target crashes.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "json_fuzz: cannot read %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::printf("json_fuzz: replayed %d input(s), no crashes\n", replayed);
  return 0;
}
#endif  // RLL_FUZZ_STANDALONE
