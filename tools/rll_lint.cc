// Command-line driver for the in-repo style linter
// (tools/analyze/linter.h). Style rules live here; the layering /
// determinism / lock-discipline passes are rll_analyze.
//
//   rll_lint [--root <dir>] [file...]
//
// With no files, walks src/, tests/, bench/, tools/, and examples/ under
// the root (default: cwd) and lints every .h/.cc. With files, lints just
// those (paths relative to the root). Exit code: 0 clean, 1 violations,
// 2 usage error. Registered as a CTest test so `ctest` fails on any new
// violation.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/linter.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rll_lint: --root requires a directory\n");
        return 2;
      }
      root = argv[++i];
      // Drop trailing slashes ("/repo/" -> "/repo") so reported paths
      // never contain "//".
      while (root.size() > 1 &&
             (root.back() == '/' || root.back() == '\\')) {
        root.pop_back();
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: rll_lint [--root <dir>] [file...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rll_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  // A mistyped root would otherwise lint zero files and "pass".
  if (!std::filesystem::is_directory(root)) {
    std::fprintf(stderr, "rll_lint: root '%s' is not a directory\n",
                 root.c_str());
    return 2;
  }

  std::vector<rll::analyze::Violation> violations;
  if (files.empty()) {
    violations = rll::analyze::LintTree(root);
  } else {
    for (const std::string& f : files) {
      std::vector<rll::analyze::Violation> v = rll::analyze::LintFile(root, f);
      violations.insert(violations.end(), v.begin(), v.end());
    }
  }

  for (const rll::analyze::Violation& v : violations) {
    std::printf("%s\n", rll::analyze::FormatViolation(v).c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "rll_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
