// bench_gate: CI perf-regression gate. Diffs a fresh bench --json run
// against a checked-in BENCH_*.json baseline and exits non-zero when a
// metric drifts outside its tolerance band.
//
//   bench_gate --baseline BENCH_serve.json --current /tmp/serve.json
//   bench_gate --baseline BENCH_threads.json --current bench.json
//              --baseline-key micro_ops.threads_1 --tolerance 5
//
// Exit codes: 0 = all comparisons pass, 1 = at least one regression,
// 2 = usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gate/bench_gate_lib.h"

namespace rll::gate {
namespace {

constexpr char kUsage[] =
    "usage: bench_gate --baseline FILE --current FILE [options]\n"
    "\n"
    "options:\n"
    "  --baseline FILE        checked-in baseline JSON (required)\n"
    "  --current FILE         fresh bench run JSON (required)\n"
    "  --baseline-key PATH    dotted key path to the baseline series\n"
    "                         (default: autodetect records/benchmarks)\n"
    "  --current-key PATH     dotted key path to the current series\n"
    "  --tolerance R          allowed degradation ratio (default 2.0)\n"
    "  --abs-slack MS         absolute |current-baseline| that always\n"
    "                         passes (default 0.05)\n"
    "  --metric-tolerance L   per-metric overrides, name=R[,name=R...]\n"
    "  --skip LIST            comma-separated name substrings to skip\n"
    "  --require-all          fail when a baseline metric is missing\n"
    "                         from the current run\n";

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::string part;
  for (char c : text) {
    if (c == ',') {
      if (!part.empty()) parts.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  if (!part.empty()) parts.push_back(part);
  return parts;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "bench_gate: %s\n%s", message.c_str(), kUsage);
  return 2;
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string baseline_key;
  std::string current_key;
  GateOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (flag == "--require-all") {
      options.require_all = true;
      continue;
    }
    if (i + 1 >= argc) return UsageError(flag + " needs a value");
    const std::string value = argv[++i];
    if (flag == "--baseline") {
      baseline_path = value;
    } else if (flag == "--current") {
      current_path = value;
    } else if (flag == "--baseline-key") {
      baseline_key = value;
    } else if (flag == "--current-key") {
      current_key = value;
    } else if (flag == "--tolerance") {
      options.tolerance = std::atof(value.c_str());
      if (options.tolerance <= 1.0) {
        return UsageError("--tolerance must be > 1");
      }
    } else if (flag == "--abs-slack") {
      options.abs_slack = std::atof(value.c_str());
      if (options.abs_slack < 0.0) {
        return UsageError("--abs-slack must be >= 0");
      }
    } else if (flag == "--metric-tolerance") {
      for (const std::string& pair : SplitCommas(value)) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
          return UsageError("--metric-tolerance entries are name=R: " + pair);
        }
        const double ratio = std::atof(pair.c_str() + eq + 1);
        if (ratio <= 1.0) {
          return UsageError("per-metric tolerance must be > 1: " + pair);
        }
        options.per_metric_tolerance[pair.substr(0, eq)] = ratio;
      }
    } else if (flag == "--skip") {
      for (std::string& part : SplitCommas(value)) {
        options.skip_substrings.push_back(std::move(part));
      }
    } else {
      return UsageError("unknown flag: " + flag);
    }
  }
  if (baseline_path.empty()) return UsageError("--baseline is required");
  if (current_path.empty()) return UsageError("--current is required");

  auto baseline = LoadMetricsFile(baseline_path, baseline_key);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_gate: %s\n",
                 baseline.status().message().c_str());
    return 2;
  }
  auto current = LoadMetricsFile(current_path, current_key);
  if (!current.ok()) {
    std::fprintf(stderr, "bench_gate: %s\n",
                 current.status().message().c_str());
    return 2;
  }
  if (baseline->empty()) {
    std::fprintf(stderr, "bench_gate: baseline %s has no metrics\n",
                 baseline_path.c_str());
    return 2;
  }

  const GateReport report = Compare(*baseline, *current, options);
  std::fputs(FormatReport(report).c_str(), stdout);
  return report.pass() ? 0 : 1;
}

}  // namespace
}  // namespace rll::gate

int main(int argc, char** argv) { return rll::gate::Run(argc, argv); }
