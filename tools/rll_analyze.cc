// Command-line driver for the analysis passes (tools/analyze/passes.h).
//
//   rll_analyze [--root <dir>] [--allowlist <file>] [file...]
//
// With no files, walks src/ under the root (default: cwd) and runs the
// layering, determinism, and lock-discipline passes over every .h/.cc.
// With files, analyzes just those (paths relative to the root). The
// layering allowlist defaults to <root>/tools/analyze/layering_allowlist.txt
// and is optional — a missing file means an empty allowlist. Exit code:
// 0 clean, 1 violations, 2 usage error. Registered as a CTest test so
// `ctest` fails on any new violation.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/passes.h"

namespace {

/// Drops trailing slashes ("/repo/" -> "/repo") so reported paths never
/// contain "//". Leaves bare "/" and "." alone.
std::string NormalizeRoot(std::string root) {
  while (root.size() > 1 && (root.back() == '/' || root.back() == '\\')) {
    root.pop_back();
  }
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rll_analyze: --root requires a directory\n");
        return 2;
      }
      root = NormalizeRoot(argv[++i]);
    } else if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rll_analyze: --allowlist requires a file\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rll_analyze [--root <dir>] [--allowlist <file>] "
          "[file...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rll_analyze: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  // A mistyped root would otherwise analyze zero files and "pass".
  if (!std::filesystem::is_directory(root)) {
    std::fprintf(stderr, "rll_analyze: root '%s' is not a directory\n",
                 root.c_str());
    return 2;
  }

  rll::analyze::AnalyzeOptions options;
  const bool explicit_allowlist = !allowlist_path.empty();
  if (!explicit_allowlist) {
    allowlist_path = root + "/tools/analyze/layering_allowlist.txt";
  }
  {
    std::ifstream in(allowlist_path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      options.layering_allowlist =
          rll::analyze::ParseLayeringAllowlist(buffer.str());
    } else if (explicit_allowlist) {
      std::fprintf(stderr, "rll_analyze: cannot read allowlist '%s'\n",
                   allowlist_path.c_str());
      return 2;
    }
  }

  std::vector<rll::analyze::Violation> violations;
  if (files.empty()) {
    violations = rll::analyze::AnalyzeTree(root, options);
  } else {
    for (const std::string& f : files) {
      std::vector<rll::analyze::Violation> v =
          rll::analyze::AnalyzeFile(root, f, options);
      violations.insert(violations.end(), v.begin(), v.end());
    }
  }

  for (const rll::analyze::Violation& v : violations) {
    std::printf("%s\n", rll::analyze::FormatViolation(v).c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "rll_analyze: %zu violation(s)\n",
                 violations.size());
    return 1;
  }
  return 0;
}
