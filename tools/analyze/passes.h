// rll_analyze: file-level analysis passes enforcing the repo's layering,
// determinism, and lock-discipline invariants. Complements the style rules
// in linter.h; both run as CTest gates on every build.
//
//   layering            src/ modules may only include same- or lower-rank
//                       modules in the DAG
//                         common -> tensor -> autograd -> nn
//                           -> {classify, crowd, data, text}
//                           -> {baselines, core} -> obs -> serve
//                       Cross-cutting exceptions (instrumentation) live in
//                       an explicit allowlist file, one edge per line.
//   wall-clock          no time() / std::chrono::system_clock in src/ —
//                       results must not depend on wall time
//                       (steady_clock for durations is fine)
//   random-device       no std::random_device — all randomness flows
//                       through the seedable common/rng.h
//   unseeded-mt19937    no default-constructed std::mt19937 — an engine
//                       without an explicit seed is a hidden global seed
//   unordered-iteration no iteration over std::unordered_map/set —
//                       hash-order is nondeterministic across platforms;
//                       membership tests and indexed lookups are fine
//   lock-discipline     no raw std::mutex / lock_guard / unique_lock /
//                       condition_variable outside src/common/mutex.h —
//                       concurrency goes through the annotated wrapper so
//                       clang -Wthread-safety sees every lock
//   hot-path-alloc      files tagged `// rll-analyze: hot-path` sit on the
//                       trainer batch loop or the serve request path and
//                       must stay allocation-free at steady state: naked
//                       new and malloc/calloc/realloc are banned anywhere
//                       in the file, and constructing a std::vector inside
//                       a loop body is banned (hoist it and reuse the
//                       capacity, or use a Workspace / ScratchVector)
//
// All passes apply to src/** only (tests, bench, tools, and examples may
// see everything and are free to use ad-hoc primitives). A violation can
// be waived on its line with `// rll-analyze: allow(<rule>)`; use
// sparingly and say why.

#ifndef RLL_TOOLS_ANALYZE_PASSES_H_
#define RLL_TOOLS_ANALYZE_PASSES_H_

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/linter.h"

namespace rll::analyze {

struct AnalyzeOptions {
  /// Permitted layering edges, each "src/<path>.cc -> <module>" (exact
  /// file, target module). Normally parsed from
  /// tools/analyze/layering_allowlist.txt.
  std::vector<std::string> layering_allowlist;
};

/// Rank of a src/ module in the include DAG; -1 for unknown names.
/// Includes may only point at equal or lower rank.
int LayerRank(std::string_view module);

/// Parses allowlist text: one "src/x/y.cc -> module" edge per line, '#'
/// comments and blank lines ignored. Whitespace around the arrow is
/// flexible; entries are returned in canonical "<file> -> <module>" form.
std::vector<std::string> ParseLayeringAllowlist(std::string_view content);

/// Runs every pass over file contents. `rel_path` is repo-relative (e.g.
/// "src/obs/trace.cc"); files outside src/ produce no violations.
std::vector<Violation> AnalyzeContent(std::string_view rel_path,
                                      std::string_view content,
                                      const AnalyzeOptions& options = {});

/// Reads and analyzes one file under `root`. I/O errors surface as a
/// synthetic "io-error" violation.
std::vector<Violation> AnalyzeFile(const std::filesystem::path& root,
                                   const std::string& rel_path,
                                   const AnalyzeOptions& options = {});

/// Walks src/ under `root` and analyzes every *.h / *.cc file.
std::vector<Violation> AnalyzeTree(const std::filesystem::path& root,
                                   const AnalyzeOptions& options = {});

}  // namespace rll::analyze

#endif  // RLL_TOOLS_ANALYZE_PASSES_H_
