#include "analyze/text_util.h"

#include <cctype>

namespace rll::analyze {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string BlankCommentsAndLiterals(std::string_view src) {
  std::string out(src);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  bool preprocessor_line = false;
  bool line_has_code = false;  // Any non-blank char seen on this line yet?
  std::string raw_terminator;  // ")delim\"" that ends the raw string.
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n' && state != State::kBlockComment &&
        state != State::kRawString) {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string/char on one line: malformed input, reset.
      if (state == State::kString || state == State::kChar)
        state = State::kCode;
      preprocessor_line = false;
      line_has_code = false;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (!line_has_code && !std::isspace(static_cast<unsigned char>(c))) {
          line_has_code = true;
          if (c == '#') preprocessor_line = true;
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — check for a raw-string prefix ending in R.
          const bool raw =
              i > 0 && src[i - 1] == 'R' &&
              (i == 1 || !IsIdentChar(src[i - 2]) || src[i - 2] == 'u' ||
               src[i - 2] == 'U' || src[i - 2] == 'L' || src[i - 2] == '8');
          if (raw) {
            size_t d = i + 1;
            while (d < src.size() && src[d] != '(' && src[d] != '\n') ++d;
            raw_terminator =
                ")" + std::string(src.substr(i + 1, d - (i + 1))) + "\"";
            state = State::kRawString;
          } else if (!preprocessor_line) {
            state = State::kString;
          }
          // Preprocessor "..." include targets stay intact.
        } else if (c == '\'' && i > 0 && !IsIdentChar(src[i - 1])) {
          // The ident-char guard skips digit separators (1'000) and
          // literal suffixes.
          state = State::kChar;
        }
        break;
      }
      case State::kLineComment:
        out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      }
      case State::kRawString:
        if (StartsWith(src.substr(i), raw_terminator)) {
          for (size_t k = 0; k < raw_terminator.size(); ++k) out[i + k] = ' ';
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view s) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string_view IncludeTarget(std::string_view line) {
  std::string_view t = Trim(line);
  if (!StartsWith(t, "#")) return {};
  t.remove_prefix(1);
  t = Trim(t);
  if (!StartsWith(t, "include")) return {};
  t.remove_prefix(7);
  t = Trim(t);
  if (t.size() < 2) return {};
  const char open = t.front();
  const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
  if (close == '\0') return {};
  const size_t end = t.find(close, 1);
  if (end == std::string_view::npos) return {};
  return t.substr(1, end - 1);
}

bool LineWaives(std::string_view original_line, std::string_view tool,
                std::string_view rule) {
  const std::string marker = std::string(tool) + ": allow(";
  const size_t at = original_line.find(marker);
  if (at == std::string_view::npos) return false;
  std::string_view rest = original_line.substr(at + marker.size());
  const size_t close = rest.find(')');
  if (close == std::string_view::npos) return false;
  const std::string_view waived = Trim(rest.substr(0, close));
  return waived == rule || waived == "all";
}

}  // namespace rll::analyze
