#include "analyze/passes.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "analyze/text_util.h"

namespace rll::analyze {

namespace {

struct ModuleRank {
  std::string_view module;
  int rank;
};

// The include DAG. Same-rank includes are allowed (crowd may use classify);
// higher-rank includes are violations unless allowlisted.
constexpr std::array<ModuleRank, 12> kRanks = {{
    {"common", 0},
    {"tensor", 1},
    {"autograd", 2},
    {"nn", 3},
    {"classify", 4},
    {"crowd", 4},
    {"data", 4},
    {"text", 4},
    {"baselines", 5},
    {"core", 5},
    {"obs", 6},
    {"serve", 7},
}};

/// "src/obs/trace.cc" -> "obs"; empty outside src/ or for flat paths.
std::string_view ModuleOfPath(std::string_view rel_path) {
  if (!StartsWith(rel_path, "src/")) return {};
  std::string_view rest = rel_path.substr(4);
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return rest.substr(0, slash);
}

/// "obs/trace.h" -> "obs" when the prefix is a known module; empty for
/// system headers and third-party includes.
std::string_view ModuleOfInclude(std::string_view target) {
  const size_t slash = target.find('/');
  if (slash == std::string_view::npos) return {};
  const std::string_view module = target.substr(0, slash);
  return LayerRank(module) >= 0 ? module : std::string_view{};
}

/// Raw concurrency primitives banned outside src/common/mutex.h.
constexpr std::array<std::string_view, 9> kRawLockTypes = {
    "mutex",          "recursive_mutex",
    "timed_mutex",    "shared_mutex",
    "lock_guard",     "unique_lock",
    "scoped_lock",    "condition_variable",
    "condition_variable_any",
};

bool IsRawLockType(std::string_view ident) {
  return std::find(kRawLockTypes.begin(), kRawLockTypes.end(), ident) !=
         kRawLockTypes.end();
}

class FileAnalyzer {
 public:
  FileAnalyzer(std::string_view rel_path, std::string_view content,
               const AnalyzeOptions& options)
      : rel_path_(rel_path),
        options_(options),
        code_(BlankCommentsAndLiterals(content)),
        raw_lines_(SplitLines(content)),
        code_lines_(SplitLines(code_)) {}

  std::vector<Violation> Run() {
    // All passes scope to src/: tests, bench, tools, and examples may
    // reach across layers and use ad-hoc primitives.
    if (!StartsWith(rel_path_, "src/")) return {};
    LayeringPass();
    DeterminismPass();
    HotPathPass();
    // The wrapper itself is the one place raw primitives may live.
    if (rel_path_ != "src/common/mutex.h") LockDisciplinePass();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return a.line < b.line;
              });
    return std::move(violations_);
  }

 private:
  void Report(size_t line, std::string rule, std::string message) {
    const std::string_view original =
        line >= 1 && line <= raw_lines_.size() ? raw_lines_[line - 1]
                                               : std::string_view{};
    if (LineWaives(original, "rll-analyze", rule)) return;
    violations_.push_back(
        {std::string(rel_path_), line, std::move(rule), std::move(message)});
  }

  // ------------------------------------------------------------ layering

  void LayeringPass() {
    const std::string_view module = ModuleOfPath(rel_path_);
    const int rank = LayerRank(module);
    if (rank < 0) return;  // Unranked src/ file (none today).
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string_view target = IncludeTarget(code_lines_[i]);
      if (target.empty()) continue;
      const std::string_view inc_module = ModuleOfInclude(target);
      if (inc_module.empty()) continue;
      const int inc_rank = LayerRank(inc_module);
      if (inc_rank <= rank) continue;
      const std::string edge =
          std::string(rel_path_) + " -> " + std::string(inc_module);
      if (std::find(options_.layering_allowlist.begin(),
                    options_.layering_allowlist.end(),
                    edge) != options_.layering_allowlist.end()) {
        continue;
      }
      Report(i + 1, "layering",
             "module '" + std::string(module) + "' (rank " +
                 std::to_string(rank) + ") must not include '" +
                 std::string(target) + "' from higher-rank module '" +
                 std::string(inc_module) + "' (rank " +
                 std::to_string(inc_rank) +
                 ") — add the edge to tools/analyze/layering_allowlist.txt "
                 "only for cross-cutting instrumentation");
    }
  }

  // --------------------------------------------------------- determinism

  void DeterminismPass() {
    CollectUnorderedNames();
    WalkTokens();
    CheckUnorderedIteration();
  }

  /// Token walk with one-token lookbehind, mirroring linter.cc's
  /// CheckTokens: distinguishes free calls from members (`obj.time()`) and
  /// other-namespace qualifications (`io::time()`).
  void WalkTokens() {
    std::string prev, prev2;
    size_t line = 1;
    const std::string_view code = code_;
    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '\n') {
        ++line;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        const std::string ident(code.substr(i, j - i));
        size_t k = j;
        while (k < code.size() &&
               std::isspace(static_cast<unsigned char>(code[k])) &&
               code[k] != '\n')
          ++k;
        const bool called = k < code.size() && code[k] == '(';
        HandleIdentifier(ident, called, prev, prev2, line, j);
        prev2 = prev;
        prev = ident;
        i = j - 1;
        continue;
      }
      std::string tok(1, c);
      if ((c == '-' || c == ':') && i + 1 < code.size() &&
          ((c == '-' && code[i + 1] == '>') ||
           (c == ':' && code[i + 1] == ':'))) {
        tok += code[i + 1];
        ++i;
      }
      prev2 = prev;
      prev = tok;
    }
  }

  static bool IsFreeOrStd(const std::string& prev, const std::string& prev2) {
    if (prev == "." || prev == "->") return false;
    if (prev == "::") return prev2 == "std" || prev2 == "chrono";
    return true;
  }

  void HandleIdentifier(const std::string& ident, bool called,
                        const std::string& prev, const std::string& prev2,
                        size_t line, size_t after) {
    if (ident == "system_clock" && IsFreeOrStd(prev, prev2)) {
      Report(line, "wall-clock",
             "std::chrono::system_clock reads wall time; results must not "
             "depend on when they ran — use steady_clock for durations");
      return;
    }
    if (ident == "time" && called && IsFreeOrStd(prev, prev2) &&
        prev != "::") {
      // `std::time(` / bare `time(` — wall clock. `x.time()` and
      // `foo::time()` (prev == "::" with non-std qualifier already
      // filtered) are someone else's accessor.
      Report(line, "wall-clock",
             "time() reads wall time; results must not depend on when "
             "they ran");
      return;
    }
    if (ident == "time" && called && prev == "::" && prev2 == "std") {
      Report(line, "wall-clock",
             "std::time() reads wall time; results must not depend on "
             "when they ran");
      return;
    }
    if (ident == "random_device" && IsFreeOrStd(prev, prev2)) {
      Report(line, "random-device",
             "std::random_device is an unseedable entropy source; draw "
             "from the seedable common/rng.h instead");
      return;
    }
    if ((ident == "mt19937" || ident == "mt19937_64") &&
        IsFreeOrStd(prev, prev2)) {
      if (IsDefaultConstructed(after)) {
        Report(line, "unseeded-mt19937",
               "default-constructed std::" + ident +
                   " uses the fixed default seed everywhere it appears; "
                   "seed it explicitly from common/rng.h");
      }
      return;
    }
    if (IsRawLockType(ident) && prev == "::" && prev2 == "std") {
      // Recorded during the same walk; reported by LockDisciplinePass so
      // the mutex.h exemption and include checks stay in one place.
      raw_lock_uses_.push_back({line, ident});
    }
  }

  /// True when the text after the engine type names a variable with no
  /// constructor arguments (`std::mt19937 gen;`) or is an empty direct
  /// construction (`std::mt19937()` / `{}`). Seeded forms —
  /// `std::mt19937 gen(seed)`, `std::mt19937{seed}` — pass. Type-only
  /// mentions (parameters, template arguments) pass too.
  bool IsDefaultConstructed(size_t after) const {
    const std::string_view code = code_;
    size_t i = after;
    auto skip_ws = [&] {
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])))
        ++i;
    };
    skip_ws();
    if (i >= code.size()) return false;
    if (code[i] == '(' || code[i] == '{') {
      // Direct construction: empty parens/braces = default seed.
      const char close = code[i] == '(' ? ')' : '}';
      ++i;
      skip_ws();
      return i < code.size() && code[i] == close;
    }
    if (!IsIdentChar(code[i])) return false;  // Type-only mention.
    while (i < code.size() && IsIdentChar(code[i])) ++i;  // Variable name.
    skip_ws();
    if (i >= code.size()) return false;
    if (code[i] == ';') return true;  // `std::mt19937 gen;`
    if (code[i] == '(' || code[i] == '{') {
      const char close = code[i] == '(' ? ')' : '}';
      ++i;
      skip_ws();
      return i < code.size() && code[i] == close;
    }
    return false;  // Parameter, reference binding, assignment target, ...
  }

  /// Finds names declared as std::unordered_map / std::unordered_set in
  /// this file (skipping the balanced `<...>` template argument list).
  void CollectUnorderedNames() {
    const std::string_view code = code_;
    for (size_t i = 0; i + 9 < code.size(); ++i) {
      if (!StartsWith(code.substr(i), "unordered_")) continue;
      if (i > 0 && IsIdentChar(code[i - 1])) continue;
      size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      const std::string_view kind = code.substr(i, j - i);
      if (kind != "unordered_map" && kind != "unordered_set" &&
          kind != "unordered_multimap" && kind != "unordered_multiset") {
        i = j;
        continue;
      }
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j])))
        ++j;
      if (j >= code.size() || code[j] != '<') {
        i = j;
        continue;
      }
      int depth = 0;
      while (j < code.size()) {
        if (code[j] == '<') ++depth;
        if (code[j] == '>' && --depth == 0) {
          ++j;
          break;
        }
        ++j;
      }
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j])))
        ++j;
      size_t name_start = j;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      if (j > name_start) {
        unordered_names_.push_back(
            std::string(code.substr(name_start, j - name_start)));
      }
      i = j;
    }
  }

  /// Flags range-for over, or .begin()/.cbegin()/.rbegin() on, any name
  /// declared unordered in this file. Hash-order iteration is the one way
  /// the containers' platform-dependent order can leak into results;
  /// find/count/operator[] stay silent.
  void CheckUnorderedIteration() {
    if (unordered_names_.empty()) return;
    for (size_t li = 0; li < code_lines_.size(); ++li) {
      const std::string_view line = code_lines_[li];
      for (const std::string& name : unordered_names_) {
        bool hit = false;
        // `for (... : name)` — range-for directly over the container.
        const size_t colon = line.find(':');
        if (line.find("for") != std::string_view::npos &&
            colon != std::string_view::npos) {
          std::string_view rest = Trim(line.substr(colon + 1));
          if (StartsWith(rest, name) &&
              (rest.size() == name.size() ||
               !IsIdentChar(rest[name.size()]))) {
            hit = true;
          }
        }
        for (std::string_view method : {".begin(", ".cbegin(", ".rbegin("}) {
          if (line.find(name + std::string(method)) !=
              std::string_view::npos) {
            hit = true;
          }
        }
        if (hit) {
          Report(li + 1, "unordered-iteration",
                 "iterating '" + name +
                     "' (declared std::unordered_*) — hash order is "
                     "nondeterministic across platforms; copy keys into a "
                     "sorted vector or use std::map");
        }
      }
    }
  }

  // ------------------------------------------------------------ hot path

  /// Allocation ban for files tagged `// rll-analyze: hot-path` (the tag
  /// lives in a comment, so it is searched in the raw text). Tagged files
  /// carry the trainer batch loop or the serve request path; the rule
  /// keeps "allocation-free at steady state" an enforced property instead
  /// of a comment. Flagged:
  ///   - `new` anywhere (except `operator new` declarations),
  ///   - malloc / calloc / realloc calls anywhere,
  ///   - `std::vector<...>` constructed inside a loop body (a fresh
  ///     vector per iteration is the classic hidden allocation; hoist it
  ///     or take a Workspace buffer).
  void HotPathPass() {
    bool tagged = false;
    for (std::string_view line : raw_lines_) {
      if (line.find("rll-analyze: hot-path") != std::string_view::npos) {
        tagged = true;
        break;
      }
    }
    if (!tagged) return;

    const std::string_view code = code_;
    std::string prev;
    size_t line = 1;
    int brace_depth = 0;
    bool pending_header = false;  // Saw for/while; its '(' is next.
    bool in_header = false;       // Inside the for/while parens.
    int header_parens = 0;
    bool expect_body = false;     // Header closed; body token is next.
    // Brace depths whose enclosing block is a loop body, and depths at
    // which a brace-less loop body statement is still running.
    std::vector<int> loop_bodies;
    std::vector<int> single_stmt_bodies;

    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '\n') {
        ++line;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (expect_body) {
        expect_body = false;
        if (c == ';') {  // Empty body / do-while tail: nothing to track.
          prev = ";";
          continue;
        }
        if (c == '{') {
          loop_bodies.push_back(++brace_depth);
          prev = "{";
          continue;
        }
        single_stmt_bodies.push_back(brace_depth);  // Brace-less body.
      }
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        const std::string ident(code.substr(i, j - i));
        size_t k = j;
        while (k < code.size() &&
               std::isspace(static_cast<unsigned char>(code[k])))
          ++k;
        const char next = k < code.size() ? code[k] : '\0';
        const bool in_loop =
            !loop_bodies.empty() || !single_stmt_bodies.empty();
        if ((ident == "for" || ident == "while") && prev != "." &&
            prev != "->" && next == '(') {
          pending_header = true;
        } else if (ident == "do" && next == '{') {
          expect_body = true;
        } else if (ident == "new" && prev != "operator") {
          Report(line, "hot-path-alloc",
                 "naked `new` in a hot-path file — this code must be "
                 "allocation-free at steady state; use a Workspace buffer, "
                 "ScratchVector, or hoist the allocation out of the hot "
                 "path");
        } else if ((ident == "malloc" || ident == "calloc" ||
                    ident == "realloc") &&
                   next == '(' && prev != "." && prev != "->") {
          Report(line, "hot-path-alloc",
                 ident +
                     "() in a hot-path file — this code must be "
                     "allocation-free at steady state");
        } else if (ident == "vector" && next == '<' && in_loop &&
                   !in_header) {
          Report(line, "hot-path-alloc",
                 "std::vector constructed inside a loop in a hot-path "
                 "file — a fresh vector per iteration allocates every "
                 "pass; hoist it (reusing capacity) or take a Workspace "
                 "buffer");
        }
        prev = ident;
        i = j - 1;
        continue;
      }
      if (pending_header && c == '(') {
        pending_header = false;
        in_header = true;
        header_parens = 1;
        prev = "(";
        continue;
      }
      if (in_header) {
        if (c == '(') ++header_parens;
        if (c == ')' && --header_parens == 0) {
          in_header = false;
          expect_body = true;
        }
        prev = std::string(1, c);
        continue;
      }
      if (c == '{') {
        ++brace_depth;
      } else if (c == '}') {
        if (!loop_bodies.empty() && loop_bodies.back() == brace_depth) {
          loop_bodies.pop_back();
        }
        --brace_depth;
      } else if (c == ';') {
        while (!single_stmt_bodies.empty() &&
               single_stmt_bodies.back() == brace_depth) {
          single_stmt_bodies.pop_back();
        }
      }
      std::string tok(1, c);
      if ((c == '-' || c == ':') && i + 1 < code.size() &&
          ((c == '-' && code[i + 1] == '>') ||
           (c == ':' && code[i + 1] == ':'))) {
        tok += code[i + 1];
        ++i;
      }
      prev = tok;
    }
  }

  // ----------------------------------------------------- lock discipline

  void LockDisciplinePass() {
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string_view target = IncludeTarget(code_lines_[i]);
      if (target == "mutex" || target == "condition_variable" ||
          target == "shared_mutex") {
        Report(i + 1, "lock-discipline",
               "<" + std::string(target) +
                   "> outside src/common/mutex.h — use the annotated "
                   "rll::Mutex wrapper so -Wthread-safety sees the lock");
      }
    }
    for (const auto& [line, ident] : raw_lock_uses_) {
      Report(line, "lock-discipline",
             "raw std::" + ident +
                 " outside src/common/mutex.h — use rll::Mutex / "
                 "rll::MutexLock / rll::CondVar so -Wthread-safety sees "
                 "the lock");
    }
  }

  std::string_view rel_path_;
  const AnalyzeOptions& options_;
  std::string code_;
  std::vector<std::string_view> raw_lines_;
  std::vector<std::string_view> code_lines_;
  std::vector<std::string> unordered_names_;
  std::vector<std::pair<size_t, std::string>> raw_lock_uses_;
  std::vector<Violation> violations_;
};

}  // namespace

int LayerRank(std::string_view module) {
  for (const ModuleRank& entry : kRanks) {
    if (entry.module == module) return entry.rank;
  }
  return -1;
}

std::vector<std::string> ParseLayeringAllowlist(std::string_view content) {
  std::vector<std::string> entries;
  for (std::string_view line : SplitLines(content)) {
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) continue;
    const std::string_view from = Trim(line.substr(0, arrow));
    const std::string_view to = Trim(line.substr(arrow + 2));
    if (from.empty() || to.empty()) continue;
    entries.push_back(std::string(from) + " -> " + std::string(to));
  }
  return entries;
}

std::vector<Violation> AnalyzeContent(std::string_view rel_path,
                                      std::string_view content,
                                      const AnalyzeOptions& options) {
  return FileAnalyzer(rel_path, content, options).Run();
}

std::vector<Violation> AnalyzeFile(const std::filesystem::path& root,
                                   const std::string& rel_path,
                                   const AnalyzeOptions& options) {
  const std::filesystem::path full = root / rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return {{rel_path, 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return AnalyzeContent(rel_path, buffer.str(), options);
}

std::vector<Violation> AnalyzeTree(const std::filesystem::path& root,
                                   const AnalyzeOptions& options) {
  std::vector<std::string> files;
  const std::filesystem::path base = root / "src";
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(base, ec);
       !ec && it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::filesystem::path& p = it->path();
    if (p.extension() != ".h" && p.extension() != ".cc") continue;
    files.push_back(std::filesystem::relative(p, root, ec).generic_string());
  }
  std::sort(files.begin(), files.end());
  std::vector<Violation> all;
  for (const std::string& f : files) {
    std::vector<Violation> v = AnalyzeFile(root, f, options);
    all.insert(all.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return all;
}

}  // namespace rll::analyze
