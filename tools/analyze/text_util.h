// Shared text scanning for the analyze suite (linter.cc and passes.cc):
// comment/literal blanking, line splitting, include-target extraction, and
// per-line waiver parsing. These operate on raw file text — the passes are
// file-level, not AST-level, by design (zero compiler dependency, runs in
// milliseconds on every ctest invocation).

#ifndef RLL_TOOLS_ANALYZE_TEXT_UTIL_H_
#define RLL_TOOLS_ANALYZE_TEXT_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rll::analyze {

bool IsIdentChar(char c);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces comment bodies and string/char literal contents with spaces,
/// preserving length and newlines, so token rules never fire on prose or
/// on fixture snippets embedded in test strings. Lines whose first
/// non-blank character is '#' are preprocessor directives: their quoted
/// include targets are kept (the include rules need them), only comments
/// are stripped.
std::string BlankCommentsAndLiterals(std::string_view src);

std::vector<std::string_view> SplitLines(std::string_view s);

std::string_view Trim(std::string_view s);

/// `#include "a/b.h"` / `#include <x>` -> "a/b.h" / "x"; empty otherwise.
std::string_view IncludeTarget(std::string_view line);

/// True if `line` carries a `// <tool>: allow(<rule>)` waiver for `rule`
/// (or for "all"). `tool` is "rll-lint" or "rll-analyze".
bool LineWaives(std::string_view original_line, std::string_view tool,
                std::string_view rule);

}  // namespace rll::analyze

#endif  // RLL_TOOLS_ANALYZE_TEXT_UTIL_H_
