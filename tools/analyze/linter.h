// rll_lint: the repo's own static checker, enforcing invariants that
// clang-tidy cannot express because they are conventions of *this* codebase:
//
//   header-guard        .h guards must be RLL_<PATH>_H_ (src/ prefix dropped)
//   using-namespace-std no `using namespace std` anywhere
//   iostream-in-header  no <iostream> in headers (it drags in static ctors)
//   raw-rand            no rand()/srand() outside src/common/rng.* — all
//                       randomness flows through the seedable Rng
//   abort-exit          no abort()/exit() outside common/check.h and
//                       common/status.cc — fatal paths go through RLL_CHECK
//   naked-new-delete    no naked new/delete outside src/tensor/ — ownership
//                       lives in containers and smart pointers
//   own-header-first    every src/**/foo.cc includes its foo.h first, so
//                       headers stay self-contained
//
// A violation can be waived on its line with a trailing
// `// rll-lint: allow(<rule>)` comment; use sparingly and say why.
//
// The core is a library (linted content goes in as strings) so the test
// suite can feed known-bad snippets and assert each rule fires; the
// `rll_lint` binary wraps it with directory walking.

#ifndef RLL_TOOLS_ANALYZE_LINTER_H_
#define RLL_TOOLS_ANALYZE_LINTER_H_

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace rll::analyze {

struct Violation {
  std::string file;     // Repo-relative path, '/' separators.
  size_t line = 0;      // 1-based.
  std::string rule;     // Rule id, e.g. "header-guard".
  std::string message;  // Human-readable explanation.
};

struct LintOptions {
  // own-header-first only applies when a sibling header actually exists;
  // the file-level entry points detect this, LintContent callers say so.
  bool own_header_exists = false;
};

/// Lints file contents. `rel_path` is the repo-relative path (e.g.
/// "src/tensor/ops.cc"); rule applicability and the expected header guard
/// are derived from it.
std::vector<Violation> LintContent(std::string_view rel_path,
                                   std::string_view content,
                                   const LintOptions& options = {});

/// Reads and lints one file under `root`. `rel_path` is relative to root.
/// I/O errors surface as a synthetic "io-error" violation.
std::vector<Violation> LintFile(const std::filesystem::path& root,
                                const std::string& rel_path);

/// Walks the standard source directories (src, tests, bench, tools,
/// examples) under `root` and lints every *.h / *.cc file found.
std::vector<Violation> LintTree(const std::filesystem::path& root);

/// "path:line: [rule] message" — one line, matching compiler diagnostics so
/// editors can jump to it.
std::string FormatViolation(const Violation& v);

/// Expected guard symbol for a header path, e.g. "src/tensor/matrix.h" ->
/// "RLL_TENSOR_MATRIX_H_", "bench/bench_common.h" ->
/// "RLL_BENCH_BENCH_COMMON_H_". Exposed for tests.
std::string ExpectedHeaderGuard(std::string_view rel_path);

}  // namespace rll::analyze

#endif  // RLL_TOOLS_ANALYZE_LINTER_H_
