#include "analyze/linter.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

#include "analyze/text_util.h"

namespace rll::analyze {

namespace {

bool IsHeader(std::string_view rel_path) { return EndsWith(rel_path, ".h"); }
bool IsSource(std::string_view rel_path) { return EndsWith(rel_path, ".cc"); }

// Per-file rule exemptions: the two fatal-path files may call abort/exit,
// the Rng implementation may reference rand(), and the tensor arena may
// manage raw storage.
bool AllowsAbortExit(std::string_view rel_path) {
  return rel_path == "src/common/check.h" || rel_path == "src/common/status.cc";
}
bool AllowsRawRand(std::string_view rel_path) {
  return rel_path == "src/common/rng.h" || rel_path == "src/common/rng.cc";
}
bool AllowsNakedNew(std::string_view rel_path) {
  // tensor/ owns raw buffers; arena + alloc_count ARE the allocators the
  // rule steers everyone else toward.
  return StartsWith(rel_path, "src/tensor/") ||
         rel_path == "src/common/arena.h" ||
         rel_path == "src/common/arena.cc" ||
         rel_path == "src/obs/alloc_count.cc";
}

class FileLinter {
 public:
  FileLinter(std::string_view rel_path, std::string_view content,
             const LintOptions& options)
      : rel_path_(rel_path),
        content_(content),
        options_(options),
        code_(BlankCommentsAndLiterals(content)),
        raw_lines_(SplitLines(content_)),
        code_lines_(SplitLines(code_)) {}

  std::vector<Violation> Run() {
    if (IsHeader(rel_path_)) {
      CheckHeaderGuard();
      CheckNoIostreamInHeader();
    }
    if (IsSource(rel_path_) && options_.own_header_exists) {
      CheckOwnHeaderFirst();
    }
    CheckUsingNamespaceStd();
    CheckTokens();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return a.line < b.line;
              });
    return std::move(violations_);
  }

 private:
  void Report(size_t line, std::string rule, std::string message) {
    const std::string_view original =
        line >= 1 && line <= raw_lines_.size() ? raw_lines_[line - 1]
                                               : std::string_view{};
    if (LineWaives(original, "rll-lint", rule)) return;
    violations_.push_back(
        {std::string(rel_path_), line, std::move(rule), std::move(message)});
  }

  void CheckHeaderGuard() {
    const std::string expected = ExpectedHeaderGuard(rel_path_);
    size_t ifndef_line = 0;
    std::string_view guard;
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      std::string_view t = Trim(code_lines_[i]);
      if (!StartsWith(t, "#")) continue;
      std::string_view after = Trim(t.substr(1));
      if (StartsWith(after, "ifndef")) {
        ifndef_line = i + 1;
        guard = Trim(after.substr(6));
        break;
      }
      if (StartsWith(after, "pragma") &&
          Trim(after.substr(6)) == std::string_view("once")) {
        Report(i + 1, "header-guard",
               "use an RLL_*_H_ include guard, not #pragma once (expected " +
                   expected + ")");
        return;
      }
    }
    if (ifndef_line == 0) {
      Report(1, "header-guard", "missing include guard (expected #ifndef " +
                                    expected + ")");
      return;
    }
    if (guard != expected) {
      Report(ifndef_line, "header-guard",
             "guard '" + std::string(guard) + "' does not match path "
             "(expected " + expected + ")");
      return;
    }
    // The matching #define must follow on the next non-blank line.
    for (size_t i = ifndef_line; i < code_lines_.size(); ++i) {
      std::string_view t = Trim(code_lines_[i]);
      if (t.empty()) continue;
      if (StartsWith(t, "#") &&
          StartsWith(Trim(t.substr(1)), "define") &&
          Trim(Trim(t.substr(1)).substr(6)) == std::string_view(expected)) {
        return;
      }
      Report(i + 1, "header-guard",
             "#ifndef " + expected + " must be followed by #define " +
                 expected);
      return;
    }
    Report(ifndef_line, "header-guard", "missing #define " + expected);
  }

  void CheckNoIostreamInHeader() {
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      if (IncludeTarget(code_lines_[i]) == std::string_view("iostream")) {
        Report(i + 1, "iostream-in-header",
               "<iostream> in a header drags iostream static initializers "
               "into every TU; include it in the .cc (or use logging.h)");
      }
    }
  }

  void CheckOwnHeaderFirst() {
    // src/tensor/ops.cc must include a header whose basename is ops.h
    // before any other include.
    const size_t slash = rel_path_.rfind('/');
    std::string stem(rel_path_.substr(slash + 1));
    stem = stem.substr(0, stem.size() - 3);  // Drop ".cc".
    const std::string own_header = stem + ".h";
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string_view target = IncludeTarget(code_lines_[i]);
      if (target.empty()) continue;
      const size_t s = target.rfind('/');
      const std::string_view base =
          s == std::string_view::npos ? target : target.substr(s + 1);
      if (base != own_header) {
        Report(i + 1, "own-header-first",
               "first include must be the file's own header \"" + own_header +
                   "\" (keeps headers self-contained)");
      }
      return;  // Only the first include matters.
    }
  }

  void CheckUsingNamespaceStd() {
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      const std::string_view line = code_lines_[i];
      size_t at = line.find("using");
      if (at == std::string_view::npos) continue;
      // Token-bounded match of `using namespace std`.
      std::istringstream stream{std::string(line.substr(at))};
      std::string w1, w2, w3;
      stream >> w1 >> w2 >> w3;
      if (w1 == "using" && w2 == "namespace" &&
          (w3 == "std" || StartsWith(w3, "std;") || StartsWith(w3, "std:"))) {
        Report(i + 1, "using-namespace-std",
               "`using namespace std` pollutes every includer; "
               "qualify names instead");
      }
    }
  }

  /// Identifier-level rules: raw-rand, abort-exit, naked-new-delete. A tiny
  /// token walk with one-token lookbehind distinguishes free calls from
  /// members (`obj.exit()`), other namespaces (`process::exit()`), and
  /// deleted functions (`= delete`).
  void CheckTokens() {
    std::string prev, prev2;  // Last two significant tokens.
    size_t line = 1;
    const std::string_view code = code_;
    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '\n') {
        ++line;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        const std::string ident(code.substr(i, j - i));
        size_t k = j;
        while (k < code.size() &&
               std::isspace(static_cast<unsigned char>(code[k])) &&
               code[k] != '\n')
          ++k;
        const bool called = k < code.size() && code[k] == '(';
        HandleIdentifier(ident, called, prev, prev2, line);
        prev2 = prev;
        prev = ident;
        i = j - 1;
        continue;
      }
      // Punctuation: fold -> and :: into single tokens.
      std::string tok(1, c);
      if ((c == '-' || c == ':') && i + 1 < code.size() &&
          ((c == '-' && code[i + 1] == '>') ||
           (c == ':' && code[i + 1] == ':'))) {
        tok += code[i + 1];
        ++i;
      }
      prev2 = prev;
      prev = tok;
    }
  }

  /// True for a free (or std::-qualified) use of the identifier; false for
  /// members and other-namespace qualifications.
  static bool IsFreeOrStd(const std::string& prev, const std::string& prev2) {
    if (prev == "." || prev == "->") return false;
    if (prev == "::") return prev2 == "std";
    return true;
  }

  void HandleIdentifier(const std::string& ident, bool called,
                        const std::string& prev, const std::string& prev2,
                        size_t line) {
    if (ident == "new" || ident == "delete") {
      if (AllowsNakedNew(rel_path_)) return;
      if (ident == "delete" && prev == "=") return;  // Deleted functions.
      Report(line, "naked-new-delete",
             "naked `" + ident + "` outside the allocator layers — use "
             "containers, std::make_unique, or std::make_shared");
      return;
    }
    if (!called) return;
    if ((ident == "rand" || ident == "srand") && IsFreeOrStd(prev, prev2)) {
      if (AllowsRawRand(rel_path_)) return;
      Report(line, "raw-rand",
             "raw " + ident + "() bypasses the seedable Rng; draw from "
             "common/rng.h so experiments stay reproducible");
      return;
    }
    if ((ident == "abort" || ident == "exit" || ident == "_Exit" ||
         ident == "quick_exit") &&
        IsFreeOrStd(prev, prev2)) {
      if (AllowsAbortExit(rel_path_)) return;
      Report(line, "abort-exit",
             ident + "() outside common/check.h and common/status.cc — "
             "fatal paths go through RLL_CHECK or return Status");
    }
  }

  std::string_view rel_path_;
  std::string_view content_;
  LintOptions options_;
  std::string code_;
  std::vector<std::string_view> raw_lines_;
  std::vector<std::string_view> code_lines_;
  std::vector<Violation> violations_;
};

}  // namespace

std::string ExpectedHeaderGuard(std::string_view rel_path) {
  std::string_view path = rel_path;
  if (StartsWith(path, "src/")) path.remove_prefix(4);
  std::string guard = "RLL_";
  for (char c : path) {
    guard += IsIdentChar(c)
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

std::vector<Violation> LintContent(std::string_view rel_path,
                                   std::string_view content,
                                   const LintOptions& options) {
  return FileLinter(rel_path, content, options).Run();
}

std::vector<Violation> LintFile(const std::filesystem::path& root,
                                const std::string& rel_path) {
  const std::filesystem::path full = root / rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return {{rel_path, 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  LintOptions options;
  if (EndsWith(rel_path, ".cc")) {
    std::filesystem::path sibling = full;
    sibling.replace_extension(".h");
    std::error_code ec;
    options.own_header_exists = std::filesystem::exists(sibling, ec);
  }
  return LintContent(rel_path, buffer.str(), options);
}

std::vector<Violation> LintTree(const std::filesystem::path& root) {
  static constexpr std::array<std::string_view, 5> kDirs = {
      "src", "tests", "bench", "tools", "examples"};
  std::vector<std::string> files;
  for (std::string_view dir : kDirs) {
    const std::filesystem::path base = root / dir;
    std::error_code ec;
    if (!std::filesystem::is_directory(base, ec)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(base, ec);
         !ec && it != std::filesystem::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      const std::filesystem::path& p = it->path();
      if (p.extension() != ".h" && p.extension() != ".cc") continue;
      files.push_back(
          std::filesystem::relative(p, root, ec).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Violation> all;
  for (const std::string& f : files) {
    std::vector<Violation> v = LintFile(root, f);
    all.insert(all.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return all;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream out;
  out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return out.str();
}

}  // namespace rll::analyze
