// rll_cli — command-line front end for the RLL library.
//
//   rll_cli synth     --preset oral|class --features F.csv --annotations A.csv
//                     [--seed N] [--votes D] [--workers W]
//   rll_cli describe  --features F.csv [--annotations A.csv]
//   rll_cli aggregate --features F.csv --annotations A.csv
//                     [--method mv|em|glad|iwmv]
//   rll_cli evaluate  --features F.csv --annotations A.csv
//                     [--mode none|mle|bayesian|worker] [--folds K]
//                     [--epochs E] [--k-negatives K] [--eta X] [--seed N]
//   rll_cli tune      --features F.csv --annotations A.csv [--epochs E]
//   rll_cli train     --features F.csv --annotations A.csv --model OUT
//                     [--mode ...] [--epochs E] [--seed N]
//   rll_cli embed     --features F.csv --model M --output EMB.csv
//   rll_cli retrieve  --features F.csv --model M --query ROW [--k K]
//   rll_cli serve     --model M [--corpus F.csv] [--host H] [--port P]
//                     [--max-batch N] [--batch-timeout-us U] [--max-queue Q]
//                     [--cache-size C] [--k K] [--trace-sample N]
//   rll_cli top       --port P [--host H] [--interval-ms MS] [--count N]
//
// Every command also accepts the common flags:
//   --threads N             global thread-pool size (results are identical
//                           at any value; default RLL_THREADS env or 1)
//   --log-level debug|info|warning|error
//   --metrics-out M.jsonl   per-epoch training series + metric registry dump
//   --trace-out T.json      Chrome trace-event file (chrome://tracing)
//   --profile-out P.folded  sampling CPU profile as collapsed stacks (a
//                           .json path writes the aggregated report);
//   --profile-hz N          sample rate for --profile-out (default 99)
//
// The features CSV is "f0,...,fN,label" (label = expert ground truth, used
// only for evaluation); annotations are long-format
// "example_id,worker_id,label". `synth` writes both files from the
// simulated paper datasets so the whole flow is runnable offline.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/label_source.h"
#include "classify/metrics.h"
#include "classify/ranking_metrics.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_registry.h"
#include "common/threading.h"
#include "core/embedding_index.h"
#include "core/model_bundle.h"
#include "core/tuning.h"
#include "core/pipeline.h"
#include "crowd/agreement.h"
#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/iwmv.h"
#include "crowd/majority_vote.h"
#include "crowd/worker_pool.h"
#include "data/csv.h"
#include "data/standardize.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "serve/server_core.h"
#include "serve/event/event_server.h"
#include "serve/event/reload_manager.h"
#include "tensor/serialize.h"

namespace rll::cli {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    double v = fallback;
    if (it != flags.end() && !ParseDouble(it->second, &v)) return fallback;
    return v;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    int64_t v = fallback;
    if (it != flags.end() && !ParseInt(it->second, &v)) return fallback;
    return v;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: rll_cli <command> [--flag value]\n"
      "  synth     --preset oral|class --features F --annotations A\n"
      "            [--seed N] [--votes D] [--workers W]\n"
      "  describe  --features F [--annotations A]\n"
      "  aggregate --features F --annotations A [--method mv|em|glad|iwmv]\n"
      "  evaluate  --features F --annotations A [--mode "
      "none|mle|bayesian|worker]\n"
      "            [--folds K] [--epochs E] [--k-negatives K] [--eta X] "
      "[--seed N]\n"
      "  tune      --features F --annotations A [--epochs E] [--seed N]\n"
      "  train     --features F --annotations A --model OUT [--mode ...] "
      "[--epochs E]\n"
      "  embed     --features F --model M --output EMB\n"
      "  retrieve  --features F --model M --query ROW [--k K]\n"
      "  serve     --model M [--corpus F] [--host H] [--port P]\n"
      "            [--max-batch N] [--batch-timeout-us U] [--max-queue Q]\n"
      "            [--cache-size C] [--k K] [--trace-sample N]\n"
      "            [--shards S] [--max-connections N] [--watch-bundle MS]\n"
      "  top       --port P [--host H] [--interval-ms MS] [--count N]\n"
      "common flags (any command):\n"
      "  --threads N              thread-pool size (same results at any N)\n"
      "  --log-level debug|info|warning|error\n"
      "  --metrics-out M.jsonl    training series + metric registry dump\n"
      "  --trace-out T.json       Chrome trace (open in chrome://tracing)\n"
      "  --profile-out P.folded   CPU profile, collapsed stacks (a .json\n"
      "                           path writes the aggregated report "
      "instead)\n"
      "  --profile-hz N           profiler sample rate (default 99)\n");
  return 2;
}

// Flags accepted by every command (observability) and per command. A flag
// outside the union is a hard error: silently ignoring a typo like
// --k-negative would run with the default and report misleading numbers.
const std::set<std::string>& CommonFlags() {
  static const std::set<std::string> flags = {
      "threads",   "log-level",   "metrics-out",
      "trace-out", "profile-out", "profile-hz"};
  return flags;
}

const std::map<std::string, std::set<std::string>>& CommandFlags() {
  static const std::map<std::string, std::set<std::string>> flags = {
      {"synth",
       {"preset", "features", "annotations", "seed", "votes", "workers"}},
      {"describe", {"features", "annotations"}},
      {"aggregate", {"features", "annotations", "method"}},
      {"evaluate",
       {"features", "annotations", "mode", "folds", "epochs", "k-negatives",
        "eta", "seed", "groups"}},
      {"tune",
       {"features", "annotations", "epochs", "seed", "groups",
        "k-negatives"}},
      {"train",
       {"features", "annotations", "model", "mode", "epochs", "k-negatives",
        "eta", "seed", "groups"}},
      {"embed", {"features", "model", "output"}},
      {"retrieve", {"features", "model", "query", "k"}},
      {"serve",
       {"model", "corpus", "host", "port", "max-batch", "batch-timeout-us",
        "max-queue", "cache-size", "k", "trace-sample", "shards",
        "max-connections", "watch-bundle"}},
      {"top", {"host", "port", "interval-ms", "count"}},
  };
  return flags;
}

Result<Args> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  const auto allowed = CommandFlags().find(args.command);
  if (allowed == CommandFlags().end()) {
    return Status::InvalidArgument("unknown command: " + args.command);
  }
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + flag);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag needs a value: " + flag);
    }
    const std::string name = flag.substr(2);
    if (allowed->second.count(name) == 0 && CommonFlags().count(name) == 0) {
      return Status::InvalidArgument("unknown flag --" + name +
                                     " for command '" + args.command + "'");
    }
    args.flags[name] = argv[++i];
  }
  return args;
}

// ---------------------------------------------------------- observability

// Wired from the common --log-level/--metrics-out/--trace-out flags before
// command dispatch; Finish() flushes trace and metric files afterwards.
// Commands that train pass `observers` into RllTrainerOptions.
struct ObsSession {
  std::string metrics_path;
  std::string trace_path;
  std::string profile_path;
  std::unique_ptr<obs::JsonlObserver> jsonl;
  std::unique_ptr<obs::MetricsObserver> metrics;
  std::unique_ptr<obs::ProgressObserver> progress;
  std::vector<obs::TrainerObserver*> observers;
};

Result<ObsSession> SetupObservability(const Args& args) {
  const std::string level = args.Get("log-level", "");
  if (!level.empty()) {
    if (level == "debug") {
      SetLogLevel(LogLevel::kDebug);
    } else if (level == "info") {
      SetLogLevel(LogLevel::kInfo);
    } else if (level == "warning") {
      SetLogLevel(LogLevel::kWarning);
    } else if (level == "error") {
      SetLogLevel(LogLevel::kError);
    } else {
      return Status::InvalidArgument("unknown --log-level: " + level +
                                     " (want debug|info|warning|error)");
    }
  }
  ObsSession session;
  session.metrics_path = args.Get("metrics-out", "");
  session.trace_path = args.Get("trace-out", "");
  if (!session.metrics_path.empty()) {
    session.jsonl = std::make_unique<obs::JsonlObserver>(session.metrics_path);
    RLL_RETURN_IF_ERROR(session.jsonl->status());
    session.metrics = std::make_unique<obs::MetricsObserver>();
    session.observers.push_back(session.jsonl.get());
    session.observers.push_back(session.metrics.get());
  }
  session.progress = std::make_unique<obs::ProgressObserver>(5);
  session.observers.push_back(session.progress.get());
  if (!session.trace_path.empty()) obs::SetTracingEnabled(true);
  session.profile_path = args.Get("profile-out", "");
  if (args.Has("profile-hz") && session.profile_path.empty()) {
    return Status::InvalidArgument("--profile-hz requires --profile-out");
  }
  if (!session.profile_path.empty()) {
    obs::ProfilerOptions options;
    const int64_t hz = args.GetInt("profile-hz", options.hz);
    if (hz < 1 || hz > obs::kMaxProfileHz) {
      return Status::InvalidArgument(
          StrFormat("--profile-hz must be in [1, %d]", obs::kMaxProfileHz));
    }
    options.hz = static_cast<int>(hz);
    RLL_RETURN_IF_ERROR(obs::StartCpuProfiler(options));
  }
  return session;
}

int FinishObservability(ObsSession* session) {
  int rc = 0;
  if (session->jsonl != nullptr) {
    session->jsonl->Close();
    if (!session->jsonl->status().ok()) {
      std::fprintf(stderr, "%s\n",
                   session->jsonl->status().ToString().c_str());
      rc = 1;
    }
    // Append the registry dump so one file carries both the per-epoch
    // series and the end-of-run aggregates.
    std::ofstream out(session->metrics_path, std::ios::app);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot append metrics to %s\n",
                   session->metrics_path.c_str());
      rc = 1;
    } else {
      out << obs::MetricRegistry::Global().ExportJsonl();
    }
  }
  if (!session->trace_path.empty()) {
    obs::SetTracingEnabled(false);
    std::ofstream out(session->trace_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for write\n",
                   session->trace_path.c_str());
      rc = 1;
    } else {
      out << obs::TraceToChromeJson();
    }
  }
  if (!session->profile_path.empty()) {
    obs::StopCpuProfiler();
    std::ofstream out(session->profile_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for write\n",
                   session->profile_path.c_str());
      rc = 1;
    } else {
      // A .json destination gets the aggregated report; anything else the
      // collapsed stacks flamegraph.pl expects.
      const std::string& path = session->profile_path;
      const bool json = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".json") == 0;
      out << (json ? obs::ProfileToJson() : obs::ProfileToFolded());
      if (json) out << "\n";
    }
  }
  return rc;
}

// Training-path commands print their fully-resolved configuration to
// stderr so logs capture the exact run parameters, defaults included.
void EchoRunConfig(const Args& args, crowd::ConfidenceMode mode,
                   const core::RllPipelineOptions& options, bool with_folds) {
  std::fprintf(
      stderr,
      "run config: command=%s mode=%s seed=%lld epochs=%d groups=%zu "
      "k-negatives=%zu eta=%g threads=%zu%s\n",
      args.command.c_str(), crowd::ConfidenceModeName(mode),
      static_cast<long long>(args.GetInt("seed", 7)), options.trainer.epochs,
      options.trainer.groups_per_epoch, options.trainer.negatives_per_group,
      options.trainer.eta, GlobalThreadCount(),
      with_folds ? StrFormat(" folds=%zu", options.folds).c_str() : "");
}

Result<data::Dataset> LoadAnnotatedDataset(const Args& args) {
  const std::string features = args.Get("features", "");
  const std::string annotations = args.Get("annotations", "");
  if (features.empty() || annotations.empty()) {
    return Status::InvalidArgument(
        "--features and --annotations are required");
  }
  RLL_ASSIGN_OR_RETURN(data::Dataset dataset,
                       data::LoadFeaturesCsv(features));
  RLL_RETURN_IF_ERROR(data::LoadAnnotationsCsv(annotations, &dataset));
  return dataset;
}

Result<crowd::ConfidenceMode> ParseMode(const std::string& mode) {
  if (mode == "none") return crowd::ConfidenceMode::kNone;
  if (mode == "mle") return crowd::ConfidenceMode::kMle;
  if (mode == "bayesian") return crowd::ConfidenceMode::kBayesian;
  if (mode == "worker") return crowd::ConfidenceMode::kWorkerAware;
  return Status::InvalidArgument("unknown --mode: " + mode);
}

core::RllPipelineOptions PipelineOptionsFrom(const Args& args,
                                             crowd::ConfidenceMode mode,
                                             const ObsSession& obs_session) {
  core::RllPipelineOptions options;
  options.trainer.model.hidden_dims = {64, 32};
  options.trainer.epochs = static_cast<int>(args.GetInt("epochs", 15));
  options.trainer.groups_per_epoch =
      static_cast<size_t>(args.GetInt("groups", 1024));
  options.trainer.negatives_per_group =
      static_cast<size_t>(args.GetInt("k-negatives", 3));
  options.trainer.eta = args.GetDouble("eta", 10.0);
  options.trainer.confidence_mode = mode;
  options.trainer.observers = obs_session.observers;
  options.folds = static_cast<size_t>(args.GetInt("folds", 5));
  return options;
}

// ------------------------------------------------------------------ synth

int RunSynth(const Args& args) {
  const std::string preset = args.Get("preset", "oral");
  data::SyntheticConfig config;
  if (preset == "oral") {
    config = data::OralSimConfig();
  } else if (preset == "class") {
    config = data::ClassSimConfig();
  } else {
    std::fprintf(stderr, "unknown --preset: %s\n", preset.c_str());
    return 2;
  }
  const std::string features = args.Get("features", "");
  const std::string annotations = args.Get("annotations", "");
  if (features.empty() || annotations.empty()) {
    std::fprintf(stderr, "--features and --annotations are required\n");
    return 2;
  }

  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  data::Dataset dataset = GenerateSynthetic(config, &rng);
  crowd::WorkerPool pool(
      {.num_workers = static_cast<size_t>(args.GetInt("workers", 25))},
      &rng);
  pool.Annotate(&dataset, static_cast<size_t>(args.GetInt("votes", 5)),
                &rng);

  Status status = data::SaveFeaturesCsv(features, dataset);
  if (status.ok()) status = data::SaveAnnotationsCsv(annotations, dataset);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu examples (%zu features, pos fraction %.3f) to %s\n",
              dataset.size(), dataset.dim(), dataset.PositiveFraction(),
              features.c_str());
  std::printf("wrote %zu-vote annotations to %s\n",
              static_cast<size_t>(args.GetInt("votes", 5)),
              annotations.c_str());
  return 0;
}

// -------------------------------------------------------------- aggregate

int RunAggregate(const Args& args) {
  auto dataset = LoadAnnotatedDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::string method = args.Get("method", "mv");
  std::unique_ptr<crowd::Aggregator> aggregator;
  if (method == "mv") {
    aggregator = std::make_unique<crowd::MajorityVote>();
  } else if (method == "em") {
    aggregator = std::make_unique<crowd::DawidSkene>();
  } else if (method == "glad") {
    aggregator = std::make_unique<crowd::Glad>();
  } else if (method == "iwmv") {
    aggregator = std::make_unique<crowd::Iwmv>();
  } else {
    std::fprintf(stderr, "unknown --method: %s\n", method.c_str());
    return 2;
  }

  auto result = aggregator->Run(*dataset);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto metrics =
      classify::Evaluate(dataset->true_labels(), result->labels);
  std::printf("%s on %zu examples (%d iterations%s):\n",
              aggregator->name().c_str(), dataset->size(),
              result->iterations, result->converged ? "" : ", NOT converged");
  std::printf("  label recovery: %s\n", ToString(metrics).c_str());
  std::printf("  AUC of posterior: %.3f\n",
              classify::RocAuc(dataset->true_labels(),
                               result->prob_positive));
  auto agreement = crowd::ComputeAgreement(*dataset);
  if (agreement.ok()) {
    std::printf("  inter-annotator: kappa=%.3f unanimous=%.1f%%\n",
                agreement->fleiss_kappa,
                100.0 * agreement->unanimous_fraction);
  }
  if (!result->worker_quality.empty()) {
    std::printf("  worker quality:");
    for (size_t w = 0; w < result->worker_quality.size(); ++w) {
      std::printf(" %zu:%.2f", w, result->worker_quality[w]);
    }
    std::printf("\n");
  }
  return 0;
}

// --------------------------------------------------------------- evaluate

int RunEvaluate(const Args& args, const ObsSession& obs_session) {
  auto dataset = LoadAnnotatedDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto mode = ParseMode(args.Get("mode", "bayesian"));
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    return 2;
  }
  const core::RllPipelineOptions options =
      PipelineOptionsFrom(args, *mode, obs_session);
  EchoRunConfig(args, *mode, options, /*with_folds=*/true);
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 7)));
  auto outcome = core::RunRllCrossValidation(*dataset, options, &rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("RLL (%s confidence), %zu-fold CV on %zu examples:\n",
              crowd::ConfidenceModeName(*mode), options.folds,
              dataset->size());
  std::printf("  mean : %s\n", ToString(outcome->mean).c_str());
  std::printf("  std  : %s\n", ToString(outcome->stddev).c_str());
  for (size_t f = 0; f < outcome->per_fold.size(); ++f) {
    std::printf("  fold %zu: %s\n", f, ToString(outcome->per_fold[f]).c_str());
  }
  return 0;
}

// ------------------------------------------------------------------ train

// Writes a model bundle (see core/model_bundle.h for the file format).
int RunTrain(const Args& args, const ObsSession& obs_session) {
  auto dataset = LoadAnnotatedDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::string model_path = args.Get("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "--model is required\n");
    return 2;
  }
  auto mode = ParseMode(args.Get("mode", "bayesian"));
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    return 2;
  }
  const core::RllPipelineOptions options =
      PipelineOptionsFrom(args, *mode, obs_session);
  EchoRunConfig(args, *mode, options, /*with_folds=*/false);

  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 7)));
  data::Standardizer standardizer;
  const Matrix features = standardizer.FitTransform(dataset->features());
  const std::vector<int> labels = dataset->MajorityVoteLabels();
  const std::vector<double> confidence = crowd::LabelConfidence(
      *dataset, labels, *mode, options.trainer.prior_strength);

  core::RllTrainer trainer(options.trainer, &rng);
  auto summary = trainer.Train(features, labels, confidence);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  auto bundle = core::ModelBundle::Create(standardizer, trainer.model(),
                                          &rng);
  Status status =
      bundle.ok() ? bundle->Save(model_path) : bundle.status();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained %d epochs (final group NLL %.4f) on %zu examples\n",
              options.trainer.epochs, summary->epoch_losses.back(),
              dataset->size());
  std::printf("model bundle written to %s\n", model_path.c_str());
  return 0;
}

// ------------------------------------------------------------------ embed

int RunEmbed(const Args& args) {
  const std::string features_path = args.Get("features", "");
  const std::string model_path = args.Get("model", "");
  const std::string output_path = args.Get("output", "");
  if (features_path.empty() || model_path.empty() || output_path.empty()) {
    std::fprintf(stderr, "--features, --model and --output are required\n");
    return 2;
  }
  auto dataset = data::LoadFeaturesCsv(features_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  auto bundle = core::ModelBundle::Load(model_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  auto embedded = bundle->Embed(dataset->features());
  if (!embedded.ok()) {
    std::fprintf(stderr, "%s\n", embedded.status().ToString().c_str());
    return 1;
  }
  const Matrix& embeddings = *embedded;

  std::ofstream out(output_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s for write\n", output_path.c_str());
    return 1;
  }
  for (size_t c = 0; c < embeddings.cols(); ++c) out << "e" << c << ",";
  out << "label\n";
  for (size_t r = 0; r < embeddings.rows(); ++r) {
    for (size_t c = 0; c < embeddings.cols(); ++c) {
      out << StrFormat("%.8g", embeddings(r, c)) << ",";
    }
    out << dataset->true_label(r) << "\n";
  }
  std::printf("wrote %zu %zu-dim embeddings to %s\n", embeddings.rows(),
              embeddings.cols(), output_path.c_str());
  return 0;
}

// --------------------------------------------------------------- describe

int RunDescribe(const Args& args) {
  const std::string features_path = args.Get("features", "");
  if (features_path.empty()) {
    std::fprintf(stderr, "--features is required\n");
    return 2;
  }
  auto dataset = data::LoadFeaturesCsv(features_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu examples, %zu features, positive fraction %.3f "
              "(pos:neg = %.2f)\n",
              dataset->size(), dataset->dim(), dataset->PositiveFraction(),
              dataset->PositiveFraction() /
                  std::max(1e-9, 1.0 - dataset->PositiveFraction()));

  const std::string annotations_path = args.Get("annotations", "");
  if (annotations_path.empty()) return 0;
  Status status = data::LoadAnnotationsCsv(annotations_path,
                                           &dataset.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%zu distinct workers\n", dataset->NumWorkers());
  auto agreement = crowd::ComputeAgreement(*dataset);
  if (agreement.ok()) {
    std::printf("agreement: kappa=%.3f observed=%.3f unanimous=%.1f%% "
                "MV-accuracy=%.3f\n",
                agreement->fleiss_kappa, agreement->observed_agreement,
                100.0 * agreement->unanimous_fraction,
                agreement->majority_vote_accuracy);
    std::printf("positive-vote histogram:");
    for (size_t v = 0; v < agreement->vote_histogram.size(); ++v) {
      std::printf(" %zu:%zu", v, agreement->vote_histogram[v]);
    }
    std::printf("\n");
  } else {
    std::printf("(agreement stats unavailable: %s)\n",
                agreement.status().ToString().c_str());
  }
  return 0;
}

// ------------------------------------------------------------------- tune

int RunTune(const Args& args, const ObsSession& obs_session) {
  auto dataset = LoadAnnotatedDataset(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  core::TuningOptions options;
  options.pipeline = PipelineOptionsFrom(
      args, crowd::ConfidenceMode::kBayesian, obs_session);
  EchoRunConfig(args, crowd::ConfidenceMode::kBayesian, options.pipeline,
                /*with_folds=*/false);
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 7)));
  auto result = core::TuneEta(*dataset, options, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const std::vector<double> grid = {1.0, 2.0, 5.0, 10.0, 20.0};
  std::printf("held-out eta selection (%.0f%% holdout, majority-vote "
              "target):\n",
              100.0 * options.held_out_fraction);
  for (size_t i = 0; i < grid.size(); ++i) {
    std::printf("  eta=%-5.1f held-out acc=%.3f%s\n", grid[i],
                result->held_out_accuracy[i],
                grid[i] == result->best_value ? "  <-- selected" : "");
  }
  return 0;
}

// --------------------------------------------------------------- retrieve

int RunRetrieve(const Args& args) {
  const std::string features_path = args.Get("features", "");
  const std::string model_path = args.Get("model", "");
  if (features_path.empty() || model_path.empty() || !args.Has("query")) {
    std::fprintf(stderr, "--features, --model and --query are required\n");
    return 2;
  }
  auto dataset = data::LoadFeaturesCsv(features_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int64_t query = args.GetInt("query", 0);
  if (query < 0 || static_cast<size_t>(query) >= dataset->size()) {
    std::fprintf(stderr, "--query out of range [0, %zu)\n", dataset->size());
    return 2;
  }
  auto bundle = core::ModelBundle::Load(model_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  auto embeddings = bundle->Embed(dataset->features());
  if (!embeddings.ok()) {
    std::fprintf(stderr, "%s\n", embeddings.status().ToString().c_str());
    return 1;
  }
  core::EmbeddingIndex index;
  if (!index.Build(*embeddings).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  const size_t k = static_cast<size_t>(args.GetInt("k", 5));
  auto neighbors = index.Query(
      embeddings->Row(static_cast<size_t>(query)), k + 1);
  if (!neighbors.ok()) {
    std::fprintf(stderr, "%s\n", neighbors.status().ToString().c_str());
    return 1;
  }
  std::printf("nearest neighbours of example %lld (label %d):\n",
              static_cast<long long>(query),
              dataset->true_label(static_cast<size_t>(query)));
  for (const core::Neighbor& n : *neighbors) {
    if (n.index == static_cast<size_t>(query)) continue;
    std::printf("  example %-6zu label %d  cosine %.4f\n", n.index,
                dataset->true_label(n.index), n.similarity);
  }
  return 0;
}

// ------------------------------------------------------------------ serve

// Written by the SIGINT/SIGTERM handler; polled by the accept loop so
// Ctrl-C produces a graceful drain instead of an abort.
volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

int RunServe(const Args& args) {
  const std::string model_path = args.Get("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "--model is required\n");
    return 2;
  }
  auto bundle = core::ModelBundle::Load(model_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  // The corpus (a features CSV with expert labels) enables predict and
  // neighbors; without it the server only answers embed requests.
  data::Dataset corpus;
  const data::Dataset* corpus_ptr = nullptr;
  const std::string corpus_path = args.Get("corpus", "");
  if (!corpus_path.empty()) {
    auto loaded = data::LoadFeaturesCsv(corpus_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(*loaded);
    corpus_ptr = &corpus;
  }

  serve::ServerCoreOptions core_options;
  core_options.batcher.max_batch =
      static_cast<size_t>(args.GetInt("max-batch", 32));
  core_options.batcher.batch_timeout_us = args.GetInt("batch-timeout-us", 200);
  core_options.batcher.max_queue =
      static_cast<size_t>(args.GetInt("max-queue", 256));
  core_options.cache_capacity =
      static_cast<size_t>(args.GetInt("cache-size", 1024));
  core_options.default_k = static_cast<size_t>(args.GetInt("k", 5));
  core_options.trace_sample_every =
      static_cast<uint64_t>(args.GetInt("trace-sample", 0));
  const size_t shards = static_cast<size_t>(args.GetInt("shards", 1));
  if (shards == 0) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  // One index shard per event-plane worker: the retrieval scan is split
  // the same way the connections are.
  core_options.shards = shards;
  auto server_core = serve::ServerCore::Create(std::move(*bundle), corpus_ptr,
                                               core_options, model_path);
  if (!server_core.ok()) {
    std::fprintf(stderr, "%s\n", server_core.status().ToString().c_str());
    return 1;
  }
  serve::ServerCore* core = server_core->get();

  // The reload thread serves reloadz verbs and, with --watch-bundle N,
  // polls the model file every N ms and swaps on mtime change.
  const long long watch_ms = args.GetInt("watch-bundle", 0);
  serve::ReloadManagerOptions reload_options;
  reload_options.watch_path = model_path;
  reload_options.watch_interval_ms = watch_ms > 0 ? watch_ms : 0;
  serve::ReloadManager reload_manager(core, reload_options);
  reload_manager.Start();
  core->SetReloadRequestHandler([&reload_manager](const std::string& path) {
    return reload_manager.RequestReload(path);
  });

  serve::EventServerOptions server_options;
  server_options.host = args.Get("host", "127.0.0.1");
  server_options.port = static_cast<int>(args.GetInt("port", 0));
  server_options.shards = shards;
  server_options.max_connections =
      static_cast<size_t>(args.GetInt("max-connections", 1024));
  serve::EventServer server(server_options, core);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  // Scraped by scripts (and the CI smoke test) to find the bound port, so
  // it goes to stdout and is flushed before the blocking accept loop.
  std::printf("serving on %s:%d\n", server_options.host.c_str(),
              server.port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "model=%s corpus=%zu rows predict=%s neighbors=%s "
               "max-batch=%zu batch-timeout-us=%lld max-queue=%zu "
               "cache-size=%zu trace-sample=%llu shards=%zu "
               "watch-bundle=%lld\n",
               model_path.c_str(), core->corpus_size(),
               core->supports_predict() ? "on" : "off",
               core->supports_neighbors() ? "on" : "off",
               core_options.batcher.max_batch,
               static_cast<long long>(core_options.batcher.batch_timeout_us),
               core_options.batcher.max_queue, core_options.cache_capacity,
               static_cast<unsigned long long>(
                   core_options.trace_sample_every),
               shards, watch_ms);

  status = server.Serve(&g_stop_requested);
  server.Stop();
  reload_manager.Stop();
  core->Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const serve::MicroBatcher& batcher = core->batcher();
  std::fprintf(stderr,
               "serve summary: batches=%llu rows=%llu max-batch-observed=%llu "
               "rejected=%llu cache-hit-rate=%.3f\n",
               static_cast<unsigned long long>(batcher.batches_run()),
               static_cast<unsigned long long>(batcher.rows_batched()),
               static_cast<unsigned long long>(batcher.max_batch_observed()),
               static_cast<unsigned long long>(batcher.rejected()),
               core->cache().HitRate());
  return 0;
}

// -------------------------------------------------------------------- top
//
// `rll_cli top` scrapes a running server's metricsz on an interval and
// renders a one-screen summary, like top(1) for the serving stack. Each
// scrape opens a fresh connection, so it also exercises the accept path.

int ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one request line and reads one newline-terminated response.
Result<std::string> RequestOverTcp(const std::string& host, int port,
                                   const std::string& line) {
  const int fd = ConnectTcp(host, port);
  if (fd < 0) {
    return Status::IOError("cannot connect to " + host + ":" +
                           std::to_string(port));
  }
  const std::string out = line + "\n";
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
    if (response.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  const size_t eol = response.find('\n');
  if (eol == std::string::npos) {
    return Status::IOError("connection closed before a full response line");
  }
  response.resize(eol);
  return response;
}

const serve::JsonValue* FindPath(const serve::JsonValue* root,
                                 const std::vector<const char*>& path) {
  for (const char* key : path) {
    if (root == nullptr) return nullptr;
    root = root->Find(key);
  }
  return root;
}

double NumberAt(const serve::JsonValue* root,
                const std::vector<const char*>& path, double fallback) {
  const serve::JsonValue* v = FindPath(root, path);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

/// Sums "serve_requests_total{...}" members of a delta/cumulative metrics
/// object; `errors_only` restricts to entries whose status label != ok.
double SumRequestCounters(const serve::JsonValue* metrics, bool errors_only) {
  if (metrics == nullptr || !metrics->is_object()) return 0.0;
  double total = 0.0;
  for (const auto& [key, value] : metrics->object) {
    if (key.rfind("serve_requests_total{", 0) != 0 || !value.is_number()) {
      continue;
    }
    if (errors_only && key.find("status=\"ok\"") != std::string::npos) {
      continue;
    }
    total += value.number;
  }
  return total;
}

int RunTop(const Args& args) {
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }
  const int64_t interval_ms = args.GetInt("interval-ms", 1000);
  const int64_t count = args.GetInt("count", 0);  // 0 = until Ctrl-C.
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  for (int64_t scrape = 0; (count == 0 || scrape < count) &&
                           g_stop_requested == 0;
       ++scrape) {
    if (scrape > 0) {
      // Sleep in short slices so Ctrl-C stays responsive mid-interval.
      int64_t remaining = interval_ms;
      while (remaining > 0 && g_stop_requested == 0) {
        const int64_t slice = std::min<int64_t>(remaining, 50);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        remaining -= slice;
      }
      if (g_stop_requested != 0) break;
    }

    Stopwatch rtt;
    auto line = RequestOverTcp(host, port,
                               "{\"id\":\"top\",\"type\":\"metricsz\"}");
    const double rtt_ms = rtt.ElapsedMillis();
    if (!line.ok()) {
      std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
      return 1;
    }
    auto doc = serve::ParseJson(*line);
    if (!doc.ok()) {
      std::fprintf(stderr, "unparseable metricsz response: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    const serve::JsonValue* ok = doc->Find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->boolean) {
      std::fprintf(stderr, "metricsz answered an error: %s\n",
                   line->c_str());
      return 1;
    }
    const serve::JsonValue* payload = doc->Find("payload");
    const serve::JsonValue* cumulative =
        FindPath(payload, {"cumulative", "metrics"});

    const double uptime_s = NumberAt(payload, {"uptime_s"}, 0.0);
    const double scrape_seq = NumberAt(payload, {"scrape_seq"}, 0.0);
    const double delta_seconds =
        NumberAt(payload, {"delta_seconds"}, 0.0);
    const serve::JsonValue* delta = FindPath(payload, {"delta"});
    const double delta_requests =
        SumRequestCounters(delta, /*errors_only=*/false);
    const double delta_rate =
        delta_seconds > 0.0 ? delta_requests / delta_seconds : 0.0;
    const double total_requests =
        SumRequestCounters(cumulative, /*errors_only=*/false);
    const double total_errors =
        SumRequestCounters(cumulative, /*errors_only=*/true);
    const double window_rate =
        NumberAt(payload, {"windowed", "requests", "rate_per_sec"}, 0.0);
    const double window_seconds =
        NumberAt(payload, {"windowed", "requests", "window_seconds"}, 0.0);
    const double p50 =
        NumberAt(payload, {"windowed", "latency_ms", "all", "p50"}, 0.0);
    const double p95 =
        NumberAt(payload, {"windowed", "latency_ms", "all", "p95"}, 0.0);
    const double p99 =
        NumberAt(payload, {"windowed", "latency_ms", "all", "p99"}, 0.0);
    const double queue_depth =
        NumberAt(cumulative, {"serve_queue_depth"}, 0.0);
    const double mean_batch =
        NumberAt(cumulative, {"serve_batch_size", "mean"}, 0.0);
    const double batches =
        NumberAt(cumulative, {"serve_batches_total"}, 0.0);
    const double rejected =
        NumberAt(cumulative, {"serve_rejected_total"}, 0.0);
    const double hits =
        NumberAt(cumulative, {"serve_cache_hits_total"}, 0.0);
    const double misses =
        NumberAt(cumulative, {"serve_cache_misses_total"}, 0.0);
    const double hit_rate =
        hits + misses > 0.0 ? hits / (hits + misses) : 0.0;

    if (tty) std::printf("\x1b[H\x1b[2J");  // Home + clear: refresh in place.
    std::printf("rll top — %s:%d   scrape %.0f   uptime %.1fs   rtt %.2fms\n",
                host.c_str(), port, scrape_seq, uptime_s, rtt_ms);
    std::printf(
        "requests   total %.0f   errors %.0f   %.1f/s over %.0fs window   "
        "%.1f/s since last scrape\n",
        total_requests, total_errors, window_rate, window_seconds,
        delta_rate);
    std::printf("latency ms windowed p50 %.3f   p95 %.3f   p99 %.3f\n", p50,
                p95, p99);
    std::printf(
        "batcher    batches %.0f   mean batch %.2f   queue depth %.0f   "
        "rejected %.0f\n",
        batches, mean_batch, queue_depth, rejected);
    std::printf("cache      hits %.0f   misses %.0f   hit rate %.3f\n", hits,
                misses, hit_rate);
    std::fflush(stdout);
  }
  return 0;
}

int Dispatch(const Args& args, const ObsSession& obs_session) {
  if (args.command == "synth") return RunSynth(args);
  if (args.command == "describe") return RunDescribe(args);
  if (args.command == "aggregate") return RunAggregate(args);
  if (args.command == "evaluate") return RunEvaluate(args, obs_session);
  if (args.command == "tune") return RunTune(args, obs_session);
  if (args.command == "train") return RunTrain(args, obs_session);
  if (args.command == "embed") return RunEmbed(args);
  if (args.command == "retrieve") return RunRetrieve(args);
  if (args.command == "serve") return RunServe(args);
  if (args.command == "top") return RunTop(args);
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return Usage();
}

int Main(int argc, char** argv) {
  // Before SetupObservability: the profiler captures each thread's name at
  // registration, and starting with --profile-out registers this thread.
  SetCurrentThreadName("rll-main");
  auto args = Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return Usage();
  }
  const int64_t threads = args->GetInt("threads", 0);
  if (threads > 0) SetGlobalThreads(static_cast<size_t>(threads));
  auto obs_session = SetupObservability(*args);
  if (!obs_session.ok()) {
    std::fprintf(stderr, "%s\n", obs_session.status().ToString().c_str());
    return 2;
  }
  const int rc = Dispatch(*args, *obs_session);
  const int obs_rc = FinishObservability(&obs_session.value());
  return rc != 0 ? rc : obs_rc;
}

}  // namespace
}  // namespace rll::cli

int main(int argc, char** argv) { return rll::cli::Main(argc, argv); }
