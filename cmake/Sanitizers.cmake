# Sanitizer wiring for every target in the build.
#
# RLL_SANITIZE is a semicolon-separated list of sanitizers to enable:
#
#   cmake -B build-asan -S . -DRLL_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DRLL_SANITIZE=thread
#
# Supported values: address, undefined, thread, leak. `address;undefined`
# is the everyday correctness combo; `thread` is mutually exclusive with
# `address`/`leak` (the runtimes cannot coexist in one process).
#
# Flags are applied globally (add_compile_options/add_link_options) so that
# every object file — library, test, bench, example — is instrumented;
# mixing instrumented and uninstrumented TUs yields false negatives for ASan
# and false positives for TSan.
#
# Suppression files live in tools/sanitizers/. Runtime defaults
# (halt_on_error, leak suppressions) are compiled into the binaries via
# src/common/sanitizer_options.cc so that bare `ctest` runs are clean
# without any environment setup.

set(RLL_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable (address;undefined;thread;leak)")

if(NOT RLL_SANITIZE)
  return()
endif()

set(_rll_san_known address undefined thread leak)
set(_rll_san_flags "")
foreach(_san IN LISTS RLL_SANITIZE)
  if(NOT _san IN_LIST _rll_san_known)
    message(FATAL_ERROR
        "RLL_SANITIZE: unknown sanitizer '${_san}'. "
        "Supported: address, undefined, thread, leak "
        "(combine with semicolons, e.g. -DRLL_SANITIZE=\"address;undefined\").")
  endif()
  list(APPEND _rll_san_flags "-fsanitize=${_san}")
endforeach()

if("thread" IN_LIST RLL_SANITIZE AND
   ("address" IN_LIST RLL_SANITIZE OR "leak" IN_LIST RLL_SANITIZE))
  message(FATAL_ERROR
      "RLL_SANITIZE: 'thread' cannot be combined with 'address' or 'leak' — "
      "the runtimes are mutually exclusive. Configure separate build trees.")
endif()

message(STATUS "RLL: sanitizers enabled: ${RLL_SANITIZE}")

# Sane stacks in reports; keep frame pointers and some debug info even if
# the build type itself would omit them.
list(APPEND _rll_san_flags -fno-omit-frame-pointer -g)

# UBSan: make alignment/vptr issues fatal rather than printed-and-ignored,
# so ctest actually fails on a report.
if("undefined" IN_LIST RLL_SANITIZE)
  list(APPEND _rll_san_flags -fno-sanitize-recover=undefined)
endif()

add_compile_options(${_rll_san_flags})
add_link_options(${_rll_san_flags})

# Expose the active set to the code (sanitizer_options.cc registers default
# runtime options only when a sanitizer is actually linked in).
if("address" IN_LIST RLL_SANITIZE OR "leak" IN_LIST RLL_SANITIZE)
  add_compile_definitions(RLL_SANITIZE_LEAK_AWARE=1)
endif()
if("undefined" IN_LIST RLL_SANITIZE)
  add_compile_definitions(RLL_SANITIZE_UNDEFINED=1)
endif()
if("thread" IN_LIST RLL_SANITIZE)
  add_compile_definitions(RLL_SANITIZE_THREAD=1)
endif()
