// Multiclass rubric grading: education platforms rarely stop at good/bad —
// rubric scores (e.g. 1–4) are the norm. This example simulates crowd
// workers scoring items on a 4-point rubric with realistic confusions
// (adjacent-level mix-ups, one worker who systematically inflates), then
// compares plurality voting against the full K-class Dawid–Skene EM and
// inspects the recovered confusion matrices.
//
// Run: ./build/examples/multiclass_grading

#include <cstdio>

#include "crowd/multiclass.h"

namespace {

using rll::Matrix;
using rll::Rng;

/// Adjacent-confusion rubric grader: correct with prob acc, otherwise
/// mostly off by one level.
Matrix RubricConfusion(size_t k, double acc) {
  Matrix m(k, k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    m(c, c) = acc;
    const double rest = 1.0 - acc;
    if (c == 0) {
      m(c, 1) = rest;
    } else if (c == k - 1) {
      m(c, c - 1) = rest;
    } else {
      m(c, c - 1) = rest / 2.0;
      m(c, c + 1) = rest / 2.0;
    }
  }
  return m;
}

/// A grade inflater: shifts everything up one level with high probability.
Matrix InflaterConfusion(size_t k) {
  Matrix m(k, k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    if (c + 1 < k) {
      m(c, c + 1) = 0.7;
      m(c, c) = 0.3;
    } else {
      m(c, c) = 1.0;
    }
  }
  return m;
}

double Recovery(const std::vector<size_t>& inferred,
                const std::vector<size_t>& truth) {
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    correct += (inferred[i] == truth[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  using namespace rll::crowd;

  const size_t kClasses = 4;
  const size_t kItems = 600;
  Rng rng(42);

  // True rubric scores, skewed toward the middle levels.
  std::vector<size_t> truth(kItems);
  const std::vector<double> score_prior = {0.15, 0.35, 0.35, 0.15};
  for (size_t i = 0; i < kItems; ++i) truth[i] = rng.Categorical(score_prior);

  // 8 graders: 5 decent, 2 sloppy, 1 systematic inflater.
  std::vector<Matrix> graders;
  for (int i = 0; i < 5; ++i) graders.push_back(RubricConfusion(kClasses, 0.8));
  for (int i = 0; i < 2; ++i) graders.push_back(RubricConfusion(kClasses, 0.5));
  graders.push_back(InflaterConfusion(kClasses));

  const MulticlassAnnotations annotations =
      SimulateMulticlassVotes(truth, kClasses, graders, 5, &rng);

  std::printf("MULTICLASS RUBRIC GRADING — %zu items, 4 levels, 5 of 8 "
              "graders each\n\n",
              kItems);

  auto plurality = MulticlassMajorityVote(annotations);
  auto ds = MulticlassDawidSkene(annotations);
  if (!plurality.ok() || !ds.ok()) {
    std::fprintf(stderr, "aggregation failed\n");
    return 1;
  }
  std::printf("score recovery:  plurality %.3f   Dawid-Skene %.3f "
              "(%d EM iterations)\n\n",
              Recovery(plurality->labels, truth), Recovery(ds->labels, truth),
              ds->iterations);

  // Did EM spot the inflater? Print the learned confusion of grader 7.
  std::printf("learned confusion of grader 7 (the planted inflater):\n");
  std::printf("            votes 1   votes 2   votes 3   votes 4\n");
  for (size_t c = 0; c < kClasses; ++c) {
    std::printf("  true %zu:", c + 1);
    for (size_t l = 0; l < kClasses; ++l) {
      std::printf("   %.2f   ", ds->confusions[7](c, l));
    }
    std::printf("\n");
  }
  std::printf("\n(an inflater shows mass above the diagonal — plurality "
              "voting has no way\nto see this, Dawid-Skene corrects for "
              "it item by item)\n");
  return 0;
}
