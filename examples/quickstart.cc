// Quickstart: the shortest end-to-end use of the RLL library.
//
// 1. Generate a small crowdsourced dataset (or load your own via
//    data::LoadFeaturesCsv + data::LoadAnnotationsCsv).
// 2. Run the cross-validated RLL-Bayesian pipeline.
// 3. Print accuracy / F1 against expert labels.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"

int main() {
  using namespace rll;

  // -- 1. A 300-example binary task, labeled by 5 of 20 simulated crowd
  //       workers per example. Expert labels stay hidden from training.
  Rng rng(7);
  data::SyntheticConfig config;
  config.num_examples = 300;
  data::Dataset dataset = GenerateSynthetic(config, &rng);
  crowd::WorkerPool workers({.num_workers = 20}, &rng);
  workers.Annotate(&dataset, /*votes_per_example=*/5, &rng);

  // -- 2. RLL with the Bayesian confidence estimator (the paper's best
  //       variant): groups of 1 positive pair + 3 negatives, tanh MLP
  //       encoder, logistic regression on the embeddings, 5-fold CV.
  core::RllPipelineOptions options;
  options.trainer.model.hidden_dims = {64, 32};
  options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
  options.trainer.epochs = 10;

  auto outcome = core::RunRllCrossValidation(dataset, options, &rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // -- 3. Report.
  std::printf("RLL-Bayesian, 5-fold CV on %zu examples:\n", dataset.size());
  std::printf("  accuracy = %.3f (+/- %.3f)\n", outcome->mean.accuracy,
              outcome->stddev.accuracy);
  std::printf("  F1       = %.3f (+/- %.3f)\n", outcome->mean.f1,
              outcome->stddev.f1);
  return 0;
}
