// Retrieval scenario: once an encoder is trained, its embeddings are a
// search space — "show me past classes that looked like this one" is how
// education platforms actually consume these models (pulling exemplars for
// coaching, routing to graders). This example trains RLL on the class-sim
// dataset, indexes the corpus with EmbeddingIndex, runs nearest-neighbor
// queries, and reports intrinsic embedding quality (raw features vs learned
// space).
//
// Run: ./build/examples/similar_retrieval

#include <cstdio>

#include "core/embedding_eval.h"
#include "core/embedding_index.h"
#include "core/rll_trainer.h"
#include "crowd/worker_pool.h"
#include "data/standardize.h"
#include "data/synthetic.h"

int main() {
  using namespace rll;

  Rng rng(42);
  data::Dataset dataset = GenerateSynthetic(data::ClassSimConfig(), &rng);
  crowd::WorkerPool workers({.num_workers = 25}, &rng);
  workers.Annotate(&dataset, 5, &rng);

  data::Standardizer standardizer;
  const Matrix features = standardizer.FitTransform(dataset.features());
  const std::vector<int> labels = dataset.MajorityVoteLabels();

  core::RllTrainerOptions options;
  options.model.hidden_dims = {64, 32};
  options.epochs = 12;
  options.confidence_mode = crowd::ConfidenceMode::kBayesian;
  core::RllTrainer trainer(options, &rng);
  auto summary = trainer.Train(
      features, labels,
      crowd::LabelConfidence(dataset, labels,
                             crowd::ConfidenceMode::kBayesian));
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  const Matrix embeddings = trainer.model().Embed(features);

  // ---- Intrinsic quality: learned space vs raw features.
  const core::EmbeddingQuality raw =
      core::EvaluateEmbeddings(features, dataset.true_labels());
  const core::EmbeddingQuality learned =
      core::EvaluateEmbeddings(embeddings, dataset.true_labels());
  std::printf("SIMILAR-CLASS RETRIEVAL — 472 classes, 32-dim embeddings\n\n");
  std::printf("embedding quality (vs expert labels):\n");
  std::printf("  %-22s %-12s %-12s\n", "", "raw features", "RLL space");
  std::printf("  %-22s %-12.3f %-12.3f\n", "cosine margin",
              raw.cosine_margin, learned.cosine_margin);
  std::printf("  %-22s %-12.3f %-12.3f\n", "silhouette", raw.silhouette,
              learned.silhouette);
  std::printf("  %-22s %-12.3f %-12.3f\n", "5-NN accuracy",
              core::KnnAccuracy(features, dataset.true_labels(), 5),
              core::KnnAccuracy(embeddings, dataset.true_labels(), 5));

  // ---- Build the index and run a few queries.
  core::EmbeddingIndex index;
  if (!index.Build(embeddings).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  std::printf("\nnearest neighbours (label agreement is what a grader "
              "would see):\n");
  for (size_t query : {0u, 100u, 200u}) {
    auto neighbors = index.Query(embeddings.Row(query), 6);
    if (!neighbors.ok()) continue;
    std::printf("  class %3zu (%s):", query,
                dataset.true_label(query) ? "good" : "bad");
    for (const core::Neighbor& n : *neighbors) {
      if (n.index == query) continue;  // Skip self-match.
      std::printf("  %zu(%s,%.2f)", n.index,
                  dataset.true_label(n.index) ? "good" : "bad",
                  n.similarity);
    }
    std::printf("\n");
  }

  // ---- Streaming: index a "new" class on the fly.
  auto added = index.Add(embeddings.Row(7));
  if (added.ok()) {
    std::printf("\nadded a new class as corpus entry %zu (index now %zu "
                "entries)\n",
                *added, index.size());
  }
  return 0;
}
