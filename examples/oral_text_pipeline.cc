// Mechanistic oral-fluency pipeline: instead of abstract feature vectors,
// start from simulated speech transcripts (the paper's upstream is ASR
// text), extract the linguistic features, collect crowd labels, and train
// RLL — the complete system a practitioner would deploy, end to end.
//
// Run: ./build/examples/oral_text_pipeline

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "baselines/softprob.h"
#include "crowd/worker_pool.h"
#include "text/text_dataset.h"

int main() {
  using namespace rll;

  Rng rng(42);
  text::TextSimConfig config;
  config.num_examples = 880;
  text::TextDatasetResult generated =
      text::GenerateOralTextDataset(config, &rng);
  data::Dataset& dataset = generated.dataset;

  std::printf("ORAL FLUENCY FROM TRANSCRIPTS — %zu simulated recordings\n\n",
              dataset.size());

  // Show what the simulator produces.
  const text::Vocabulary& vocabulary = text::Vocabulary::Default();
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.true_label(i) == 1) {
      std::printf("fluent   student: \"%s\"\n",
                  ToText(generated.transcripts[i], vocabulary, 24).c_str());
      break;
    }
  }
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.true_label(i) == 0) {
      std::printf("influent student: \"%s\"\n\n",
                  ToText(generated.transcripts[i], vocabulary, 24).c_str());
      break;
    }
  }

  std::printf("extracted features (%zu): ", text::NumFeatures());
  for (const std::string& name : text::FeatureNames()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  // Crowd labels, then method comparison.
  crowd::WorkerPool workers({.num_workers = 25}, &rng);
  workers.Annotate(&dataset, 5, &rng);

  auto report = [&dataset](const baselines::Method& method) {
    Rng eval_rng(7);
    auto outcome =
        baselines::CrossValidateMethod(dataset, method, 5, &eval_rng);
    if (!outcome.ok()) {
      std::printf("%-14s failed: %s\n", method.name().c_str(),
                  outcome.status().ToString().c_str());
      return;
    }
    std::printf("%-14s acc=%.3f f1=%.3f\n", method.name().c_str(),
                outcome->mean.accuracy, outcome->mean.f1);
    std::fflush(stdout);
  };

  std::printf("5-fold CV against expert labels:\n");
  report(baselines::SoftProbMethod());
  core::RllPipelineOptions options;
  options.trainer.model.hidden_dims = {64, 32};
  options.trainer.epochs = 12;
  options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
  report(baselines::RllVariantMethod(options));
  return 0;
}
