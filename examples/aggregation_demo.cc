// Crowd substrate demo: no representation learning, just label aggregation.
// Shows when the smart aggregators (Dawid–Skene EM, GLAD) pay off over
// majority vote as worker pools degrade — and how each method scores the
// workers themselves.
//
// Run: ./build/examples/aggregation_demo

#include <cstdio>

#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/majority_vote.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"

namespace {

double Recovery(const rll::crowd::Aggregator& agg,
                const rll::data::Dataset& d) {
  auto result = agg.Run(d);
  if (!result.ok()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    correct += (result->labels[i] == d.true_label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

}  // namespace

int main() {
  using namespace rll;

  std::printf("AGGREGATION DEMO — 600 items, 5 votes each\n\n");
  std::printf("pool composition                  |   MV    DS-EM   GLAD\n");
  std::printf("-----------------------------------------------------------\n");

  struct PoolSpec {
    const char* label;
    std::vector<double> abilities;
  };
  const std::vector<PoolSpec> pools = {
      {"10 solid workers (0.85)", std::vector<double>(10, 0.85)},
      {"3 experts + 7 mediocre",
       {0.97, 0.97, 0.97, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65}},
      {"3 experts + 7 spammers (0.52)",
       {0.97, 0.97, 0.97, 0.52, 0.52, 0.52, 0.52, 0.52, 0.52, 0.52}},
      {"10 weak workers (0.60)", std::vector<double>(10, 0.60)},
  };

  for (const PoolSpec& spec : pools) {
    Rng rng(11);
    data::SyntheticConfig config;
    config.num_examples = 600;
    data::Dataset d = GenerateSynthetic(config, &rng);
    crowd::WorkerPool pool(spec.abilities, spec.abilities);
    pool.Annotate(&d, 5, &rng);
    std::printf("%-33s | %6.3f  %6.3f  %6.3f\n", spec.label,
                Recovery(crowd::MajorityVote(), d),
                Recovery(crowd::DawidSkene(), d),
                Recovery(crowd::Glad(), d));
    std::fflush(stdout);
  }

  // Worker-score view on the spammer pool: do the models spot the experts?
  Rng rng(11);
  data::SyntheticConfig config;
  config.num_examples = 600;
  data::Dataset d = GenerateSynthetic(config, &rng);
  crowd::WorkerPool pool(pools[2].abilities, pools[2].abilities);
  pool.Annotate(&d, 5, &rng);
  crowd::DawidSkene ds;
  crowd::Glad glad;
  auto ds_result = ds.Run(d);
  auto glad_result = glad.Run(d);
  if (ds_result.ok() && glad_result.ok()) {
    std::printf("\nper-worker scores on the spammer pool "
                "(workers 0-2 are the experts):\n");
    std::printf("  worker | true acc | DS-EM est | GLAD alpha\n");
    for (size_t w = 0; w < pool.num_workers(); ++w) {
      std::printf("  %6zu | %8.2f | %9.3f | %10.3f\n", w,
                  pool.WorkerAccuracy(w), ds_result->worker_quality[w],
                  glad_result->worker_quality[w]);
    }
  }
  return 0;
}
