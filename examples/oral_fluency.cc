// Oral-fluency scenario (the paper's "oral" application): predict whether a
// student's spoken answer to an oral math question is fluent, from
// fixed-length features with 5 crowdsourced votes per clip.
//
// This example walks the full decision a practitioner faces:
//   1. inspect how inconsistent the crowd labels actually are;
//   2. compare a plain majority-vote + logistic-regression baseline against
//      the three RLL variants, per fold;
//   3. show the learned-confidence view of a few contested examples.
//
// Run: ./build/examples/oral_fluency

#include <cstdio>

#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "baselines/softprob.h"
#include "classify/logistic_regression.h"
#include "crowd/agreement.h"
#include "crowd/confidence.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"

int main() {
  using namespace rll;

  Rng rng(42);
  data::Dataset dataset = GenerateSynthetic(data::OralSimConfig(), &rng);
  crowd::WorkerPool workers({.num_workers = 25}, &rng);
  workers.Annotate(&dataset, 5, &rng);

  // ---- 1. How noisy are the crowd labels?
  auto stats = crowd::ComputeAgreement(dataset);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("ORAL FLUENCY — 880 simulated clips, 5 votes each\n\n");
  std::printf("crowd-label quality:\n");
  std::printf("  Fleiss kappa            = %.3f\n", stats->fleiss_kappa);
  std::printf("  unanimous examples      = %.1f%%\n",
              100.0 * stats->unanimous_fraction);
  std::printf("  majority-vote accuracy  = %.3f (vs expert labels)\n\n",
              stats->majority_vote_accuracy);
  std::printf("  votes histogram (positives of 5): ");
  for (size_t v = 0; v < stats->vote_histogram.size(); ++v) {
    std::printf("%zu:%zu  ", v, stats->vote_histogram[v]);
  }
  std::printf("\n\n");

  // ---- 2. Baseline vs RLL variants (5-fold CV).
  std::printf("%-14s  %-9s %-9s\n", "method", "accuracy", "F1");
  std::printf("--------------------------------------\n");
  auto report = [&](const baselines::Method& method) {
    Rng eval_rng(7);
    auto outcome = baselines::CrossValidateMethod(dataset, method, 5,
                                                  &eval_rng);
    if (!outcome.ok()) {
      std::printf("%-14s  failed: %s\n", method.name().c_str(),
                  outcome.status().ToString().c_str());
      return;
    }
    std::printf("%-14s  %-9.3f %-9.3f\n", method.name().c_str(),
                outcome->mean.accuracy, outcome->mean.f1);
    std::fflush(stdout);
  };

  report(baselines::SoftProbMethod());
  for (auto mode :
       {crowd::ConfidenceMode::kNone, crowd::ConfidenceMode::kMle,
        crowd::ConfidenceMode::kBayesian}) {
    core::RllPipelineOptions options;
    options.trainer.model.hidden_dims = {64, 32};
    options.trainer.epochs = 12;
    options.trainer.confidence_mode = mode;
    report(baselines::RllVariantMethod(options));
  }

  // ---- 3. What the Bayesian estimator believes about contested clips.
  std::printf("\ncontested clips (3-2 votes) under eq. (1) vs eq. (2):\n");
  const auto mle =
      crowd::LabelPositiveness(dataset, crowd::ConfidenceMode::kMle);
  const auto bayes =
      crowd::LabelPositiveness(dataset, crowd::ConfidenceMode::kBayesian);
  int shown = 0;
  for (size_t i = 0; i < dataset.size() && shown < 5; ++i) {
    const size_t pos = dataset.PositiveVotes(i);
    if (pos != 3) continue;
    std::printf("  clip %3zu: votes 3/5 → MLE %.2f, Bayesian %.2f "
                "(expert: %s)\n",
                i, mle[i], bayes[i],
                dataset.true_label(i) == 1 ? "fluent" : "influent");
    ++shown;
  }
  return 0;
}
