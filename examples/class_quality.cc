// Class-quality scenario (the paper's "class" application): predict whether
// an online 1-on-1 class is of good quality from interaction features, with
// 5 crowd votes per 65-minute video — the regime where labels are most
// expensive and most inconsistent.
//
// Demonstrates the diagnostic side of the library:
//   1. Dawid–Skene worker-reliability report (who to re-hire);
//   2. GLAD item-difficulty histogram (which videos need expert review);
//   3. the RLL-Bayesian pipeline, plus a model checkpoint for serving.
//
// Run: ./build/examples/class_quality

#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/worker_pool.h"
#include "data/standardize.h"
#include "data/synthetic.h"

int main() {
  using namespace rll;

  Rng rng(42);
  data::Dataset dataset = GenerateSynthetic(data::ClassSimConfig(), &rng);
  crowd::WorkerPool workers({.num_workers = 25}, &rng);
  workers.Annotate(&dataset, 5, &rng);

  std::printf("CLASS QUALITY — 472 simulated 1v1 class videos, 5 votes "
              "each\n\n");

  // ---- 1. Worker reliability via Dawid–Skene.
  crowd::DawidSkene ds;
  auto ds_result = ds.Run(dataset);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "%s\n", ds_result.status().ToString().c_str());
    return 1;
  }
  std::printf("Dawid–Skene worker report (%d EM iterations):\n",
              ds_result->iterations);
  std::vector<size_t> order(ds_result->worker_quality.size());
  for (size_t w = 0; w < order.size(); ++w) order[w] = w;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ds_result->worker_quality[a] > ds_result->worker_quality[b];
  });
  std::printf("  best workers :");
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  #%zu (%.2f, true %.2f)", order[i],
                ds_result->worker_quality[order[i]],
                workers.WorkerAccuracy(order[i]));
  }
  std::printf("\n  worst workers:");
  for (size_t i = order.size() - 3; i < order.size(); ++i) {
    std::printf("  #%zu (%.2f, true %.2f)", order[i],
                ds_result->worker_quality[order[i]],
                workers.WorkerAccuracy(order[i]));
  }
  std::printf("\n\n");

  // ---- 2. Item difficulty via GLAD.
  crowd::Glad glad;
  auto glad_result = glad.Run(dataset);
  if (!glad_result.ok()) {
    std::fprintf(stderr, "%s\n", glad_result.status().ToString().c_str());
    return 1;
  }
  std::vector<double> difficulty = glad_result->item_difficulty;
  std::sort(difficulty.begin(), difficulty.end());
  std::printf("GLAD item difficulty (1/beta): median %.2f, p90 %.2f — the "
              "top decile\nare the videos worth routing to experts.\n\n",
              difficulty[difficulty.size() / 2],
              difficulty[difficulty.size() * 9 / 10]);

  // ---- 3. RLL-Bayesian pipeline + checkpoint.
  core::RllPipelineOptions options;
  options.trainer.model.hidden_dims = {64, 32};
  options.trainer.epochs = 12;
  options.trainer.confidence_mode = crowd::ConfidenceMode::kBayesian;
  auto outcome = core::RunRllCrossValidation(dataset, options, &rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("RLL-Bayesian, 5-fold CV: accuracy %.3f (+/- %.3f), "
              "F1 %.3f (+/- %.3f)\n",
              outcome->mean.accuracy, outcome->stddev.accuracy,
              outcome->mean.f1, outcome->stddev.f1);

  // Train a final model on everything and save the encoder for serving.
  data::Standardizer standardizer;
  const Matrix features = standardizer.FitTransform(dataset.features());
  const std::vector<int> labels = dataset.MajorityVoteLabels();
  core::RllTrainer trainer(options.trainer, &rng);
  auto train_status = trainer.Train(
      features, labels,
      crowd::LabelConfidence(dataset, labels,
                             crowd::ConfidenceMode::kBayesian));
  if (!train_status.ok()) {
    std::fprintf(stderr, "%s\n", train_status.status().ToString().c_str());
    return 1;
  }
  const char* path = "class_quality_encoder.ckpt";
  if (trainer.model().Save(path).ok()) {
    std::printf("final encoder checkpoint written to %s\n", path);
  }
  return 0;
}
