// Tests for the bench regression gate (tools/gate/): metric extraction
// from the three JSON shapes the repo emits, direction heuristics,
// tolerance-band comparison (including an injected 2x latency
// regression), and self-comparison of the checked-in baselines.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "gate/bench_gate_lib.h"
#include "serve/json.h"

namespace rll::gate {
namespace {

std::vector<Metric> Extract(const std::string& json,
                            const std::string& key = "") {
  auto parsed = serve::ParseJson(json);
  RLL_CHECK(parsed.ok());
  auto metrics = ExtractMetrics(*parsed, key);
  RLL_CHECK_MSG(metrics.ok(), metrics.status().ToString().c_str());
  return *metrics;
}

TEST(GateExtractTest, ReadsBenchReporterRecords) {
  const auto metrics = Extract(
      R"({"bench":"x","records":[
           {"name":"closed_loop","wall_ms":12.5,"throughput":100.0},
           {"name":"latency_p99_ms","wall_ms":3.5,"throughput":null}]})");
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].name, "closed_loop");
  EXPECT_DOUBLE_EQ(metrics[0].value, 12.5);
  EXPECT_EQ(metrics[1].name, "latency_p99_ms");
  EXPECT_DOUBLE_EQ(metrics[1].value, 3.5);
}

TEST(GateExtractTest, ScalesGoogleBenchmarkTimeUnits) {
  const auto metrics = Extract(
      R"({"benchmarks":[
           {"name":"BM_Matmul/32","real_time":2500000.0,"time_unit":"ns"},
           {"name":"BM_Dot/8","real_time":1500.0,"time_unit":"us"},
           {"name":"BM_Slow","real_time":2.0,"time_unit":"s"}]})");
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(metrics[0].value, 2.5);    // ns -> ms
  EXPECT_DOUBLE_EQ(metrics[1].value, 1.5);    // us -> ms
  EXPECT_DOUBLE_EQ(metrics[2].value, 2000.0); // s -> ms
}

TEST(GateExtractTest, WalksDottedKeyPaths) {
  const std::string doc =
      R"({"micro_ops":{"threads_1":[{"name":"BM_A","real_time_ms":1.25}]},
          "table1_methods":{"threads_1":{"glad":0.9,"majority":0.8}}})";
  const auto array_metrics = Extract(doc, "micro_ops.threads_1");
  ASSERT_EQ(array_metrics.size(), 1u);
  EXPECT_EQ(array_metrics[0].name, "BM_A");
  EXPECT_DOUBLE_EQ(array_metrics[0].value, 1.25);

  // Objects of bare numbers become (key, value) metrics.
  const auto object_metrics = Extract(doc, "table1_methods.threads_1");
  ASSERT_EQ(object_metrics.size(), 2u);
}

TEST(GateExtractTest, RejectsUnknownShapesAndPaths) {
  auto parsed = serve::ParseJson(R"({"other":[1,2]})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(ExtractMetrics(*parsed, "").ok());
  EXPECT_FALSE(ExtractMetrics(*parsed, "missing.path").ok());
  EXPECT_FALSE(LoadMetricsFile("/nonexistent/bench.json", "").ok());
}

TEST(GateExtractTest, LiftsAllocsPerOpIntoItsOwnMetric) {
  const auto metrics = Extract(
      R"({"benchmarks":[
           {"name":"BM_MulInto/64","real_time_ms":0.5,"allocs_per_op":0},
           {"name":"BM_Matmul/64","real_time_ms":0.6}]})");
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].name, "BM_MulInto/64.allocs_per_op");
  EXPECT_DOUBLE_EQ(metrics[0].value, 0.0);
  EXPECT_EQ(metrics[1].name, "BM_MulInto/64");
  EXPECT_EQ(metrics[2].name, "BM_Matmul/64");
}

TEST(GateExtractTest, LiftsOverheadRatioIntoItsOwnMetric) {
  const auto metrics = Extract(
      R"({"benchmarks":[
           {"name":"BM_ProfilerOverhead","real_time_ms":12.0,
            "overhead_ratio":1.02}]})");
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].name, "BM_ProfilerOverhead.overhead_ratio");
  EXPECT_DOUBLE_EQ(metrics[0].value, 1.02);
  // "overhead" is a lower-is-better keyword: a profiler that gets more
  // expensive fails the gate like a latency regression would.
  EXPECT_EQ(DirectionFor(metrics[0].name), Direction::kLowerIsBetter);
  EXPECT_EQ(metrics[1].name, "BM_ProfilerOverhead");
}

TEST(GateCompareTest, AllocRegressionFromZeroBaselineFails) {
  // The steady-state loops are pinned at zero allocations; any growth past
  // the absolute slack must fail even though the ratio is undefined.
  const std::vector<Metric> baseline = {{"BM_MulInto/64.allocs_per_op", 0.0}};
  const std::vector<Metric> regressed = {{"BM_MulInto/64.allocs_per_op", 3.0}};
  GateOptions options;
  EXPECT_TRUE(Compare(baseline, baseline, options).pass());
  EXPECT_FALSE(Compare(baseline, regressed, options).pass());
}

TEST(GateDirectionTest, ClassifiesByKeyword) {
  EXPECT_EQ(DirectionFor("latency_p99_ms"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("embed_wall_ms"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("metricsz_scrape_rtt_ms"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("cache_hit_rate"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionFor("windowed_p99_agreement"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionFor("rows_per_sec"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionFor("allocs_per_op"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("BM_MulInto/64.allocs_per_op"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionFor("mean_batch_size"), Direction::kBand);
}

TEST(GateCompareTest, PassesIdenticalRunsAndCatchesRegression) {
  const std::vector<Metric> baseline = {{"latency_p99_ms", 10.0},
                                        {"rows_per_sec", 100.0}};
  GateOptions options;  // tolerance 2.0

  EXPECT_TRUE(Compare(baseline, baseline, options).pass());

  // Injected 2x latency regression (2.5x to clear the 2.0 band): fails.
  const std::vector<Metric> slower = {{"latency_p99_ms", 25.0},
                                      {"rows_per_sec", 100.0}};
  const GateReport report = Compare(baseline, slower, options);
  EXPECT_FALSE(report.pass());
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.verdicts[0].name, "latency_p99_ms");
  EXPECT_FALSE(report.verdicts[0].pass);
  EXPECT_NE(FormatReport(report).find("FAIL"), std::string::npos);

  // A throughput collapse fails the higher-is-better bound.
  const std::vector<Metric> starved = {{"latency_p99_ms", 10.0},
                                       {"rows_per_sec", 20.0}};
  EXPECT_FALSE(Compare(baseline, starved, options).pass());
  // A throughput improvement does not.
  const std::vector<Metric> faster = {{"latency_p99_ms", 1.0},
                                      {"rows_per_sec", 900.0}};
  EXPECT_TRUE(Compare(baseline, faster, options).pass());
}

TEST(GateCompareTest, AbsoluteSlackShieldsSubNoiseTimings) {
  // p50 of 1us "tripling" to 3us is timer noise, not a regression.
  const std::vector<Metric> baseline = {{"latency_p50_ms", 0.001}};
  const std::vector<Metric> current = {{"latency_p50_ms", 0.003}};
  GateOptions options;
  EXPECT_TRUE(Compare(baseline, current, options).pass());
  options.abs_slack = 0.0;
  EXPECT_FALSE(Compare(baseline, current, options).pass());
}

TEST(GateCompareTest, PerMetricToleranceAndSkip) {
  const std::vector<Metric> baseline = {{"noisy_wall_ms", 1.0},
                                        {"steady_wall_ms", 1.0}};
  const std::vector<Metric> current = {{"noisy_wall_ms", 8.0},
                                       {"steady_wall_ms", 1.0}};
  GateOptions options;
  EXPECT_FALSE(Compare(baseline, current, options).pass());
  options.per_metric_tolerance["noisy_wall_ms"] = 10.0;
  EXPECT_TRUE(Compare(baseline, current, options).pass());

  options.per_metric_tolerance.clear();
  options.skip_substrings = {"noisy"};
  const GateReport report = Compare(baseline, current, options);
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.compared, 1u);
}

TEST(GateCompareTest, MissingMetricsFailOnlyUnderRequireAll) {
  const std::vector<Metric> baseline = {{"a_wall_ms", 1.0},
                                        {"b_wall_ms", 1.0}};
  const std::vector<Metric> current = {{"a_wall_ms", 1.0}};
  GateOptions options;
  GateReport lenient = Compare(baseline, current, options);
  EXPECT_TRUE(lenient.pass());
  EXPECT_EQ(lenient.missing, 1u);
  options.require_all = true;
  EXPECT_FALSE(Compare(baseline, current, options).pass());
}

// The checked-in baselines must always gate-pass against themselves:
// this pins the whole pipeline (file load, shape detection, extraction,
// direction rules, comparison) on the real artifacts CI uses.
TEST(GateSelfTest, CheckedInBaselinesSelfCompare) {
  const std::string root = RLL_SOURCE_DIR;
  auto serve_metrics = LoadMetricsFile(root + "/BENCH_serve.json", "");
  ASSERT_TRUE(serve_metrics.ok()) << serve_metrics.status().ToString();
  ASSERT_FALSE(serve_metrics->empty());
  {
    GateOptions options;
    options.require_all = true;
    EXPECT_TRUE(Compare(*serve_metrics, *serve_metrics, options).pass());
  }
  auto threads =
      LoadMetricsFile(root + "/BENCH_threads.json", "micro_ops.threads_1");
  ASSERT_TRUE(threads.ok()) << threads.status().ToString();
  ASSERT_FALSE(threads->empty());
  GateOptions options;
  options.require_all = true;
  EXPECT_TRUE(Compare(*threads, *threads, options).pass());
}

}  // namespace
}  // namespace rll::gate
