// Tests for the event-plane serving stack: the sharded embedding index's
// bitwise merge guarantee, hot model reload (generation swap under load,
// shutdown ordering, the reloadz verb), the background ReloadManager with
// its --watch-bundle mtime poller, and the epoll EventServer's framing
// and fd hygiene over real loopback sockets.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/embedding_index.h"
#include "core/model_bundle.h"
#include "core/rll_model.h"
#include "core/sharded_index.h"
#include "data/dataset.h"
#include "data/standardize.h"
#include "serve/event/event_server.h"
#include "serve/event/reload_manager.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server_core.h"
#include "tensor/init.h"
#include "tensor/matrix.h"

namespace rll::serve {
namespace {

// ---------------------------------------------------------------- fixtures

/// A tiny trained-enough bundle; different seeds give bitwise-different
/// encoders, which is how the reload tests observe a generation swap.
core::ModelBundle TestBundle(uint64_t seed = 7, size_t input_dim = 3) {
  Rng rng(seed);
  Matrix raw = RandomNormal(20, input_dim, &rng, 1.0, 2.0);
  data::Standardizer standardizer;
  standardizer.Fit(raw);
  core::RllModelConfig config;
  config.input_dim = input_dim;
  config.hidden_dims = {6, 4};
  core::RllModel model(config, &rng);
  auto bundle = core::ModelBundle::Create(standardizer, model, &rng);
  RLL_CHECK(bundle.ok());
  return std::move(*bundle);
}

/// A small linearly-separable labeled corpus for predict/neighbors.
data::Dataset TestCorpus(size_t n = 24, size_t dim = 3) {
  Rng rng(11);
  Matrix features(n, dim);
  std::vector<int> labels(n);
  for (size_t r = 0; r < n; ++r) {
    labels[r] = r % 2 == 0 ? 1 : 0;
    const double center = labels[r] == 1 ? 2.0 : -2.0;
    for (size_t c = 0; c < dim; ++c) {
      features(r, c) = center + 0.3 * rng.Normal(0.0, 1.0);
    }
  }
  return data::Dataset(std::move(features), std::move(labels));
}

std::unique_ptr<ServerCore> MakeCore(const data::Dataset* corpus,
                                     ServerCoreOptions options = {},
                                     std::string source = "") {
  auto core =
      ServerCore::Create(TestBundle(), corpus, options, std::move(source));
  RLL_CHECK(core.ok());
  return std::move(*core);
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RLL_CHECK_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  RLL_CHECK_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

std::string RecvLine(int fd) {
  std::string line;
  char ch = 0;
  while (::recv(fd, &ch, 1, 0) == 1) {
    if (ch == '\n') return line;
    line += ch;
  }
  return line;
}

/// Open fds in this process, via /proc/self/fd.
size_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  RLL_CHECK(dir != nullptr);
  size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

// ------------------------------------------------------------ ShardedIndex

Matrix RandomEmbeddings(size_t rows, size_t dim, uint64_t seed) {
  Rng rng(seed);
  return RandomNormal(rows, dim, &rng, 0.0, 1.0);
}

TEST(ShardedIndexTest, MatchesUnshardedScanBitwiseAtAnyShardCount) {
  const Matrix embeddings = RandomEmbeddings(53, 8, 3);
  core::EmbeddingIndex flat;
  ASSERT_TRUE(flat.Build(embeddings).ok());

  Rng rng(29);
  std::vector<Matrix> queries;
  for (int q = 0; q < 10; ++q) {
    queries.push_back(RandomNormal(1, 8, &rng, 0.0, 1.0));
  }

  for (size_t shards : {1u, 2u, 4u, 7u, 53u, 100u}) {
    core::ShardedEmbeddingIndex sharded;
    ASSERT_TRUE(sharded.Build(embeddings, shards).ok());
    for (const Matrix& query : queries) {
      for (size_t k : {1u, 5u, 53u}) {
        auto want = flat.Query(query, k);
        auto got = sharded.Query(query, k);
        ASSERT_TRUE(want.ok());
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(want->size(), got->size()) << "shards=" << shards;
        for (size_t i = 0; i < want->size(); ++i) {
          EXPECT_EQ((*want)[i].index, (*got)[i].index)
              << "shards=" << shards << " k=" << k << " rank=" << i;
          // Bitwise, not approximate: the merge must preserve the exact
          // doubles the unsharded scan produces.
          EXPECT_EQ((*want)[i].similarity, (*got)[i].similarity)
              << "shards=" << shards << " k=" << k << " rank=" << i;
        }
      }
    }
  }
}

TEST(ShardedIndexTest, PartitionCoversEveryRowExactlyOnce) {
  const Matrix embeddings = RandomEmbeddings(10, 4, 5);
  core::ShardedEmbeddingIndex index;
  ASSERT_TRUE(index.Build(embeddings, 4).ok());
  ASSERT_EQ(index.shard_count(), 4u);
  // 10 rows over 4 shards: the first 10 % 4 = 2 shards get the extra row.
  EXPECT_EQ(index.shard_size(0), 3u);
  EXPECT_EQ(index.shard_size(1), 3u);
  EXPECT_EQ(index.shard_size(2), 2u);
  EXPECT_EQ(index.shard_size(3), 2u);
  size_t total = 0;
  for (size_t s = 0; s < index.shard_count(); ++s) {
    total += index.shard_size(s);
  }
  EXPECT_EQ(total, index.size());
  EXPECT_EQ(index.size(), 10u);
  EXPECT_EQ(index.dim(), 4u);
}

TEST(ShardedIndexTest, ShardCountClampsToRowsAndRejectsBadInput) {
  const Matrix embeddings = RandomEmbeddings(3, 2, 9);
  core::ShardedEmbeddingIndex index;
  ASSERT_TRUE(index.Build(embeddings, 16).ok());
  EXPECT_EQ(index.shard_count(), 3u);  // Clamped: every shard non-empty.
  EXPECT_FALSE(index.Build(embeddings, 0).ok());
  EXPECT_FALSE(index.Build(Matrix(), 2).ok());
}

TEST(ShardedIndexTest, TiesRankByCorpusIndexAcrossShardBoundaries) {
  // Duplicate rows produce exactly equal similarities; the total order
  // must break those ties by corpus index no matter which shard wins.
  Matrix embeddings(6, 2);
  for (size_t r = 0; r < 6; ++r) {
    embeddings(r, 0) = 1.0;
    embeddings(r, 1) = 2.0;
  }
  Matrix query(1, 2);
  query(0, 0) = 1.0;
  query(0, 1) = 2.0;
  for (size_t shards : {1u, 2u, 3u, 6u}) {
    core::ShardedEmbeddingIndex index;
    ASSERT_TRUE(index.Build(embeddings, shards).ok());
    auto result = index.Query(query, 6);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 6u);
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_EQ((*result)[i].index, i) << "shards=" << shards;
    }
  }
}

TEST(ServerCoreShardTest, NeighborsResponsesIdenticalAcrossShardCounts) {
  const data::Dataset corpus = TestCorpus(25, 3);
  const std::vector<std::string> lines = {
      R"({"id": 1, "type": "neighbors", "features": [1.5, 2.0, 1.8], "k": 5})",
      R"({"id": 2, "type": "neighbors", "features": [-2.0, -1.7, -2.2], "k": 25})",
      R"({"id": 3, "type": "neighbors", "features": [0.0, 0.1, -0.1], "k": 1})",
      R"({"id": 4, "type": "predict", "features": [2.1, 1.9, 2.0]})",
  };
  ServerCoreOptions base;
  auto reference = MakeCore(&corpus, base);
  std::vector<std::string> want;
  for (const std::string& line : lines) {
    want.push_back(reference->HandleLine(line));
  }
  for (size_t shards : {2u, 4u, 25u}) {
    ServerCoreOptions options;
    options.shards = shards;
    auto core = MakeCore(&corpus, options);
    EXPECT_EQ(core->index_shards(), std::min(shards, corpus.size()));
    for (size_t i = 0; i < lines.size(); ++i) {
      // The serialized wire bytes — ranks, indices, and every similarity
      // digit — must match the unsharded core exactly.
      EXPECT_EQ(core->HandleLine(lines[i]), want[i]) << "shards=" << shards;
    }
  }
}

// ----------------------------------------------------------------- Reload

TEST(ServerCoreReloadTest, SwapBumpsGenerationAndChangesTheModel) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus, {}, "v1.rll");
  EXPECT_EQ(core->generation(), 1u);
  EXPECT_EQ(core->bundle_source(), "v1.rll");

  Request request;
  request.type = RequestType::kEmbed;
  request.features = {0.5, -1.0, 2.0};
  const Response before = core->Handle(request);
  ASSERT_TRUE(before.ok) << before.message;

  ASSERT_TRUE(core->ReloadFromBundle(TestBundle(99), "v2.rll").ok());
  EXPECT_EQ(core->generation(), 2u);
  EXPECT_EQ(core->bundle_source(), "v2.rll");
  EXPECT_EQ(core->reloads_total(), 1u);
  EXPECT_EQ(core->reload_failures(), 0u);

  const Response after = core->Handle(request);
  ASSERT_TRUE(after.ok) << after.message;
  EXPECT_NE(before.embedding, after.embedding);

  // Neighbors still work: the corpus was re-embedded under the new model.
  Request neighbors;
  neighbors.type = RequestType::kNeighbors;
  neighbors.features = {1.5, 2.0, 1.8};
  neighbors.k = 3;
  const Response found = core->Handle(neighbors);
  ASSERT_TRUE(found.ok) << found.message;
  EXPECT_EQ(found.neighbors.size(), 3u);
}

TEST(ServerCoreReloadTest, RejectsBundleWithWrongInputDim) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);
  const Status status =
      core->ReloadFromBundle(TestBundle(13, /*input_dim=*/5), "bad.rll");
  EXPECT_FALSE(status.ok());
  // The old generation keeps serving untouched.
  EXPECT_EQ(core->generation(), 1u);
  EXPECT_EQ(core->reload_failures(), 1u);
  EXPECT_EQ(core->reloads_total(), 0u);
  Request request;
  request.type = RequestType::kEmbed;
  request.features = {0.5, -1.0, 2.0};
  EXPECT_TRUE(core->Handle(request).ok);
}

TEST(ServerCoreReloadTest, ShutdownRefusesPendingSwap) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);
  core->Shutdown();
  const Status status = core->ReloadFromBundle(TestBundle(99), "late.rll");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shutting down"), std::string::npos)
      << status.message();
  EXPECT_EQ(core->generation(), 1u);
}

TEST(ServerCoreReloadTest, ReloadCompletedBeforeShutdownSticks) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);
  ASSERT_TRUE(core->ReloadFromBundle(TestBundle(99), "v2.rll").ok());
  core->Shutdown();
  EXPECT_EQ(core->generation(), 2u);
  EXPECT_EQ(core->bundle_source(), "v2.rll");
}

TEST(ServerCoreReloadTest, ReloadUnderLoadDropsNoRequests) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 250;
  std::atomic<int> failures{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&core, &failures, &start, t] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kRequestsPerThread; ++i) {
        Request request;
        if (i % 2 == 0) {
          request.type = RequestType::kEmbed;
          request.features = {0.1 * t, -1.0, 0.01 * i};
        } else {
          request.type = RequestType::kNeighbors;
          request.features = {0.1 * t, 1.0, 0.01 * i};
          request.k = 3;
        }
        const Response response = core->Handle(request);
        if (!response.ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  start.store(true, std::memory_order_release);
  // Five full generation swaps while every client thread hammers Handle:
  // each request pins one generation for its whole lifetime, so none may
  // observe a torn state or a stopped batcher.
  for (uint64_t swap = 0; swap < 5; ++swap) {
    ASSERT_TRUE(
        core->ReloadFromBundle(TestBundle(100 + swap), "swap.rll").ok());
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(core->generation(), 6u);
  EXPECT_EQ(core->reloads_total(), 5u);
  EXPECT_EQ(core->reload_failures(), 0u);
}

TEST(ServerCoreReloadTest, ReloadzStatusReportsGenerationAndSource) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus, {}, "v1.rll");
  ASSERT_TRUE(core->ReloadFromBundle(TestBundle(99), "v2.rll").ok());
  const std::string reply = core->HandleLine(
      R"({"id": 1, "type": "reloadz", "action": "status"})");
  auto parsed = ParseJson(reply);
  ASSERT_TRUE(parsed.ok()) << reply;
  EXPECT_TRUE(parsed->Find("ok")->boolean);
  const JsonValue* payload = parsed->Find("payload");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->Find("generation")->number, 2.0);
  EXPECT_EQ(payload->Find("reloads")->number, 1.0);
  EXPECT_EQ(payload->Find("failures")->number, 0.0);
  EXPECT_EQ(payload->Find("source")->string, "v2.rll");
}

TEST(ServerCoreReloadTest, ReloadzReloadRoutesThroughHandler) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus, {}, "v1.rll");
  std::string requested = "unset";
  core->SetReloadRequestHandler([&requested](const std::string& path) {
    requested = path;
    return Status::OK();
  });
  const std::string reply = core->HandleLine(
      R"({"id": 2, "type": "reloadz", "action": "reload", "path": "v2.rll"})");
  auto parsed = ParseJson(reply);
  ASSERT_TRUE(parsed.ok()) << reply;
  EXPECT_TRUE(parsed->Find("ok")->boolean);
  EXPECT_EQ(parsed->Find("payload")->Find("status")->string, "accepted");
  EXPECT_EQ(requested, "v2.rll");

  // A failing handler surfaces as an error response, not a silent drop.
  core->SetReloadRequestHandler([](const std::string&) {
    return Status::FailedPrecondition("reload manager is not running");
  });
  const std::string refused = core->HandleLine(
      R"({"id": 3, "type": "reloadz", "action": "reload"})");
  auto refused_parsed = ParseJson(refused);
  ASSERT_TRUE(refused_parsed.ok()) << refused;
  EXPECT_FALSE(refused_parsed->Find("ok")->boolean);
}

// ---------------------------------------------------------- ReloadManager

TEST(ReloadManagerTest, RequestReloadFailsUnlessRunning) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);
  ReloadManager manager(core.get(), {});
  EXPECT_FALSE(manager.RequestReload("x.rll").ok());  // Never started.
  manager.Start();
  manager.Stop();
  EXPECT_FALSE(manager.RequestReload("x.rll").ok());  // Already stopped.
}

TEST(ReloadManagerTest, RequestedReloadRunsInBackground) {
  const std::string path = ::testing::TempDir() + "/event_reload_v2.rll";
  ASSERT_TRUE(TestBundle(99).Save(path).ok());
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus, {}, "v1.rll");
  ReloadManager manager(core.get(), {});
  manager.Start();
  ASSERT_TRUE(manager.RequestReload(path).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (core->generation() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(core->generation(), 2u);
  EXPECT_EQ(core->bundle_source(), path);
  manager.Stop();
  ::unlink(path.c_str());
}

TEST(ReloadManagerTest, WatchFiresOnBundleMtimeChange) {
  const std::string path = ::testing::TempDir() + "/event_watch.rll";
  ASSERT_TRUE(TestBundle(7).Save(path).ok());
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus, {}, path);

  ReloadManagerOptions options;
  options.watch_path = path;
  options.watch_interval_ms = 10;
  ReloadManager manager(core.get(), options);
  manager.Start();
  // Let the watcher record the initial mtime (taken at thread start) and
  // tick a few times before the file changes underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(manager.watch_triggers(), 0u);  // Same file: no false trigger.

  ASSERT_TRUE(TestBundle(99).Save(path).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (core->generation() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(core->generation(), 2u);
  EXPECT_GE(manager.watch_triggers(), 1u);
  manager.Stop();
  ::unlink(path.c_str());
}

// ------------------------------------------------------------ EventServer

TEST(EventServerTest, SurvivesSplitFramesAndMalformedLines) {
  auto core = MakeCore(nullptr);
  EventServerOptions options;  // port 0: ephemeral.
  EventServer server(options, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  const int fd = ConnectLoopback(server.port());
  const std::string request =
      R"({"id": 1, "type": "embed", "features": [1.0, 2.0, 3.0]})" "\n";
  // Byte-at-a-time: every recv on the server side delivers a partial
  // frame, so the incremental parser has to stitch the line back together.
  for (char ch : request) {
    SendAll(fd, std::string(1, ch));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string reply = RecvLine(fd);
  auto parsed = ParseJson(reply);
  ASSERT_TRUE(parsed.ok()) << reply;
  EXPECT_TRUE(parsed->Find("ok")->boolean);

  // Malformed JSON gets an error response but keeps the connection open.
  SendAll(fd, "this is not json\n");
  reply = RecvLine(fd);
  parsed = ParseJson(reply);
  ASSERT_TRUE(parsed.ok()) << reply;
  EXPECT_FALSE(parsed->Find("ok")->boolean);
  EXPECT_EQ(parsed->Find("error")->string, "bad_request");

  // Two pipelined requests in one segment produce two in-order replies.
  SendAll(fd,
          R"({"id": 2, "type": "embed", "features": [1.0, 2.0, 3.0]})" "\n"
          R"({"id": 3, "type": "embed", "features": [4.0, 5.0, 6.0]})" "\n");
  auto first = ParseJson(RecvLine(fd));
  auto second = ParseJson(RecvLine(fd));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Find("id")->number, 2.0);
  EXPECT_EQ(second->Find("id")->number, 3.0);

  // A final unterminated line is still answered once the client half-closes.
  SendAll(fd, R"({"id": 4, "type": "embed", "features": [1.0, 2.0, 3.0]})");
  ::shutdown(fd, SHUT_WR);
  auto last = ParseJson(RecvLine(fd));
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->Find("id")->number, 4.0);
  ::close(fd);

  server.Stop();
  serve_thread.join();
}

TEST(EventServerTest, OversizedLineIsRejectedAndConnectionClosed) {
  auto core = MakeCore(nullptr);
  EventServerOptions options;
  options.max_line_bytes = 64;
  EventServer server(options, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  const int fd = ConnectLoopback(server.port());
  SendAll(fd, std::string(200, 'x') + "\n");
  const std::string reply = RecvLine(fd);
  auto parsed = ParseJson(reply);
  ASSERT_TRUE(parsed.ok()) << reply;
  EXPECT_FALSE(parsed->Find("ok")->boolean);
  EXPECT_EQ(parsed->Find("error")->string, "bad_request");
  // The server closes after flushing the rejection.
  char ch = 0;
  EXPECT_EQ(::recv(fd, &ch, 1, 0), 0);
  ::close(fd);

  server.Stop();
  serve_thread.join();
}

TEST(EventServerTest, TurnsAwayConnectionsPastTheCap) {
  auto core = MakeCore(nullptr);
  EventServerOptions options;
  options.max_connections = 1;
  EventServer server(options, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  const int held = ConnectLoopback(server.port());
  // One round trip guarantees the acceptor has registered the connection
  // before the second connect races it.
  SendAll(held, R"({"id": 1, "type": "embed", "features": [1.0, 2.0, 3.0]})"
                "\n");
  ASSERT_FALSE(RecvLine(held).empty());

  const int refused = ConnectLoopback(server.port());
  const std::string reply = RecvLine(refused);
  auto parsed = ParseJson(reply);
  ASSERT_TRUE(parsed.ok()) << reply;
  EXPECT_FALSE(parsed->Find("ok")->boolean);
  EXPECT_EQ(parsed->Find("error")->string, "overloaded");
  ::close(refused);
  ::close(held);

  server.Stop();
  serve_thread.join();
}

TEST(EventServerTest, NoFdLeakAcrossConnectionChurn) {
  auto core = MakeCore(nullptr);
  EventServerOptions options;
  options.shards = 2;
  EventServer server(options, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  const std::string request =
      R"({"id": 1, "type": "embed", "features": [1.0, 2.0, 3.0]})" "\n";
  const size_t before = CountOpenFds();
  for (int cycle = 0; cycle < 1000; ++cycle) {
    const int fd = ConnectLoopback(server.port());
    SendAll(fd, request);
    ASSERT_FALSE(RecvLine(fd).empty()) << "cycle " << cycle;
    ::close(fd);
  }
  // Workers reap a closed peer on their next epoll wake; give the last
  // few cycles a moment to be noticed before counting.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t after = CountOpenFds();
  while (after > before && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    after = CountOpenFds();
  }
  // Slack for unrelated runtime fds (profiler, metrics scrapes), but a
  // per-cycle leak of even 1% would blow well past it.
  EXPECT_LE(after, before + 8);

  server.Stop();
  serve_thread.join();
}

TEST(EventServerTest, ReloadDuringLiveTrafficKeepsEveryConnectionWhole) {
  const data::Dataset corpus = TestCorpus();
  ServerCoreOptions core_options;
  core_options.shards = 2;
  auto core = MakeCore(&corpus, core_options, "v1.rll");
  EventServerOptions options;
  options.shards = 2;
  EventServer server(options, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 120;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ConnectLoopback(server.port());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const bool neighbors = i % 2 != 0;
        std::string request = "{\"id\": " + std::to_string(i) +
                              ", \"type\": \"" +
                              (neighbors ? "neighbors" : "embed") +
                              "\", \"features\": [" + std::to_string(c) +
                              ".5, -1.0, 2.0]" +
                              (neighbors ? ", \"k\": 3" : "") + "}\n";
        size_t sent = 0;
        while (sent < request.size()) {
          const ssize_t n = ::send(fd, request.data() + sent,
                                   request.size() - sent, MSG_NOSIGNAL);
          if (n <= 0) {
            bad.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
            return;
          }
          sent += static_cast<size_t>(n);
        }
        const std::string reply = RecvLine(fd);
        auto parsed = ParseJson(reply);
        if (!parsed.ok() || !parsed->Find("ok")->boolean) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ::close(fd);
    });
  }

  // Swap generations repeatedly while the clients stream over TCP. Zero
  // dropped or failed requests is the contract.
  for (uint64_t swap = 0; swap < 3; ++swap) {
    ASSERT_TRUE(
        core->ReloadFromBundle(TestBundle(200 + swap), "swap.rll").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(core->generation(), 4u);

  server.Stop();
  serve_thread.join();
  core->Shutdown();
}

}  // namespace
}  // namespace rll::serve
