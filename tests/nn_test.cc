// Tests for the neural-network layer: Linear/Mlp forward semantics and
// checkpointing, optimizer convergence, schedules, and the batcher.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/batcher.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll::nn {
namespace {

// ---------------------------------------------------------------- Linear

TEST(LinearTest, ForwardMatchesManualAffine) {
  Rng rng(1);
  Linear layer(3, 2, &rng);
  Matrix x = RandomNormal(5, 3, &rng);
  ag::Var out = layer.Forward(ag::Constant(x));
  Matrix expected = AddRowBroadcast(Matmul(x, layer.weight()->value),
                                    layer.bias()->value);
  EXPECT_TRUE(out->value.AllClose(expected));
}

TEST(LinearTest, ParametersAreTrainableLeaves) {
  Rng rng(2);
  Linear layer(4, 4, &rng);
  const auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  for (const auto& p : params) EXPECT_TRUE(p->requires_grad);
}

TEST(LinearTest, BiasStartsAtZero) {
  Rng rng(3);
  Linear layer(4, 6, &rng);
  for (size_t i = 0; i < layer.bias()->value.size(); ++i) {
    EXPECT_DOUBLE_EQ(layer.bias()->value[i], 0.0);
  }
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  Matrix x = RandomNormal(4, 3, &rng);
  auto r = ag::CheckGradients(layer.Parameters(), [&] {
    return ag::Mean(ag::Square(layer.Forward(ag::Constant(x))));
  });
  EXPECT_LT(r.max_relative_error, 1e-5);
}

// ------------------------------------------------------------------- Mlp

TEST(MlpTest, OutputShape) {
  Rng rng(5);
  Mlp mlp({.dims = {10, 8, 4}}, &rng);
  EXPECT_EQ(mlp.input_dim(), 10u);
  EXPECT_EQ(mlp.output_dim(), 4u);
  Matrix x = RandomNormal(6, 10, &rng);
  EXPECT_EQ(mlp.Embed(x).rows(), 6u);
  EXPECT_EQ(mlp.Embed(x).cols(), 4u);
}

TEST(MlpTest, TanhOutputBounded) {
  Rng rng(6);
  Mlp mlp({.dims = {5, 8, 3},
           .hidden_activation = Activation::kTanh,
           .output_activation = Activation::kTanh},
          &rng);
  Matrix x = RandomNormal(20, 5, &rng, 0.0, 10.0);
  Matrix e = mlp.Embed(x);
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_GE(e[i], -1.0);
    EXPECT_LE(e[i], 1.0);
  }
}

TEST(MlpTest, ParameterCount) {
  Rng rng(7);
  Mlp mlp({.dims = {10, 8, 4}}, &rng);
  // 2 layers × (weight + bias).
  EXPECT_EQ(mlp.Parameters().size(), 4u);
}

TEST(MlpTest, GradCheckTwoLayerTanh) {
  Rng rng(8);
  Mlp mlp({.dims = {4, 5, 3}}, &rng);
  Matrix x = RandomNormal(3, 4, &rng);
  auto r = ag::CheckGradients(mlp.Parameters(), [&] {
    return ag::Mean(ag::Square(mlp.Forward(ag::Constant(x))));
  });
  EXPECT_LT(r.max_relative_error, 1e-5);
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Rng rng(9);
  Mlp a({.dims = {6, 5, 2}}, &rng);
  Mlp b({.dims = {6, 5, 2}}, &rng);  // Different random init.
  const std::string path = ::testing::TempDir() + "/mlp.ckpt";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  Matrix x = RandomNormal(4, 6, &rng);
  EXPECT_TRUE(a.Embed(x).AllClose(b.Embed(x)));
}

TEST(MlpTest, LoadRejectsArchitectureMismatch) {
  Rng rng(10);
  Mlp a({.dims = {6, 5, 2}}, &rng);
  Mlp b({.dims = {6, 4, 2}}, &rng);
  const std::string path = ::testing::TempDir() + "/mlp2.ckpt";
  ASSERT_TRUE(a.Save(path).ok());
  EXPECT_FALSE(b.Load(path).ok());
}

TEST(MlpTest, IdentityActivationIsAffine) {
  Rng rng(11);
  Mlp mlp({.dims = {3, 2},
           .hidden_activation = Activation::kNone,
           .output_activation = Activation::kNone},
          &rng);
  // Single linear layer, no activation: additivity must hold.
  Matrix x1 = RandomNormal(1, 3, &rng);
  Matrix x2 = RandomNormal(1, 3, &rng);
  Matrix sum = Add(x1, x2);
  Matrix lhs = mlp.Embed(sum);
  Matrix rhs = Sub(Add(mlp.Embed(x1), mlp.Embed(x2)),
                   mlp.Embed(Matrix(1, 3, 0.0)));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-9, 1e-9));
}

// -------------------------------------------------------------- LayerNorm

TEST(LayerNormTest, NormalizesRowsToZeroMeanUnitVariance) {
  Rng rng(70);
  LayerNorm norm(8);
  Matrix x = RandomNormal(5, 8, &rng, 3.0, 2.0);
  const Matrix y = norm.Forward(ag::Constant(x))->value;
  for (size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (size_t c = 0; c < y.cols(); ++c) mean += y(r, c);
    mean /= 8.0;
    for (size_t c = 0; c < y.cols(); ++c) {
      var += (y(r, c) - mean) * (y(r, c) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);  // eps slightly shrinks the variance.
  }
}

TEST(LayerNormTest, GainAndBiasApply) {
  LayerNorm norm(2);
  norm.Parameters()[0]->value = Matrix({{2.0, 2.0}});  // gain
  norm.Parameters()[1]->value = Matrix({{1.0, 1.0}});  // bias
  Matrix x = {{-1.0, 1.0}};
  const Matrix y = norm.Forward(ag::Constant(x))->value;
  // Normalized row ≈ (−1, 1) → scaled to (−2, 2) → shifted to (−1, 3).
  EXPECT_NEAR(y(0, 0), -1.0, 1e-2);
  EXPECT_NEAR(y(0, 1), 3.0, 1e-2);
}

TEST(LayerNormTest, GradCheckThroughNormalization) {
  Rng rng(71);
  LayerNorm norm(5);
  ag::Var x = ag::Parameter(RandomNormal(4, 5, &rng));
  std::vector<ag::Var> params = norm.Parameters();
  params.push_back(x);
  auto r = ag::CheckGradients(
      params, [&] { return ag::Mean(ag::Square(norm.Forward(x))); });
  EXPECT_LT(r.max_relative_error, 1e-4);
}

TEST(LayerNormTest, MlpIntegration) {
  Rng rng(72);
  Mlp mlp({.dims = {6, 10, 10, 3}, .layer_norm = true}, &rng);
  // 3 layers × 2 params + 2 hidden norms × 2 params.
  EXPECT_EQ(mlp.Parameters().size(), 10u);
  Matrix x = RandomNormal(4, 6, &rng);
  EXPECT_EQ(mlp.Embed(x).cols(), 3u);
  // Checkpoint round-trip covers the norm parameters too.
  const std::string path = ::testing::TempDir() + "/mlp_ln.ckpt";
  ASSERT_TRUE(mlp.Save(path).ok());
  Mlp other({.dims = {6, 10, 10, 3}, .layer_norm = true}, &rng);
  ASSERT_TRUE(other.Load(path).ok());
  EXPECT_TRUE(mlp.Embed(x).AllClose(other.Embed(x)));
}

TEST(LayerNormTest, TrainableInXorTask) {
  Rng rng(73);
  Mlp mlp({.dims = {2, 8, 1},
           .hidden_activation = Activation::kTanh,
           .output_activation = Activation::kSigmoid,
           .layer_norm = true},
          &rng);
  Matrix x = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Matrix y = {{0}, {1}, {1}, {0}};
  Adam adam(mlp.Parameters(), {.lr = 0.05});
  for (int step = 0; step < 2000; ++step) {
    adam.ZeroGrad();
    ag::Var out = mlp.Forward(ag::Constant(x));
    ag::Var loss = ag::Mean(ag::Square(ag::Sub(out, ag::Constant(y))));
    ag::Backward(loss);
    adam.Step();
  }
  Matrix pred = mlp.Embed(x);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(pred(i, 0), y(i, 0), 0.25) << "example " << i;
  }
}

// -------------------------------------------------------------- Optimizer

// Minimize ||x - target||² — any reasonable optimizer reaches the optimum.
void RunOptimizerConvergence(Optimizer* opt, const ag::Var& x,
                             const Matrix& target, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    ag::Var loss = ag::Mean(ag::Square(ag::Sub(x, ag::Constant(target))));
    ag::Backward(loss);
    opt->Step();
  }
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Matrix target = {{1.0, -2.0, 3.0}};
  ag::Var x = ag::Parameter(Matrix(1, 3, 0.0));
  Sgd sgd({x}, {.lr = 0.3});
  RunOptimizerConvergence(&sgd, x, target, 200);
  EXPECT_TRUE(x->value.AllClose(target, 1e-4, 1e-4));
}

TEST(OptimizerTest, MomentumMatchesHandComputedUpdates) {
  // v ← μ·v + g;  θ ← θ − lr·v, with constant gradient g = 1.
  ag::Var x = ag::Parameter(Matrix(1, 1, 0.0));
  Sgd sgd({x}, {.lr = 0.1, .momentum = 0.5});
  double theta = 0.0, v = 0.0;
  for (int step = 0; step < 5; ++step) {
    sgd.ZeroGrad();
    x->AccumulateGrad(Matrix(1, 1, 1.0));
    sgd.Step();
    v = 0.5 * v + 1.0;
    theta -= 0.1 * v;
    EXPECT_NEAR(x->value(0, 0), theta, 1e-12) << "step " << step;
  }
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Matrix target = {{1.0, -1.0}};
  ag::Var x = ag::Parameter(Matrix(1, 2, 10.0));
  Adam adam({x}, {.lr = 0.1});
  RunOptimizerConvergence(&adam, x, target, 500);
  EXPECT_TRUE(x->value.AllClose(target, 1e-3, 1e-3));
}

TEST(OptimizerTest, WeightDecayShrinksParameters) {
  ag::Var x = ag::Parameter(Matrix(1, 1, 4.0));
  Sgd sgd({x}, {.lr = 0.1, .weight_decay = 1.0});
  // Zero-gradient loss: only decay acts.
  for (int i = 0; i < 10; ++i) {
    sgd.ZeroGrad();
    x->AccumulateGrad(Matrix(1, 1, 0.0));
    sgd.Step();
  }
  EXPECT_LT(std::fabs(x->value(0, 0)), 4.0);
}

TEST(OptimizerTest, SkipsParametersWithoutGradients) {
  ag::Var x = ag::Parameter(Matrix(1, 1, 1.0));
  Adam adam({x}, {.lr = 0.5});
  adam.Step();  // No gradient accumulated: must be a no-op.
  EXPECT_DOUBLE_EQ(x->value(0, 0), 1.0);
}

TEST(OptimizerTest, ZeroGradClears) {
  ag::Var x = ag::Parameter(Matrix(1, 1, 1.0));
  x->AccumulateGrad(Matrix(1, 1, 5.0));
  Sgd sgd({x}, {});
  sgd.ZeroGrad();
  EXPECT_TRUE(x->grad.empty());
}

TEST(OptimizerTest, RmsPropConvergesOnQuadratic) {
  Matrix target = {{-3.0, 2.0}};
  ag::Var x = ag::Parameter(Matrix(1, 2, 5.0));
  RmsProp rms({x}, {.lr = 0.05});
  RunOptimizerConvergence(&rms, x, target, 800);
  EXPECT_TRUE(x->value.AllClose(target, 1e-2, 1e-2));
}

TEST(OptimizerTest, RmsPropAdaptsPerCoordinate) {
  // Ill-conditioned quadratic: loss = x0² + 100·x1². RMSProp normalizes by
  // the gradient scale, so both coordinates shrink at comparable rates.
  ag::Var x = ag::Parameter(Matrix{{1.0, 1.0}});
  RmsProp rms({x}, {.lr = 0.02});
  for (int i = 0; i < 100; ++i) {
    rms.ZeroGrad();
    Matrix g(1, 2);
    g(0, 0) = 2.0 * x->value(0, 0);
    g(0, 1) = 200.0 * x->value(0, 1);
    x->AccumulateGrad(g);
    rms.Step();
  }
  EXPECT_LT(std::fabs(x->value(0, 1)), 0.2);
  EXPECT_LT(std::fabs(x->value(0, 0)), 0.6);
}

TEST(OptimizerTest, ClipGradNormScalesDownLargeGradients) {
  ag::Var a = ag::Parameter(Matrix(1, 1, 0.0));
  ag::Var b = ag::Parameter(Matrix(1, 1, 0.0));
  a->AccumulateGrad(Matrix(1, 1, 3.0));
  b->AccumulateGrad(Matrix(1, 1, 4.0));  // Global norm = 5.
  const double norm = ClipGradNorm({a, b}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(a->grad(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(b->grad(0, 0), 0.8, 1e-12);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradientsAlone) {
  ag::Var a = ag::Parameter(Matrix(1, 1, 0.0));
  a->AccumulateGrad(Matrix(1, 1, 0.5));
  ClipGradNorm({a}, 1.0);
  EXPECT_DOUBLE_EQ(a->grad(0, 0), 0.5);
}

TEST(ScheduleTest, CosineAnnealsToMinimum) {
  CosineSchedule sched(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(sched.LrAt(0), 1.0);
  EXPECT_NEAR(sched.LrAt(50), 0.55, 1e-9);  // Midpoint of [0.1, 1.0].
  EXPECT_NEAR(sched.LrAt(100), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(sched.LrAt(200), 0.1);  // Clamped past the horizon.
  // Monotone decreasing on the way down.
  for (int e = 1; e <= 100; ++e) {
    EXPECT_LE(sched.LrAt(e), sched.LrAt(e - 1) + 1e-12);
  }
}

TEST(MlpDropoutTest, ForwardTrainEqualsForwardWithoutDropout) {
  Rng rng(20);
  Mlp mlp({.dims = {4, 8, 2}}, &rng);
  Matrix x = RandomNormal(3, 4, &rng);
  Rng drop_rng(1);
  EXPECT_TRUE(mlp.ForwardTrain(ag::Constant(x), &drop_rng)
                  ->value.AllClose(mlp.Forward(ag::Constant(x))->value));
}

TEST(MlpDropoutTest, DropoutZeroesAndRescales) {
  Rng rng(21);
  Mlp mlp({.dims = {4, 64, 2}, .dropout = 0.5}, &rng);
  Matrix x = RandomNormal(8, 4, &rng);
  Rng drop_rng(2);
  Matrix a = mlp.ForwardTrain(ag::Constant(x), &drop_rng)->value;
  Matrix b = mlp.ForwardTrain(ag::Constant(x), &drop_rng)->value;
  // Stochastic masks differ between calls.
  EXPECT_FALSE(a.AllClose(b));
  // Inference path is deterministic and mask-free.
  EXPECT_TRUE(mlp.Embed(x).AllClose(mlp.Embed(x)));
}

TEST(MlpDropoutTest, InvertedScalingKeepsExpectationRoughly) {
  // With a linear network (no activation), E[dropout output] equals the
  // plain output; check the empirical mean over many masks.
  Rng rng(22);
  Mlp mlp({.dims = {4, 64, 1},
           .hidden_activation = Activation::kNone,
           .output_activation = Activation::kNone,
           .dropout = 0.3},
          &rng);
  Matrix x = RandomNormal(1, 4, &rng);
  const double reference = mlp.Embed(x)(0, 0);
  Rng drop_rng(3);
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    total += mlp.ForwardTrain(ag::Constant(x), &drop_rng)->value(0, 0);
  }
  EXPECT_NEAR(total / trials, reference,
              0.15 * std::max(1.0, std::fabs(reference)));
}

TEST(ScheduleTest, StepDecay) {
  StepDecaySchedule sched(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(sched.LrAt(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.LrAt(9), 1.0);
  EXPECT_DOUBLE_EQ(sched.LrAt(10), 0.5);
  EXPECT_DOUBLE_EQ(sched.LrAt(25), 0.25);
}

// ---------------------------------------------------------------- Batcher

TEST(BatcherTest, CoversAllIndicesOncePerEpoch) {
  Rng rng(12);
  Batcher batcher(10, 3, &rng);
  std::vector<size_t> batch;
  std::multiset<size_t> seen;
  size_t batches = 0;
  while (batcher.Next(&batch)) {
    seen.insert(batch.begin(), batch.end());
    ++batches;
  }
  EXPECT_EQ(batches, 4u);  // 3+3+3+1.
  EXPECT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatcherTest, DropLastSkipsRaggedBatch) {
  Rng rng(13);
  Batcher batcher(10, 3, &rng, /*drop_last=*/true);
  std::vector<size_t> batch;
  size_t total = 0, batches = 0;
  while (batcher.Next(&batch)) {
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(total, 9u);
  EXPECT_EQ(batcher.BatchesPerEpoch(), 3u);
}

TEST(BatcherTest, NewEpochReshuffles) {
  Rng rng(14);
  Batcher batcher(64, 64, &rng);
  std::vector<size_t> first, second;
  batcher.Next(&first);
  batcher.NewEpoch();
  batcher.Next(&second);
  EXPECT_NE(first, second);  // 64! orderings; collision is negligible.
}

TEST(BatcherTest, BatchesPerEpochRoundsUp) {
  Rng rng(15);
  Batcher batcher(10, 4, &rng);
  EXPECT_EQ(batcher.BatchesPerEpoch(), 3u);
}

// --------------------------------------- Training an MLP end-to-end (XOR)

TEST(MlpTrainingTest, LearnsXor) {
  Rng rng(16);
  Mlp mlp({.dims = {2, 8, 1},
           .hidden_activation = Activation::kTanh,
           .output_activation = Activation::kSigmoid},
          &rng);
  Matrix x = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Matrix y = {{0}, {1}, {1}, {0}};
  Adam adam(mlp.Parameters(), {.lr = 0.05});
  for (int step = 0; step < 2000; ++step) {
    adam.ZeroGrad();
    ag::Var out = mlp.Forward(ag::Constant(x));
    ag::Var loss = ag::Mean(ag::Square(ag::Sub(out, ag::Constant(y))));
    ag::Backward(loss);
    adam.Step();
  }
  Matrix pred = mlp.Embed(x);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(pred(i, 0), y(i, 0), 0.2) << "example " << i;
  }
}

}  // namespace
}  // namespace rll::nn
