// Tests for the arena-backed memory plane (common/arena.h): alignment
// and Reset() reuse guarantees of the bump allocator, high-water
// accounting, the ScratchAllocator header protocol (heap fallback,
// use-after-reset tripwire), Workspace shape checking, global gauge
// registration, TSan-visible concurrent per-worker usage, and the
// end-to-end guarantee the whole subsystem exists for: a steady-state
// RllTrainer batch loop performs zero heap allocations under
// RLL_COUNT_ALLOCS.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/threading.h"
#include "core/rll_trainer.h"
#include "obs/alloc_count.h"
#include "obs/observer.h"
#include "tensor/matrix.h"

namespace rll {
namespace {

bool IsAligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % Arena::kAlignment == 0;
}

// ------------------------------------------------------------------- Arena

TEST(ArenaTest, AllocationsAreCacheLineAligned) {
  Arena arena(/*min_chunk_bytes=*/256);
  // Odd sizes force the bump pointer through every rounding case; the
  // small first chunk forces growth across several chunks.
  for (size_t bytes : {1u, 7u, 63u, 64u, 65u, 100u, 256u, 1000u, 4096u}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(IsAligned(p)) << "allocation of " << bytes << " bytes";
    // The storage must actually be usable.
    std::memset(p, 0xab, bytes);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
}

TEST(ArenaTest, ResetReusesChunksWithoutGrowth) {
  Arena arena;
  // Warm-up epoch establishes the chunk set.
  auto one_epoch = [&arena] {
    for (int i = 0; i < 50; ++i) arena.Allocate(1024);
  };
  one_epoch();
  arena.Reset();

  const size_t warm_chunks = arena.chunk_count();
  const size_t warm_reserved = arena.bytes_reserved();
  for (int epoch = 0; epoch < 10; ++epoch) {
    one_epoch();
    EXPECT_EQ(arena.chunk_count(), warm_chunks) << "epoch " << epoch;
    EXPECT_EQ(arena.bytes_reserved(), warm_reserved) << "epoch " << epoch;
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
  }
  // The counter keeps counting across Resets (it feeds the gauges), even
  // though no new memory was reserved.
  EXPECT_EQ(arena.allocation_count(), 11u * 50u);
}

TEST(ArenaTest, HighWaterTracksPeakAcrossResets) {
  Arena arena;
  arena.Allocate(1000);
  const size_t first_peak = arena.bytes_used();
  EXPECT_EQ(arena.high_water(), first_peak);

  arena.Reset();
  arena.Allocate(64);
  // A smaller epoch never lowers the peak...
  EXPECT_EQ(arena.high_water(), first_peak);

  arena.Reset();
  arena.Allocate(4000);
  // ...and a bigger one raises it.
  EXPECT_GT(arena.high_water(), first_peak);
  EXPECT_EQ(arena.high_water(), arena.bytes_used());
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(/*min_chunk_bytes=*/128);
  void* small = arena.Allocate(16);
  void* huge = arena.Allocate(1 << 20);  // Far beyond the chunk size.
  ASSERT_NE(huge, nullptr);
  EXPECT_TRUE(IsAligned(small));
  EXPECT_TRUE(IsAligned(huge));
  std::memset(huge, 0, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 20);
}

// ------------------------------------------------------- scopes and routing

TEST(ArenaScopeTest, RoutesNestsAndRestores) {
  EXPECT_EQ(CurrentArena(), nullptr);
  Arena outer_arena;
  Arena inner_arena;
  {
    ArenaScope outer(&outer_arena);
    EXPECT_EQ(CurrentArena(), &outer_arena);
    {
      ArenaScope inner(&inner_arena);
      EXPECT_EQ(CurrentArena(), &inner_arena);
      {
        ArenaPause pause;
        EXPECT_EQ(CurrentArena(), nullptr);
      }
      EXPECT_EQ(CurrentArena(), &inner_arena);
    }
    EXPECT_EQ(CurrentArena(), &outer_arena);
  }
  EXPECT_EQ(CurrentArena(), nullptr);
}

TEST(ScratchAllocatorTest, RoutesToArenaInsideScopeAndHeapOutside) {
  Arena arena;
  {
    ArenaScope scope(&arena);
    ScratchVector<double> v(100, 1.5);
    EXPECT_GT(arena.bytes_used(), 0u);
    EXPECT_DOUBLE_EQ(v[99], 1.5);
  }  // Arena-backed release is a no-op; nothing to free.
  arena.Reset();

  const size_t used_after_reset = arena.bytes_used();
  {
    ScratchVector<double> heap_v(100, 2.5);
    EXPECT_EQ(arena.bytes_used(), used_after_reset);
    EXPECT_TRUE(IsAligned(heap_v.data()));
  }  // Heap-backed release goes through aligned operator delete.
}

TEST(ArenaDeathTest, UseAfterResetTripsTheHeaderCheck) {
  EXPECT_DEATH(
      {
        Arena arena;
        ArenaScope scope(&arena);
        ScratchAllocator<char> alloc;
        alloc.allocate(64);
        char* stale = alloc.allocate(64);
        arena.Reset();
        // The next epoch's first block spans the chunk prefix, including
        // the cache line holding `stale`'s origin header; scribbling over
        // it models a new epoch reusing the bytes.
        char* fresh = alloc.allocate(256);
        std::memset(fresh, 0, 256);
        alloc.deallocate(stale, 64);  // Header is garbage now: must abort.
      },
      "use-after-reset");
}

// --------------------------------------------------------------- Workspace

TEST(WorkspaceTest, CreatesOnFirstUseAndReusesStorage) {
  Workspace ws;
  Matrix& a = ws.Get("hidden", 4, 8);
  EXPECT_EQ(a.rows(), 4u);
  EXPECT_EQ(a.cols(), 8u);
  a(3, 7) = 42.0;

  Matrix& again = ws.Get("hidden", 4, 8);
  EXPECT_EQ(&again, &a);  // Same buffer, values intact.
  EXPECT_DOUBLE_EQ(again(3, 7), 42.0);
  EXPECT_EQ(ws.size(), 1u);

  ws.Get("other", 2, 2);
  EXPECT_EQ(ws.size(), 2u);
}

TEST(WorkspaceTest, GetReshapedCyclesShapesOnOneBuffer) {
  Workspace ws;
  Matrix& big = ws.GetReshaped("stacked", 16, 8);
  const double* warm_data = big.data();
  big.Fill(1.0);

  // Shrinking and growing back within the high-water capacity must keep
  // the same storage — this is what makes the serve batcher's varying
  // batch sizes allocation-free at steady state.
  Matrix& small = ws.GetReshaped("stacked", 3, 8);
  EXPECT_EQ(small.rows(), 3u);
  Matrix& back = ws.GetReshaped("stacked", 16, 8);
  EXPECT_EQ(back.data(), warm_data);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(WorkspaceTest, BuffersAreHeapBackedEvenInsideAScope) {
  Arena arena;
  Workspace ws;
  {
    ArenaScope scope(&arena);
    Matrix& buffer = ws.Get("persistent", 8, 8);
    buffer(0, 0) = 7.0;
    // The workspace pauses arena routing internally: none of the buffer's
    // bytes may land in the (resettable) arena.
    EXPECT_EQ(arena.bytes_used(), 0u);
  }
  arena.Reset();
  EXPECT_DOUBLE_EQ(ws.Get("persistent", 8, 8)(0, 0), 7.0);
}

TEST(WorkspaceDeathTest, ShapeMismatchOnStrictCheckoutAborts) {
  EXPECT_DEATH(
      {
        Workspace ws;
        ws.Get("proj", 4, 8);
        ws.Get("proj", 4, 9);  // Shape drift under a stable key.
      },
      "shape mismatch");
}

// ------------------------------------------------------------ global gauges

TEST(GlobalArenaStatsTest, TracksArenaLifecycleAndUsage) {
  const ArenaStatsSnapshot before = GlobalArenaStats();
  {
    Arena arena;
    const ArenaStatsSnapshot live = GlobalArenaStats();
    EXPECT_EQ(live.live_arenas, before.live_arenas + 1);

    arena.Allocate(1 << 12);
    const ArenaStatsSnapshot used = GlobalArenaStats();
    EXPECT_GE(used.bytes_used, before.bytes_used + (1 << 12));
    EXPECT_GE(used.bytes_reserved, before.bytes_reserved + (1 << 12));
    EXPECT_GE(used.high_water, before.high_water + (1 << 12));
  }
  EXPECT_EQ(GlobalArenaStats().live_arenas, before.live_arenas);
}

// ------------------------------------------------------------- concurrency

// Each worker owns an arena and a workspace and cycles epochs while the
// main thread polls the global gauges — the ownership model used by the
// serve workers. Run under TSan, this pins the claim that per-arena
// relaxed counters plus the registry mutex make the snapshot race-free.
TEST(ArenaConcurrencyTest, PerWorkerArenasAndWorkspacesAreRaceFree) {
  constexpr int kWorkers = 8;
  constexpr int kEpochs = 200;
  const ArenaStatsSnapshot before = GlobalArenaStats();

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([w] {
      Arena arena;
      Workspace ws;
      for (int epoch = 0; epoch < kEpochs; ++epoch) {
        {
          ArenaScope scope(&arena);
          ScratchVector<double> scratch(64 + w, 1.0);
          Matrix& buffer = ws.GetReshaped("scratch", 4, 4 + (epoch % 3));
          buffer.Fill(static_cast<double>(epoch));
        }
        arena.Reset();
      }
    });
  }
  // Concurrent gauge scrapes (what metricsz does while workers run).
  for (int scrape = 0; scrape < 100; ++scrape) {
    const ArenaStatsSnapshot s = GlobalArenaStats();
    EXPECT_LE(s.bytes_used, s.bytes_reserved + before.bytes_used);
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(GlobalArenaStats().live_arenas, before.live_arenas);
}

// ----------------------------------------------- trainer zero-alloc proof

// Records the process-wide allocation count at every batch boundary
// without allocating itself (the events vector is pre-reserved).
class AllocSnapshotObserver : public obs::TrainerObserver {
 public:
  struct Event {
    int epoch = 0;
    size_t batch = 0;
    uint64_t allocs = 0;
  };

  explicit AllocSnapshotObserver(size_t max_events) {
    events_.reserve(max_events);
  }

  void OnBatchEnd(const obs::BatchStats& stats) override {
    if (events_.size() < events_.capacity()) {
      events_.push_back(
          {stats.epoch, stats.batch, obs::AllocationCount()});
    }
  }

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

// The acceptance criterion of the arena work, asserted end to end: after
// the first epoch has warmed the arena chunks (and every other lazily
// grown buffer), the delta in operator-new calls between consecutive
// batches of an epoch is exactly zero — graph construction, backward,
// gradient-norm observation, optimizer step, and arena reset included.
TEST(TrainerAllocTest, SteadyStateBatchLoopIsAllocationFree) {
  if (!obs::AllocCountingActive()) {
    GTEST_SKIP() << "built without RLL_COUNT_ALLOCS";
  }
  // The guarantee is per-thread arenas at --threads 1 (pool dispatch
  // allocates task state); pin the pool regardless of RLL_THREADS.
  SetGlobalThreads(1);

  constexpr size_t kExamples = 60;
  constexpr size_t kDim = 8;
  Matrix features(kExamples, kDim);
  std::vector<int> labels(kExamples);
  Rng data_rng(1234);
  for (size_t i = 0; i < kExamples; ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (size_t j = 0; j < kDim; ++j) {
      features(i, j) = data_rng.Normal() + (labels[i] == 1 ? 1.0 : -1.0);
    }
  }

  core::RllTrainerOptions options;
  options.model.hidden_dims = {16, 8};
  options.epochs = 3;
  options.groups_per_epoch = 32;  // Divides evenly: every batch is full.
  options.batch_size = 8;
  AllocSnapshotObserver observer(/*max_events=*/64);
  options.observers = {&observer};

  Rng rng(42);
  core::RllTrainer trainer(options, &rng);
  const auto summary = trainer.Train(features, labels,
                                     std::vector<double>(kExamples, 1.0));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  // Compare consecutive batches within an epoch, skipping epoch 0 (chunk
  // growth) and each epoch's first batch (the interval leading into it
  // spans the epoch boundary: group sampling, summary bookkeeping).
  const auto& events = observer.events();
  ASSERT_GE(events.size(), 12u);  // 3 epochs x 4 batches.
  size_t steady_pairs = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    const auto& prev = events[i - 1];
    const auto& cur = events[i];
    if (cur.epoch == 0 || cur.epoch != prev.epoch || cur.batch < 1) continue;
    EXPECT_EQ(cur.allocs - prev.allocs, 0u)
        << "epoch " << cur.epoch << " batch " << cur.batch << " allocated";
    ++steady_pairs;
  }
  // 2 warm epochs x 3 in-epoch deltas: the assertion above really ran.
  EXPECT_EQ(steady_pairs, 6u);

  SetGlobalThreads(0);  // Restore the RLL_THREADS/default pool.
}

}  // namespace
}  // namespace rll
