// Self-test for the rll_analyze passes: every rule must both fire on a
// known-bad snippet and stay quiet on the idiomatic version, the
// per-line waiver and the layering allowlist must suppress exactly their
// target, and the passes must run clean over the actual source tree (the
// same invariant the analyze.repo CTest gate enforces via the binary —
// this test proves it through the library API, with the real allowlist).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/passes.h"

namespace {

using rll::analyze::AnalyzeContent;
using rll::analyze::AnalyzeOptions;
using rll::analyze::AnalyzeTree;
using rll::analyze::LayerRank;
using rll::analyze::ParseLayeringAllowlist;
using rll::analyze::Violation;

std::vector<Violation> Analyze(std::string_view path,
                               std::string_view content,
                               const AnalyzeOptions& options = {}) {
  return AnalyzeContent(path, content, options);
}

bool Fires(const std::vector<Violation>& violations, std::string_view rule) {
  for (const Violation& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------- layering

TEST(LayerRankTest, RanksFollowTheDag) {
  EXPECT_EQ(LayerRank("common"), 0);
  EXPECT_LT(LayerRank("tensor"), LayerRank("autograd"));
  EXPECT_LT(LayerRank("autograd"), LayerRank("nn"));
  EXPECT_LT(LayerRank("nn"), LayerRank("classify"));
  EXPECT_EQ(LayerRank("classify"), LayerRank("crowd"));
  EXPECT_LT(LayerRank("crowd"), LayerRank("core"));
  EXPECT_EQ(LayerRank("core"), LayerRank("baselines"));
  EXPECT_LT(LayerRank("core"), LayerRank("obs"));
  EXPECT_LT(LayerRank("obs"), LayerRank("serve"));
  EXPECT_EQ(LayerRank("third_party"), -1);
}

TEST(LayeringPassTest, FiresOnUpwardInclude) {
  const auto v =
      Analyze("src/tensor/matrix.cc", "#include \"serve/cache.h\"\n");
  ASSERT_TRUE(Fires(v, "layering"));
  EXPECT_NE(v[0].message.find("serve"), std::string::npos);
}

TEST(LayeringPassTest, PassesOnDownwardSameRankAndSystemIncludes) {
  EXPECT_TRUE(
      Analyze("src/serve/cache.cc", "#include \"tensor/matrix.h\"\n")
          .empty());
  EXPECT_TRUE(
      Analyze("src/crowd/confidence.cc", "#include \"classify/lr.h\"\n")
          .empty());
  EXPECT_TRUE(Analyze("src/tensor/matrix.cc", "#include <vector>\n").empty());
  // Own-module includes are rank-equal by definition.
  EXPECT_TRUE(
      Analyze("src/tensor/matrix.cc", "#include \"tensor/ops.h\"\n").empty());
}

TEST(LayeringPassTest, DoesNotApplyOutsideSrc) {
  EXPECT_TRUE(
      Analyze("tests/tensor_test.cc", "#include \"serve/cache.h\"\n")
          .empty());
  EXPECT_TRUE(
      Analyze("bench/micro_ops.cc", "#include \"serve/cache.h\"\n").empty());
  EXPECT_TRUE(
      Analyze("tools/rll_cli.cc", "#include \"serve/cache.h\"\n").empty());
}

TEST(LayeringPassTest, AllowlistedEdgePassesOthersStillFire) {
  AnalyzeOptions options;
  options.layering_allowlist = {"src/nn/layers.cc -> obs"};
  EXPECT_TRUE(
      Analyze("src/nn/layers.cc", "#include \"obs/metrics.h\"\n", options)
          .empty());
  // Same file, different target module: not covered by the entry.
  EXPECT_TRUE(Fires(
      Analyze("src/nn/layers.cc", "#include \"serve/cache.h\"\n", options),
      "layering"));
  // Different file, same target module: not covered either.
  EXPECT_TRUE(Fires(
      Analyze("src/nn/other.cc", "#include \"obs/metrics.h\"\n", options),
      "layering"));
}

TEST(ParseLayeringAllowlistTest, SkipsCommentsAndNormalizesWhitespace) {
  const auto entries = ParseLayeringAllowlist(
      "# comment\n"
      "\n"
      "src/a/b.cc  ->   obs\n"
      "src/c/d.cc -> serve  # trailing comment\n"
      "malformed line without arrow\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "src/a/b.cc -> obs");
  EXPECT_EQ(entries[1], "src/c/d.cc -> serve");
}

// ------------------------------------------------------------- determinism

TEST(WallClockRuleTest, FiresOnSystemClockAndTime) {
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc",
              "auto t = std::chrono::system_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(
      Fires(Analyze("src/core/a.cc", "std::time(nullptr);\n"), "wall-clock"));
  EXPECT_TRUE(
      Fires(Analyze("src/core/a.cc", "time(nullptr);\n"), "wall-clock"));
}

TEST(WallClockRuleTest, PassesOnSteadyClockMembersAndProse) {
  EXPECT_TRUE(
      Analyze("src/core/a.cc",
              "auto t = std::chrono::steady_clock::now();\n")
          .empty());
  EXPECT_TRUE(Analyze("src/core/a.cc", "stopwatch.time();\n").empty());
  EXPECT_TRUE(Analyze("src/core/a.cc", "std::time_t seconds = 0;\n").empty());
  EXPECT_TRUE(
      Analyze("src/core/a.cc", "// uses time() internally\n").empty());
}

TEST(RandomDeviceRuleTest, FiresOnRandomDevice) {
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc", "std::random_device rd;\n"), "random-device"));
}

TEST(UnseededMt19937RuleTest, FiresOnDefaultConstruction) {
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "std::mt19937 gen;\n"),
                    "unseeded-mt19937"));
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "std::mt19937_64 gen;\n"),
                    "unseeded-mt19937"));
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "auto g = std::mt19937();\n"),
                    "unseeded-mt19937"));
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "use(std::mt19937{});\n"),
                    "unseeded-mt19937"));
}

TEST(UnseededMt19937RuleTest, PassesOnSeededAndTypeOnlyUses) {
  EXPECT_TRUE(Analyze("src/core/a.cc", "std::mt19937 gen(seed);\n").empty());
  EXPECT_TRUE(Analyze("src/core/a.cc", "std::mt19937 gen{seed};\n").empty());
  EXPECT_TRUE(Analyze("src/core/a.cc", "void f(std::mt19937& gen);\n")
                  .empty());
}

TEST(UnorderedIterationRuleTest, FiresOnRangeForAndBegin) {
  const std::string decl =
      "std::unordered_map<int, double> weights;\n";
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc", decl + "for (const auto& w : weights) {}\n"),
      "unordered-iteration"));
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc", decl + "auto it = weights.begin();\n"),
      "unordered-iteration"));
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc",
              "std::unordered_set<Node*> visited;\n"
              "for (Node* n : visited) {}\n"),
      "unordered-iteration"));
}

TEST(UnorderedIterationRuleTest, PassesOnLookupInsertAndOrderedMaps) {
  EXPECT_TRUE(Analyze("src/core/a.cc",
                      "std::unordered_map<int, double> weights;\n"
                      "weights.insert({1, 2.0});\n"
                      "if (weights.count(1)) {}\n"
                      "double w = weights[1];\n"
                      "auto it = weights.find(1);\n")
                  .empty());
  EXPECT_TRUE(Analyze("src/core/a.cc",
                      "std::map<int, double> weights;\n"
                      "for (const auto& w : weights) {}\n")
                  .empty());
}

// --------------------------------------------------------- lock discipline

TEST(LockDisciplineRuleTest, FiresOnRawPrimitivesAndIncludes) {
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "std::mutex mu;\n"),
                    "lock-discipline"));
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc", "std::lock_guard<std::mutex> lock(mu);\n"),
      "lock-discipline"));
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "std::condition_variable cv;\n"),
                    "lock-discipline"));
  EXPECT_TRUE(Fires(Analyze("src/core/a.cc", "#include <mutex>\n"),
                    "lock-discipline"));
  EXPECT_TRUE(
      Fires(Analyze("src/core/a.cc", "#include <condition_variable>\n"),
            "lock-discipline"));
}

TEST(LockDisciplineRuleTest, PassesOnWrapperUsesAndExemptsMutexH) {
  EXPECT_TRUE(Analyze("src/core/a.cc",
                      "#include \"common/mutex.h\"\n"
                      "rll::Mutex mu;\n"
                      "rll::MutexLock lock(mu);\n")
                  .empty());
  // The wrapper itself is the designated home of the raw primitives.
  EXPECT_TRUE(Analyze("src/common/mutex.h",
                      "#include <mutex>\n"
                      "std::mutex mu_;\n")
                  .empty());
  // Prose and our own type names don't trip the token rules.
  EXPECT_TRUE(
      Analyze("src/core/a.cc", "// guarded by a std::mutex historically\n")
          .empty());
}

TEST(LockDisciplineRuleTest, DoesNotApplyOutsideSrc) {
  EXPECT_TRUE(
      Analyze("tests/threading_test.cc", "std::mutex mu;\n").empty());
  EXPECT_TRUE(Analyze("bench/micro_ops.cc", "#include <mutex>\n").empty());
}

// ---------------------------------------------------------------- hot path

TEST(HotPathRuleTest, FiresOnAllocationsInTaggedFiles) {
  const char* tag = "// rll-analyze: hot-path\n";
  EXPECT_TRUE(Fires(
      Analyze("src/tensor/a.cc", std::string(tag) + "int* p = new int;\n"),
      "hot-path-alloc"));
  EXPECT_TRUE(Fires(Analyze("src/tensor/a.cc",
                            std::string(tag) + "void* p = malloc(8);\n"),
                    "hot-path-alloc"));
  // A vector constructed per iteration is the hidden-allocation classic.
  EXPECT_TRUE(Fires(
      Analyze("src/tensor/a.cc",
              std::string(tag) +
                  "void F() {\n"
                  "  for (int i = 0; i < n; ++i) {\n"
                  "    std::vector<double> row(n);\n"
                  "  }\n"
                  "}\n"),
      "hot-path-alloc"));
  // Brace-less loop bodies count too.
  EXPECT_TRUE(Fires(Analyze("src/tensor/a.cc",
                            std::string(tag) +
                                "void F() {\n"
                                "  while (more())\n"
                                "    std::vector<int> v(3);\n"
                                "}\n"),
                    "hot-path-alloc"));
}

TEST(HotPathRuleTest, SilentWithoutTagAndOnHoistedVectors) {
  // Untagged files may allocate freely.
  EXPECT_TRUE(Analyze("src/tensor/a.cc", "int* p = new int;\n").empty());
  EXPECT_TRUE(
      Analyze("src/tensor/a.cc",
              "void F() { for (;;) { std::vector<int> v; } }\n")
          .empty());
  const char* tag = "// rll-analyze: hot-path\n";
  // Hoisted vector (declared outside the loop, reused inside) is the
  // idiom the rule pushes toward.
  EXPECT_TRUE(Analyze("src/tensor/a.cc",
                      std::string(tag) +
                          "void F() {\n"
                          "  std::vector<double> row(n);\n"
                          "  for (int i = 0; i < n; ++i) {\n"
                          "    row.assign(n, 0.0);\n"
                          "    Use(row);\n"
                          "  }\n"
                          "}\n")
                  .empty());
  // `operator new` declarations (the alloc-count hook) are not naked new.
  EXPECT_TRUE(Analyze("src/tensor/a.cc",
                      std::string(tag) +
                          "void* operator new(std::size_t n);\n")
                  .empty());
  // Member calls named like the banned functions are someone else's API.
  EXPECT_TRUE(Analyze("src/tensor/a.cc",
                      std::string(tag) + "arena.malloc(8);\n")
                  .empty());
}

TEST(HotPathRuleTest, WaiverSuppressesTheRule) {
  EXPECT_TRUE(
      Analyze("src/tensor/a.cc",
              "// rll-analyze: hot-path\n"
              "int* p = new int;  // rll-analyze: allow(hot-path-alloc)\n")
          .empty());
}

// ----------------------------------------------------------------- waivers

TEST(WaiverTest, AllowCommentSuppressesNamedRuleOnly) {
  EXPECT_TRUE(
      Analyze("src/core/a.cc",
              "auto t = std::chrono::system_clock::now();"
              "  // rll-analyze: allow(wall-clock)\n")
          .empty());
  EXPECT_TRUE(Analyze("src/core/a.cc",
                      "std::mutex mu;  // rll-analyze: allow(all)\n")
                  .empty());
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc",
              "std::mutex mu;  // rll-analyze: allow(wall-clock)\n"),
      "lock-discipline"));
  // rll-lint waivers do not leak into the analyze passes.
  EXPECT_TRUE(Fires(
      Analyze("src/core/a.cc",
              "std::mutex mu;  // rll-lint: allow(lock-discipline)\n"),
      "lock-discipline"));
}

// --------------------------------------------------- whole-tree self-check

// The passes must hold over the real tree with the real allowlist — the
// compile definition points at the source checkout, so this is the same
// run the analyze.repo gate does, minus process spawning.
TEST(SelfCheckTest, ActualTreeIsCleanWithCheckedInAllowlist) {
  const std::string root = RLL_SOURCE_DIR;
  AnalyzeOptions options;
  std::ifstream in(root + "/tools/analyze/layering_allowlist.txt");
  ASSERT_TRUE(in.good()) << "missing layering allowlist";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  options.layering_allowlist = ParseLayeringAllowlist(buffer.str());
  EXPECT_FALSE(options.layering_allowlist.empty());

  const auto violations = AnalyzeTree(root, options);
  for (const Violation& v : violations) {
    ADD_FAILURE() << rll::analyze::FormatViolation(v);
  }
}

// Without the allowlist the instrumentation edges MUST fire — this proves
// the layering pass actually sees the tree (an empty-result bug in the
// walker would otherwise make the self-check above pass vacuously).
TEST(SelfCheckTest, WithoutAllowlistTheInstrumentationEdgesFire) {
  const auto violations = AnalyzeTree(RLL_SOURCE_DIR, AnalyzeOptions{});
  EXPECT_TRUE(Fires(violations, "layering"));
}

}  // namespace
