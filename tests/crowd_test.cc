// Tests for the crowdsourcing substrate: worker simulation, aggregators
// (majority vote / Dawid–Skene / GLAD) including planted-parameter
// recovery, confidence estimators (paper eqs. 1–2), and agreement stats.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "crowd/adaptive_annotation.h"
#include "crowd/agreement.h"
#include "crowd/collusion.h"
#include "crowd/confidence.h"
#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/iwmv.h"
#include "crowd/majority_vote.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"

namespace rll::crowd {
namespace {

data::Dataset MakeLabeledData(size_t n, double pos_fraction, Rng* rng) {
  Matrix features(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = rng->Bernoulli(pos_fraction);
  return data::Dataset(std::move(features), std::move(labels));
}

double LabelAccuracy(const std::vector<int>& inferred,
                     const data::Dataset& dataset) {
  size_t correct = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    correct += (inferred[i] == dataset.true_label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

// ------------------------------------------------------------- WorkerPool

TEST(WorkerPoolTest, DrawsRequestedWorkers) {
  Rng rng(1);
  WorkerPool pool({.num_workers = 12}, &rng);
  EXPECT_EQ(pool.num_workers(), 12u);
  for (size_t w = 0; w < 12; ++w) {
    EXPECT_GT(pool.sensitivity()[w], 0.0);
    EXPECT_LT(pool.sensitivity()[w], 1.0);
  }
}

TEST(WorkerPoolTest, AnnotateGivesRequestedVotes) {
  Rng rng(2);
  data::Dataset d = MakeLabeledData(50, 0.6, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  pool.Annotate(&d, 5, &rng);
  EXPECT_TRUE(d.FullyAnnotated());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.annotations(i).size(), 5u);
    // Distinct workers per example.
    std::set<size_t> workers;
    for (const data::Annotation& a : d.annotations(i)) {
      workers.insert(a.worker_id);
      EXPECT_LT(a.worker_id, 10u);
    }
    EXPECT_EQ(workers.size(), 5u);
  }
  EXPECT_EQ(pool.last_difficulties().size(), d.size());
}

TEST(WorkerPoolTest, PerfectWorkerAlwaysCorrectAtZeroDifficulty) {
  WorkerPool pool({1.0}, {1.0});
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_EQ(pool.Vote(0, 1, 0.0, &rng), 1);
    EXPECT_EQ(pool.Vote(0, 0, 0.0, &rng), 0);
  }
}

TEST(WorkerPoolTest, MaxDifficultyIsCoinFlip) {
  WorkerPool pool({1.0}, {1.0});
  Rng rng(4);
  int ones = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) ones += pool.Vote(0, 1, 1.0, &rng);
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(WorkerPoolTest, VoteAccuracyMatchesAbility) {
  WorkerPool pool({0.8}, {0.8});
  Rng rng(5);
  int correct = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) correct += (pool.Vote(0, 1, 0.0, &rng) == 1);
  EXPECT_NEAR(static_cast<double>(correct) / trials, 0.8, 0.02);
}

TEST(WorkerPoolTest, AnnotationAccuracyDegradesWithWorseWorkers) {
  Rng rng(6);
  data::Dataset good_data = MakeLabeledData(300, 0.6, &rng);
  data::Dataset bad_data = good_data;
  WorkerPool good({.num_workers = 15,
                   .sensitivity_alpha = 18.0,
                   .sensitivity_beta = 2.0,
                   .specificity_alpha = 18.0,
                   .specificity_beta = 2.0},
                  &rng);
  WorkerPool bad({.num_workers = 15,
                  .sensitivity_alpha = 3.0,
                  .sensitivity_beta = 2.0,
                  .specificity_alpha = 3.0,
                  .specificity_beta = 2.0},
                 &rng);
  good.Annotate(&good_data, 5, &rng);
  bad.Annotate(&bad_data, 5, &rng);
  const auto good_stats = ComputeAgreement(good_data);
  const auto bad_stats = ComputeAgreement(bad_data);
  ASSERT_TRUE(good_stats.ok());
  ASSERT_TRUE(bad_stats.ok());
  EXPECT_GT(good_stats->majority_vote_accuracy,
            bad_stats->majority_vote_accuracy);
}

TEST(WorkerPoolTest, DriftPerturbsWithinBounds) {
  Rng rng(50);
  WorkerPool pool(std::vector<double>(6, 0.8), std::vector<double>(6, 0.8));
  const std::vector<double> before = pool.sensitivity();
  for (int round = 0; round < 50; ++round) pool.Drift(0.05, &rng);
  bool changed = false;
  for (size_t w = 0; w < pool.num_workers(); ++w) {
    changed = changed || (pool.sensitivity()[w] != before[w]);
    EXPECT_GE(pool.sensitivity()[w], 0.05);
    EXPECT_LE(pool.sensitivity()[w], 0.99);
    EXPECT_GE(pool.specificity()[w], 0.05);
    EXPECT_LE(pool.specificity()[w], 0.99);
  }
  EXPECT_TRUE(changed);
}

TEST(WorkerPoolTest, ZeroDriftIsIdentity) {
  Rng rng(51);
  WorkerPool pool(std::vector<double>(4, 0.7), std::vector<double>(4, 0.9));
  const std::vector<double> sens = pool.sensitivity();
  const std::vector<double> spec = pool.specificity();
  pool.Drift(0.0, &rng);
  EXPECT_EQ(pool.sensitivity(), sens);
  EXPECT_EQ(pool.specificity(), spec);
}

// ----------------------------------------------------------- MajorityVote

TEST(MajorityVoteTest, FailsWithoutAnnotations) {
  Rng rng(7);
  data::Dataset d = MakeLabeledData(10, 0.5, &rng);
  MajorityVote mv;
  EXPECT_EQ(mv.Run(d).status().code(), StatusCode::kFailedPrecondition);
}

TEST(MajorityVoteTest, ProbabilityIsVoteFraction) {
  Rng rng(8);
  data::Dataset d = MakeLabeledData(3, 0.5, &rng);
  d.AddAnnotation(0, {0, 1});
  d.AddAnnotation(0, {1, 1});
  d.AddAnnotation(0, {2, 0});
  d.AddAnnotation(1, {0, 0});
  d.AddAnnotation(2, {1, 1});
  MajorityVote mv;
  auto result = mv.Run(d);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->prob_positive[0], 2.0 / 3.0, 1e-12);
  EXPECT_EQ(result->labels[0], 1);
  EXPECT_EQ(result->labels[1], 0);
  EXPECT_EQ(result->labels[2], 1);
}

// ------------------------------------------------------------ Dawid–Skene

TEST(DawidSkeneTest, RecoversLabelsBetterThanMajorityVoteWithSpammers) {
  // 3 good workers + 5 near-random workers: MV suffers, DS should learn to
  // discount the spammers.
  Rng rng(9);
  data::Dataset d = MakeLabeledData(400, 0.5, &rng);
  std::vector<double> sens = {0.95, 0.95, 0.95, 0.52, 0.52, 0.52, 0.52, 0.52};
  WorkerPool pool(sens, sens);
  // Everyone votes on everything: d = 8.
  pool.Annotate(&d, 8, &rng);

  MajorityVote mv;
  DawidSkene ds;
  auto mv_result = mv.Run(d);
  auto ds_result = ds.Run(d);
  ASSERT_TRUE(mv_result.ok());
  ASSERT_TRUE(ds_result.ok());
  const double mv_acc = LabelAccuracy(mv_result->labels, d);
  const double ds_acc = LabelAccuracy(ds_result->labels, d);
  EXPECT_GT(ds_acc, mv_acc + 0.02);
  EXPECT_GT(ds_acc, 0.9);
}

TEST(DawidSkeneTest, WorkerQualityIdentifiesGoodWorkers) {
  Rng rng(10);
  data::Dataset d = MakeLabeledData(500, 0.5, &rng);
  std::vector<double> sens = {0.95, 0.6, 0.95, 0.6};
  WorkerPool pool(sens, sens);
  pool.Annotate(&d, 4, &rng);
  DawidSkene ds;
  auto result = ds.Run(d);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->worker_quality.size(), 4u);
  EXPECT_GT(result->worker_quality[0], result->worker_quality[1]);
  EXPECT_GT(result->worker_quality[2], result->worker_quality[3]);
}

TEST(DawidSkeneTest, ConvergesOnCleanData) {
  Rng rng(11);
  data::Dataset d = MakeLabeledData(100, 0.6, &rng);
  WorkerPool pool({0.97, 0.97, 0.97}, {0.97, 0.97, 0.97});
  pool.Annotate(&d, 3, &rng);
  DawidSkene ds;
  auto result = ds.Run(d);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_GT(LabelAccuracy(result->labels, d), 0.95);
}

// ------------------------------------------------------------------ GLAD

TEST(GladTest, BeatsCoinFlipAndTracksMajorityOnEasyData) {
  Rng rng(12);
  data::Dataset d = MakeLabeledData(300, 0.6, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  pool.Annotate(&d, 5, &rng);
  Glad glad;
  auto result = glad.Run(d);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(LabelAccuracy(result->labels, d), 0.75);
  EXPECT_EQ(result->item_difficulty.size(), d.size());
}

TEST(GladTest, AbilityOrderingMatchesPlantedWorkers) {
  Rng rng(13);
  data::Dataset d = MakeLabeledData(600, 0.5, &rng);
  std::vector<double> sens = {0.95, 0.95, 0.55, 0.55, 0.75};
  WorkerPool pool(sens, sens);
  pool.Annotate(&d, 5, &rng);
  Glad glad;
  auto result = glad.Run(d);
  ASSERT_TRUE(result.ok());
  // Strong workers get higher α than weak ones.
  const auto& q = result->worker_quality;
  ASSERT_EQ(q.size(), 5u);
  EXPECT_GT(q[0], q[2]);
  EXPECT_GT(q[1], q[3]);
  EXPECT_GT((q[0] + q[1]) / 2.0, q[4]);
}

TEST(GladTest, ResistsSpammersBetterThanMajorityVote) {
  Rng rng(14);
  data::Dataset d = MakeLabeledData(400, 0.5, &rng);
  std::vector<double> sens = {0.95, 0.95, 0.95, 0.5, 0.5, 0.5, 0.5, 0.5};
  WorkerPool pool(sens, sens);
  pool.Annotate(&d, 8, &rng);
  MajorityVote mv;
  Glad glad;
  auto mv_result = mv.Run(d);
  auto glad_result = glad.Run(d);
  ASSERT_TRUE(mv_result.ok());
  ASSERT_TRUE(glad_result.ok());
  EXPECT_GE(LabelAccuracy(glad_result->labels, d),
            LabelAccuracy(mv_result->labels, d));
}

// ------------------------------------------------------------- Confidence

TEST(ConfidenceTest, MleMatchesEquationOne) {
  Rng rng(15);
  data::Dataset d = MakeLabeledData(1, 0.5, &rng);
  d.AddAnnotation(0, {0, 1});
  d.AddAnnotation(0, {1, 1});
  d.AddAnnotation(0, {2, 1});
  d.AddAnnotation(0, {3, 0});
  d.AddAnnotation(0, {4, 0});
  const auto p = LabelPositiveness(d, ConfidenceMode::kMle);
  EXPECT_NEAR(p[0], 3.0 / 5.0, 1e-12);  // eq. (1): Σy/d.
}

TEST(ConfidenceTest, BayesianMatchesEquationTwo) {
  Rng rng(16);
  data::Dataset d = MakeLabeledData(2, 0.5, &rng);
  // Example 0: 3/3 positive (majority 1); example 1: 0/3 (majority 0)
  // → class prior from majority votes = 0.5, so α = β = strength/2.
  for (size_t w = 0; w < 3; ++w) {
    d.AddAnnotation(0, {w, 1});
    d.AddAnnotation(1, {w, 0});
  }
  const double strength = 2.0;
  const auto [alpha, beta] = BetaPriorFromClassPrior(d, strength);
  EXPECT_NEAR(alpha, 1.0, 1e-12);
  EXPECT_NEAR(beta, 1.0, 1e-12);
  const auto p = LabelPositiveness(d, ConfidenceMode::kBayesian, strength);
  EXPECT_NEAR(p[0], (1.0 + 3.0) / (2.0 + 3.0), 1e-12);  // eq. (2).
  EXPECT_NEAR(p[1], (1.0 + 0.0) / (2.0 + 3.0), 1e-12);
}

TEST(ConfidenceTest, BayesianShrinksTowardPrior) {
  Rng rng(17);
  data::Dataset d = MakeLabeledData(2, 0.5, &rng);
  for (size_t w = 0; w < 3; ++w) {
    d.AddAnnotation(0, {w, 1});
    d.AddAnnotation(1, {w, 0});
  }
  const auto mle = LabelPositiveness(d, ConfidenceMode::kMle);
  const auto bayes = LabelPositiveness(d, ConfidenceMode::kBayesian, 2.0);
  // Unanimous 3-0 votes: MLE says 1.0 / 0.0; Bayesian pulls toward 0.5.
  EXPECT_LT(bayes[0], mle[0]);
  EXPECT_GT(bayes[1], mle[1]);
}

TEST(ConfidenceTest, NoneModeGivesUnitConfidence) {
  Rng rng(18);
  data::Dataset d = MakeLabeledData(3, 0.5, &rng);
  for (size_t i = 0; i < 3; ++i) d.AddAnnotation(i, {0, 1});
  const auto conf =
      LabelConfidence(d, {1, 1, 1}, ConfidenceMode::kNone);
  for (double c : conf) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(ConfidenceTest, ConfidenceReflectsAssignedLabel) {
  Rng rng(19);
  data::Dataset d = MakeLabeledData(1, 0.5, &rng);
  for (size_t w = 0; w < 4; ++w) d.AddAnnotation(0, {w, 1});
  d.AddAnnotation(0, {4, 0});  // 4-of-5 positive.
  const auto conf_pos = LabelConfidence(d, {1}, ConfidenceMode::kMle);
  const auto conf_neg = LabelConfidence(d, {0}, ConfidenceMode::kMle);
  EXPECT_NEAR(conf_pos[0], 0.8, 1e-12);
  EXPECT_NEAR(conf_neg[0], 0.2, 1e-12);
}

// ------------------------------------------------------------------- IWMV

TEST(IwmvTest, MatchesMajorityVoteOnHomogeneousWorkers) {
  Rng rng(24);
  data::Dataset d = MakeLabeledData(300, 0.6, &rng);
  crowd::WorkerPool pool(std::vector<double>(7, 0.8),
                         std::vector<double>(7, 0.8));
  pool.Annotate(&d, 5, &rng);
  Iwmv iwmv;
  MajorityVote mv;
  auto iw = iwmv.Run(d);
  auto mj = mv.Run(d);
  ASSERT_TRUE(iw.ok());
  ASSERT_TRUE(mj.ok());
  // With equally-able workers, reweighting shouldn't change much.
  size_t disagreements = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    disagreements += (iw->labels[i] != mj->labels[i]);
  }
  EXPECT_LT(disagreements, d.size() / 10);
}

TEST(IwmvTest, OutperformsMajorityVoteWithSpammers) {
  Rng rng(25);
  data::Dataset d = MakeLabeledData(400, 0.5, &rng);
  std::vector<double> abilities = {0.95, 0.95, 0.95, 0.52, 0.52,
                                   0.52, 0.52, 0.52};
  WorkerPool pool(abilities, abilities);
  pool.Annotate(&d, 8, &rng);
  Iwmv iwmv;
  MajorityVote mv;
  auto iw = iwmv.Run(d);
  auto mj = mv.Run(d);
  ASSERT_TRUE(iw.ok());
  ASSERT_TRUE(mj.ok());
  EXPECT_GT(LabelAccuracy(iw->labels, d), LabelAccuracy(mj->labels, d));
}

TEST(IwmvTest, WeightsRankWorkersByAbility) {
  Rng rng(26);
  data::Dataset d = MakeLabeledData(500, 0.5, &rng);
  std::vector<double> abilities = {0.95, 0.6, 0.95, 0.6};
  WorkerPool pool(abilities, abilities);
  pool.Annotate(&d, 4, &rng);
  Iwmv iwmv;
  auto result = iwmv.Run(d);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->worker_quality[0], result->worker_quality[1]);
  EXPECT_GT(result->worker_quality[2], result->worker_quality[3]);
}

TEST(IwmvTest, ConvergesAndReportsIterations) {
  Rng rng(27);
  data::Dataset d = MakeLabeledData(100, 0.5, &rng);
  WorkerPool pool({.num_workers = 8}, &rng);
  pool.Annotate(&d, 5, &rng);
  Iwmv iwmv;
  auto result = iwmv.Run(d);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_GE(result->iterations, 1);
}

// ----------------------------------------------------- Worker-aware delta

TEST(ConfidenceTest, WorkerAwareUsesReliability) {
  // Two items with the SAME vote pattern (one yes from a reliable worker +
  // one no from a spammer vs the reverse) get different worker-aware
  // positiveness but identical MLE positiveness.
  Rng rng(28);
  data::Dataset d = MakeLabeledData(200, 0.5, &rng);
  std::vector<double> abilities = {0.95, 0.95, 0.95, 0.52, 0.52, 0.52};
  WorkerPool pool(abilities, abilities);
  pool.Annotate(&d, 6, &rng);
  const auto mle = LabelPositiveness(d, ConfidenceMode::kMle);
  const auto aware = LabelPositiveness(d, ConfidenceMode::kWorkerAware);
  ASSERT_EQ(aware.size(), d.size());
  // Worker-aware posteriors should track ground truth better than raw
  // vote fractions.
  size_t mle_correct = 0, aware_correct = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    mle_correct += ((mle[i] >= 0.5) == (d.true_label(i) == 1));
    aware_correct += ((aware[i] >= 0.5) == (d.true_label(i) == 1));
  }
  EXPECT_GE(aware_correct, mle_correct);
}

TEST(ConfidenceTest, WorkerAwareModeHasName) {
  EXPECT_STREQ(ConfidenceModeName(ConfidenceMode::kWorkerAware),
               "WorkerAware");
}

// ---------------------------------------------------- Adaptive annotation

TEST(AdaptiveAnnotationTest, RespectsBudgetAndBaseRound) {
  Rng rng(29);
  data::Dataset d = MakeLabeledData(100, 0.6, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  AdaptiveAnnotationOptions options;
  options.base_votes = 1;
  options.total_budget = 250;
  options.votes_per_round = 2;
  auto report = AnnotateAdaptively(&d, pool, options, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->votes_spent, options.total_budget);
  EXPECT_GE(report->votes_spent, d.size());  // Base round covered.
  size_t total_annotations = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d.annotations(i).size(), 1u);
    total_annotations += d.annotations(i).size();
  }
  EXPECT_EQ(total_annotations, report->votes_spent);
}

TEST(AdaptiveAnnotationTest, ExtraVotesGoToUncertainItems) {
  Rng rng(30);
  data::Dataset d = MakeLabeledData(200, 0.5, &rng);
  WorkerPool pool({.num_workers = 15}, &rng);
  AdaptiveAnnotationOptions options;
  options.base_votes = 3;
  options.total_budget = 4 * d.size();
  auto report = AnnotateAdaptively(&d, pool, options, &rng);
  ASSERT_TRUE(report.ok());
  // Items that stayed at the base allocation should be the unanimous
  // ones; items that got extra votes should include split votes.
  size_t boosted = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d.annotations(i).size() > options.base_votes) ++boosted;
  }
  EXPECT_GT(boosted, 0u);
  EXPECT_LT(boosted, d.size());  // Allocation is selective, not uniform.
}

TEST(AdaptiveAnnotationTest, BeatsUniformAtSameBudgetOnRecovery) {
  // Averaged over seeds; the advantage is the whole point of the module.
  double adaptive_total = 0.0, uniform_total = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(31 + seed);
    data::Dataset uniform_d = MakeLabeledData(300, 0.6, &rng);
    data::Dataset adaptive_d = uniform_d;
    WorkerPool pool({.num_workers = 15}, &rng);

    pool.Annotate(&uniform_d, 3, &rng);
    AdaptiveAnnotationOptions options;
    options.base_votes = 1;
    options.total_budget = 3 * adaptive_d.size();
    ASSERT_TRUE(AnnotateAdaptively(&adaptive_d, pool, options, &rng).ok());

    auto recovery = [](const data::Dataset& d) {
      size_t correct = 0;
      for (size_t i = 0; i < d.size(); ++i) {
        correct += (d.MajorityVote(i) == d.true_label(i));
      }
      return static_cast<double>(correct) / static_cast<double>(d.size());
    };
    uniform_total += recovery(uniform_d);
    adaptive_total += recovery(adaptive_d);
  }
  EXPECT_GT(adaptive_total, uniform_total - 0.01);
}

TEST(AdaptiveAnnotationTest, RejectsInsufficientBudget) {
  Rng rng(32);
  data::Dataset d = MakeLabeledData(50, 0.5, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  AdaptiveAnnotationOptions options;
  options.base_votes = 2;
  options.total_budget = 50;  // Needs 100 for the base round.
  EXPECT_EQ(AnnotateAdaptively(&d, pool, options, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AdaptiveAnnotationTest, CapsAtWorkerPoolSize) {
  Rng rng(33);
  data::Dataset d = MakeLabeledData(5, 0.5, &rng);
  WorkerPool pool({.num_workers = 4}, &rng);
  AdaptiveAnnotationOptions options;
  options.base_votes = 1;
  options.total_budget = 1000;  // Far more than 5 items × 4 workers.
  auto report = AnnotateAdaptively(&d, pool, options, &rng);
  ASSERT_TRUE(report.ok());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_LE(d.annotations(i).size(), 4u);
  }
  EXPECT_LE(report->votes_spent, 20u);
}

// -------------------------------------------------------------- Collusion

TEST(CollusionTest, VoteCountsAndWorkerIdRanges) {
  Rng rng(34);
  data::Dataset d = MakeLabeledData(100, 0.5, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  crowd::CollusionOptions options;
  options.num_colluders = 4;
  ASSERT_TRUE(
      AnnotateWithCollusion(&d, pool, 3, options, 2, &rng).ok());
  for (size_t i = 0; i < d.size(); ++i) {
    ASSERT_EQ(d.annotations(i).size(), 5u);
    size_t honest = 0, ring = 0;
    for (const data::Annotation& a : d.annotations(i)) {
      if (a.worker_id < 10) {
        ++honest;
      } else {
        EXPECT_LT(a.worker_id, 14u);
        ++ring;
      }
    }
    EXPECT_EQ(honest, 3u);
    EXPECT_EQ(ring, 2u);
  }
}

TEST(CollusionTest, PureHonestMatchesWorkerPoolBehaviour) {
  Rng rng(35);
  data::Dataset d = MakeLabeledData(200, 0.6, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  ASSERT_TRUE(AnnotateWithCollusion(&d, pool, 5, {}, 0, &rng).ok());
  // All ids honest, reasonable majority-vote accuracy.
  auto stats = ComputeAgreement(d);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->majority_vote_accuracy, 0.6);
  EXPECT_EQ(d.NumWorkers(), 10u);
}

TEST(CollusionTest, ColludersVoteInLockstep) {
  Rng rng(36);
  data::Dataset d = MakeLabeledData(400, 0.5, &rng);
  WorkerPool pool({.num_workers = 10}, &rng);
  crowd::CollusionOptions options;
  options.num_colluders = 3;
  options.follow_probability = 1.0;  // Perfect lockstep.
  ASSERT_TRUE(
      AnnotateWithCollusion(&d, pool, 2, options, 3, &rng).ok());
  // On every item, the three ring votes must be identical.
  for (size_t i = 0; i < d.size(); ++i) {
    int ring_vote = -1;
    for (const data::Annotation& a : d.annotations(i)) {
      if (a.worker_id >= 10) {
        if (ring_vote == -1) {
          ring_vote = a.label;
        } else {
          ASSERT_EQ(a.label, ring_vote) << "item " << i;
        }
      }
    }
  }
}

TEST(CollusionTest, RingDegradesMajorityVote) {
  Rng rng(37);
  data::Dataset clean = MakeLabeledData(400, 0.5, &rng);
  data::Dataset rigged = clean;
  WorkerPool pool({.num_workers = 15}, &rng);
  ASSERT_TRUE(AnnotateWithCollusion(&clean, pool, 5, {}, 0, &rng).ok());
  crowd::CollusionOptions options;
  options.num_colluders = 3;
  options.leader_accuracy = 0.5;
  ASSERT_TRUE(
      AnnotateWithCollusion(&rigged, pool, 2, options, 3, &rng).ok());
  auto clean_stats = ComputeAgreement(clean);
  auto rigged_stats = ComputeAgreement(rigged);
  ASSERT_TRUE(clean_stats.ok());
  ASSERT_TRUE(rigged_stats.ok());
  EXPECT_GT(clean_stats->majority_vote_accuracy,
            rigged_stats->majority_vote_accuracy + 0.05);
}

TEST(CollusionTest, RejectsBadArguments) {
  Rng rng(38);
  data::Dataset d = MakeLabeledData(10, 0.5, &rng);
  WorkerPool pool({.num_workers = 4}, &rng);
  EXPECT_FALSE(AnnotateWithCollusion(&d, pool, 5, {}, 0, &rng).ok());
  crowd::CollusionOptions options;
  options.num_colluders = 2;
  EXPECT_FALSE(AnnotateWithCollusion(&d, pool, 2, options, 3, &rng).ok());
  EXPECT_FALSE(AnnotateWithCollusion(&d, pool, 0, options, 0, &rng).ok());
}

// -------------------------------------------------------------- Agreement

TEST(AgreementTest, PerfectAgreement) {
  Rng rng(20);
  data::Dataset d = MakeLabeledData(20, 0.5, &rng);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t w = 0; w < 5; ++w) {
      d.AddAnnotation(i, {w, d.true_label(i)});
    }
  }
  auto stats = ComputeAgreement(d);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->observed_agreement, 1.0);
  EXPECT_DOUBLE_EQ(stats->majority_vote_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(stats->unanimous_fraction, 1.0);
  EXPECT_GT(stats->fleiss_kappa, 0.99);
}

TEST(AgreementTest, RandomVotesHaveLowKappa) {
  Rng rng(21);
  data::Dataset d = MakeLabeledData(400, 0.5, &rng);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t w = 0; w < 5; ++w) {
      d.AddAnnotation(i, {w, rng.Bernoulli(0.5) ? 1 : 0});
    }
  }
  auto stats = ComputeAgreement(d);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->fleiss_kappa, 0.0, 0.05);
}

TEST(AgreementTest, HistogramCountsVoteSplits) {
  Rng rng(22);
  data::Dataset d = MakeLabeledData(2, 0.5, &rng);
  for (size_t w = 0; w < 3; ++w) d.AddAnnotation(0, {w, 1});
  d.AddAnnotation(1, {0, 1});
  d.AddAnnotation(1, {1, 0});
  d.AddAnnotation(1, {2, 0});
  auto stats = ComputeAgreement(d);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->vote_histogram.size(), 4u);
  EXPECT_EQ(stats->vote_histogram[3], 1u);  // Example 0: 3 positives.
  EXPECT_EQ(stats->vote_histogram[1], 1u);  // Example 1: 1 positive.
}

TEST(AgreementTest, RequiresFixedVoteCount) {
  Rng rng(23);
  data::Dataset d = MakeLabeledData(2, 0.5, &rng);
  d.AddAnnotation(0, {0, 1});
  d.AddAnnotation(0, {1, 1});
  d.AddAnnotation(1, {0, 1});  // Only one vote.
  EXPECT_FALSE(ComputeAgreement(d).ok());
}

}  // namespace
}  // namespace rll::crowd
