// Tests for the data substrate: Dataset semantics, stratified K-fold,
// standardization, CSV round-trips, and the synthetic education generator's
// statistical properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include "common/rng.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/kfold.h"
#include "data/standardize.h"
#include "data/synthetic.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll::data {
namespace {

Dataset TinyDataset() {
  Matrix features = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  Dataset d(features, {1, 0, 1, 0});
  // Example 0: 3-of-3 positive votes, 1: 1-of-3, 2: 2-of-3, 3: 0-of-3.
  d.AddAnnotation(0, {0, 1});
  d.AddAnnotation(0, {1, 1});
  d.AddAnnotation(0, {2, 1});
  d.AddAnnotation(1, {0, 0});
  d.AddAnnotation(1, {1, 1});
  d.AddAnnotation(1, {2, 0});
  d.AddAnnotation(2, {0, 1});
  d.AddAnnotation(2, {3, 1});
  d.AddAnnotation(2, {4, 0});
  d.AddAnnotation(3, {2, 0});
  d.AddAnnotation(3, {3, 0});
  d.AddAnnotation(3, {4, 0});
  return d;
}

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, BasicAccessors) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.true_label(2), 1);
  EXPECT_TRUE(d.FullyAnnotated());
  EXPECT_EQ(d.NumWorkers(), 5u);
}

TEST(DatasetTest, PositiveVotesAndMajority) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.PositiveVotes(0), 3u);
  EXPECT_EQ(d.PositiveVotes(1), 1u);
  EXPECT_EQ(d.MajorityVote(0), 1);
  EXPECT_EQ(d.MajorityVote(1), 0);
  EXPECT_EQ(d.MajorityVote(2), 1);
  EXPECT_EQ(d.MajorityVote(3), 0);
  EXPECT_EQ(d.MajorityVoteLabels(), (std::vector<int>{1, 0, 1, 0}));
}

TEST(DatasetTest, MajorityVoteTieBreaksPositive) {
  Matrix f(1, 1);
  Dataset d(f, {0});
  d.AddAnnotation(0, {0, 1});
  d.AddAnnotation(0, {1, 0});
  EXPECT_EQ(d.MajorityVote(0), 1);
}

TEST(DatasetTest, PositiveFraction) {
  Dataset d = TinyDataset();
  EXPECT_DOUBLE_EQ(d.PositiveFraction(), 0.5);
}

TEST(DatasetTest, SubsetCarriesAnnotations) {
  Dataset d = TinyDataset();
  Dataset sub = d.Subset({2, 0});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.true_label(0), 1);
  EXPECT_EQ(sub.PositiveVotes(0), 2u);  // Was example 2.
  EXPECT_EQ(sub.PositiveVotes(1), 3u);  // Was example 0.
  EXPECT_DOUBLE_EQ(sub.features()(0, 0), 5.0);
}

TEST(DatasetTest, ClearAnnotations) {
  Dataset d = TinyDataset();
  d.ClearAnnotations();
  EXPECT_FALSE(d.FullyAnnotated());
  EXPECT_EQ(d.NumWorkers(), 0u);
}

TEST(DatasetTest, PositiveNegativeIndices) {
  const std::vector<int> labels = {1, 0, 1, 1, 0};
  EXPECT_EQ(Dataset::PositiveIndices(labels), (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(Dataset::NegativeIndices(labels), (std::vector<size_t>{1, 4}));
}

// ------------------------------------------------------------------ KFold

TEST(KFoldTest, TrainTestSplitPartitions) {
  Rng rng(1);
  Split split = TrainTestSplit(100, 0.25, &rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(KFoldTest, EveryExampleTestedExactlyOnce) {
  Rng rng(2);
  std::vector<int> labels(37);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 3 == 0;
  const auto splits = StratifiedKFold(labels, 5, &rng);
  ASSERT_EQ(splits.size(), 5u);
  std::multiset<size_t> tested;
  for (const Split& s : splits) {
    tested.insert(s.test.begin(), s.test.end());
    // Train and test are disjoint and cover everything.
    std::set<size_t> train(s.train.begin(), s.train.end());
    for (size_t t : s.test) EXPECT_EQ(train.count(t), 0u);
    EXPECT_EQ(s.train.size() + s.test.size(), labels.size());
  }
  for (size_t i = 0; i < labels.size(); ++i) EXPECT_EQ(tested.count(i), 1u);
}

TEST(KFoldTest, FoldsPreserveClassRatio) {
  Rng rng(3);
  std::vector<int> labels(200);
  for (size_t i = 0; i < 140; ++i) labels[i] = 1;  // 70% positive.
  rng.Shuffle(&labels);
  const auto splits = StratifiedKFold(labels, 5, &rng);
  for (const Split& s : splits) {
    size_t pos = 0;
    for (size_t i : s.test) pos += (labels[i] == 1);
    const double frac = static_cast<double>(pos) / s.test.size();
    EXPECT_NEAR(frac, 0.7, 0.05);
  }
}

// ------------------------------------------------------------ Standardize

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  Rng rng(4);
  Matrix x = RandomNormal(200, 5, &rng, 3.0, 2.0);
  Standardizer s;
  Matrix z = s.FitTransform(x);
  Matrix mean = ColMean(z);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(mean[c], 0.0, 1e-9);
    double var = 0.0;
    for (size_t r = 0; r < z.rows(); ++r) var += z(r, c) * z(r, c);
    EXPECT_NEAR(var / z.rows(), 1.0, 1e-9);
  }
}

TEST(StandardizeTest, ConstantColumnMapsToZero) {
  Matrix x(10, 1, 7.0);
  Standardizer s;
  Matrix z = s.FitTransform(x);
  for (size_t i = 0; i < z.size(); ++i) EXPECT_DOUBLE_EQ(z[i], 0.0);
}

TEST(StandardizeTest, TransformUsesTrainStatistics) {
  Matrix train = {{0.0}, {2.0}};  // mean 1, std 1.
  Matrix test = {{3.0}};
  Standardizer s;
  s.Fit(train);
  EXPECT_DOUBLE_EQ(s.Transform(test)(0, 0), 2.0);
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, FeaturesRoundTrip) {
  Dataset d = TinyDataset();
  const std::string path = ::testing::TempDir() + "/features.csv";
  ASSERT_TRUE(SaveFeaturesCsv(path, d).ok());
  Result<Dataset> back = LoadFeaturesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), d.size());
  EXPECT_EQ(back->true_labels(), d.true_labels());
  EXPECT_TRUE(back->features().AllClose(d.features(), 0.0, 0.0));
}

TEST(CsvTest, AnnotationsRoundTrip) {
  Dataset d = TinyDataset();
  const std::string fpath = ::testing::TempDir() + "/f2.csv";
  const std::string apath = ::testing::TempDir() + "/a2.csv";
  ASSERT_TRUE(SaveFeaturesCsv(fpath, d).ok());
  ASSERT_TRUE(SaveAnnotationsCsv(apath, d).ok());
  Result<Dataset> back = LoadFeaturesCsv(fpath);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(LoadAnnotationsCsv(apath, &back.value()).ok());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back->PositiveVotes(i), d.PositiveVotes(i));
    EXPECT_EQ(back->annotations(i).size(), d.annotations(i).size());
  }
}

TEST(CsvTest, LoadRejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/bad.csv";
  {
    std::ofstream f(path);
    f << "f0,label\n1.5,1\nnot_a_number,0\n";
  }
  EXPECT_FALSE(LoadFeaturesCsv(path).ok());
}

TEST(CsvTest, LoadRejectsBadLabel) {
  const std::string path = ::testing::TempDir() + "/bad2.csv";
  {
    std::ofstream f(path);
    f << "f0,label\n1.5,2\n";
  }
  EXPECT_FALSE(LoadFeaturesCsv(path).ok());
}

TEST(CsvTest, AnnotationsRejectOutOfRangeExample) {
  Dataset d = TinyDataset();
  const std::string path = ::testing::TempDir() + "/bad3.csv";
  {
    std::ofstream f(path);
    f << "example_id,worker_id,label\n99,0,1\n";
  }
  EXPECT_EQ(LoadAnnotationsCsv(path, &d).code(), StatusCode::kOutOfRange);
}

TEST(CsvTest, FuzzedInputsNeverCrash) {
  // Random junk must produce clean Status errors (or valid parses), never
  // aborts or UB — the CSV layer is the library's untrusted-input surface.
  Rng rng(77);
  const std::string path = ::testing::TempDir() + "/fuzz.csv";
  const std::string charset = "0123456789.,-+eE \tabcxyz\"';\n";
  for (int trial = 0; trial < 200; ++trial) {
    {
      std::ofstream f(path);
      f << "f0,f1,label\n";
      const size_t len = 1 + rng.UniformInt(120u);
      for (size_t i = 0; i < len; ++i) {
        f << charset[rng.UniformInt(charset.size())];
      }
    }
    auto result = LoadFeaturesCsv(path);
    if (result.ok()) {
      // Whatever parsed must be self-consistent.
      EXPECT_EQ(result->features().rows(), result->size());
      EXPECT_EQ(result->dim(), 2u);
    }
  }
}

TEST(CsvTest, FuzzedAnnotationsNeverCrash) {
  Rng rng(78);
  Matrix features(5, 1);
  Dataset d(features, {1, 0, 1, 0, 1});
  const std::string path = ::testing::TempDir() + "/fuzz_ann.csv";
  const std::string charset = "0123456789,-\n ab";
  for (int trial = 0; trial < 200; ++trial) {
    {
      std::ofstream f(path);
      f << "example_id,worker_id,label\n";
      const size_t len = 1 + rng.UniformInt(80u);
      for (size_t i = 0; i < len; ++i) {
        f << charset[rng.UniformInt(charset.size())];
      }
    }
    Status status = LoadAnnotationsCsv(path, &d);
    if (status.ok()) {
      // Any accepted annotation must be in range.
      for (size_t i = 0; i < d.size(); ++i) {
        for (const Annotation& a : d.annotations(i)) {
          EXPECT_TRUE(a.label == 0 || a.label == 1);
        }
      }
    }
  }
}

TEST(CsvTest, HandlesWindowsLineEndingsGracefully) {
  const std::string path = ::testing::TempDir() + "/crlf.csv";
  {
    std::ofstream f(path);
    f << "f0,label\r\n1.5,1\r\n";
  }
  // CRLF labels fail integer parsing ("1\r") — a clean error, not a crash.
  auto result = LoadFeaturesCsv(path);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

// -------------------------------------------------------------- Synthetic

TEST(SyntheticTest, RespectsSizeAndRatioOral) {
  Rng rng(5);
  Dataset d = GenerateSynthetic(OralSimConfig(), &rng);
  EXPECT_EQ(d.size(), 880u);
  EXPECT_EQ(d.dim(), OralSimConfig().TotalDims());
  // pos:neg = 1.8 → positive fraction ≈ 0.643.
  EXPECT_NEAR(d.PositiveFraction(), 1.8 / 2.8, 0.01);
}

TEST(SyntheticTest, RespectsSizeAndRatioClass) {
  Rng rng(6);
  Dataset d = GenerateSynthetic(ClassSimConfig(), &rng);
  EXPECT_EQ(d.size(), 472u);
  EXPECT_EQ(d.dim(), ClassSimConfig().TotalDims());
  EXPECT_NEAR(d.PositiveFraction(), 2.1 / 3.1, 0.01);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  Dataset d1 = GenerateSynthetic(OralSimConfig(), &a);
  Dataset d2 = GenerateSynthetic(OralSimConfig(), &b);
  EXPECT_TRUE(d1.features().AllClose(d2.features(), 0.0, 0.0));
  EXPECT_EQ(d1.true_labels(), d2.true_labels());
}

TEST(SyntheticTest, ClassesAreStatisticallySeparable) {
  // Class-conditional means must differ in the informative block: compare
  // the mean feature vectors of the two classes.
  Rng rng(8);
  SyntheticConfig config = OralSimConfig();
  config.mix_features = false;  // Keep the informative block identifiable.
  Dataset d = GenerateSynthetic(config, &rng);
  Matrix pos_mean(1, d.dim()), neg_mean(1, d.dim());
  size_t np = 0, nn = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    Matrix* target = d.true_label(i) == 1 ? &pos_mean : &neg_mean;
    (d.true_label(i) == 1 ? np : nn)++;
    for (size_t c = 0; c < d.dim(); ++c) {
      (*target)[c] += d.features()(i, c);
    }
  }
  pos_mean *= 1.0 / static_cast<double>(np);
  neg_mean *= 1.0 / static_cast<double>(nn);
  const double gap = Norm(Sub(pos_mean, neg_mean));
  EXPECT_GT(gap, 0.5);  // Signal present...
  EXPECT_LT(gap, 20.0);  // ...but not trivially separable.
}

TEST(SyntheticTest, NoiseDimensionsCarryNoSignal) {
  Rng rng(9);
  SyntheticConfig config = OralSimConfig();
  config.mix_features = false;
  Dataset d = GenerateSynthetic(config, &rng);
  // Mean |class-mean difference| over the pure-noise block must be tiny.
  for (size_t c = config.linear_dims + config.xor_dims; c < d.dim();
       c += 11) {
    double pos = 0.0, neg = 0.0;
    size_t np = 0, nn = 0;
    for (size_t i = 0; i < d.size(); ++i) {
      if (d.true_label(i) == 1) {
        pos += d.features()(i, c);
        ++np;
      } else {
        neg += d.features()(i, c);
        ++nn;
      }
    }
    EXPECT_LT(std::fabs(pos / np - neg / nn), 0.35) << "noise col " << c;
  }
}

TEST(SyntheticTest, GeneratorValidatesConfig) {
  Rng rng(10);
  SyntheticConfig config;
  config.positive_fraction = 1.5;  // Invalid.
  EXPECT_DEATH(GenerateSynthetic(config, &rng), "positive_fraction");
}

}  // namespace
}  // namespace rll::data
