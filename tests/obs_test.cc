// Tests for the observability layer: metric instrument semantics (including
// concurrent writers), histogram percentiles, registry families and
// exporters, trace spans + Chrome JSON validity, and the trainer observer
// hooks on a tiny synthetic run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/rll_trainer.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace rll::obs {
namespace {

// ------------------------------------------------------- JSON mini-checker

// Minimal recursive-descent JSON validity checker, enough to verify the
// exporters emit parseable documents without a JSON library dependency.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipWs();
    const bool ok = checker.Value();
    checker.SkipWs();
    return ok && checker.pos_ == checker.text_.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  static bool IsDigit(int c) { return c >= '0' && c <= '9'; }
  int Peek() const {
    return pos_ < text_.size() ? static_cast<unsigned char>(text_[pos_]) : -1;
  }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (true) {
      const int c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Eat(*p)) return false;
    }
    return true;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }

  bool Number() {
    bool digits = false;
    if (Peek() == '-') ++pos_;
    while (IsDigit(Peek())) {
      ++pos_;
      digits = true;
    }
    if (Eat('.')) {
      while (IsDigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (IsDigit(Peek())) ++pos_;
    }
    return digits;
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool Value() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker::Valid(R"({"a":[1,2.5,-3e-2],"b":"x\"y","c":null})"));
  EXPECT_TRUE(JsonChecker::Valid("[]"));
  EXPECT_FALSE(JsonChecker::Valid(R"({"a":})"));
  EXPECT_FALSE(JsonChecker::Valid("{1:2}"));
  EXPECT_FALSE(JsonChecker::Valid(R"({"a":1} extra)"));
}

TEST(JsonUtilTest, EscapesAndFormats) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
}

// ------------------------------------------------------------- instruments

TEST(CounterTest, IncrementSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(HistogramTest, LinearBucketPercentiles) {
  HistogramOptions options;
  options.buckets = HistogramOptions::Buckets::kLinear;
  options.min = 0.0;
  options.max = 100.0;
  options.count = 100;
  Histogram h(options);
  for (int v = 1; v <= 100; ++v) h.Observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  // Uniform data in unit-width buckets: percentiles are exact to within
  // one bucket width.
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.95), 95.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.99), 99.0, 2.0);
  EXPECT_LE(h.Percentile(0.0), h.Percentile(1.0));
}

TEST(HistogramTest, ExponentialBucketsSpanMagnitudes) {
  HistogramOptions options;
  options.buckets = HistogramOptions::Buckets::kExponential;
  options.start = 1e-3;
  options.growth = 2.0;
  options.count = 20;
  Histogram h(options);
  for (double v : {0.002, 0.02, 0.2, 2.0, 20.0}) h.Observe(v);

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.002);
  EXPECT_DOUBLE_EQ(h.max(), 20.0);
  const double p10 = h.Percentile(0.1);
  const double p90 = h.Percentile(0.9);
  EXPECT_LE(p10, p90);
  EXPECT_GE(p10, 0.0);
  EXPECT_LE(p90, 20.0 + 1e-9);
}

TEST(HistogramTest, OverflowBucketCatchesOutliers) {
  HistogramOptions options;
  options.buckets = HistogramOptions::Buckets::kLinear;
  options.min = 0.0;
  options.max = 1.0;
  options.count = 10;
  Histogram h(options);
  h.Observe(0.5);
  h.Observe(1e6);  // Beyond the last finite bound.

  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), h.bucket_bounds().size() + 1);
  EXPECT_EQ(counts.back(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  // The top percentile lands in the overflow bucket, pinned to the
  // observed maximum rather than infinity.
  EXPECT_LE(h.Percentile(1.0), 1e6 + 1e-9);
}

TEST(HistogramTest, ExemplarsStampTheContainingBucket) {
  HistogramOptions options;
  options.buckets = HistogramOptions::Buckets::kLinear;
  options.min = 0.0;
  options.max = 10.0;
  options.count = 10;
  Histogram h(options);

  h.Observe(0.5);                     // Plain observation: no exemplar.
  h.ObserveWithExemplar(2.5, 101);    // Bucket [2, 3).
  h.ObserveWithExemplar(2.7, 202);    // Same bucket: last write wins.
  h.ObserveWithExemplar(1e6, 303);    // Overflow bucket.
  h.ObserveWithExemplar(4.5, 0);      // trace_id 0: counted, no exemplar.

  EXPECT_EQ(h.count(), 5u);  // Exemplar observes still count normally.
  const std::vector<HistogramExemplar> exemplars = h.bucket_exemplars();
  ASSERT_EQ(exemplars.size(), h.bucket_bounds().size() + 1);
  EXPECT_EQ(exemplars[0].trace_id, 0u);  // Plain Observe left none.
  EXPECT_EQ(exemplars[2].trace_id, 202u);
  EXPECT_DOUBLE_EQ(exemplars[2].value, 2.7);
  EXPECT_EQ(exemplars[4].trace_id, 0u);  // trace_id 0 records nothing.
  EXPECT_EQ(exemplars.back().trace_id, 303u);
  EXPECT_DOUBLE_EQ(exemplars.back().value, 1e6);
}

TEST(HistogramTest, ConcurrentObservesKeepExactCount) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1e-4 * (t + 1) * (i % 100 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : h.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count());
}

// ---------------------------------------------------------------- registry

TEST(MetricRegistryTest, SameNameAndLabelsReturnSameInstrument) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("requests", {{"route", "train"}});
  Counter* b = registry.GetCounter("requests", {{"route", "train"}});
  Counter* c = registry.GetCounter("requests", {{"route", "eval"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistryTest, HistogramOptionsApplyOnFirstCreation) {
  MetricRegistry registry;
  HistogramOptions options;
  options.buckets = HistogramOptions::Buckets::kLinear;
  options.count = 7;
  Histogram* h = registry.GetHistogram("h", {}, options);
  EXPECT_EQ(h->bucket_bounds().size(), 7u);
  // A second lookup with different options returns the existing instrument.
  HistogramOptions other;
  other.count = 3;
  EXPECT_EQ(registry.GetHistogram("h", {}, other), h);
  EXPECT_EQ(h->bucket_bounds().size(), 7u);
}

TEST(MetricRegistryTest, ExportersEmitEveryInstrument) {
  MetricRegistry registry;
  registry.GetCounter("events_total")->Increment(3);
  registry.GetGauge("lr", {{"opt", "adam"}})->Set(0.001);
  registry.GetHistogram("latency_ms")->Observe(1.5);

  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("events_total"), std::string::npos);
  EXPECT_NE(text.find("lr"), std::string::npos);
  EXPECT_NE(text.find("latency_ms"), std::string::npos);

  const std::string jsonl = registry.ExportJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  size_t metric_lines = 0;
  size_t meta_lines = 0;
  bool first = true;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker::Valid(line)) << line;
    if (line.find("\"type\":\"meta\"") != std::string::npos) {
      // The schema header must come first so stream consumers can
      // version-dispatch before reading any metric line.
      EXPECT_TRUE(first) << line;
      EXPECT_NE(line.find("\"schema_version\""), std::string::npos) << line;
      ++meta_lines;
    } else {
      EXPECT_NE(line.find("\"type\":\"metric\""), std::string::npos) << line;
      ++metric_lines;
    }
    first = false;
  }
  EXPECT_EQ(meta_lines, 1u);
  EXPECT_EQ(metric_lines, 3u);

  EXPECT_NE(registry.ExportText().find(
                StrFormat("# schema_version %d", kMetricsSchemaVersion)),
            std::string::npos);
}

TEST(MetricRegistryTest, ExportJsonIsValidAndVersioned) {
  MetricRegistry registry;
  registry.GetCounter("events_total")->Increment(3);
  registry.GetGauge("lr", {{"opt", "adam"}})->Set(0.001);
  registry.GetHistogram("latency_ms")->Observe(1.5);

  const std::string json = registry.ExportJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find(StrFormat("\"schema_version\":%d",
                                kMetricsSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"events_total\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("lr{opt=\\\"adam\\\"}"), std::string::npos) << json;
  // Histograms export as an object with the full summary.
  for (const char* key : {"\"kind\":\"histogram\"", "\"count\":", "\"p50\":",
                          "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Keys are emitted in sorted order, so exports diff cleanly run-to-run.
  EXPECT_LT(json.find("events_total"), json.find("latency_ms"));
  EXPECT_LT(json.find("latency_ms"), json.find("lr{opt="));
}

TEST(MetricRegistryTest, CounterValuesSnapshotsCountersOnly) {
  MetricRegistry registry;
  registry.GetCounter("a_total")->Increment(2);
  registry.GetCounter("b_total", {{"k", "v"}})->Increment(5);
  registry.GetGauge("not_a_counter")->Set(9.0);
  registry.GetHistogram("nor_this")->Observe(1.0);

  const std::map<std::string, uint64_t> values = registry.CounterValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("a_total"), 2u);
  EXPECT_EQ(values.at("b_total{k=\"v\"}"), 5u);
}

TEST(MetricRegistryTest, ObserveMillisBridgesScopedTimer) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("scoped_ms");
  {
    ScopedTimer timer(ObserveMillis(h));
  }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GE(h->sum(), 0.0);
}

// ---------------------------------------------------------------- windowed

TEST(WindowedCounterTest, CountsWithinWindowAndComputesRate) {
  WindowOptions options;
  options.intervals = 5;
  options.interval_us = 1'000'000;
  WindowedCounter counter(options);

  const int64_t t0 = 100'000'000;  // Arbitrary steady-clock origin.
  counter.IncrementAt(3, t0);
  counter.IncrementAt(2, t0 + 1'000'000);

  const auto snapshot = counter.SnapshotAt(t0 + 1'000'000);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.window_seconds, 5.0);
  EXPECT_DOUBLE_EQ(snapshot.rate_per_sec, 1.0);
}

TEST(WindowedCounterTest, OldIntervalsAgeOutOfTheWindow) {
  WindowOptions options;
  options.intervals = 3;
  options.interval_us = 1'000'000;
  WindowedCounter counter(options);

  const int64_t t0 = 50'000'000;
  counter.IncrementAt(10, t0);
  // Within the 3s window the burst is visible...
  EXPECT_EQ(counter.SnapshotAt(t0 + 2'000'000).count, 10u);
  // ...one interval past the edge it is gone, even though its slot has
  // not been recycled by a writer.
  EXPECT_EQ(counter.SnapshotAt(t0 + 3'000'000).count, 0u);
}

TEST(WindowedCounterTest, SlotRecyclingZeroesStaleEpochs) {
  WindowOptions options;
  options.intervals = 2;
  options.interval_us = 1'000'000;
  WindowedCounter counter(options);

  const int64_t t0 = 1'000'000;
  counter.IncrementAt(7, t0);
  // Same ring slot (epoch + intervals), much later: the old count must
  // not leak into the fresh interval.
  counter.IncrementAt(1, t0 + 2'000'000);
  EXPECT_EQ(counter.SnapshotAt(t0 + 2'000'000).count, 1u);
}

TEST(WindowedHistogramTest, PercentilesMatchLifetimeHistogram) {
  // Identical observation stream through a lifetime Histogram and a
  // WindowedHistogram whose window covers all of it: the shared bucket
  // math must produce identical percentiles.
  HistogramOptions histogram_options;
  WindowOptions window_options;
  window_options.intervals = 100;
  Histogram lifetime(histogram_options);
  WindowedHistogram windowed(histogram_options, window_options);

  Rng rng(7);
  const int64_t t0 = 10'000'000;
  for (int i = 0; i < 2000; ++i) {
    const double value = std::exp(rng.Normal() * 1.5);
    lifetime.Observe(value);
    // Spread across 50 intervals, all inside the 100-interval window.
    windowed.ObserveAt(value, t0 + (i % 50) * window_options.interval_us);
  }

  const auto snapshot =
      windowed.SnapshotAt(t0 + 49 * window_options.interval_us);
  EXPECT_EQ(snapshot.count, lifetime.count());
  // Slot sums accumulate in a different order than the lifetime total, so
  // the aggregate can differ by a few ulps.
  EXPECT_NEAR(snapshot.sum, lifetime.sum(), 1e-8);
  EXPECT_DOUBLE_EQ(snapshot.min, lifetime.min());
  EXPECT_DOUBLE_EQ(snapshot.max, lifetime.max());
  EXPECT_DOUBLE_EQ(snapshot.p50, lifetime.Percentile(0.50));
  EXPECT_DOUBLE_EQ(snapshot.p95, lifetime.Percentile(0.95));
  EXPECT_DOUBLE_EQ(snapshot.p99, lifetime.Percentile(0.99));
}

TEST(WindowedHistogramTest, WindowForgetsOldLoad) {
  WindowOptions window_options;
  window_options.intervals = 4;
  WindowedHistogram windowed({}, window_options);

  const int64_t t0 = 20'000'000;
  // A slow burst, then — well past the window — a fast one.
  for (int i = 0; i < 100; ++i) windowed.ObserveAt(80.0, t0);
  const int64_t t1 = t0 + 10 * window_options.interval_us;
  for (int i = 0; i < 100; ++i) windowed.ObserveAt(1.0, t1);

  const auto snapshot = windowed.SnapshotAt(t1);
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.max, 1.0);
  EXPECT_LT(snapshot.p99, 2.0);  // The 80ms burst aged out.
}

TEST(WindowedHistogramTest, EmptyWindowSnapshotsToZeros) {
  WindowedHistogram windowed;
  const auto snapshot = windowed.SnapshotAt(123'000'000);
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.p99, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.rate_per_sec, 0.0);
}

TEST(WindowedHistogramTest, ConcurrentWritersLoseNothingWithinAnInterval) {
  // All writers land in one interval (no recycling races), so the relaxed
  // counters must account for every observation. Run under TSan, this is
  // also the data-race check for the lock-free writer path.
  WindowOptions window_options;
  window_options.intervals = 8;
  window_options.interval_us = 60'000'000;  // 60s: one interval, no wrap.
  WindowedHistogram windowed({}, window_options);
  WindowedCounter counter({8, 60'000'000});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&windowed, &counter, t] {
      for (int i = 0; i < kPerThread; ++i) {
        windowed.Observe(static_cast<double>(t + 1));
        counter.Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const auto histogram_snapshot = windowed.GetSnapshot();
  EXPECT_EQ(histogram_snapshot.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(histogram_snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(histogram_snapshot.max, static_cast<double>(kThreads));
  EXPECT_EQ(counter.GetSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------------- trace

TEST(TraceTest, DisabledRecordsNothing) {
  SetTracingEnabled(false);
  ClearTraceEvents();
  {
    RLL_TRACE_SPAN("ignored");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST(TraceTest, NestedSpansContainEachOther) {
  SetTracingEnabled(true);
  ClearTraceEvents();
  {
    RLL_TRACE_SPAN("outer");
    {
      RLL_TRACE_SPAN_ID("inner", 3);
    }
  }
  SetTracingEnabled(false);

  const std::vector<TraceEventView> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot order is (tid, start): the outer span opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner:3");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(TraceTest, ThreadsGetDistinctTrackIds) {
  SetTracingEnabled(true);
  ClearTraceEvents();
  std::thread worker([] {
    RLL_TRACE_SPAN("worker_span");
  });
  {
    RLL_TRACE_SPAN("main_span");
  }
  worker.join();
  SetTracingEnabled(false);

  const std::vector<TraceEventView> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceTest, ChromeJsonIsValidAndComplete) {
  SetTracingEnabled(true);
  ClearTraceEvents();
  {
    RLL_TRACE_SPAN("epoch");
    {
      RLL_TRACE_SPAN("batch");
    }
  }
  SetTracingEnabled(false);

  const std::string json = TraceToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"batch\""), std::string::npos);
}

// --------------------------------------------------------------- observers

data::Dataset TinyAnnotatedDataset(Rng* rng) {
  data::SyntheticConfig config;
  config.num_examples = 120;
  config.positive_fraction = 0.6;
  config.linear_dims = 4;
  config.xor_dims = 2;
  config.noise_dims = 2;
  data::Dataset d = GenerateSynthetic(config, rng);
  crowd::WorkerPool pool({.num_workers = 8}, rng);
  pool.Annotate(&d, 5, rng);
  return d;
}

core::RllTrainerOptions TinyTrainerOptions() {
  core::RllTrainerOptions options;
  options.model.hidden_dims = {8, 4};
  options.epochs = 4;
  options.groups_per_epoch = 64;
  options.batch_size = 16;
  return options;
}

class RecordingObserver : public TrainerObserver {
 public:
  void OnTrainBegin(const TrainBeginStats& stats) override {
    events.push_back("begin");
    begin = stats;
  }
  void OnBatchEnd(const BatchStats& stats) override {
    ++batches;
    last_batch = stats;
  }
  void OnEpochEnd(const EpochStats& stats) override {
    events.push_back("epoch");
    epochs.push_back(stats);
  }
  void OnValidation(const ValidationStats& /*stats*/) override {
    ++validations;
  }
  void OnEarlyStop(int /*epoch*/, int /*best_epoch*/) override {
    ++early_stops;
  }
  void OnTrainEnd(const TrainEndStats& stats) override {
    events.push_back("end");
    end = stats;
  }

  std::vector<std::string> events;
  std::vector<EpochStats> epochs;
  TrainBeginStats begin;
  BatchStats last_batch;
  TrainEndStats end;
  int batches = 0;
  int validations = 0;
  int early_stops = 0;
};

TEST(TrainerObserverTest, CallbackOrderAndCounts) {
  Rng rng(17);
  data::Dataset d = TinyAnnotatedDataset(&rng);
  core::RllTrainerOptions options = TinyTrainerOptions();
  RecordingObserver recorder;
  options.observers.push_back(&recorder);

  core::RllTrainer trainer(options, &rng);
  auto summary = trainer.Train(d.features(), d.MajorityVoteLabels(),
                               std::vector<double>(d.size(), 1.0));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  ASSERT_FALSE(recorder.events.empty());
  EXPECT_EQ(recorder.events.front(), "begin");
  EXPECT_EQ(recorder.events.back(), "end");
  EXPECT_EQ(recorder.epochs.size(), 4u);
  EXPECT_EQ(recorder.begin.num_examples, d.size());
  EXPECT_EQ(recorder.begin.planned_epochs, 4);
  EXPECT_GT(recorder.batches, 0);
  EXPECT_EQ(recorder.end.epochs_run, 4);
  EXPECT_FALSE(recorder.end.stopped_early);
  for (size_t e = 0; e < recorder.epochs.size(); ++e) {
    EXPECT_EQ(recorder.epochs[e].epoch, static_cast<int>(e));
    EXPECT_TRUE(std::isfinite(recorder.epochs[e].train_loss));
    EXPECT_GT(recorder.epochs[e].mean_grad_norm, 0.0);
    EXPECT_GT(recorder.epochs[e].groups_per_sec, 0.0);
  }
  EXPECT_TRUE(std::isfinite(recorder.last_batch.grad_norm));
}

TEST(TrainerObserverTest, ValidationHooksFire) {
  Rng rng(23);
  data::Dataset d = TinyAnnotatedDataset(&rng);
  core::RllTrainerOptions options = TinyTrainerOptions();
  options.epochs = 6;
  options.validation_fraction = 0.25;
  options.validation_groups = 32;
  RecordingObserver recorder;
  options.observers.push_back(&recorder);

  core::RllTrainer trainer(options, &rng);
  auto summary = trainer.Train(d.features(), d.MajorityVoteLabels(),
                               std::vector<double>(d.size(), 1.0));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(recorder.validations, recorder.end.epochs_run);
  if (recorder.end.stopped_early) {
    EXPECT_EQ(recorder.early_stops, 1);
  }
}

TEST(TrainerObserverTest, MetricsObserverRecordsIntoRegistry) {
  MetricRegistry registry;
  Rng rng(29);
  data::Dataset d = TinyAnnotatedDataset(&rng);
  core::RllTrainerOptions options = TinyTrainerOptions();
  MetricsObserver metrics(&registry);
  options.observers.push_back(&metrics);

  core::RllTrainer trainer(options, &rng);
  ASSERT_TRUE(trainer
                  .Train(d.features(), d.MajorityVoteLabels(),
                         std::vector<double>(d.size(), 1.0))
                  .ok());
  EXPECT_EQ(registry.GetCounter("rll_trainer_epochs_total")->value(), 4u);
  EXPECT_EQ(registry.GetCounter("rll_trainer_runs_total")->value(), 1u);
  EXPECT_EQ(registry.GetHistogram("rll_trainer_epoch_loss")->count(), 4u);
  EXPECT_GT(registry.GetGauge("rll_trainer_groups_per_sec")->value(), 0.0);
}

TEST(TrainerObserverTest, JsonlObserverWritesValidLines) {
  const std::string path =
      testing::TempDir() + "/rll_obs_test_history.jsonl";
  Rng rng(31);
  data::Dataset d = TinyAnnotatedDataset(&rng);
  core::RllTrainerOptions options = TinyTrainerOptions();
  JsonlObserver jsonl(path);
  ASSERT_TRUE(jsonl.status().ok()) << jsonl.status().ToString();
  options.observers.push_back(&jsonl);

  core::RllTrainer trainer(options, &rng);
  ASSERT_TRUE(trainer
                  .Train(d.features(), d.MajorityVoteLabels(),
                         std::vector<double>(d.size(), 1.0))
                  .ok());
  jsonl.Close();
  ASSERT_TRUE(jsonl.status().ok()) << jsonl.status().ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  // train_begin + 4 epochs + train_end.
  ASSERT_EQ(lines.size(), 6u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(JsonChecker::Valid(l)) << l;
  }
  EXPECT_NE(lines.front().find("\"type\":\"train_begin\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"epoch\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"grad_norm\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"type\":\"train_end\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rll::obs
