// Tests for the resampling-statistics module (bootstrap CIs, paired
// permutation tests).

#include <gtest/gtest.h>

#include <cmath>

#include "classify/stats.h"
#include "common/rng.h"

namespace rll::classify {
namespace {

TEST(BootstrapTest, CiBracketsTheMean) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.Normal(0.8, 0.05));
  auto ci = BootstrapMeanCi(values, &rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->lower, ci->mean);
  EXPECT_GE(ci->upper, ci->mean);
  EXPECT_NEAR(ci->mean, 0.8, 0.03);
  // 95% CI of 50 samples with sd 0.05: roughly ±0.014.
  EXPECT_NEAR(ci->upper - ci->lower, 4.0 * 0.05 / std::sqrt(50.0), 0.02);
}

TEST(BootstrapTest, DegenerateConstantValues) {
  Rng rng(2);
  auto ci = BootstrapMeanCi({0.5, 0.5, 0.5, 0.5}, &rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci->mean, 0.5);
  EXPECT_DOUBLE_EQ(ci->lower, 0.5);
  EXPECT_DOUBLE_EQ(ci->upper, 0.5);
}

TEST(BootstrapTest, WiderConfidenceWidensInterval) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) values.push_back(rng.Normal(0.0, 1.0));
  Rng rng_a(7), rng_b(7);
  auto narrow = BootstrapMeanCi(values, &rng_a, 0.8);
  auto wide = BootstrapMeanCi(values, &rng_b, 0.99);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LT(narrow->upper - narrow->lower, wide->upper - wide->lower);
}

TEST(BootstrapTest, RejectsBadInputs) {
  Rng rng(4);
  EXPECT_FALSE(BootstrapMeanCi({}, &rng).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, &rng, 1.5).ok());
  EXPECT_FALSE(BootstrapMeanCi({1.0}, &rng, 0.95, 10).ok());
}

TEST(PermutationTest, ClearDifferenceIsSignificant) {
  Rng rng(5);
  // A beats B by 0.1 on every one of 15 folds: essentially certain.
  std::vector<double> a(15), b(15);
  for (size_t i = 0; i < a.size(); ++i) {
    b[i] = 0.7 + 0.01 * static_cast<double>(i % 3);
    a[i] = b[i] + 0.1;
  }
  auto result = PairedPermutationTest(a, b, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_difference, 0.1, 1e-12);
  EXPECT_LT(result->p_value, 0.001);
}

TEST(PermutationTest, NoDifferenceIsInsignificant) {
  Rng rng(6);
  std::vector<double> a(30), b(30);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal(0.8, 0.05);
    b[i] = a[i] + rng.Normal(0.0, 0.05);  // Zero-mean paired noise.
  }
  auto result = PairedPermutationTest(a, b, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.05);
}

TEST(PermutationTest, ExactEnumerationForSmallN) {
  Rng rng(7);
  // n = 3, all diffs +1: only the all-positive and all-negative sign
  // patterns reach |mean diff| = 1 → p = 2/8.
  auto result = PairedPermutationTest({1, 1, 1}, {0, 0, 0}, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->p_value, 2.0 / 8.0, 1e-12);
}

TEST(PermutationTest, SymmetricInSign) {
  Rng rng(8);
  std::vector<double> a = {1, 1, 1, 1, 1, 1};
  std::vector<double> b = {0, 0, 0, 0, 0, 0};
  auto ab = PairedPermutationTest(a, b, &rng);
  auto ba = PairedPermutationTest(b, a, &rng);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_DOUBLE_EQ(ab->p_value, ba->p_value);
  EXPECT_DOUBLE_EQ(ab->mean_difference, -ba->mean_difference);
}

TEST(PermutationTest, RejectsMismatchedSizes) {
  Rng rng(9);
  EXPECT_FALSE(PairedPermutationTest({1.0}, {1.0, 2.0}, &rng).ok());
  EXPECT_FALSE(PairedPermutationTest({}, {}, &rng).ok());
}

TEST(CorrectnessVectorTest, EncodesMatches) {
  const auto v = CorrectnessVector({1, 0, 1}, {1, 1, 0});
  EXPECT_EQ(v, (std::vector<double>{1.0, 0.0, 0.0}));
}

}  // namespace
}  // namespace rll::classify
