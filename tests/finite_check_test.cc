// Death tests for the numeric-invariant tripwires (common/finite_check.h)
// and the RLL_DCHECK comparison family. In debug builds every tripwire must
// abort with a message naming the offending value; in NDEBUG builds the
// same expressions must compile to no-ops (exercised by the Release CI leg
// running this same file).

#include "common/finite_check.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FiniteCheckTest, PassesOnFiniteInputs) {
  RLL_DCHECK_FINITE(0.0);
  RLL_DCHECK_FINITE(-3.5e300);
  const std::vector<double> v{0.0, 1.0, -2.5};
  RLL_DCHECK_FINITE(v);
  const rll::Matrix m(2, 3, 1.25);
  RLL_DCHECK_FINITE(m);
  RLL_DCHECK_PROB(0.0);
  RLL_DCHECK_PROB(0.5);
  RLL_DCHECK_PROB(1.0);
  RLL_DCHECK_SHAPE(m, 2, 3);
  SUCCEED();
}

TEST(DcheckComparisonTest, PassingComparisonsAreSilent) {
  RLL_DCHECK_EQ(2 + 2, 4);
  RLL_DCHECK_NE(1, 2);
  RLL_DCHECK_LT(1, 2);
  RLL_DCHECK_LE(2, 2);
  RLL_DCHECK_GT(3, 2);
  RLL_DCHECK_GE(3, 3);
  SUCCEED();
}

#ifndef NDEBUG

TEST(FiniteCheckDeathTest, TripsOnNaNScalar) {
  EXPECT_DEATH(RLL_DCHECK_FINITE(kNaN), "non-finite");
  EXPECT_DEATH(RLL_DCHECK_FINITE(kInf), "non-finite");
}

TEST(FiniteCheckDeathTest, ReportsFlatIndexOfFirstBadElement) {
  rll::Matrix m(2, 3, 1.0);
  m(1, 2) = kNaN;  // Flat index 5 in row-major order.
  EXPECT_DEATH(RLL_DCHECK_FINITE(m), "flat index 5");
  std::vector<double> v{0.0, kInf, 2.0};
  EXPECT_DEATH(RLL_DCHECK_FINITE(v), "flat index 1");
}

TEST(FiniteCheckDeathTest, TripsOnNonProbability) {
  EXPECT_DEATH(RLL_DCHECK_PROB(1.5), "not a probability");
  EXPECT_DEATH(RLL_DCHECK_PROB(-0.01), "not a probability");
  EXPECT_DEATH(RLL_DCHECK_PROB(kNaN), "not a probability");
}

TEST(FiniteCheckDeathTest, TripsOnShapeMismatch) {
  const rll::Matrix m(2, 3);
  EXPECT_DEATH(RLL_DCHECK_SHAPE(m, 3, 2), "shape 2x3, expected 3x2");
}

// The acceptance property: a NaN injected into a tensor op aborts at the
// op that produced it, not downstream.
TEST(FiniteCheckDeathTest, MatmulTripsAtTheProducingOp) {
  rll::Matrix a(1, 2, 1.0);
  a(0, 1) = kNaN;
  const rll::Matrix b(2, 3, 2.0);
  EXPECT_DEATH(rll::Matmul(a, b), "non-finite");
}

TEST(FiniteCheckDeathTest, SoftmaxTripsOnNaNLogits) {
  rll::Matrix logits(1, 3, 0.0);
  logits(0, 1) = kNaN;
  EXPECT_DEATH(rll::SoftmaxRows(logits), "not a probability");
}

TEST(FiniteCheckDeathTest, AutogradForwardAndBackwardAreGuarded) {
  // Forward: any op producing a NaN trips inside MakeOp.
  rll::Matrix bad(1, 2, 1.0);
  bad(0, 0) = kNaN;
  EXPECT_DEATH(rll::ag::Scale(rll::ag::Constant(bad), 2.0), "non-finite");
  // Backward: a NaN gradient trips in AccumulateGrad while the producing
  // op is still on the stack.
  rll::ag::Var p = rll::ag::Parameter(rll::Matrix(1, 1, 2.0));
  EXPECT_DEATH(p->AccumulateGrad(rll::Matrix(1, 1, kNaN)), "non-finite");
}

TEST(DcheckComparisonDeathTest, FailingComparisonsAbort) {
  EXPECT_DEATH(RLL_DCHECK_EQ(1, 2), "RLL_CHECK failed");
  EXPECT_DEATH(RLL_DCHECK_GE(1, 2), "RLL_CHECK failed");
}

#else  // NDEBUG

TEST(FiniteCheckReleaseTest, TripwiresCompileOutButStillTypeCheck) {
  // Same expressions as the death tests above; in Release they must be
  // free no-ops (and the variables below must not draw unused warnings,
  // which is the point of the sizeof-based NDEBUG expansion).
  const double nan_value = kNaN;
  RLL_DCHECK_FINITE(nan_value);
  RLL_DCHECK_PROB(1.5);
  const rll::Matrix m(2, 3);
  RLL_DCHECK_SHAPE(m, 3, 2);
  RLL_DCHECK_EQ(1, 2);
  rll::Matrix a(1, 2, 1.0);
  a(0, 1) = nan_value;
  const rll::Matrix b(2, 3, 2.0);
  const rll::Matrix c = rll::Matmul(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0)));  // Flows through, nothing aborts.
}

#endif  // NDEBUG

}  // namespace
