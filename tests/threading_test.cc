// Unit tests for the deterministic parallel execution core: thread-pool
// lifecycle, exact ParallelFor coverage, exception propagation, nested
// inlining, ParallelReduce vs serial reduction, and bitwise equality of
// parallel kernels across pool sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll {
namespace {

// Restores the RLL_THREADS / serial default when a test scope ends, so
// tests that resize the global pool cannot leak a size into later tests.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { SetGlobalThreads(0); }
};

// ---------------------------------------------------------------- lifecycle

TEST(ThreadPoolTest, ConstructsAndJoinsCleanly) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }  // Destructor joins; the test passes if nothing hangs or crashes.
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> runs{0};
  pool.ParallelFor(0, 10, 1, [&](size_t lo, size_t hi) {
    runs += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(runs.load(), 10);
}

TEST(ThreadPoolTest, RepeatedUseAfterIdle) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(0, 100, 7, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

// ---------------------------------------------------------------- coverage

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 5u, 64u, 1000u}) {
    for (size_t grain : {1u, 3u, 64u, 10000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(0, n, grain, [&](size_t lo, size_t hi) {
        ASSERT_LE(lo, hi);
        ASSERT_LE(hi - lo, std::max<size_t>(grain, 1));
        for (size_t i = lo; i < hi; ++i) hits[i]++;
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(2);
  std::set<size_t> seen;
  std::mutex mu;
  pool.ParallelFor(10, 25, 4, [&](size_t lo, size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = lo; i < hi; ++i) seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 24u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { runs++; });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { runs++; });
  EXPECT_EQ(runs.load(), 0);
}

// ---------------------------------------------------------------- exceptions

TEST(ThreadPoolTest, ExceptionFromChunkPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t lo, size_t) {
                         if (lo == 37) throw std::runtime_error("chunk 37");
                       }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> runs{0};
  pool.ParallelFor(0, 8, 1, [&](size_t, size_t) { runs++; });
  EXPECT_EQ(runs.load(), 8);
}

TEST(ThreadPoolTest, ExceptionOnSerialInlinePathPropagates) {
  ThreadPool pool(1);  // Size-1 pool runs everything inline.
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [&](size_t, size_t) {
                                  throw std::runtime_error("inline");
                                }),
               std::runtime_error);
}

// ---------------------------------------------------------------- nesting

TEST(ThreadPoolTest, WorkerIdentityIsVisibleInsideTasks) {
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
  ThreadPool pool(3);
  EXPECT_FALSE(pool.OnWorkerThread());
  std::mutex mu;
  std::set<int> ids;
  pool.ParallelFor(0, 64, 1, [&](size_t, size_t) {
    const int id = ThreadPool::CurrentWorkerId();
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(id);
  });
  // Chunks run either inline on the caller (-1) or on workers [0, 3).
  for (int id : ids) {
    EXPECT_GE(id, -1);
    EXPECT_LT(id, 3);
  }
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, 10, 1, [&](size_t ilo, size_t ihi) {
        inner_total += ihi - ilo;
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

// ---------------------------------------------------------------- global pool

TEST(GlobalPoolTest, SetGlobalThreadsResizes) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreadCount(), 3u);
  EXPECT_EQ(GlobalThreadPool()->num_threads(), 3u);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreadCount(), 1u);
}

TEST(GlobalPoolTest, FreeParallelForUsesGlobalPool) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(4);
  std::atomic<size_t> sum{0};
  ParallelFor(0, 1000, 32, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 499500u);
}

// ---------------------------------------------------------------- reduce

TEST(ParallelReduceTest, MatchesSerialSumOnRandomShapes) {
  GlobalThreadsGuard guard;
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(0, 5000));
    const size_t grain = static_cast<size_t>(rng.UniformInt(1, 700));
    std::vector<double> values(n);
    for (double& v : values) v = rng.Uniform(-1.0, 1.0);

    // Reference: the same fixed chunking evaluated serially.
    double expected = 0.0;
    for (size_t lo = 0; lo < n; lo += grain) {
      const size_t hi = std::min(n, lo + grain);
      double partial = 0.0;
      for (size_t i = lo; i < hi; ++i) partial += values[i];
      expected += partial;
    }

    for (size_t threads : {1u, 2u, 4u}) {
      SetGlobalThreads(threads);
      const double got = ParallelReduce<double>(
          0, n, grain, 0.0,
          [&](size_t lo, size_t hi) {
            double partial = 0.0;
            for (size_t i = lo; i < hi; ++i) partial += values[i];
            return partial;
          },
          [](double a, double b) { return a + b; });
      // Bitwise: same chunk boundaries, same combine order.
      EXPECT_EQ(got, expected) << "n=" << n << " grain=" << grain
                               << " threads=" << threads;
    }
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const double got = ParallelReduce<double>(
      3, 3, 8, -7.5, [](size_t, size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(got, -7.5);
}

// ------------------------------------------------------- kernel determinism

TEST(KernelDeterminismTest, MatmulBitwiseIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  Rng rng(7);
  // Big enough to clear the serial-fallback thresholds in tensor/ops.cc.
  Matrix a = RandomNormal(97, 83, &rng);
  Matrix b = RandomNormal(83, 61, &rng);

  SetGlobalThreads(1);
  const Matrix serial = Matmul(a, b);
  const Matrix serial_ta = MatmulTransposeA(Transpose(a), b);
  const Matrix serial_sm = SoftmaxRows(serial);
  const double serial_sum = Sum(serial);

  for (size_t threads : {2u, 4u}) {
    SetGlobalThreads(threads);
    const Matrix parallel = Matmul(a, b);
    const Matrix parallel_ta = MatmulTransposeA(Transpose(a), b);
    const Matrix parallel_sm = SoftmaxRows(parallel);
    const double parallel_sum = Sum(parallel);
    ASSERT_EQ(parallel.rows(), serial.rows());
    for (size_t i = 0; i < serial.rows(); ++i) {
      for (size_t j = 0; j < serial.cols(); ++j) {
        ASSERT_EQ(parallel(i, j), serial(i, j)) << "threads=" << threads;
        ASSERT_EQ(parallel_ta(i, j), serial_ta(i, j)) << "threads=" << threads;
        ASSERT_EQ(parallel_sm(i, j), serial_sm(i, j)) << "threads=" << threads;
      }
    }
    EXPECT_EQ(parallel_sum, serial_sum) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rll
