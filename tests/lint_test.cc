// Self-test for the in-repo linter: every rule must both fire on a known-bad
// snippet and stay quiet on the idiomatic version. The repo-wide run is a
// separate CTest test (lint.repo) registered in tools/CMakeLists.txt.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/linter.h"

namespace {

using rll::analyze::ExpectedHeaderGuard;
using rll::analyze::LintContent;
using rll::analyze::LintOptions;
using rll::analyze::Violation;

std::vector<Violation> Lint(std::string_view path, std::string_view content,
                            bool own_header_exists = false) {
  LintOptions options;
  options.own_header_exists = own_header_exists;
  return LintContent(path, content, options);
}

bool Fires(const std::vector<Violation>& violations, std::string_view rule) {
  for (const Violation& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(ExpectedHeaderGuardTest, DropsSrcPrefixAndUppercasesPath) {
  EXPECT_EQ(ExpectedHeaderGuard("src/tensor/matrix.h"), "RLL_TENSOR_MATRIX_H_");
  EXPECT_EQ(ExpectedHeaderGuard("src/common/finite_check.h"),
            "RLL_COMMON_FINITE_CHECK_H_");
  EXPECT_EQ(ExpectedHeaderGuard("bench/bench_common.h"),
            "RLL_BENCH_BENCH_COMMON_H_");
  EXPECT_EQ(ExpectedHeaderGuard("tools/analyze/linter.h"),
            "RLL_TOOLS_ANALYZE_LINTER_H_");
}

TEST(HeaderGuardRuleTest, FiresOnWrongGuard) {
  const auto v = Lint("src/tensor/foo.h", R"cc(
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif
)cc");
  ASSERT_TRUE(Fires(v, "header-guard"));
  EXPECT_NE(v[0].message.find("RLL_TENSOR_FOO_H_"), std::string::npos);
}

TEST(HeaderGuardRuleTest, FiresOnMissingGuardAndPragmaOnce) {
  EXPECT_TRUE(Fires(Lint("src/tensor/foo.h", "int x;\n"), "header-guard"));
  EXPECT_TRUE(
      Fires(Lint("src/tensor/foo.h", "#pragma once\nint x;\n"),
            "header-guard"));
}

TEST(HeaderGuardRuleTest, FiresOnMismatchedDefine) {
  const auto v = Lint("src/tensor/foo.h", R"cc(
#ifndef RLL_TENSOR_FOO_H_
#define RLL_TENSOR_BAR_H_
#endif
)cc");
  EXPECT_TRUE(Fires(v, "header-guard"));
}

TEST(HeaderGuardRuleTest, PassesOnConventionalGuard) {
  const auto v = Lint("src/tensor/foo.h", R"cc(
#ifndef RLL_TENSOR_FOO_H_
#define RLL_TENSOR_FOO_H_
int x;
#endif  // RLL_TENSOR_FOO_H_
)cc");
  EXPECT_TRUE(v.empty());
}

TEST(UsingNamespaceStdRuleTest, FiresInSourcesAndHeaders) {
  EXPECT_TRUE(Fires(Lint("src/core/a.cc", "using namespace std;\n"),
                    "using-namespace-std"));
  EXPECT_TRUE(Fires(Lint("tests/b_test.cc", "using namespace   std;\n"),
                    "using-namespace-std"));
}

TEST(UsingNamespaceStdRuleTest, PassesOnScopedUsingAndComments) {
  EXPECT_TRUE(Lint("src/core/a.cc", "using std::string;\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "// using namespace std;\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "using namespace rll::analyze;\n").empty());
}

TEST(IostreamInHeaderRuleTest, FiresOnlyInHeaders) {
  const std::string guard = R"cc(
#ifndef RLL_CORE_A_H_
#define RLL_CORE_A_H_
#include <iostream>
#endif
)cc";
  EXPECT_TRUE(Fires(Lint("src/core/a.h", guard), "iostream-in-header"));
  EXPECT_TRUE(Lint("src/core/a.cc", "#include <iostream>\n").empty());
}

TEST(IostreamInHeaderRuleTest, PassesOnOtherStreamHeaders) {
  const std::string content = R"cc(
#ifndef RLL_CORE_A_H_
#define RLL_CORE_A_H_
#include <ostream>
#include <sstream>
#endif
)cc";
  EXPECT_TRUE(Lint("src/core/a.h", content).empty());
}

TEST(RawRandRuleTest, FiresOnRandAndSrand) {
  EXPECT_TRUE(Fires(Lint("src/core/a.cc", "int x = rand();\n"), "raw-rand"));
  EXPECT_TRUE(
      Fires(Lint("src/core/a.cc", "std::srand(42);\n"), "raw-rand"));
}

TEST(RawRandRuleTest, PassesOnMembersOtherNamespacesAndRngFiles) {
  EXPECT_TRUE(Lint("src/core/a.cc", "rng.rand();\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "legacy::rand();\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "int brand(int);\n").empty());
  EXPECT_TRUE(Lint("src/common/rng.cc", "int x = rand();\n").empty());
}

TEST(AbortExitRuleTest, FiresOnFreeAndStdQualifiedCalls) {
  EXPECT_TRUE(Fires(Lint("src/core/a.cc", "std::abort();\n"), "abort-exit"));
  EXPECT_TRUE(Fires(Lint("src/core/a.cc", "exit(1);\n"), "abort-exit"));
  EXPECT_TRUE(Fires(Lint("tools/x.cc", "abort();\n"), "abort-exit"));
}

TEST(AbortExitRuleTest, PassesOnExemptFilesAndNonFreeUses) {
  // (check.h without its guard still trips header-guard, so test the
  // abort-exit rule specifically for the header exemption.)
  EXPECT_FALSE(
      Fires(Lint("src/common/check.h", "std::abort();\n"), "abort-exit"));
  EXPECT_TRUE(Lint("src/common/status.cc", "std::abort();\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "process::exit(1);\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "runner.abort();\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "// calls exit(1) on failure\n").empty());
}

TEST(NakedNewDeleteRuleTest, FiresOutsideTensor) {
  EXPECT_TRUE(Fires(Lint("src/core/a.cc", "int* p = new int[4];\n"),
                    "naked-new-delete"));
  EXPECT_TRUE(
      Fires(Lint("src/crowd/b.cc", "delete p;\n"), "naked-new-delete"));
}

TEST(NakedNewDeleteRuleTest, PassesInTensorForDeletedFnsAndProse) {
  EXPECT_TRUE(Lint("src/tensor/arena.cc", "double* p = new double[n];\n")
                  .empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "A(const A&) = delete;\n").empty());
  EXPECT_TRUE(
      Lint("src/core/a.cc", "auto p = std::make_unique<int>(1);\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "// allocates a new buffer\n").empty());
  EXPECT_TRUE(
      Lint("src/core/a.cc", "const char* s = \"new delete\";\n").empty());
}

TEST(OwnHeaderFirstRuleTest, FiresWhenAnotherIncludeComesFirst) {
  const auto v = Lint("src/tensor/ops.cc",
                      "#include <vector>\n#include \"tensor/ops.h\"\n",
                      /*own_header_exists=*/true);
  EXPECT_TRUE(Fires(v, "own-header-first"));
}

TEST(OwnHeaderFirstRuleTest, PassesWhenOwnHeaderLeadsOrDoesNotExist) {
  EXPECT_TRUE(Lint("src/tensor/ops.cc",
                   "#include \"tensor/ops.h\"\n#include <vector>\n",
                   /*own_header_exists=*/true)
                  .empty());
  EXPECT_TRUE(Lint("tests/ops_test.cc", "#include <vector>\n",
                   /*own_header_exists=*/false)
                  .empty());
}

TEST(WaiverTest, AllowCommentSuppressesNamedRuleOnly) {
  EXPECT_TRUE(Lint("src/core/a.cc",
                   "int* p = new int;  // rll-lint: allow(naked-new-delete)\n")
                  .empty());
  EXPECT_TRUE(Lint("src/core/a.cc",
                   "int* p = new int;  // rll-lint: allow(all)\n")
                  .empty());
  EXPECT_TRUE(Fires(Lint("src/core/a.cc",
                         "int* p = new int;  // rll-lint: allow(raw-rand)\n"),
                    "naked-new-delete"));
}

TEST(FormatViolationTest, MatchesCompilerDiagnosticShape) {
  const Violation v{"src/core/a.cc", 7, "raw-rand", "message"};
  EXPECT_EQ(rll::analyze::FormatViolation(v),
            "src/core/a.cc:7: [raw-rand] message");
}

TEST(ScannerTest, RawStringsAndDigitSeparatorsDoNotConfuseRules) {
  EXPECT_TRUE(
      Lint("src/core/a.cc", "const char* s = R\"(new delete rand())\";\n")
          .empty());
  EXPECT_TRUE(Lint("src/core/a.cc", "int big = 1'000'000;\n").empty());
  EXPECT_TRUE(Lint("src/core/a.cc",
                   "/* using namespace std; exit(1); */ int x;\n")
                  .empty());
}

}  // namespace
