// Unit tests for the common substrate: Status/Result, string helpers, and
// the deterministic RNG (distribution sanity + reproducibility).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace rll {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIOError,
        StatusCode::kNotConverged}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfValid(int x) {
  RLL_RETURN_IF_ERROR(FailsWhenNegative(x));
  return 2 * x;
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfValid(3).ok());
  EXPECT_EQ(*DoubleIfValid(3), 6);
  EXPECT_FALSE(DoubleIfValid(-1).ok());
}

// --------------------------------------------------------------- Strings

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,c", ','), parts);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split(",x,", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("z"), "z");
}

TEST(StringsTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseInt) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_FALSE(ParseInt("17.5", &v));
  EXPECT_FALSE(ParseInt("abc", &v));
}

// ------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) counts[rng.UniformInt(5u)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.02);
  }
}

TEST(RngTest, UniformIntSignedBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, BetaMeanMatchesTheory) {
  Rng rng(23);
  const double alpha = 6.0, beta = 2.0;
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(alpha, beta);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, alpha / (alpha + beta), 0.01);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(29);
  for (double shape : {0.5, 1.0, 3.0, 9.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(37);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(41);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(47);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SplitYieldsIndependentStream) {
  Rng a(53);
  Rng child = a.Split();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == child.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitSeedIsDeterministic) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  EXPECT_EQ(SplitSeed(42, 17), SplitSeed(42, 17));
}

TEST(RngTest, SplitSeedStreamsAreDistinct) {
  // Seeds derived from one parent must differ from each other, from the
  // same index under another parent, and from the raw parent — otherwise
  // per-task streams would collide or replay the parent stream.
  std::set<uint64_t> seen;
  for (uint64_t parent : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    seen.insert(parent);
    for (uint64_t index = 0; index < 64; ++index) {
      seen.insert(SplitSeed(parent, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u + 4u * 64u);
}

TEST(RngTest, SplitSeedChildStreamsLookIndependent) {
  Rng a(SplitSeed(99, 0));
  Rng b(SplitSeed(99, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitSeedBaseAdvancesParent) {
  Rng a(7), b(7);
  const uint64_t base = a.SplitSeedBase();
  EXPECT_EQ(base, b.Next());  // Defined as one draw from the parent.
  EXPECT_EQ(a.Next(), b.Next());  // Parent streams stay in lockstep after.
}

// ------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, ElapsedUnitsAgree) {
  Stopwatch watch;
  const double seconds = watch.ElapsedSeconds();
  const double micros = watch.ElapsedMicros();
  EXPECT_GE(seconds, 0.0);
  // Micros read after seconds, so the scaled value can only be larger.
  EXPECT_GE(micros, seconds * 1e6);
}

TEST(ScopedTimerTest, FiresCallbackOnDestruction) {
  std::vector<double> reported;
  {
    ScopedTimer timer([&reported](double ms) { reported.push_back(ms); });
    EXPECT_GE(timer.ElapsedMillis(), 0.0);
    EXPECT_TRUE(reported.empty());
  }
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_GE(reported[0], 0.0);
}

TEST(ScopedTimerTest, CancelSuppressesCallback) {
  int calls = 0;
  {
    ScopedTimer timer([&calls](double /*ms*/) { ++calls; });
    timer.Cancel();
  }
  EXPECT_EQ(calls, 0);
}

// --------------------------------------------------------------- logging

TEST(LoggingTest, LogEveryNExecutesWithoutSideEffects) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // Keep the test output quiet.
  // The macro keeps counting even while the severity is filtered out, and
  // streaming into it must compile and run without touching stderr here.
  for (int i = 0; i < 10; ++i) {
    RLL_LOG_EVERY_N(Info, 3) << "heartbeat " << i;
  }
  SetLogLevel(saved);
}

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace rll
