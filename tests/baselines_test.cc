// Tests for the baseline roster: every Table I method trains and predicts
// on a small annotated dataset, names/groups are correct, the registry
// builds all 15 rows, and the CV harness enforces its contracts.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/aggregated_lr.h"
#include "baselines/label_source.h"
#include "baselines/method.h"
#include "baselines/pca_method.h"
#include "baselines/raykar.h"
#include "core/tuning.h"
#include "baselines/registry.h"
#include "baselines/relation.h"
#include "baselines/rll_method.h"
#include "baselines/siamese.h"
#include "baselines/softprob.h"
#include "baselines/triplet.h"
#include "classify/metrics.h"
#include "crowd/worker_pool.h"
#include "data/kfold.h"
#include "data/standardize.h"
#include "data/synthetic.h"

namespace rll::baselines {
namespace {

data::Dataset SmallAnnotatedDataset(Rng* rng, size_t n = 150) {
  data::SyntheticConfig config;
  config.num_examples = n;
  config.positive_fraction = 0.6;
  config.linear_dims = 4;
  config.xor_dims = 2;
  config.noise_dims = 4;
  config.clusters_per_class = 2;
  config.linear_sep = 1.6;
  config.xor_sep = 2.6;
  config.cluster_spread = 0.8;
  data::Dataset d = GenerateSynthetic(config, rng);
  crowd::WorkerPool pool({.num_workers = 12}, rng);
  pool.Annotate(&d, 5, rng);
  return d;
}

DeepBaselineOptions FastDeepOptions(LabelSource source) {
  DeepBaselineOptions options;
  options.hidden_dims = {16, 8};
  options.epochs = 5;
  options.samples_per_epoch = 256;
  options.label_source = source;
  return options;
}

core::RllPipelineOptions FastRllOptions(crowd::ConfidenceMode mode) {
  core::RllPipelineOptions options;
  options.trainer.model.hidden_dims = {16, 8};
  options.trainer.epochs = 5;
  options.trainer.groups_per_epoch = 256;
  options.trainer.confidence_mode = mode;
  return options;
}

// Evaluates the method on held-out folds across a few seeds (single-seed
// results of these small fast configs are noisy) and checks the mean
// accuracy clears the chance bar.
void ExpectMethodLearns(const Method& method, uint64_t seed,
                        double min_accuracy = 0.62) {
  double total = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed * 100 + static_cast<uint64_t>(t));
    data::Dataset d = SmallAnnotatedDataset(&rng);
    const data::Split split = data::TrainTestSplit(d.size(), 0.3, &rng);
    data::Dataset train = d.Subset(split.train);
    data::Dataset test = d.Subset(split.test);

    data::Standardizer standardizer;
    data::Dataset train_std(standardizer.FitTransform(train.features()),
                            train.true_labels());
    for (size_t i = 0; i < train.size(); ++i) {
      for (const data::Annotation& a : train.annotations(i)) {
        train_std.AddAnnotation(i, a);
      }
    }
    auto predicted = method.TrainAndPredict(
        train_std, standardizer.Transform(test.features()), &rng);
    ASSERT_TRUE(predicted.ok())
        << method.name() << ": " << predicted.status().ToString();
    ASSERT_EQ(predicted->size(), test.size());
    total += classify::Evaluate(test.true_labels(), *predicted).accuracy;
  }
  EXPECT_GT(total / trials, min_accuracy) << method.name();
}

// ----------------------------------------------------------- LabelSource

TEST(LabelSourceTest, NamesAreStable) {
  EXPECT_STREQ(LabelSourceName(LabelSource::kMajorityVote), "MV");
  EXPECT_STREQ(LabelSourceName(LabelSource::kDawidSkene), "EM");
  EXPECT_STREQ(LabelSourceName(LabelSource::kGlad), "GLAD");
}

TEST(LabelSourceTest, AllSourcesInferReasonableLabels) {
  Rng rng(1);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  for (LabelSource source : {LabelSource::kMajorityVote,
                             LabelSource::kDawidSkene, LabelSource::kGlad}) {
    auto labels = InferLabels(d, source);
    ASSERT_TRUE(labels.ok());
    size_t correct = 0;
    for (size_t i = 0; i < d.size(); ++i) {
      correct += ((*labels)[i] == d.true_label(i));
    }
    EXPECT_GT(static_cast<double>(correct) / d.size(), 0.75)
        << LabelSourceName(source);
  }
}

// ----------------------------------------------------- Individual methods

TEST(SoftProbTest, LearnsAboveChance) {
  ExpectMethodLearns(SoftProbMethod(), 2);
}

TEST(SoftProbTest, NameAndGroup) {
  SoftProbMethod m;
  EXPECT_EQ(m.name(), "SoftProb");
  EXPECT_EQ(m.group(), "group 1");
}

TEST(AggregatedLrTest, EmLearnsAboveChance) {
  ExpectMethodLearns(AggregatedLrMethod(LabelSource::kDawidSkene), 3);
}

TEST(AggregatedLrTest, GladLearnsAboveChance) {
  ExpectMethodLearns(AggregatedLrMethod(LabelSource::kGlad), 4);
}

TEST(SiameseTest, LearnsAboveChance) {
  ExpectMethodLearns(
      SiameseMethod(FastDeepOptions(LabelSource::kMajorityVote)), 5);
}

TEST(SiameseTest, TwoStageNaming) {
  SiameseMethod mv(FastDeepOptions(LabelSource::kMajorityVote));
  EXPECT_EQ(mv.name(), "SiameseNet");
  EXPECT_EQ(mv.group(), "group 2");
  SiameseMethod em(FastDeepOptions(LabelSource::kDawidSkene));
  EXPECT_EQ(em.name(), "SiameseNet+EM");
  EXPECT_EQ(em.group(), "group 3");
}

TEST(TripletTest, LearnsAboveChance) {
  ExpectMethodLearns(
      TripletMethod(FastDeepOptions(LabelSource::kMajorityVote)), 6);
}

TEST(RelationTest, LearnsAboveChance) {
  ExpectMethodLearns(
      RelationMethod(FastDeepOptions(LabelSource::kMajorityVote)), 7);
}

TEST(RllMethodTest, AllVariantsLearnAboveChance) {
  ExpectMethodLearns(
      RllVariantMethod(FastRllOptions(crowd::ConfidenceMode::kNone)), 8);
  ExpectMethodLearns(
      RllVariantMethod(FastRllOptions(crowd::ConfidenceMode::kMle)), 9);
  ExpectMethodLearns(
      RllVariantMethod(FastRllOptions(crowd::ConfidenceMode::kBayesian)), 10);
}

TEST(RllMethodTest, VariantNames) {
  EXPECT_EQ(RllVariantMethod(FastRllOptions(crowd::ConfidenceMode::kNone))
                .name(),
            "RLL");
  EXPECT_EQ(
      RllVariantMethod(FastRllOptions(crowd::ConfidenceMode::kMle)).name(),
      "RLL+MLE");
  EXPECT_EQ(RllVariantMethod(FastRllOptions(crowd::ConfidenceMode::kBayesian))
                .name(),
            "RLL+Bayesian");
}

TEST(DeepBaselineTest, FailsWithSingleClassLabels) {
  Rng rng(11);
  data::SyntheticConfig config;
  config.num_examples = 30;
  config.positive_fraction = 0.5;
  data::Dataset d = GenerateSynthetic(config, &rng);
  // Force unanimous positive votes — inferred labels are single-class.
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t w = 0; w < 3; ++w) d.AddAnnotation(i, {w, 1});
  }
  SiameseMethod method(FastDeepOptions(LabelSource::kMajorityVote));
  auto result = method.TrainAndPredict(d, d.features(), &rng);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------------- PCA

TEST(PcaMethodTest, LearnsAboveChance) {
  // PCA keeps the strongest directions, which include the class signal in
  // this generator, so PCA+LR should be a competent (not winning) control.
  ExpectMethodLearns(PcaMethod({.num_components = 8}), 19);
}

TEST(PcaMethodTest, NameAndGroup) {
  PcaMethod m;
  EXPECT_EQ(m.name(), "PCA");
  EXPECT_EQ(m.group(), "control");
}

TEST(PcaMethodTest, ClampsComponentsToFeatureDim) {
  Rng rng(20);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  PcaMethod method({.num_components = 10000});  // Far above dim.
  const data::Split split = data::TrainTestSplit(d.size(), 0.3, &rng);
  auto predicted = method.TrainAndPredict(
      d.Subset(split.train), d.Subset(split.test).features(), &rng);
  EXPECT_TRUE(predicted.ok()) << predicted.status().ToString();
}

// ------------------------------------------------------------------ Tuning

TEST(TuningTest, PicksFromGridAndReportsAllPoints) {
  Rng rng(21);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  core::TuningOptions options;
  options.pipeline.trainer.model.hidden_dims = {16, 8};
  options.pipeline.trainer.epochs = 3;
  options.pipeline.trainer.groups_per_epoch = 128;
  const std::vector<double> grid = {2.0, 10.0};
  auto result = core::TuneEta(d, options, &rng, grid);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->best_value == 2.0 || result->best_value == 10.0);
  ASSERT_EQ(result->held_out_accuracy.size(), 2u);
  // best_value must correspond to the max held-out accuracy.
  const size_t best_idx = result->best_value == 2.0 ? 0 : 1;
  for (double acc : result->held_out_accuracy) {
    EXPECT_LE(acc, result->held_out_accuracy[best_idx]);
  }
}

TEST(TuningTest, GenericSetterTunesOtherFields) {
  Rng rng(22);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  core::TuningOptions options;
  options.pipeline.trainer.model.hidden_dims = {16, 8};
  options.pipeline.trainer.epochs = 3;
  options.pipeline.trainer.groups_per_epoch = 128;
  auto result = core::TuneOnHeldOut(
      d, {2.0, 3.0},
      [](core::RllTrainerOptions* trainer, double k) {
        trainer->negatives_per_group = static_cast<size_t>(k);
      },
      options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->best_value == 2.0 || result->best_value == 3.0);
}

TEST(TuningTest, RejectsBadInputs) {
  Rng rng(23);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  core::TuningOptions options;
  EXPECT_FALSE(core::TuneEta(d, options, &rng, {}).ok());
  options.held_out_fraction = 1.5;
  EXPECT_FALSE(core::TuneEta(d, options, &rng).ok());
}

// ------------------------------------------------------------------ Raykar

TEST(RaykarTest, LearnsAboveChance) {
  ExpectMethodLearns(RaykarMethod(), 14);
}

TEST(RaykarTest, RecoversWorkerSensitivities) {
  Rng rng(15);
  data::SyntheticConfig config;
  config.num_examples = 500;
  data::Dataset d = GenerateSynthetic(config, &rng);
  std::vector<double> abilities = {0.95, 0.95, 0.6, 0.6, 0.8};
  crowd::WorkerPool pool(abilities, abilities);
  pool.Annotate(&d, 5, &rng);
  auto model = FitRaykar(d);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->sensitivity.size(), 5u);
  // Estimated ordering matches the planted one.
  EXPECT_GT(model->sensitivity[0], model->sensitivity[2]);
  EXPECT_GT(model->sensitivity[1], model->sensitivity[3]);
  EXPECT_GT(model->specificity[0], model->specificity[2]);
  // And the absolute estimates are in the right neighbourhood.
  EXPECT_NEAR(model->sensitivity[0], 0.95, 0.08);
  EXPECT_NEAR(model->sensitivity[2], 0.6, 0.12);
}

TEST(RaykarTest, PosteriorBeatsMajorityVoteWithSpammers) {
  Rng rng(16);
  data::SyntheticConfig config;
  config.num_examples = 400;
  config.positive_fraction = 0.5;
  data::Dataset d = GenerateSynthetic(config, &rng);
  std::vector<double> abilities = {0.95, 0.95, 0.95, 0.52, 0.52,
                                   0.52, 0.52, 0.52};
  crowd::WorkerPool pool(abilities, abilities);
  pool.Annotate(&d, 8, &rng);
  auto model = FitRaykar(d);
  ASSERT_TRUE(model.ok());
  size_t raykar_correct = 0, mv_correct = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    raykar_correct += ((model->posterior[i] >= 0.5) == (d.true_label(i) == 1));
    mv_correct += (d.MajorityVote(i) == d.true_label(i));
  }
  EXPECT_GT(raykar_correct, mv_correct);
}

TEST(RaykarTest, FailsWithoutAnnotations) {
  Rng rng(17);
  data::SyntheticConfig config;
  config.num_examples = 20;
  data::Dataset d = GenerateSynthetic(config, &rng);
  EXPECT_EQ(FitRaykar(d).status().code(), StatusCode::kFailedPrecondition);
}

TEST(RaykarTest, ClassifierIsFittedAndUsable) {
  Rng rng(18);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  auto model = FitRaykar(d);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->classifier.fitted());
  EXPECT_EQ(model->classifier.Predict(d.features()).size(), d.size());
  EXPECT_GT(model->iterations, 0);
}

// ---------------------------------------------------------------- Registry

TEST(RegistryTest, BuildsAllFifteenTableOneRows) {
  const auto methods = BuildTableOneMethods();
  ASSERT_EQ(methods.size(), 15u);
  std::set<std::string> names;
  for (const auto& m : methods) names.insert(m->name());
  EXPECT_EQ(names.size(), 15u);  // All distinct.
  for (const char* expected :
       {"SoftProb", "EM", "GLAD", "SiameseNet", "TripletNet", "RelationNet",
        "SiameseNet+EM", "SiameseNet+GLAD", "TripletNet+EM",
        "TripletNet+GLAD", "RelationNet+EM", "RelationNet+GLAD", "RLL",
        "RLL+MLE", "RLL+Bayesian"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
}

TEST(RegistryTest, GroupCounts) {
  const auto methods = BuildTableOneMethods();
  std::map<std::string, int> counts;
  for (const auto& m : methods) counts[m->group()]++;
  EXPECT_EQ(counts["group 1"], 3);
  EXPECT_EQ(counts["group 2"], 3);
  EXPECT_EQ(counts["group 3"], 6);
  EXPECT_EQ(counts["group 4"], 3);
}

// -------------------------------------------------------------- CV harness

TEST(CrossValidateTest, ProducesRequestedFolds) {
  Rng rng(12);
  data::Dataset d = SmallAnnotatedDataset(&rng, 120);
  SoftProbMethod method;
  auto outcome = CrossValidateMethod(d, method, 4, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->per_fold.size(), 4u);
  EXPECT_GT(outcome->mean.accuracy, 0.6);
}

TEST(CrossValidateTest, FailsOnUnannotatedData) {
  Rng rng(13);
  data::SyntheticConfig config;
  config.num_examples = 50;
  data::Dataset d = GenerateSynthetic(config, &rng);
  SoftProbMethod method;
  EXPECT_EQ(CrossValidateMethod(d, method, 3, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rll::baselines
