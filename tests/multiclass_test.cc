// Tests for the K-class crowdsourcing substrate: annotation-table
// validation, plurality vote, full Dawid–Skene EM (planted-confusion
// recovery), and the simulation helper.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "crowd/multiclass.h"

namespace rll::crowd {
namespace {

/// Diagonal-dominant confusion: correct with prob acc, rest uniform.
Matrix UniformConfusion(size_t k, double acc) {
  Matrix m(k, k, (1.0 - acc) / static_cast<double>(k - 1));
  for (size_t c = 0; c < k; ++c) m(c, c) = acc;
  return m;
}

std::vector<size_t> RandomClasses(size_t n, size_t k, Rng* rng) {
  std::vector<size_t> classes(n);
  for (size_t i = 0; i < n; ++i) {
    classes[i] = static_cast<size_t>(rng->UniformInt(k));
  }
  return classes;
}

double Recovery(const std::vector<size_t>& inferred,
                const std::vector<size_t>& truth) {
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    correct += (inferred[i] == truth[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

// ------------------------------------------------------------- Validation

TEST(MulticlassAnnotationsTest, ValidateCatchesProblems) {
  MulticlassAnnotations a;
  a.num_classes = 1;
  a.votes.resize(1);
  a.votes[0].push_back({0, 0});
  EXPECT_FALSE(a.Validate().ok());  // < 2 classes.
  a.num_classes = 3;
  EXPECT_TRUE(a.Validate().ok());
  a.votes.emplace_back();  // Item with no votes.
  EXPECT_EQ(a.Validate().code(), StatusCode::kFailedPrecondition);
  a.votes[1].push_back({1, 5});  // Label out of range.
  EXPECT_EQ(a.Validate().code(), StatusCode::kOutOfRange);
}

TEST(MulticlassAnnotationsTest, NumWorkers) {
  MulticlassAnnotations a;
  a.num_classes = 2;
  a.votes.resize(2);
  EXPECT_EQ(a.NumWorkers(), 0u);
  a.votes[0].push_back({7, 1});
  a.votes[1].push_back({2, 0});
  EXPECT_EQ(a.NumWorkers(), 8u);
}

// --------------------------------------------------------- Majority vote

TEST(MulticlassMajorityVoteTest, PluralityWins) {
  MulticlassAnnotations a;
  a.num_classes = 3;
  a.votes.resize(1);
  a.votes[0] = {{0, 2}, {1, 2}, {2, 0}, {3, 1}, {4, 2}};
  auto result = MulticlassMajorityVote(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels[0], 2u);
  EXPECT_NEAR(result->posterior(0, 2), 0.6, 1e-12);
  EXPECT_NEAR(result->posterior(0, 0), 0.2, 1e-12);
}

TEST(MulticlassMajorityVoteTest, PosteriorRowsSumToOne) {
  Rng rng(1);
  const auto classes = RandomClasses(50, 4, &rng);
  const std::vector<Matrix> confusions(7, UniformConfusion(4, 0.8));
  const auto a = SimulateMulticlassVotes(classes, 4, confusions, 5, &rng);
  auto result = MulticlassMajorityVote(a);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 50; ++i) {
    double total = 0.0;
    for (size_t c = 0; c < 4; ++c) total += result->posterior(i, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

// ------------------------------------------------------------ Dawid–Skene

TEST(MulticlassDawidSkeneTest, RecoversCleanLabels) {
  Rng rng(2);
  const auto classes = RandomClasses(300, 3, &rng);
  const std::vector<Matrix> confusions(9, UniformConfusion(3, 0.9));
  const auto a = SimulateMulticlassVotes(classes, 3, confusions, 5, &rng);
  auto result = MulticlassDawidSkene(a);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_GT(Recovery(result->labels, classes), 0.95);
}

TEST(MulticlassDawidSkeneTest, BeatsPluralityWithSpammers) {
  Rng rng(3);
  const size_t k = 4;
  const auto classes = RandomClasses(500, k, &rng);
  // 3 strong workers + 6 near-random ones.
  std::vector<Matrix> confusions;
  for (int i = 0; i < 3; ++i) confusions.push_back(UniformConfusion(k, 0.92));
  for (int i = 0; i < 6; ++i) confusions.push_back(UniformConfusion(k, 0.3));
  const auto a = SimulateMulticlassVotes(classes, k, confusions, 9, &rng);
  auto plurality = MulticlassMajorityVote(a);
  auto ds = MulticlassDawidSkene(a);
  ASSERT_TRUE(plurality.ok());
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(Recovery(ds->labels, classes),
            Recovery(plurality->labels, classes) + 0.05);
}

TEST(MulticlassDawidSkeneTest, RecoversPlantedConfusions) {
  Rng rng(4);
  const size_t k = 3;
  const auto classes = RandomClasses(800, k, &rng);
  // Worker 0 strong, worker 1 weak; everyone votes on everything.
  std::vector<Matrix> confusions = {UniformConfusion(k, 0.95),
                                    UniformConfusion(k, 0.55),
                                    UniformConfusion(k, 0.8),
                                    UniformConfusion(k, 0.8)};
  const auto a = SimulateMulticlassVotes(classes, k, confusions, 4, &rng);
  auto result = MulticlassDawidSkene(a);
  ASSERT_TRUE(result.ok());
  // Diagonal means track the planted accuracies.
  auto diagonal_mean = [&](size_t w) {
    double total = 0.0;
    for (size_t c = 0; c < k; ++c) total += result->confusions[w](c, c);
    return total / static_cast<double>(k);
  };
  EXPECT_NEAR(diagonal_mean(0), 0.95, 0.06);
  EXPECT_NEAR(diagonal_mean(1), 0.55, 0.10);
  EXPECT_GT(diagonal_mean(0), diagonal_mean(1) + 0.2);
}

TEST(MulticlassDawidSkeneTest, BiasedConfusionIsLearnedNotJustAccuracy) {
  // A worker who systematically confuses class 1 with class 2 (never the
  // reverse): the learned confusion must show the asymmetry.
  Rng rng(5);
  const size_t k = 3;
  const auto classes = RandomClasses(900, k, &rng);
  Matrix biased = UniformConfusion(k, 0.9);
  biased(1, 1) = 0.3;
  biased(1, 2) = 0.65;
  biased(1, 0) = 0.05;
  std::vector<Matrix> confusions = {UniformConfusion(k, 0.9),
                                    UniformConfusion(k, 0.9), biased};
  const auto a = SimulateMulticlassVotes(classes, k, confusions, 3, &rng);
  auto result = MulticlassDawidSkene(a);
  ASSERT_TRUE(result.ok());
  const Matrix& learned = result->confusions[2];
  EXPECT_GT(learned(1, 2), learned(1, 1));   // The planted bias.
  EXPECT_GT(learned(0, 0), 0.7);             // Other rows stay accurate.
  EXPECT_GT(learned(2, 2), 0.7);
}

TEST(MulticlassDawidSkeneTest, BinaryCaseMatchesIntuition) {
  // k = 2 reduces to the binary DS already tested elsewhere; sanity-check
  // consistency of the shared code path.
  Rng rng(6);
  const auto classes = RandomClasses(300, 2, &rng);
  const std::vector<Matrix> confusions(5, UniformConfusion(2, 0.85));
  const auto a = SimulateMulticlassVotes(classes, 2, confusions, 5, &rng);
  auto result = MulticlassDawidSkene(a);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(Recovery(result->labels, classes), 0.9);
}

// -------------------------------------------------------------- Simulator

TEST(SimulateMulticlassTest, VoteDistributionMatchesConfusion) {
  Rng rng(7);
  const size_t k = 3;
  Matrix confusion = UniformConfusion(k, 0.7);
  const std::vector<size_t> classes(3000, 1);  // All class 1.
  const auto a =
      SimulateMulticlassVotes(classes, k, {confusion}, 1, &rng);
  std::vector<size_t> counts(k, 0);
  for (const auto& item : a.votes) counts[item[0].label]++;
  EXPECT_NEAR(static_cast<double>(counts[1]) / 3000.0, 0.7, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 3000.0, 0.15, 0.03);
}

TEST(SimulateMulticlassTest, DistinctWorkersPerItem) {
  Rng rng(8);
  const std::vector<Matrix> confusions(6, UniformConfusion(3, 0.8));
  const auto a = SimulateMulticlassVotes(RandomClasses(40, 3, &rng), 3,
                                         confusions, 4, &rng);
  for (const auto& item : a.votes) {
    ASSERT_EQ(item.size(), 4u);
    std::set<size_t> workers;
    for (const MulticlassVote& v : item) workers.insert(v.worker_id);
    EXPECT_EQ(workers.size(), 4u);
  }
}

}  // namespace
}  // namespace rll::crowd
