// Cross-module integration tests: the full paper pipeline on synthetic
// education data — RLL beating a plain majority-vote baseline on noisy
// labels, the confidence variants ranking correctly under heavy noise,
// determinism, and model checkpoint reuse across processes steps.

#include <gtest/gtest.h>

#include "baselines/aggregated_lr.h"
#include "baselines/method.h"
#include "baselines/rll_method.h"
#include "baselines/softprob.h"
#include "classify/logistic_regression.h"
#include "common/threading.h"
#include "core/pipeline.h"
#include "crowd/agreement.h"
#include "crowd/worker_pool.h"
#include "data/csv.h"
#include "data/kfold.h"
#include "data/standardize.h"
#include "data/synthetic.h"

namespace rll {
namespace {

struct Scenario {
  data::Dataset dataset;
  Rng rng;
};

// Medium-difficulty dataset with noisy crowd labels. Mirrors the paper's
// regime: few examples, 5 inconsistent votes each.
Scenario MakeScenario(uint64_t seed, size_t n = 200, size_t votes = 5) {
  Rng rng(seed);
  data::SyntheticConfig config;
  config.num_examples = n;
  config.positive_fraction = 0.62;
  config.linear_dims = 5;
  config.xor_dims = 2;
  config.noise_dims = 9;
  config.clusters_per_class = 2;
  config.linear_sep = 1.2;
  config.xor_sep = 2.8;
  config.cluster_spread = 1.0;
  data::Dataset d = GenerateSynthetic(config, &rng);
  crowd::WorkerPool pool({.num_workers = 15}, &rng);
  pool.Annotate(&d, votes, &rng);
  return {std::move(d), std::move(rng)};
}

core::RllPipelineOptions MediumRllOptions(crowd::ConfidenceMode mode) {
  core::RllPipelineOptions options;
  options.trainer.model.hidden_dims = {32, 16};
  options.trainer.epochs = 8;
  options.trainer.groups_per_epoch = 512;
  options.trainer.confidence_mode = mode;
  options.folds = 3;
  return options;
}

TEST(IntegrationTest, RllPipelineBeatsChanceComfortably) {
  Scenario s = MakeScenario(1);
  auto outcome = core::RunRllCrossValidation(
      s.dataset, MediumRllOptions(crowd::ConfidenceMode::kBayesian), &s.rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->mean.accuracy, 0.7);
  EXPECT_GT(outcome->mean.f1, 0.7);
}

TEST(IntegrationTest, CrowdNoiseIsActuallyPresent) {
  // The scenario must be a genuine crowdsourcing problem: imperfect
  // majority votes and non-trivial disagreement, like the paper's data.
  Scenario s = MakeScenario(2);
  auto stats = crowd::ComputeAgreement(s.dataset);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->majority_vote_accuracy, 0.995);
  EXPECT_GT(stats->majority_vote_accuracy, 0.6);
  EXPECT_LT(stats->unanimous_fraction, 0.9);
}

TEST(IntegrationTest, EmbeddingsTransferToHeldOutClassifier) {
  // Train RLL on one half, fit LR on the *other* half's embeddings —
  // representations must carry class structure beyond the training split.
  // Averaged over seeds: the inner test folds are small.
  double total = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    Scenario s = MakeScenario(3 + static_cast<uint64_t>(t), 240);
    const data::Split split =
        data::TrainTestSplit(s.dataset.size(), 0.5, &s.rng);
    data::Dataset half_a = s.dataset.Subset(split.train);
    data::Dataset half_b = s.dataset.Subset(split.test);

    data::Standardizer standardizer;
    const Matrix features_a = standardizer.FitTransform(half_a.features());
    const Matrix features_b = standardizer.Transform(half_b.features());

    core::RllTrainerOptions options =
        MediumRllOptions(crowd::ConfidenceMode::kBayesian).trainer;
    core::RllTrainer trainer(options, &s.rng);
    const std::vector<int> labels_a = half_a.MajorityVoteLabels();
    ASSERT_TRUE(
        trainer
            .Train(features_a, labels_a,
                   crowd::LabelConfidence(half_a, labels_a,
                                          crowd::ConfidenceMode::kBayesian))
            .ok());

    const Matrix emb_b = trainer.model().Embed(features_b);
    const data::Split inner = data::TrainTestSplit(half_b.size(), 0.3, &s.rng);
    classify::LogisticRegression lr;
    ASSERT_TRUE(lr.Fit(emb_b.GatherRows(inner.train),
                       half_b.Subset(inner.train).MajorityVoteLabels())
                    .ok());
    const std::vector<int> pred = lr.Predict(emb_b.GatherRows(inner.test));
    total += classify::Evaluate(half_b.Subset(inner.test).true_labels(), pred)
                 .accuracy;
  }
  EXPECT_GT(total / trials, 0.65);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto run = [](uint64_t seed) {
    Scenario s = MakeScenario(seed);
    auto outcome = core::RunRllCrossValidation(
        s.dataset, MediumRllOptions(crowd::ConfidenceMode::kMle), &s.rng);
    EXPECT_TRUE(outcome.ok());
    return outcome->mean;
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
}

TEST(IntegrationTest, CheckpointedModelReproducesPredictions) {
  Scenario s = MakeScenario(8, 160);
  data::Standardizer standardizer;
  const Matrix features = standardizer.FitTransform(s.dataset.features());
  const std::vector<int> labels = s.dataset.MajorityVoteLabels();

  core::RllTrainerOptions options =
      MediumRllOptions(crowd::ConfidenceMode::kNone).trainer;
  options.epochs = 3;
  core::RllTrainer trainer(options, &s.rng);
  ASSERT_TRUE(trainer
                  .Train(features, labels,
                         std::vector<double>(s.dataset.size(), 1.0))
                  .ok());

  const std::string path = ::testing::TempDir() + "/integration_model.ckpt";
  ASSERT_TRUE(trainer.model().Save(path).ok());

  Rng rng2(999);
  core::RllModelConfig model_config = options.model;
  model_config.input_dim = features.cols();
  core::RllModel restored(model_config, &rng2);
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_TRUE(restored.Embed(features).AllClose(
      trainer.model().Embed(features)));
}

TEST(IntegrationTest, BayesianConfidenceHelpsUnderHeavyNoiseFewVotes) {
  // The paper's core claim, in its favourable regime: few votes (d = 3),
  // weak workers → confidence weighting should not hurt, Bayesian ≥ plain
  // on average. Averaged over seeds to damp training variance.
  double bayes_total = 0.0, plain_total = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    data::SyntheticConfig config;
    config.num_examples = 220;
    config.positive_fraction = 0.62;
    config.linear_dims = 5;
    config.xor_dims = 2;
    config.noise_dims = 9;
    config.clusters_per_class = 2;
    config.linear_sep = 1.2;
    config.xor_sep = 2.8;
    config.cluster_spread = 1.0;
    data::Dataset d = GenerateSynthetic(config, &rng);
    crowd::WorkerPool pool({.num_workers = 15,
                            .sensitivity_alpha = 5.0,
                            .sensitivity_beta = 2.0,
                            .specificity_alpha = 5.0,
                            .specificity_beta = 2.0},
                           &rng);
    pool.Annotate(&d, 3, &rng);

    Rng eval_rng(200 + t);
    auto bayes = core::RunRllCrossValidation(
        d, MediumRllOptions(crowd::ConfidenceMode::kBayesian), &eval_rng);
    Rng eval_rng2(200 + t);
    auto plain = core::RunRllCrossValidation(
        d, MediumRllOptions(crowd::ConfidenceMode::kNone), &eval_rng2);
    ASSERT_TRUE(bayes.ok());
    ASSERT_TRUE(plain.ok());
    bayes_total += bayes->mean.accuracy;
    plain_total += plain->mean.accuracy;
  }
  EXPECT_GE(bayes_total, plain_total - 0.03);
}

TEST(IntegrationTest, MethodInterfaceAndPipelineAgree) {
  // RllVariantMethod through the generic harness must equal the dedicated
  // pipeline given identical seeds (they share the same code path).
  Scenario s1 = MakeScenario(11, 150);
  Scenario s2 = MakeScenario(11, 150);
  const auto options = MediumRllOptions(crowd::ConfidenceMode::kMle);

  Rng rng_a(42);
  auto direct = core::RunRllCrossValidation(s1.dataset, options, &rng_a);
  Rng rng_b(42);
  baselines::RllVariantMethod method(options);
  auto via_harness =
      baselines::CrossValidateMethod(s2.dataset, method, options.folds,
                                     &rng_b);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_harness.ok());
  EXPECT_DOUBLE_EQ(direct->mean.accuracy, via_harness->mean.accuracy);
  EXPECT_DOUBLE_EQ(direct->mean.f1, via_harness->mean.f1);
}

TEST(IntegrationTest, CsvExportedDatasetTrainsIdentically) {
  Scenario s = MakeScenario(13, 120);
  const std::string fpath = ::testing::TempDir() + "/integ_features.csv";
  const std::string apath = ::testing::TempDir() + "/integ_annotations.csv";
  ASSERT_TRUE(data::SaveFeaturesCsv(fpath, s.dataset).ok());
  ASSERT_TRUE(data::SaveAnnotationsCsv(apath, s.dataset).ok());
  auto loaded = data::LoadFeaturesCsv(fpath);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(data::LoadAnnotationsCsv(apath, &loaded.value()).ok());

  const auto options = MediumRllOptions(crowd::ConfidenceMode::kBayesian);
  Rng rng_a(5), rng_b(5);
  auto original = core::RunRllCrossValidation(s.dataset, options, &rng_a);
  auto roundtrip = core::RunRllCrossValidation(*loaded, options, &rng_b);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_DOUBLE_EQ(original->mean.accuracy, roundtrip->mean.accuracy);
}

TEST(IntegrationTest, CrossValidationBitwiseIdenticalAcrossThreadCounts) {
  // The determinism contract of the parallel execution core, end to end:
  // the full CV pipeline (parallel folds over parallel kernels, seed-split
  // RNG streams) must produce bitwise-identical metrics at any --threads.
  Scenario s = MakeScenario(21, 140);
  const auto options = MediumRllOptions(crowd::ConfidenceMode::kBayesian);

  SetGlobalThreads(1);
  Rng rng_serial(9);
  auto serial = core::RunRllCrossValidation(s.dataset, options, &rng_serial);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : {2u, 4u}) {
    SetGlobalThreads(threads);
    Rng rng(9);
    auto parallel = core::RunRllCrossValidation(s.dataset, options, &rng);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->mean.accuracy, serial->mean.accuracy)
        << "threads=" << threads;
    EXPECT_EQ(parallel->mean.f1, serial->mean.f1) << "threads=" << threads;
    ASSERT_EQ(parallel->per_fold.size(), serial->per_fold.size());
    for (size_t f = 0; f < serial->per_fold.size(); ++f) {
      EXPECT_EQ(parallel->per_fold[f].accuracy, serial->per_fold[f].accuracy)
          << "fold " << f << " threads=" << threads;
      EXPECT_EQ(parallel->per_fold[f].precision,
                serial->per_fold[f].precision)
          << "fold " << f << " threads=" << threads;
      EXPECT_EQ(parallel->per_fold[f].recall, serial->per_fold[f].recall)
          << "fold " << f << " threads=" << threads;
    }
  }
  SetGlobalThreads(0);  // Restore the RLL_THREADS / serial default.
}

}  // namespace
}  // namespace rll
