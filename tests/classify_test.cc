// Tests for the classic-ML layer: metrics against hand-computed values and
// logistic regression behaviour (convergence, soft targets, weights,
// input validation).

#include <gtest/gtest.h>

#include <cmath>

#include "classify/logistic_regression.h"
#include "classify/metrics.h"
#include "classify/pca.h"
#include "classify/ranking_metrics.h"
#include "classify/softmax_regression.h"
#include "common/rng.h"
#include "tensor/init.h"

namespace rll::classify {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, ConfusionHandValues) {
  //            truth:  1  1  0  0  1  0
  //            pred:   1  0  1  0  1  0
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> pred = {1, 0, 1, 0, 1, 0};
  const ConfusionMatrix cm = Confusion(truth, pred);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 2u);
  EXPECT_DOUBLE_EQ(Accuracy(cm), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(Precision(cm), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Recall(cm), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(F1(cm), 2.0 / 3.0);
}

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<int> y = {1, 0, 1, 1, 0};
  const EvalMetrics m = Evaluate(y, y);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, DegenerateCasesReturnZeroNotNan) {
  // No positive predictions → precision undefined → 0.
  const ConfusionMatrix cm = Confusion({1, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(Precision(cm), 0.0);
  EXPECT_DOUBLE_EQ(F1(cm), 0.0);
  // No positives in truth → recall undefined → 0.
  const ConfusionMatrix cm2 = Confusion({0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(Recall(cm2), 0.0);
  EXPECT_FALSE(std::isnan(F1(cm2)));
}

TEST(MetricsTest, F1IsHarmonicMean) {
  // tp=1, fp=1 → p=0.5; tp=1, fn=3 → r=0.25; F1 = 2pr/(p+r) = 1/3.
  ConfusionMatrix cm;
  cm.tp = 1;
  cm.fp = 1;
  cm.fn = 3;
  EXPECT_NEAR(F1(cm), 1.0 / 3.0, 1e-12);
}

TEST(MetricsTest, MeanAndStdAcrossFolds) {
  std::vector<EvalMetrics> folds(2);
  folds[0].accuracy = 0.8;
  folds[1].accuracy = 0.9;
  folds[0].f1 = 0.7;
  folds[1].f1 = 0.7;
  const EvalMetrics mean = MeanMetrics(folds);
  EXPECT_NEAR(mean.accuracy, 0.85, 1e-12);
  EXPECT_NEAR(mean.f1, 0.7, 1e-12);
  const EvalMetrics sd = StdDevMetrics(folds);
  EXPECT_NEAR(sd.accuracy, std::sqrt(0.005 / 1.0 * 1.0), 1e-9);
  EXPECT_NEAR(sd.f1, 0.0, 1e-12);
}

TEST(MetricsTest, ToStringFormatsAllFields) {
  EvalMetrics m;
  m.accuracy = 0.888;
  m.f1 = 0.915;
  const std::string s = ToString(m);
  EXPECT_NE(s.find("0.888"), std::string::npos);
  EXPECT_NE(s.find("0.915"), std::string::npos);
}

// ---------------------------------------------------- LogisticRegression

Matrix SeparableData(std::vector<int>* labels, Rng* rng, size_t n = 200) {
  Matrix x(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int y = rng->Bernoulli(0.5) ? 1 : 0;
    (*labels)[i] = y;
    x(i, 0) = rng->Normal(y == 1 ? 2.0 : -2.0, 0.5);
    x(i, 1) = rng->Normal(0.0, 1.0);
  }
  return x;
}

TEST(LogisticRegressionTest, SeparatesLinearlySeparableData) {
  Rng rng(1);
  std::vector<int> labels;
  Matrix x = SeparableData(&labels, &rng);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, labels).ok());
  const std::vector<int> pred = lr.Predict(x);
  EXPECT_GT(Evaluate(labels, pred).accuracy, 0.97);
}

TEST(LogisticRegressionTest, ProbabilitiesAreCalibratedDirectionally) {
  Rng rng(2);
  std::vector<int> labels;
  Matrix x = SeparableData(&labels, &rng);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, labels).ok());
  Matrix probe = {{3.0, 0.0}, {-3.0, 0.0}};
  const std::vector<double> p = lr.PredictProba(probe);
  EXPECT_GT(p[0], 0.9);
  EXPECT_LT(p[1], 0.1);
}

TEST(LogisticRegressionTest, SoftTargetsShiftDecision) {
  // Same feature, target 0.9 vs 0.1 → predicted prob near the target.
  Matrix x(100, 1, 1.0);
  std::vector<double> targets(100, 0.9);
  LogisticRegression lr({.learning_rate = 0.5, .max_epochs = 2000, .l2 = 0.0});
  ASSERT_TRUE(lr.Fit(x, targets).ok());
  EXPECT_NEAR(lr.PredictProba(x)[0], 0.9, 0.02);
}

TEST(LogisticRegressionTest, SampleWeightsTiltTheFit) {
  // Conflicting labels on the same point; weights decide the majority.
  Matrix x(4, 1, 1.0);
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<double> weights = {5.0, 5.0, 1.0, 1.0};
  LogisticRegression lr({.learning_rate = 0.5, .max_epochs = 2000, .l2 = 0.0});
  ASSERT_TRUE(lr.Fit(x, labels, weights).ok());
  EXPECT_GT(lr.PredictProba(x)[0], 0.5);
}

TEST(LogisticRegressionTest, RejectsBadInputs) {
  LogisticRegression lr;
  Matrix x(3, 2);
  EXPECT_FALSE(lr.Fit(Matrix(), std::vector<int>{}).ok());
  EXPECT_FALSE(lr.Fit(x, std::vector<int>{1, 0}).ok());        // Size mismatch.
  EXPECT_FALSE(lr.Fit(x, std::vector<int>{1, 0, 2}).ok());     // Bad label.
  EXPECT_FALSE(
      lr.Fit(x, std::vector<double>{0.5, 1.5, 0.0}).ok());     // Target > 1.
  EXPECT_FALSE(lr.Fit(x, std::vector<int>{1, 0, 1},
                      std::vector<double>{1.0, -1.0, 1.0})
                   .ok());                                     // Negative w.
  EXPECT_FALSE(lr.Fit(x, std::vector<int>{1, 0, 1},
                      std::vector<double>{0.0, 0.0, 0.0})
                   .ok());                                     // All-zero w.
}

TEST(LogisticRegressionTest, PredictBeforeFitDies) {
  LogisticRegression lr;
  Matrix x(1, 1, 0.0);
  EXPECT_DEATH(lr.Predict(x), "before Fit");
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  Rng rng(3);
  std::vector<int> labels;
  Matrix x = SeparableData(&labels, &rng);
  LogisticRegression weak({.l2 = 1e-4});
  LogisticRegression strong({.l2 = 1.0});
  ASSERT_TRUE(weak.Fit(x, labels).ok());
  ASSERT_TRUE(strong.Fit(x, labels).ok());
  EXPECT_LT(std::fabs(strong.weights()(0, 0)),
            std::fabs(weak.weights()(0, 0)));
}

TEST(LogisticRegressionTest, HandlesClassImbalanceGracefully) {
  Rng rng(4);
  const size_t n = 300;
  Matrix x(n, 1);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int y = i < 270 ? 1 : 0;  // 90% positive.
    labels[i] = y;
    x(i, 0) = rng.Normal(y == 1 ? 1.0 : -1.0, 0.6);
  }
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, labels).ok());
  EXPECT_GT(Evaluate(labels, lr.Predict(x)).accuracy, 0.9);
}

// ------------------------------------------------------ SoftmaxRegression

TEST(SoftmaxRegressionTest, SeparatesThreeGaussianBlobs) {
  Rng rng(30);
  const size_t n = 300;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  const double centers[3][2] = {{0, 3}, {-3, -2}, {3, -2}};
  for (size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % 3);
    labels[i] = c;
    x(i, 0) = rng.Normal(centers[c][0], 0.6);
    x(i, 1) = rng.Normal(centers[c][1], 0.6);
  }
  SoftmaxRegression sr;
  ASSERT_TRUE(sr.Fit(x, labels).ok());
  EXPECT_EQ(sr.num_classes(), 3u);
  const std::vector<int> pred = sr.Predict(x);
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) correct += (pred[i] == labels[i]);
  EXPECT_GT(static_cast<double>(correct) / n, 0.97);
}

TEST(SoftmaxRegressionTest, ProbabilityRowsSumToOne) {
  Rng rng(31);
  Matrix x = RandomNormal(50, 3, &rng);
  std::vector<int> labels(50);
  for (size_t i = 0; i < 50; ++i) labels[i] = static_cast<int>(i % 4);
  SoftmaxRegression sr;
  ASSERT_TRUE(sr.Fit(x, labels).ok());
  const Matrix probs = sr.PredictProba(x);
  EXPECT_EQ(probs.cols(), 4u);
  for (size_t r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs(r, c), 0.0);
      total += probs(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SoftmaxRegressionTest, BinaryCaseAgreesWithLogisticRegression) {
  Rng rng(32);
  std::vector<int> labels;
  Matrix x = SeparableData(&labels, &rng);
  SoftmaxRegression sr;
  LogisticRegression lr;
  ASSERT_TRUE(sr.Fit(x, labels).ok());
  ASSERT_TRUE(lr.Fit(x, labels).ok());
  const std::vector<int> sr_pred = sr.Predict(x);
  const std::vector<int> lr_pred = lr.Predict(x);
  size_t agree = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    agree += (sr_pred[i] == lr_pred[i]);
  }
  EXPECT_GT(static_cast<double>(agree) / labels.size(), 0.98);
}

TEST(SoftmaxRegressionTest, RejectsBadInputs) {
  SoftmaxRegression sr;
  Matrix x(4, 2);
  EXPECT_FALSE(sr.Fit(Matrix(), {}).ok());
  EXPECT_FALSE(sr.Fit(x, {0, 1}).ok());            // Size mismatch.
  EXPECT_FALSE(sr.Fit(x, {0, -1, 0, 1}).ok());     // Negative label.
  EXPECT_FALSE(sr.Fit(x, {0, 0, 0, 0}).ok());      // Single class.
  EXPECT_FALSE(sr.Fit(x, {0, 1, 2, 1}, 2).ok());   // Label ≥ num_classes.
}

TEST(SoftmaxRegressionTest, ExplicitNumClassesAllowsUnseenClasses) {
  // Training data only has classes 0 and 2, but K = 4 is declared: the
  // model must fit and emit 4-way posteriors.
  Matrix x = {{-2, 0}, {-2.2, 0}, {2, 0}, {2.2, 0}};
  SoftmaxRegression sr;
  ASSERT_TRUE(sr.Fit(x, {0, 0, 2, 2}, 4).ok());
  EXPECT_EQ(sr.num_classes(), 4u);
  const std::vector<int> pred = sr.Predict(x);
  EXPECT_EQ(pred[0], 0);
  EXPECT_EQ(pred[3], 2);
}

// -------------------------------------------------------------------- PCA

TEST(PcaTest, RecoversDominantDirection) {
  // Data varies along (1,1)/√2 with tiny orthogonal noise.
  Rng rng(5);
  Matrix x(300, 2);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double t = rng.Normal(0.0, 3.0);
    const double noise = rng.Normal(0.0, 0.05);
    x(i, 0) = t + noise;
    x(i, 1) = t - noise;
  }
  Pca pca({.num_components = 1});
  ASSERT_TRUE(pca.Fit(x).ok());
  const double c0 = pca.components()(0, 0);
  const double c1 = pca.components()(0, 1);
  EXPECT_NEAR(std::fabs(c0), std::sqrt(0.5), 0.02);
  EXPECT_NEAR(std::fabs(c1), std::sqrt(0.5), 0.02);
  EXPECT_GT(c0 * c1, 0.0);  // Same sign: the (1,1) direction.
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(6);
  Matrix x = RandomNormal(100, 6, &rng);
  Pca pca({.num_components = 4});
  ASSERT_TRUE(pca.Fit(x).ok());
  const Matrix& c = pca.components();
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = a; b < 4; ++b) {
      double dot = 0.0;
      for (size_t j = 0; j < 6; ++j) dot += c(a, j) * c(b, j);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-6) << a << "," << b;
    }
  }
}

TEST(PcaTest, ExplainedVarianceDescendsAndMatchesData) {
  Rng rng(7);
  // Independent coordinates with variances 9, 4, 1.
  Matrix x(2000, 3);
  for (size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.Normal(0.0, 3.0);
    x(i, 1) = rng.Normal(0.0, 2.0);
    x(i, 2) = rng.Normal(0.0, 1.0);
  }
  Pca pca({.num_components = 3});
  ASSERT_TRUE(pca.Fit(x).ok());
  const auto& ev = pca.explained_variance();
  EXPECT_NEAR(ev[0], 9.0, 0.8);
  EXPECT_NEAR(ev[1], 4.0, 0.5);
  EXPECT_NEAR(ev[2], 1.0, 0.2);
  EXPECT_GE(ev[0], ev[1]);
  EXPECT_GE(ev[1], ev[2]);
}

TEST(PcaTest, TransformCentersAndProjects) {
  Matrix x = {{1, 10}, {3, 10}};  // Mean (2, 10); variance only in dim 0.
  Pca pca({.num_components = 1});
  ASSERT_TRUE(pca.Fit(x).ok());
  Matrix proj = pca.Transform(x);
  EXPECT_EQ(proj.rows(), 2u);
  EXPECT_EQ(proj.cols(), 1u);
  EXPECT_NEAR(proj(0, 0) + proj(1, 0), 0.0, 1e-9);  // Centered.
  EXPECT_NEAR(std::fabs(proj(0, 0)), 1.0, 1e-6);
}

TEST(PcaTest, RejectsBadConfig) {
  Matrix x(10, 3);
  EXPECT_FALSE(Pca({.num_components = 0}).Fit(x).ok());
  EXPECT_FALSE(Pca({.num_components = 4}).Fit(x).ok());
  EXPECT_FALSE(Pca({.num_components = 1}).Fit(Matrix(1, 3)).ok());
}

// ------------------------------------------------------- Ranking metrics

TEST(RankingMetricsTest, PerfectRankingGivesAucOne) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 1.0);
}

TEST(RankingMetricsTest, ReversedRankingGivesAucZero) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 0.0);
}

TEST(RankingMetricsTest, ConstantScoresGiveHalf) {
  const std::vector<int> truth = {1, 0, 1, 0};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 0.5);
}

TEST(RankingMetricsTest, SingleClassGivesHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.2, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0}, {0.2, 0.9}), 0.5);
}

TEST(RankingMetricsTest, HandComputedAucWithTie) {
  // truth 1,0,1 scores 0.9, 0.5, 0.5 → pairs: (1:0.9 vs 0:0.5)=1,
  // (1:0.5 vs 0:0.5)=0.5 → AUC = 1.5/2.
  EXPECT_DOUBLE_EQ(RocAuc({1, 0, 1}, {0.9, 0.5, 0.5}), 0.75);
}

TEST(RankingMetricsTest, AucInvariantToMonotoneTransform) {
  Rng rng(10);
  std::vector<int> truth(50);
  std::vector<double> scores(50), squashed(50);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.Bernoulli(0.5);
    scores[i] = rng.Normal();
    squashed[i] = std::tanh(scores[i]);  // Strictly monotone.
  }
  EXPECT_NEAR(RocAuc(truth, scores), RocAuc(truth, squashed), 1e-12);
}

TEST(RankingMetricsTest, LogLossHandValues) {
  // -log(0.8) for a correct confident positive.
  EXPECT_NEAR(LogLoss({1}, {0.8}), -std::log(0.8), 1e-12);
  // Symmetric for negatives.
  EXPECT_NEAR(LogLoss({0}, {0.2}), -std::log(0.8), 1e-12);
}

TEST(RankingMetricsTest, LogLossClampsExtremeProbabilities) {
  const double loss = LogLoss({1}, {0.0});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 20.0);  // -log(1e-12) ≈ 27.6.
}

TEST(RankingMetricsTest, BrierScoreHandValues) {
  EXPECT_NEAR(BrierScore({1, 0}, {0.8, 0.3}), (0.04 + 0.09) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(BrierScore({1}, {1.0}), 0.0);
}

TEST(RankingMetricsTest, CalibratedBeatsMiscalibratedOnLogLoss) {
  const std::vector<int> truth = {1, 1, 1, 0};
  const std::vector<double> calibrated = {0.75, 0.75, 0.75, 0.25};
  const std::vector<double> overconfident = {0.99, 0.99, 0.99, 0.99};
  EXPECT_LT(LogLoss(truth, calibrated), LogLoss(truth, overconfident));
}

}  // namespace
}  // namespace rll::classify
