// Autograd tests: finite-difference gradient checks for every op and for
// the composite losses used by RLL and the baselines, plus graph mechanics
// (topological order, accumulation, requires_grad pruning).

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll::ag {
namespace {

constexpr double kTol = 1e-5;

Matrix RandomMat(size_t r, size_t c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return RandomNormal(r, c, &rng, 0.0, scale);
}

// ------------------------------------------------------- Graph mechanics

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Var c = Constant(Matrix(2, 2, 1.0));
  EXPECT_FALSE(c->requires_grad);
  Var p = Parameter(Matrix(2, 2, 1.0));
  EXPECT_TRUE(p->requires_grad);
}

TEST(VariableTest, OpsPropagateRequiresGrad) {
  Var c1 = Constant(Matrix(2, 2, 1.0));
  Var c2 = Constant(Matrix(2, 2, 2.0));
  Var p = Parameter(Matrix(2, 2, 3.0));
  EXPECT_FALSE(Add(c1, c2)->requires_grad);
  EXPECT_TRUE(Add(c1, p)->requires_grad);
}

TEST(VariableTest, TopologicalOrderParentsFirst) {
  Var a = Parameter(Matrix(1, 1, 2.0));
  Var b = Scale(a, 3.0);
  Var c = Add(b, a);  // Diamond: a reachable twice.
  ScratchVector<Node*> order = TopologicalOrder(c);
  // a must precede b, b must precede c; each node appears once.
  EXPECT_EQ(order.size(), 3u);
  auto pos = [&order](Node* n) {
    for (size_t i = 0; i < order.size(); ++i)
      if (order[i] == n) return i;
    return order.size();
  };
  EXPECT_LT(pos(a.get()), pos(b.get()));
  EXPECT_LT(pos(b.get()), pos(c.get()));
}

TEST(VariableTest, GradientAccumulatesAcrossPaths) {
  // y = a + 2a = 3a ⇒ dy/da = 3.
  Var a = Parameter(Matrix(1, 1, 5.0));
  Var y = Add(a, Scale(a, 2.0));
  Backward(y);
  EXPECT_DOUBLE_EQ(a->grad(0, 0), 3.0);
}

TEST(VariableTest, BackwardTwiceAccumulatesUnlessZeroed) {
  Var a = Parameter(Matrix(1, 1, 1.0));
  Var y1 = Scale(a, 2.0);
  Backward(y1);
  EXPECT_DOUBLE_EQ(a->grad(0, 0), 2.0);
  Var y2 = Scale(a, 2.0);
  Backward(y2);
  EXPECT_DOUBLE_EQ(a->grad(0, 0), 4.0);
  a->ZeroGrad();
  Var y3 = Scale(a, 2.0);
  Backward(y3);
  EXPECT_DOUBLE_EQ(a->grad(0, 0), 2.0);
}

TEST(VariableTest, NoGradFlowsIntoConstants) {
  Var c = Constant(Matrix(1, 1, 1.0));
  Var p = Parameter(Matrix(1, 1, 1.0));
  Var y = Mul(c, p);
  Backward(y);
  EXPECT_TRUE(c->grad.empty());
  EXPECT_FALSE(p->grad.empty());
}

TEST(VariableTest, DeepChainDoesNotOverflowStack) {
  Var x = Parameter(Matrix(1, 1, 0.0));
  Var y = x;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 1e-6);
  Backward(y);  // Iterative DFS: must not crash.
  EXPECT_DOUBLE_EQ(x->grad(0, 0), 1.0);
}

// --------------------------------------------------- Per-op grad checks

TEST(GradCheckTest, Matmul) {
  Var a = Parameter(RandomMat(3, 4, 1));
  Var b = Parameter(RandomMat(4, 2, 2));
  auto r = CheckGradients({a, b}, [&] { return Sum(Matmul(a, b)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, AddSubMul) {
  Var a = Parameter(RandomMat(3, 3, 3));
  Var b = Parameter(RandomMat(3, 3, 4));
  auto r = CheckGradients(
      {a, b}, [&] { return Sum(Mul(Add(a, b), Sub(a, b))); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, ScaleAddScalar) {
  Var a = Parameter(RandomMat(2, 5, 5));
  auto r = CheckGradients(
      {a}, [&] { return Sum(AddScalar(Scale(a, -2.5), 3.0)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, AddRowBroadcast) {
  Var a = Parameter(RandomMat(4, 3, 6));
  Var bias = Parameter(RandomMat(1, 3, 7));
  auto r = CheckGradients(
      {a, bias}, [&] { return Sum(Square(AddRowBroadcast(a, bias))); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, Tanh) {
  Var a = Parameter(RandomMat(3, 3, 8));
  auto r = CheckGradients({a}, [&] { return Sum(Tanh(a)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, ReluAwayFromKink) {
  Matrix m = RandomMat(4, 4, 9);
  for (size_t i = 0; i < m.size(); ++i) {
    if (std::fabs(m[i]) < 0.1) m[i] = 0.5;  // Keep clear of the kink.
  }
  Var a = Parameter(m);
  auto r = CheckGradients({a}, [&] { return Sum(Relu(a)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, Sigmoid) {
  Var a = Parameter(RandomMat(3, 4, 10));
  auto r = CheckGradients({a}, [&] { return Sum(Sigmoid(a)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, ExpLogSquareSqrt) {
  Matrix m = RandomMat(3, 3, 11);
  for (size_t i = 0; i < m.size(); ++i) m[i] = std::fabs(m[i]) + 0.5;
  Var a = Parameter(m);
  auto r = CheckGradients(
      {a}, [&] { return Sum(Log(Exp(Sqrt(Square(a))))); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, Div) {
  Matrix denom = RandomMat(3, 3, 40);
  for (size_t i = 0; i < denom.size(); ++i) {
    denom[i] = (denom[i] >= 0 ? 1.0 : -1.0) * (std::fabs(denom[i]) + 0.5);
  }
  Var a = Parameter(RandomMat(3, 3, 41));
  Var b = Parameter(denom);
  auto r = CheckGradients({a, b}, [&] { return Sum(Div(a, b)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, AbsAwayFromKink) {
  Matrix m = RandomMat(4, 4, 42);
  for (size_t i = 0; i < m.size(); ++i) {
    if (std::fabs(m[i]) < 0.1) m[i] = 0.5;
  }
  Var a = Parameter(m);
  auto r = CheckGradients({a}, [&] { return Sum(Abs(a)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, ClampMinAwayFromKink) {
  Matrix m = RandomMat(4, 4, 43);
  for (size_t i = 0; i < m.size(); ++i) {
    if (std::fabs(m[i] - 0.3) < 0.1) m[i] = 1.0;  // Clear of the floor.
  }
  Var a = Parameter(m);
  auto r = CheckGradients({a}, [&] { return Sum(ClampMin(a, 0.3)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(OpsSemanticsTest, DivMatchesElementwiseQuotient) {
  Var a = Constant(Matrix{{6.0, -9.0}});
  Var b = Constant(Matrix{{2.0, 3.0}});
  Var q = Div(a, b);
  EXPECT_DOUBLE_EQ(q->value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(q->value(0, 1), -3.0);
}

TEST(OpsSemanticsTest, ClampMinFloorsValues) {
  Var a = Constant(Matrix{{-1.0, 0.5, 2.0}});
  Var c = ClampMin(a, 0.0);
  EXPECT_DOUBLE_EQ(c->value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c->value(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(c->value(0, 2), 2.0);
}

TEST(GradCheckTest, MeanAndRowSum) {
  Var a = Parameter(RandomMat(5, 3, 12));
  auto r = CheckGradients({a}, [&] { return Mean(Square(RowSum(a))); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, RowCosine) {
  Var a = Parameter(RandomMat(4, 6, 13));
  Var b = Parameter(RandomMat(4, 6, 14));
  auto r = CheckGradients({a, b}, [&] { return Sum(RowCosine(a, b)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, RowCosineWithOneConstantSide) {
  Var a = Parameter(RandomMat(3, 5, 15));
  Var b = Constant(RandomMat(3, 5, 16));
  auto r = CheckGradients({a}, [&] { return Sum(RowCosine(a, b)); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, ConcatCols) {
  Var a = Parameter(RandomMat(3, 2, 17));
  Var b = Parameter(RandomMat(3, 4, 18));
  Var c = Parameter(RandomMat(3, 1, 19));
  auto r = CheckGradients(
      {a, b, c},
      [&] { return Sum(Square(ConcatCols(VarList{a, b, c}))); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, ConcatRows) {
  Var a = Parameter(RandomMat(2, 3, 20));
  Var b = Parameter(RandomMat(4, 3, 21));
  auto r = CheckGradients(
      {a, b}, [&] { return Sum(Square(ConcatRows(VarList{a, b}))); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, LogSoftmaxRows) {
  Var a = Parameter(RandomMat(4, 5, 22, 2.0));
  auto r = CheckGradients(
      {a}, [&] { return NllRows(LogSoftmaxRows(a), {0, 2, 4, 1}); });
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, WeightedNll) {
  Var a = Parameter(RandomMat(3, 4, 23, 2.0));
  auto r = CheckGradients({a}, [&] {
    return WeightedNllRows(LogSoftmaxRows(a), {1, 0, 3}, {0.2, 1.0, 0.5});
  });
  EXPECT_LT(r.max_relative_error, kTol);
}

// ------------------------------------------------------ Composite losses

TEST(GradCheckTest, ContrastivePairLoss) {
  Var e1 = Parameter(RandomMat(4, 3, 24));
  Var e2 = Parameter(RandomMat(4, 3, 25));
  Matrix same(4, 1);
  same(0, 0) = 1.0;
  same(2, 0) = 1.0;
  Matrix diff(4, 1);
  diff(1, 0) = 1.0;
  diff(3, 0) = 1.0;
  auto forward = [&] {
    Var d2 = RowSum(Square(Sub(e1, e2)));
    Var d = Sqrt(d2);
    Var pull = Mul(Constant(same), d2);
    Var hinge = Relu(AddScalar(Scale(d, -1.0), 1.0));
    Var push = Mul(Constant(diff), Square(hinge));
    return Mean(Add(pull, push));
  };
  auto r = CheckGradients({e1, e2}, forward);
  EXPECT_LT(r.max_relative_error, kTol);
}

TEST(GradCheckTest, GroupSoftmaxLossShape) {
  // The RLL loss built from primitives: cosine scores → concat → NLL.
  Var anchor = Parameter(RandomMat(5, 4, 26));
  Var pos = Parameter(RandomMat(5, 4, 27));
  Var neg1 = Parameter(RandomMat(5, 4, 28));
  Var neg2 = Parameter(RandomMat(5, 4, 29));
  Matrix conf = RandomMat(5, 1, 30);
  for (size_t i = 0; i < conf.size(); ++i) {
    conf[i] = 0.5 + 0.5 / (1.0 + std::exp(-conf[i]));
  }
  auto forward = [&] {
    std::vector<Var> scores;
    for (const Var& cand : {pos, neg1, neg2}) {
      scores.push_back(
          Scale(Mul(RowCosine(anchor, cand), Constant(conf)), 10.0));
    }
    return NllRows(LogSoftmaxRows(ConcatCols(scores)),
                   std::vector<size_t>(5, 0));
  };
  auto r = CheckGradients({anchor, pos, neg1, neg2}, forward);
  EXPECT_LT(r.max_relative_error, kTol);
}

// ------------------------------------------------------------- Semantics

TEST(OpsSemanticsTest, LogSoftmaxRowsNormalizes) {
  Var a = Constant(RandomMat(3, 4, 31, 3.0));
  Var lp = LogSoftmaxRows(a);
  for (size_t r = 0; r < 3; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < 4; ++c) total += std::exp(lp->value(r, c));
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(OpsSemanticsTest, NllMatchesManualComputation) {
  Matrix logits = {{2.0, 1.0, 0.0}, {0.0, 3.0, 1.0}};
  Var lp = LogSoftmaxRows(Constant(logits));
  Var loss = NllRows(lp, {0, 1});
  const double expected =
      -(lp->value(0, 0) + lp->value(1, 1)) / 2.0;
  EXPECT_NEAR(loss->value(0, 0), expected, 1e-12);
}

TEST(OpsSemanticsTest, SigmoidMatchesClosedForm) {
  Matrix x = {{-700.0, 0.0, 700.0}};
  Var s = Sigmoid(Constant(x));
  EXPECT_NEAR(s->value(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(s->value(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(s->value(0, 2), 1.0, 1e-12);
}

TEST(BackwardTest, RequiresScalarLoss) {
  Var a = Parameter(Matrix(2, 2, 1.0));
  EXPECT_DEATH(Backward(a), "scalar");
}

}  // namespace
}  // namespace rll::ag
