// Parameterized property tests over the library's core invariants:
// confidence monotonicity and bounds, aggregation vs. single workers,
// group-loss identities, and RNG-shape sweeps of autograd ops.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "core/group_sampler.h"
#include "core/rll_model.h"
#include "crowd/adaptive_annotation.h"
#include "crowd/confidence.h"
#include "crowd/iwmv.h"
#include "crowd/majority_vote.h"
#include "crowd/multiclass.h"
#include "crowd/worker_pool.h"
#include "text/transcript.h"
#include "text/vocabulary.h"
#include "data/synthetic.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll {
namespace {

// ------------------------------------ Confidence estimator properties

class ConfidencePropertyTest : public ::testing::TestWithParam<int> {};

// Eq. (2) output always lies strictly inside (0, 1) and is monotone in the
// number of positive votes.
TEST_P(ConfidencePropertyTest, BayesianBoundedAndMonotone) {
  const int d = 1 + GetParam() % 7;  // Votes per example: 1..7.
  Rng rng(static_cast<uint64_t>(GetParam()));
  // One example per possible positive-vote count 0..d.
  data::Dataset dataset(Matrix(static_cast<size_t>(d) + 1, 1),
                        std::vector<int>(static_cast<size_t>(d) + 1, 1));
  for (int votes = 0; votes <= d; ++votes) {
    for (int w = 0; w < d; ++w) {
      dataset.AddAnnotation(static_cast<size_t>(votes),
                            {static_cast<size_t>(w), w < votes ? 1 : 0});
    }
  }
  const double strength = 0.5 + rng.Uniform() * 5.0;
  const auto p = crowd::LabelPositiveness(
      dataset, crowd::ConfidenceMode::kBayesian, strength);
  for (int votes = 0; votes <= d; ++votes) {
    EXPECT_GT(p[votes], 0.0);
    EXPECT_LT(p[votes], 1.0);
    if (votes > 0) EXPECT_GT(p[votes], p[votes - 1]);
  }
}

// As d grows with a fixed vote fraction, the Bayesian estimate approaches
// the MLE (prior washes out).
TEST_P(ConfidencePropertyTest, BayesianApproachesMleWithMoreVotes) {
  const double strength = 2.0;
  auto estimate_gap = [&](int d) {
    data::Dataset dataset(Matrix(2, 1), std::vector<int>{1, 0});
    // Example 0: all-positive votes; example 1: all-negative (fixes the
    // majority-vote class prior at 0.5 → α = β).
    for (int w = 0; w < d; ++w) {
      dataset.AddAnnotation(0, {static_cast<size_t>(w), 1});
      dataset.AddAnnotation(1, {static_cast<size_t>(w), 0});
    }
    const auto mle =
        crowd::LabelPositiveness(dataset, crowd::ConfidenceMode::kMle);
    const auto bayes = crowd::LabelPositiveness(
        dataset, crowd::ConfidenceMode::kBayesian, strength);
    return std::fabs(mle[0] - bayes[0]);
  };
  const int d_small = 2 + GetParam() % 3;
  const int d_large = d_small * 8;
  EXPECT_GT(estimate_gap(d_small), estimate_gap(d_large));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConfidencePropertyTest,
                         ::testing::Range(0, 8));

// ------------------------------------------ Aggregation vs single worker

class AggregationPropertyTest : public ::testing::TestWithParam<int> {};

// Majority vote over 5 homogeneous workers beats one worker's expected
// accuracy (Condorcet) for abilities above 0.5.
TEST_P(AggregationPropertyTest, MajorityBeatsSingleWorker) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  const double ability = 0.62 + 0.05 * (GetParam() % 6);
  const size_t n = 600;
  data::Dataset d(Matrix(n, 1), [&] {
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) labels[i] = rng.Bernoulli(0.5);
    return labels;
  }());
  crowd::WorkerPool pool(std::vector<double>(5, ability),
                         std::vector<double>(5, ability));
  pool.Annotate(&d, 5, &rng);
  crowd::MajorityVote mv;
  auto result = mv.Run(d);
  ASSERT_TRUE(result.ok());
  size_t mv_correct = 0, single_correct = 0;
  for (size_t i = 0; i < n; ++i) {
    mv_correct += (result->labels[i] == d.true_label(i));
    single_correct += (d.annotations(i)[0].label == d.true_label(i));
  }
  EXPECT_GT(mv_correct, single_correct);
}

INSTANTIATE_TEST_SUITE_P(AbilitySweep, AggregationPropertyTest,
                         ::testing::Range(0, 6));

// ------------------------------------------------- Group-loss identities

class GroupLossPropertyTest : public ::testing::TestWithParam<int> {};

// Scaling η monotonically sharpens a winning configuration: if the positive
// has the highest weighted score, higher η lowers the loss.
TEST_P(GroupLossPropertyTest, EtaSharpensWinningGroups) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 40);
  const size_t batch = 4, dim = 6;
  Matrix anchor = RandomNormal(batch, dim, &rng);
  Matrix pos = anchor;  // Positive perfectly aligned → always wins.
  Matrix neg = RandomNormal(batch, dim, &rng);
  std::vector<Matrix> conf = {Matrix(batch, 1, 1.0), Matrix(batch, 1, 0.7)};
  auto loss_at = [&](double eta) {
    return core::GroupNllLoss(ag::Constant(anchor),
                              {ag::Constant(pos), ag::Constant(neg)}, conf,
                              eta)
        ->value(0, 0);
  };
  EXPECT_LT(loss_at(10.0), loss_at(2.0));
  EXPECT_LT(loss_at(2.0), loss_at(0.5));
}

// Permuting the negatives leaves the loss unchanged (softmax symmetry).
TEST_P(GroupLossPropertyTest, NegativeOrderInvariance) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 80);
  const size_t batch = 3, dim = 5;
  Matrix anchor = RandomNormal(batch, dim, &rng);
  Matrix pos = RandomNormal(batch, dim, &rng);
  Matrix n1 = RandomNormal(batch, dim, &rng);
  Matrix n2 = RandomNormal(batch, dim, &rng);
  Matrix c_pos(batch, 1, 0.9), c1(batch, 1, 0.6), c2(batch, 1, 0.8);
  const double a = core::GroupNllLoss(
                       ag::Constant(anchor),
                       std::vector<ag::Var>{ag::Constant(pos),
                                            ag::Constant(n1),
                                            ag::Constant(n2)},
                       std::vector<Matrix>{c_pos, c1, c2}, 5.0)
                       ->value(0, 0);
  const double b = core::GroupNllLoss(
                       ag::Constant(anchor),
                       std::vector<ag::Var>{ag::Constant(pos),
                                            ag::Constant(n2),
                                            ag::Constant(n1)},
                       std::vector<Matrix>{c_pos, c2, c1}, 5.0)
                       ->value(0, 0);
  EXPECT_NEAR(a, b, 1e-12);
}

// Loss is always positive and bounded by log(k+1) plus the weighted score
// range (coarse sanity envelope).
TEST_P(GroupLossPropertyTest, LossWithinEnvelope) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 160);
  const size_t batch = 5, dim = 4, k = 3;
  const double eta = 1.0 + rng.Uniform() * 10.0;
  Matrix anchor = RandomNormal(batch, dim, &rng);
  std::vector<ag::Var> candidates;
  std::vector<Matrix> conf;
  for (size_t s = 0; s <= k; ++s) {
    candidates.push_back(ag::Constant(RandomNormal(batch, dim, &rng)));
    Matrix c(batch, 1);
    for (size_t b = 0; b < batch; ++b) c(b, 0) = 0.5 + 0.5 * rng.Uniform();
    conf.push_back(c);
  }
  const double loss =
      core::GroupNllLoss(ag::Constant(anchor), candidates, conf, eta)
          ->value(0, 0);
  EXPECT_GT(loss, 0.0);
  // Cosines lie in [-1,1] and δ in [0,1]: scores span at most 2η, so
  // NLL ≤ log(k+1) + 2η.
  EXPECT_LT(loss, std::log(static_cast<double>(k + 1)) + 2.0 * eta + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGeometry, GroupLossPropertyTest,
                         ::testing::Range(0, 8));

// ------------------------------------------------- Group sampler coverage

class GroupSamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GroupSamplerPropertyTest, InvariantsHoldAcrossShapes) {
  const int k = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed));
  const size_t n = 30 + rng.UniformInt(40u);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = rng.Bernoulli(0.6);
  core::GroupSampler sampler(
      labels, {.negatives_per_group = static_cast<size_t>(k)});
  auto groups = sampler.Sample(64, &rng);
  if (sampler.num_positives() < 2 ||
      sampler.num_negatives() < static_cast<size_t>(k)) {
    EXPECT_FALSE(groups.ok());
    return;
  }
  ASSERT_TRUE(groups.ok());
  for (const core::Group& g : *groups) {
    EXPECT_NE(g.anchor, g.positive);
    EXPECT_EQ(labels[g.anchor], 1);
    EXPECT_EQ(labels[g.positive], 1);
    EXPECT_EQ(g.negatives.size(), static_cast<size_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KTimesSeeds, GroupSamplerPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Range(0, 4)));

// -------------------------------------------- Autograd random-shape sweep

class AutogradShapePropertyTest : public ::testing::TestWithParam<int> {};

// A randomly assembled expression of supported ops must pass gradcheck.
TEST_P(AutogradShapePropertyTest, RandomCompositeGradCheck) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const size_t r = 2 + rng.UniformInt(4u);
  const size_t c = 2 + rng.UniformInt(4u);
  ag::Var a = ag::Parameter(RandomNormal(r, c, &rng));
  ag::Var b = ag::Parameter(RandomNormal(r, c, &rng));
  auto forward = [&] {
    ag::Var h = ag::Tanh(ag::Add(a, ag::Scale(b, 0.5)));
    h = ag::Mul(h, ag::Sigmoid(b));
    ag::Var cos = ag::RowCosine(h, a);
    return ag::Mean(ag::Square(cos));
  };
  auto result = ag::CheckGradients({a, b}, forward);
  EXPECT_LT(result.max_relative_error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AutogradShapePropertyTest,
                         ::testing::Range(0, 10));

// ------------------------------------------- Aggregator safety properties

class IwmvPropertyTest : public ::testing::TestWithParam<int> {};

// IWMV must never be substantially worse than plain majority vote across
// pool compositions (its fixed point at uniform weights IS majority vote).
TEST_P(IwmvPropertyTest, NeverMuchWorseThanMajorityVote) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 3);
  const size_t n = 300;
  data::Dataset d(Matrix(n, 1), [&] {
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) labels[i] = rng.Bernoulli(0.5);
    return labels;
  }());
  // Pool quality varies per instantiation.
  const double base = 0.55 + 0.08 * (GetParam() % 5);
  std::vector<double> abilities(9);
  for (auto& a : abilities) a = base + rng.Uniform(0.0, 0.25);
  crowd::WorkerPool pool(abilities, abilities);
  pool.Annotate(&d, 5, &rng);

  crowd::MajorityVote mv;
  crowd::Iwmv iwmv;
  auto mv_result = mv.Run(d);
  auto iwmv_result = iwmv.Run(d);
  ASSERT_TRUE(mv_result.ok());
  ASSERT_TRUE(iwmv_result.ok());
  auto accuracy = [&d](const std::vector<int>& labels) {
    size_t correct = 0;
    for (size_t i = 0; i < d.size(); ++i) {
      correct += (labels[i] == d.true_label(i));
    }
    return static_cast<double>(correct) / static_cast<double>(d.size());
  };
  EXPECT_GE(accuracy(iwmv_result->labels), accuracy(mv_result->labels) - 0.03);
}

INSTANTIATE_TEST_SUITE_P(PoolSweep, IwmvPropertyTest,
                         ::testing::Range(0, 6));

// -------------------------------------------- Adaptive-annotation budget

class AdaptiveBudgetPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdaptiveBudgetPropertyTest, SpendsWithinBudgetForAllShapes) {
  const int base = std::get<0>(GetParam());
  const int factor = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(base * 10 + factor));
  const size_t n = 80;
  data::Dataset d(Matrix(n, 1), [&] {
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) labels[i] = rng.Bernoulli(0.6);
    return labels;
  }());
  crowd::WorkerPool pool({.num_workers = 12}, &rng);
  crowd::AdaptiveAnnotationOptions options;
  options.base_votes = static_cast<size_t>(base);
  options.total_budget = static_cast<size_t>(factor) * n;
  options.votes_per_round = 2;
  auto report = crowd::AnnotateAdaptively(&d, pool, options, &rng);
  if (options.total_budget < options.base_votes * n) {
    EXPECT_FALSE(report.ok());
    return;
  }
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->votes_spent, options.total_budget);
  // Histogram totals must equal the votes spent.
  size_t from_histogram = 0;
  for (size_t votes = 0; votes < report->votes_histogram.size(); ++votes) {
    from_histogram += votes * report->votes_histogram[votes];
  }
  EXPECT_EQ(from_histogram, report->votes_spent);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetShapes, AdaptiveBudgetPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 3, 5)));

// ----------------------------------------------- Transcript rate contract

class TranscriptRatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TranscriptRatePropertyTest, EmissionRatesTrackProfile) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  text::SpeakerProfile profile;
  profile.filler_rate = 0.02 + 0.03 * (GetParam() % 5);
  profile.pause_rate = 0.05;
  profile.repetition_rate = 0.0;
  const text::Vocabulary& v = text::Vocabulary::Default();
  const text::Transcript t =
      text::GenerateTranscript(profile, v, 8000, &rng);
  size_t fillers = 0, pauses = 0;
  for (size_t tok : t.tokens) {
    fillers += (v.token_class(tok) == text::TokenClass::kFiller);
    pauses += (v.token_class(tok) == text::TokenClass::kPause);
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(fillers / n, profile.filler_rate, 0.015);
  EXPECT_NEAR(pauses / n, profile.pause_rate, 0.015);
}

INSTANTIATE_TEST_SUITE_P(RateSweep, TranscriptRatePropertyTest,
                         ::testing::Range(0, 5));

// ---------------------------------------------- Multiclass DS invariants

class MulticlassPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MulticlassPropertyTest, PosteriorsNormalizedAndRecoveryBeatsChance) {
  const int k = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed) * 17 + 1);
  const size_t n = 200;
  std::vector<size_t> classes(n);
  for (size_t i = 0; i < n; ++i) {
    classes[i] = static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(k)));
  }
  // Diagonal-dominant confusions of varied strength.
  std::vector<Matrix> confusions;
  for (int w = 0; w < 7; ++w) {
    const double acc = 0.6 + 0.3 * rng.Uniform();
    Matrix m(static_cast<size_t>(k), static_cast<size_t>(k),
             (1.0 - acc) / static_cast<double>(k - 1));
    for (int c = 0; c < k; ++c) {
      m(static_cast<size_t>(c), static_cast<size_t>(c)) = acc;
    }
    confusions.push_back(m);
  }
  const auto annotations = crowd::SimulateMulticlassVotes(
      classes, static_cast<size_t>(k), confusions, 5, &rng);
  auto result = crowd::MulticlassDawidSkene(annotations);
  ASSERT_TRUE(result.ok());
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (int c = 0; c < k; ++c) {
      const double p = result->posterior(i, static_cast<size_t>(c));
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    correct += (result->labels[i] == classes[i]);
  }
  // Far above the 1/k chance rate.
  EXPECT_GT(static_cast<double>(correct) / n, 1.5 / static_cast<double>(k));
}

INSTANTIATE_TEST_SUITE_P(
    ClassCounts, MulticlassPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Range(0, 3)));

// ------------------------------------------------ Synthetic data contract

class SyntheticPropertyTest : public ::testing::TestWithParam<int> {};

// The generator honours arbitrary sizes/ratios, not just the presets.
TEST_P(SyntheticPropertyTest, SizeAndRatioHonoured) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3);
  data::SyntheticConfig config;
  config.num_examples = 100 + 50 * static_cast<size_t>(GetParam());
  config.positive_fraction = 0.3 + 0.08 * (GetParam() % 5);
  data::Dataset d = GenerateSynthetic(config, &rng);
  EXPECT_EQ(d.size(), config.num_examples);
  EXPECT_NEAR(d.PositiveFraction(), config.positive_fraction,
              1.0 / static_cast<double>(config.num_examples) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace rll
