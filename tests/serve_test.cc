// Tests for the inference server (src/serve/): JSON parsing, the LRU
// embedding cache, micro-batcher semantics (bitwise-identical batching,
// coalescing, backpressure, graceful drain), the wire protocol, the
// transport-independent ServerCore, and the TCP listener on loopback.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/model_bundle.h"
#include "core/rll_model.h"
#include "data/dataset.h"
#include "data/standardize.h"
#include "obs/json_util.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server_core.h"
#include "serve/event/event_server.h"
#include "serve/event/reload_manager.h"
#include "tensor/init.h"
#include "tensor/matrix.h"

namespace rll::serve {
namespace {

// ------------------------------------------------------------------- JSON

TEST(JsonTest, ParsesScalars) {
  auto v = ParseJson("42.5");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_number());
  EXPECT_EQ(v->number, 42.5);

  EXPECT_TRUE(ParseJson("true")->boolean);
  EXPECT_FALSE(ParseJson("false")->boolean);
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("\"hi\"")->string, "hi");
  EXPECT_EQ(ParseJson("-1e3")->number, -1000.0);
}

TEST(JsonTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.0);
  EXPECT_EQ(a->array[2].Find("b")->string, "c");
  EXPECT_TRUE(v->Find("d")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, FindReturnsLastDuplicateKey) {
  auto v = ParseJson(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("k")->number, 2.0);
}

TEST(JsonTest, ParsesStringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->string, "a\"b\\c\n\tA");
  // Surrogate pair: U+1F600 → 4-byte UTF-8.
  auto emoji = ParseJson(R"("😀")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->string, "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // Trailing junk.
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson(R"("\uD83D")").ok());  // Lone high surrogate.
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, RoundTripsDoublesExactly) {
  // The protocol's bit-exactness rests on %.17g emission + strtod parsing.
  for (double value : {0.1 + 0.2, 1.0 / 3.0, -2.5e-17, 1e300}) {
    auto parsed = ParseJson(obs::JsonNumber(value));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->number, value);
  }
}

// ------------------------------------------------------------------ Cache

Matrix Row(std::vector<double> values) {
  return Matrix::RowVector(values);
}

TEST(EmbeddingCacheTest, HitReturnsIdenticalRow) {
  EmbeddingCache cache(4);
  const Matrix key = Row({1.0, 2.0});
  const Matrix value = Row({0.5, -0.5, 0.25});
  const uint64_t hash = EmbeddingCache::HashRow(key);
  Matrix out;
  EXPECT_FALSE(cache.Lookup(hash, key, &out));
  cache.Insert(hash, key, value);
  ASSERT_TRUE(cache.Lookup(hash, key, &out));
  EXPECT_TRUE(out == value);  // Bitwise, not approximate.
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.HitRate(), 0.5);
}

TEST(EmbeddingCacheTest, EvictsLeastRecentlyUsed) {
  EmbeddingCache cache(2);
  const Matrix a = Row({1.0}), b = Row({2.0}), c = Row({3.0});
  const Matrix embedding = Row({9.0});
  cache.Insert(EmbeddingCache::HashRow(a), a, embedding);
  cache.Insert(EmbeddingCache::HashRow(b), b, embedding);
  // Touch `a` so `b` becomes the LRU entry.
  Matrix out;
  ASSERT_TRUE(cache.Lookup(EmbeddingCache::HashRow(a), a, &out));
  cache.Insert(EmbeddingCache::HashRow(c), c, embedding);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(EmbeddingCache::HashRow(a), a, &out));
  EXPECT_FALSE(cache.Lookup(EmbeddingCache::HashRow(b), b, &out));
  EXPECT_TRUE(cache.Lookup(EmbeddingCache::HashRow(c), c, &out));
}

TEST(EmbeddingCacheTest, ZeroCapacityDisables) {
  EmbeddingCache cache(0);
  const Matrix key = Row({1.0});
  cache.Insert(EmbeddingCache::HashRow(key), key, Row({2.0}));
  Matrix out;
  EXPECT_FALSE(cache.Lookup(EmbeddingCache::HashRow(key), key, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EmbeddingCacheTest, DistinctRowsHashDifferently) {
  // Not a guarantee (64-bit hashes collide eventually), but these simple
  // near-miss rows must not: a collision here would mean HashRow ignores
  // position or sign.
  const uint64_t base = EmbeddingCache::HashRow(Row({1.0, 2.0}));
  EXPECT_NE(base, EmbeddingCache::HashRow(Row({2.0, 1.0})));
  EXPECT_NE(base, EmbeddingCache::HashRow(Row({-1.0, 2.0})));
  EXPECT_NE(base, EmbeddingCache::HashRow(Row({1.0, 2.0, 0.0})));
}

// ---------------------------------------------------------------- Batcher

// Deterministic stand-in for Mlp::Embed: out[i] = 2*in[i] + column index.
Matrix DoubleRows(const Matrix& in) {
  Matrix out(in.rows(), in.cols());
  for (size_t r = 0; r < in.rows(); ++r) {
    for (size_t c = 0; c < in.cols(); ++c) {
      out(r, c) = 2.0 * in(r, c) + static_cast<double>(c);
    }
  }
  return out;
}

TEST(MicroBatcherTest, EmbedsSingleRow) {
  MicroBatcher batcher({}, DoubleRows, nullptr);
  auto result = batcher.Embed(Row({1.0, 2.0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result == Row({2.0, 5.0}));
}

TEST(MicroBatcherTest, RejectsNonRowInput) {
  MicroBatcher batcher({}, DoubleRows, nullptr);
  EXPECT_FALSE(batcher.Embed(Matrix(2, 3)).ok());
}

TEST(MicroBatcherTest, BatchedMatchesSerialBitwise) {
  MicroBatcherOptions options;
  options.max_batch = 8;
  options.batch_timeout_us = 2000;  // Encourage coalescing.
  MicroBatcher batcher(options, DoubleRows, nullptr);

  constexpr size_t kRows = 24;
  std::vector<Matrix> batched(kRows);
  std::vector<std::thread> threads;
  threads.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    threads.emplace_back([&, i] {
      auto result = batcher.Embed(Row({static_cast<double>(i), 0.25 * i}));
      ASSERT_TRUE(result.ok());
      batched[i] = std::move(*result);
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < kRows; ++i) {
    const Matrix serial = DoubleRows(Row({static_cast<double>(i), 0.25 * i}));
    EXPECT_TRUE(batched[i] == serial) << "row " << i;
  }
  EXPECT_EQ(batcher.rows_batched(), kRows);
}

TEST(MicroBatcherTest, CoalescesConcurrentRequests) {
  MicroBatcherOptions options;
  options.max_batch = 16;
  options.batch_timeout_us = 5000;
  MicroBatcher batcher(options, DoubleRows, nullptr);

  constexpr size_t kRows = 32;
  std::vector<std::thread> threads;
  threads.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    threads.emplace_back([&, i] {
      ASSERT_TRUE(batcher.Embed(Row({static_cast<double>(i)})).ok());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(batcher.rows_batched(), kRows);
  // 32 concurrent requests with a 5 ms linger cannot plausibly arrive as
  // 32 singleton batches; require at least one real coalesce.
  EXPECT_GT(batcher.max_batch_observed(), 1u);
  EXPECT_LT(batcher.batches_run(), kRows);
}

// Gate that lets a test hold the worker inside the batch function.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void WaitUntilEntered(int n) {
    while (entered.load() < n) std::this_thread::yield();
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void Pass() {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
};

TEST(MicroBatcherTest, BoundedQueueRejectsOverload) {
  Gate gate;
  MicroBatcherOptions options;
  options.max_batch = 1;
  options.batch_timeout_us = 0;
  options.max_queue = 2;
  MicroBatcher batcher(
      options,
      [&gate](const Matrix& in) {
        gate.Pass();
        return DoubleRows(in);
      },
      nullptr);

  // First request occupies the worker inside the gated batch function.
  std::thread first([&] { ASSERT_TRUE(batcher.Embed(Row({0.0})).ok()); });
  gate.WaitUntilEntered(1);

  // With the worker pinned, four producers race for two queue slots:
  // exactly two are admitted (and block) and exactly two bounce with
  // "overloaded" at the admission gate — the bound never buffers.
  std::atomic<size_t> admitted{0}, overloaded{0};
  std::vector<std::thread> producers;
  for (size_t i = 0; i < 4; ++i) {
    producers.emplace_back([&, i] {
      auto result = batcher.Embed(Row({static_cast<double>(i + 1)}));
      if (result.ok()) {
        admitted.fetch_add(1);
      } else if (IsOverloaded(result.status())) {
        overloaded.fetch_add(1);
      }
    });
  }
  // Rejections return immediately; admitted producers stay blocked until
  // the gate opens, so this spin terminates iff admission control fired.
  while (batcher.rejected() < 2) std::this_thread::yield();
  gate.Open();
  first.join();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(admitted.load(), 2u);
  EXPECT_EQ(overloaded.load(), 2u);
  EXPECT_EQ(batcher.rejected(), 2u);
}

TEST(MicroBatcherTest, StopDrainsQueuedRequests) {
  Gate gate;
  MicroBatcherOptions options;
  options.max_batch = 1;
  options.batch_timeout_us = 0;
  MicroBatcher batcher(
      options,
      [&gate](const Matrix& in) {
        gate.Pass();
        return DoubleRows(in);
      },
      nullptr);

  std::thread first([&] { ASSERT_TRUE(batcher.Embed(Row({0.0})).ok()); });
  gate.WaitUntilEntered(1);

  constexpr size_t kQueued = 6;
  std::vector<std::thread> producers;
  std::atomic<size_t> succeeded{0};
  producers.reserve(kQueued);
  for (size_t i = 0; i < kQueued; ++i) {
    producers.emplace_back([&, i] {
      auto result = batcher.Embed(Row({static_cast<double>(i + 1)}));
      if (result.ok()) succeeded.fetch_add(1);
    });
  }
  // Give the producers time to enqueue behind the gated worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  gate.Open();
  batcher.Stop();  // Must drain everything queued above.
  first.join();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(succeeded.load(), kQueued);
  EXPECT_TRUE(batcher.stopped());

  auto late = batcher.Embed(Row({9.0}));
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(IsShuttingDown(late.status()));
}

TEST(MicroBatcherTest, UsesCacheAcrossRequests) {
  EmbeddingCache cache(8);
  std::atomic<uint64_t> calls{0};
  MicroBatcher batcher(
      {},
      [&calls](const Matrix& in) {
        calls.fetch_add(1);
        return DoubleRows(in);
      },
      &cache);
  const Matrix row = Row({4.0, 5.0});
  auto miss = batcher.Embed(row);
  ASSERT_TRUE(miss.ok());
  auto hit = batcher.Embed(row);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*miss == *hit);  // Identical, bit for bit.
  EXPECT_EQ(calls.load(), 1u);  // Second request never reached the fn.
  EXPECT_EQ(cache.hits(), 1u);
}

// --------------------------------------------------------------- Protocol

TEST(ProtocolTest, ParsesEmbedRequest) {
  std::string id;
  auto request =
      ParseRequest(R"({"id": 7, "type": "embed", "features": [1, 2.5]})",
                   &id);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->type, RequestType::kEmbed);
  EXPECT_EQ(request->id_json, "7");
  EXPECT_EQ(request->features, (std::vector<double>{1.0, 2.5}));
}

TEST(ProtocolTest, ParsesNeighborsWithStringIdAndK) {
  std::string id;
  auto request = ParseRequest(
      R"({"id": "req-1", "type": "neighbors", "features": [1], "k": 3})",
      &id);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, RequestType::kNeighbors);
  EXPECT_EQ(request->id_json, "\"req-1\"");
  EXPECT_EQ(request->k, 3u);
}

TEST(ProtocolTest, RejectsInvalidRequests) {
  std::string id;
  EXPECT_FALSE(ParseRequest("not json", &id).ok());
  EXPECT_FALSE(ParseRequest("[1,2]", &id).ok());
  EXPECT_FALSE(ParseRequest(R"({"features": [1]})", &id).ok());
  EXPECT_FALSE(
      ParseRequest(R"({"type": "warp", "features": [1]})", &id).ok());
  EXPECT_FALSE(ParseRequest(R"({"type": "embed"})", &id).ok());
  EXPECT_FALSE(
      ParseRequest(R"({"type": "embed", "features": []})", &id).ok());
  EXPECT_FALSE(
      ParseRequest(R"({"type": "embed", "features": ["a"]})", &id).ok());
  // k outside neighbors, and non-integer k.
  EXPECT_FALSE(
      ParseRequest(R"({"type": "embed", "features": [1], "k": 2})", &id)
          .ok());
  EXPECT_FALSE(
      ParseRequest(
          R"({"type": "neighbors", "features": [1], "k": 1.5})", &id)
          .ok());
}

TEST(ProtocolTest, IdSurvivesParseFailure) {
  // The id parses before the failure, so the error response can echo it.
  std::string id;
  EXPECT_FALSE(ParseRequest(R"({"id": 42, "type": "warp"})", &id).ok());
  EXPECT_EQ(id, "42");
}

TEST(ProtocolTest, SerializesResponses) {
  Response ok_response;
  ok_response.id_json = "7";
  ok_response.ok = true;
  ok_response.has_type = true;
  ok_response.type = RequestType::kPredict;
  ok_response.score = 0.75;
  ok_response.label = 1;
  EXPECT_EQ(SerializeResponse(ok_response),
            R"({"id":7,"type":"predict","ok":true,"score":0.75,"label":1})");

  const Response error =
      MakeErrorResponse("\"x\"", ServeError::kOverloaded, "busy");
  EXPECT_EQ(SerializeResponse(error),
            R"({"id":"x","ok":false,"error":"overloaded","message":"busy"})");
}

TEST(ProtocolTest, EmbeddingSurvivesWireRoundTrip) {
  Response response;
  response.ok = true;
  response.has_type = true;
  response.type = RequestType::kEmbed;
  response.embedding = {0.1 + 0.2, -1.0 / 3.0, 1e-17};
  auto parsed = ParseJson(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok());
  const JsonValue* embedding = parsed->Find("embedding");
  ASSERT_NE(embedding, nullptr);
  ASSERT_EQ(embedding->array.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(embedding->array[i].number, response.embedding[i]);
  }
}

// ------------------------------------------------------------- ServerCore

/// A tiny trained-enough bundle: fitted standardizer + random encoder.
core::ModelBundle TestBundle(size_t input_dim = 3) {
  Rng rng(7);
  Matrix raw = RandomNormal(20, input_dim, &rng, 1.0, 2.0);
  data::Standardizer standardizer;
  standardizer.Fit(raw);
  core::RllModelConfig config;
  config.input_dim = input_dim;
  config.hidden_dims = {6, 4};
  core::RllModel model(config, &rng);
  auto bundle = core::ModelBundle::Create(standardizer, model, &rng);
  RLL_CHECK(bundle.ok());
  return std::move(*bundle);
}

/// A small linearly-separable labeled corpus for predict/neighbors.
data::Dataset TestCorpus(size_t n = 24, size_t dim = 3) {
  Rng rng(11);
  Matrix features(n, dim);
  std::vector<int> labels(n);
  for (size_t r = 0; r < n; ++r) {
    labels[r] = r % 2 == 0 ? 1 : 0;
    const double center = labels[r] == 1 ? 2.0 : -2.0;
    for (size_t c = 0; c < dim; ++c) {
      features(r, c) = center + 0.3 * rng.Normal(0.0, 1.0);
    }
  }
  return data::Dataset(std::move(features), std::move(labels));
}

std::unique_ptr<ServerCore> MakeCore(const data::Dataset* corpus,
                                     ServerCoreOptions options = {}) {
  auto core = ServerCore::Create(TestBundle(), corpus, options);
  RLL_CHECK(core.ok());
  return std::move(*core);
}

Request EmbedRequest(std::vector<double> features) {
  Request request;
  request.type = RequestType::kEmbed;
  request.features = std::move(features);
  return request;
}

TEST(ServerCoreTest, EmbedMatchesBundleBitwise) {
  auto core = MakeCore(nullptr);
  const std::vector<double> features = {0.5, -1.0, 2.0};
  const Response response = core->Handle(EmbedRequest(features));
  ASSERT_TRUE(response.ok) << response.message;
  auto direct = core->bundle().Embed(Matrix::RowVector(features));
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(response.embedding.size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(response.embedding[i], (*direct)[i]);
  }
}

TEST(ServerCoreTest, PredictAndNeighborsNeedCorpus) {
  auto core = MakeCore(nullptr);
  Request predict = EmbedRequest({1.0, 2.0, 3.0});
  predict.type = RequestType::kPredict;
  const Response response = core->Handle(predict);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ServeError::kUnsupported);

  Request neighbors = EmbedRequest({1.0, 2.0, 3.0});
  neighbors.type = RequestType::kNeighbors;
  EXPECT_EQ(core->Handle(neighbors).error, ServeError::kUnsupported);
}

TEST(ServerCoreTest, PredictsAndRetrievesWithCorpus) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);
  EXPECT_TRUE(core->supports_predict());
  EXPECT_TRUE(core->supports_neighbors());

  Request predict = EmbedRequest({2.0, 2.0, 2.0});
  predict.type = RequestType::kPredict;
  const Response scored = core->Handle(predict);
  ASSERT_TRUE(scored.ok) << scored.message;
  EXPECT_GE(scored.score, 0.0);
  EXPECT_LE(scored.score, 1.0);
  EXPECT_EQ(scored.label, scored.score >= 0.5 ? 1 : 0);

  Request neighbors = EmbedRequest({2.0, 2.0, 2.0});
  neighbors.type = RequestType::kNeighbors;
  neighbors.k = 4;
  const Response retrieved = core->Handle(neighbors);
  ASSERT_TRUE(retrieved.ok) << retrieved.message;
  ASSERT_EQ(retrieved.neighbors.size(), 4u);
  for (size_t i = 1; i < retrieved.neighbors.size(); ++i) {
    EXPECT_GE(retrieved.neighbors[i - 1].similarity,
              retrieved.neighbors[i].similarity);
  }
  for (const NeighborHit& hit : retrieved.neighbors) {
    EXPECT_LT(hit.index, corpus.size());
    EXPECT_EQ(hit.label, corpus.true_label(hit.index));
  }
}

TEST(ServerCoreTest, RejectsWrongFeatureWidth) {
  auto core = MakeCore(nullptr);
  const Response response = core->Handle(EmbedRequest({1.0, 2.0}));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ServeError::kBadRequest);
}

TEST(ServerCoreTest, HandleLineAnswersParseErrorsStructurally) {
  auto core = MakeCore(nullptr);
  const std::string response = core->HandleLine("{broken json");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos);
  // Semantically invalid but parseable JSON still echoes the id.
  const std::string with_id =
      core->HandleLine(R"({"id": 3, "type": "warp", "features": [1]})");
  EXPECT_NE(with_id.find("\"id\":3"), std::string::npos);
  EXPECT_NE(with_id.find("\"error\":\"bad_request\""), std::string::npos);
}

TEST(ServerCoreTest, HandleLineRoundTripsEmbed) {
  auto core = MakeCore(nullptr);
  const std::string response = core->HandleLine(
      R"({"id": 1, "type": "embed", "features": [0.5, -1.0, 2.0]})");
  auto parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed->Find("ok")->boolean);
  auto direct =
      core->bundle().Embed(Matrix::RowVector({0.5, -1.0, 2.0}));
  ASSERT_TRUE(direct.ok());
  const JsonValue* embedding = parsed->Find("embedding");
  ASSERT_NE(embedding, nullptr);
  ASSERT_EQ(embedding->array.size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    // %.17g wire format: the TCP client sees the exact double.
    EXPECT_EQ(embedding->array[i].number, (*direct)[i]);
  }
}

TEST(ServerCoreTest, CacheHitReturnsIdenticalEmbedding) {
  ServerCoreOptions options;
  options.cache_capacity = 16;
  auto core = MakeCore(nullptr, options);
  const Response first = core->Handle(EmbedRequest({1.0, 1.0, 1.0}));
  const Response second = core->Handle(EmbedRequest({1.0, 1.0, 1.0}));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.embedding, second.embedding);
  EXPECT_GE(core->cache().hits(), 1u);
}

TEST(ServerCoreTest, ConcurrentBatchedEmbedsMatchDirectBitwise) {
  ServerCoreOptions options;
  options.cache_capacity = 0;  // Force every request through the batcher.
  options.batcher.batch_timeout_us = 2000;
  auto core = MakeCore(nullptr, options);

  constexpr size_t kClients = 16;
  std::vector<Response> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      responses[i] = core->Handle(
          EmbedRequest({static_cast<double>(i), 1.0, -0.5 * i}));
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(responses[i].ok) << responses[i].message;
    auto direct = core->bundle().Embed(
        Matrix::RowVector({static_cast<double>(i), 1.0, -0.5 * i}));
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(responses[i].embedding.size(), direct->size());
    for (size_t j = 0; j < direct->size(); ++j) {
      EXPECT_EQ(responses[i].embedding[j], (*direct)[j])
          << "client " << i << " dim " << j;
    }
  }
}

TEST(ServerCoreTest, ShutdownAnswersWithShutdownError) {
  auto core = MakeCore(nullptr);
  ASSERT_TRUE(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).ok);
  core->Shutdown();
  EXPECT_TRUE(core->shutting_down());
  const Response after = core->Handle(EmbedRequest({1.0, 2.0, 3.0}));
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.error, ServeError::kShutdown);
  core->Shutdown();  // Idempotent.
}

TEST(ServerCoreTest, CreateValidatesCorpus) {
  const data::Dataset empty;
  EXPECT_FALSE(ServerCore::Create(TestBundle(), &empty, {}).ok());
  const data::Dataset wrong_dim = TestCorpus(24, 5);
  EXPECT_FALSE(ServerCore::Create(TestBundle(3), &wrong_dim, {}).ok());
  ServerCoreOptions bad_k;
  bad_k.default_k = 0;
  EXPECT_FALSE(ServerCore::Create(TestBundle(), nullptr, bad_k).ok());
}

// ---------------------------------------------------- admin introspection

TEST(ProtocolTest, ParsesAdminRequestsAndRejectsPayloads) {
  std::string id;
  for (const char* type : {"healthz", "statusz", "metricsz"}) {
    const std::string line =
        std::string("{\"id\": 1, \"type\": \"") + type + "\"}";
    auto request = ParseRequest(line, &id);
    ASSERT_TRUE(request.ok()) << type;
    EXPECT_TRUE(IsAdminRequest(request->type));
  }
  EXPECT_FALSE(IsAdminRequest(RequestType::kEmbed));
  // Admin requests carry no data-plane payload.
  EXPECT_FALSE(
      ParseRequest(R"({"type": "healthz", "features": [1]})", &id).ok());
  EXPECT_FALSE(ParseRequest(R"({"type": "metricsz", "k": 3})", &id).ok());
}

TEST(ProtocolTest, ParsesProfilezStrictly) {
  std::string id;
  auto start = ParseRequest(
      R"({"type": "profilez", "action": "start", "hz": 250})", &id);
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(start->type, RequestType::kProfilez);
  EXPECT_EQ(start->profile_action, ProfileAction::kStart);
  EXPECT_EQ(start->profile_hz, 250);

  auto fetch = ParseRequest(
      R"({"type": "profilez", "action": "fetch", "format": "json"})", &id);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->profile_action, ProfileAction::kFetch);
  EXPECT_EQ(fetch->profile_format, ProfileFormat::kJson);

  ASSERT_TRUE(
      ParseRequest(R"({"type": "profilez", "action": "stop"})", &id).ok());

  // Strict parse: the action is mandatory and enumerated; hz belongs to
  // start, format to fetch; other requests reject profilez keys outright.
  EXPECT_FALSE(ParseRequest(R"({"type": "profilez"})", &id).ok());
  EXPECT_FALSE(
      ParseRequest(R"({"type": "profilez", "action": "dump"})", &id).ok());
  EXPECT_FALSE(ParseRequest(
                   R"({"type": "profilez", "action": "stop", "hz": 99})",
                   &id)
                   .ok());
  EXPECT_FALSE(
      ParseRequest(
          R"({"type": "profilez", "action": "start", "format": "json"})",
          &id)
          .ok());
  EXPECT_FALSE(ParseRequest(
                   R"({"type": "profilez", "action": "start", "hz": 0})",
                   &id)
                   .ok());
  EXPECT_FALSE(
      ParseRequest(R"({"type": "metricsz", "action": "start"})", &id).ok());
  EXPECT_FALSE(ParseRequest(
                   R"({"type": "embed", "features": [1], "hz": 99})", &id)
                   .ok());
}

TEST(ProtocolTest, SerializesTraceId) {
  Response response;
  response.id_json = "5";
  response.ok = true;
  response.has_type = true;
  response.type = RequestType::kEmbed;
  response.embedding = {1.0};
  response.trace_id = 40;
  EXPECT_NE(SerializeResponse(response).find("\"trace_id\":40"),
            std::string::npos);
  response.trace_id = 0;  // Unsampled: the field is absent, not 0.
  EXPECT_EQ(SerializeResponse(response).find("trace_id"),
            std::string::npos);
}

TEST(ServerCoreTest, HealthzAndStatuszRoundTrip) {
  const data::Dataset corpus = TestCorpus();
  auto core = MakeCore(&corpus);

  auto healthz = ParseJson(core->HandleLine(R"({"id": 1, "type": "healthz"})"));
  ASSERT_TRUE(healthz.ok());
  EXPECT_TRUE(healthz->Find("ok")->boolean);
  const JsonValue* payload = healthz->Find("payload");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->Find("status")->string, "serving");
  EXPECT_GE(payload->Find("uptime_s")->number, 0.0);

  auto statusz = ParseJson(core->HandleLine(R"({"id": 2, "type": "statusz"})"));
  ASSERT_TRUE(statusz.ok());
  const JsonValue* config = statusz->Find("payload");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->Find("input_dim")->number, 3.0);
  EXPECT_EQ(config->Find("corpus_size")->number, 24.0);
  EXPECT_TRUE(config->Find("supports_predict")->boolean);
  EXPECT_TRUE(config->Find("supports_neighbors")->boolean);
  EXPECT_GT(config->Find("threads")->number, 0.0);
  EXPECT_GT(config->Find("max_batch")->number, 0.0);

  // Admin answers keep flowing while the server drains.
  core->Shutdown();
  const std::string draining =
      core->HandleLine(R"({"id": 3, "type": "healthz"})");
  EXPECT_NE(draining.find("\"ok\":true"), std::string::npos) << draining;
  EXPECT_NE(draining.find("draining"), std::string::npos) << draining;
}

TEST(ServerCoreTest, MetricszReportsWindowedLoadAndDeltas) {
  ServerCoreOptions options;
  options.cache_capacity = 0;  // Every request takes the full batcher path.
  auto core = MakeCore(nullptr, options);
  constexpr size_t kRequests = 60;
  for (size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        core->Handle(EmbedRequest({static_cast<double>(i), 0.0, 1.0})).ok);
  }

  auto first =
      ParseJson(core->HandleLine(R"({"id": 1, "type": "metricsz"})"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Find("ok")->boolean);
  const JsonValue* payload = first->Find("payload");
  ASSERT_NE(payload, nullptr);

  // The windowed view reflects the load just generated: all 60 requests
  // are inside the default 10s window, with real (positive) percentiles.
  const JsonValue* windowed = payload->Find("windowed");
  ASSERT_NE(windowed, nullptr);
  const JsonValue* requests = windowed->Find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->Find("count")->number, static_cast<double>(kRequests));
  EXPECT_GT(requests->Find("rate_per_sec")->number, 0.0);
  const JsonValue* embed_latency =
      windowed->Find("latency_ms")->Find("embed");
  ASSERT_NE(embed_latency, nullptr);
  EXPECT_EQ(embed_latency->Find("count")->number,
            static_cast<double>(kRequests));
  EXPECT_GT(embed_latency->Find("p99")->number, 0.0);
  EXPECT_GE(embed_latency->Find("p99")->number,
            embed_latency->Find("p50")->number);

  // Cumulative + delta views and scrape bookkeeping.
  EXPECT_NE(payload->Find("cumulative"), nullptr);
  EXPECT_GE(payload->Find("delta_seconds")->number, 0.0);
  const double first_seq = payload->Find("scrape_seq")->number;

  // Five more requests between scrapes: the registry is process-global,
  // but the delta isolates exactly this window's traffic.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).ok);
  }
  auto second =
      ParseJson(core->HandleLine(R"({"id": 2, "type": "metricsz"})"));
  ASSERT_TRUE(second.ok());
  const JsonValue* delta = second->Find("payload")->Find("delta");
  ASSERT_NE(delta, nullptr);
  double embed_delta = 0.0;
  for (const auto& [key, value] : delta->object) {
    if (key.find("serve_requests_total") != std::string::npos &&
        key.find("embed") != std::string::npos) {
      embed_delta += value.number;
    }
  }
  EXPECT_EQ(embed_delta, 5.0);
  EXPECT_EQ(second->Find("payload")->Find("scrape_seq")->number,
            first_seq + 1.0);

  // Admin scrapes are excluded from the windowed request counter.
  auto third =
      ParseJson(core->HandleLine(R"({"id": 3, "type": "metricsz"})"));
  EXPECT_EQ(third->Find("payload")
                ->Find("windowed")
                ->Find("requests")
                ->Find("count")
                ->number,
            static_cast<double>(kRequests) + 5.0);
  core->Shutdown();
}

TEST(ServerCoreTest, MetricszExposesLatencyExemplars) {
  ServerCoreOptions options;
  options.trace_sample_every = 1;  // Every request is trace-sampled.
  auto core = MakeCore(nullptr, options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).ok);
  }

  auto scrape =
      ParseJson(core->HandleLine(R"({"id": 1, "type": "metricsz"})"));
  ASSERT_TRUE(scrape.ok());
  const JsonValue* exemplars =
      scrape->Find("payload")->Find("exemplars");
  ASSERT_NE(exemplars, nullptr);
  const JsonValue* embed = exemplars->Find("embed");
  ASSERT_NE(embed, nullptr);
  ASSERT_TRUE(embed->is_array());
  // 20 sampled embeds: at least one latency bucket carries an exemplar,
  // and every entry is a well-formed {le, trace_id, value} triple.
  ASSERT_FALSE(embed->array.empty());
  for (const JsonValue& entry : embed->array) {
    ASSERT_NE(entry.Find("le"), nullptr);
    ASSERT_NE(entry.Find("trace_id"), nullptr);
    EXPECT_GT(entry.Find("trace_id")->number, 0.0);
    ASSERT_NE(entry.Find("value"), nullptr);
    EXPECT_GT(entry.Find("value")->number, 0.0);
  }
  core->Shutdown();
}

TEST(ServerCoreTest, TraceIdPropagatesThroughPipeline) {
  obs::SetTracingEnabled(true);
  obs::ClearTraceEvents();
  ServerCoreOptions options;
  options.trace_sample_every = 1;  // Sample everything.
  options.cache_capacity = 16;
  auto core = MakeCore(nullptr, options);
  const Response response = core->Handle(EmbedRequest({1.0, 2.0, 3.0}));
  obs::SetTracingEnabled(false);
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.trace_id, 1u);

  // The request id links every pipeline stage's span: request → cache
  // probe (miss) → queue wait → batch row.
  const std::vector<obs::TraceEventView> events = obs::SnapshotTraceEvents();
  const auto has = [&events](const char* name) {
    for (const obs::TraceEventView& event : events) {
      if (event.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("serve_request:1"));
  EXPECT_TRUE(has("serve_cache_probe:1"));
  EXPECT_TRUE(has("serve_queue_wait:1"));
  EXPECT_TRUE(has("serve_batch_row:1"));
  obs::ClearTraceEvents();
}

TEST(ServerCoreTest, TraceSamplerSelectsEveryNth) {
  ServerCoreOptions options;
  options.trace_sample_every = 2;
  auto core = MakeCore(nullptr, options);
  // The trace_id echo is independent of global tracing (spans no-op when
  // tracing is off, but the wire contract holds).
  EXPECT_EQ(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).trace_id, 0u);
  EXPECT_EQ(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).trace_id, 2u);
  EXPECT_EQ(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).trace_id, 0u);
  EXPECT_EQ(core->Handle(EmbedRequest({1.0, 2.0, 3.0})).trace_id, 4u);
}

// ------------------------------------------------------------ EventServer

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RLL_CHECK_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  RLL_CHECK_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

std::string RecvLine(int fd) {
  std::string line;
  char ch = 0;
  while (::recv(fd, &ch, 1, 0) == 1) {
    if (ch == '\n') return line;
    line += ch;
  }
  return line;
}

TEST(EventServerTest, ServesRequestsOverLoopback) {
  auto core = MakeCore(nullptr);
  EventServerOptions options;  // port 0: ephemeral.
  EventServer server(options, core.get());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  const int fd = ConnectLoopback(server.port());
  // A request split across two writes must still parse as one line, and a
  // malformed line must answer structurally, not disconnect.
  SendAll(fd, R"({"id": 1, "type": "embed", "fea)");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SendAll(fd, "tures\": [1, 2, 3]}\n not json \n");
  const std::string good = RecvLine(fd);
  EXPECT_NE(good.find("\"id\":1"), std::string::npos) << good;
  EXPECT_NE(good.find("\"ok\":true"), std::string::npos) << good;
  const std::string bad = RecvLine(fd);
  EXPECT_NE(bad.find("\"error\":\"bad_request\""), std::string::npos) << bad;

  // The connection survives the malformed line.
  SendAll(fd, R"({"id": 2, "type": "embed", "features": [1, 2, 3]})"
              "\n");
  EXPECT_NE(RecvLine(fd).find("\"id\":2"), std::string::npos);

  ::close(fd);
  server.Stop();
  serve_thread.join();
  core->Shutdown();
}

TEST(EventServerTest, AnswersAdminOverLoopback) {
  auto core = MakeCore(nullptr);
  EventServer server({}, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  const int fd = ConnectLoopback(server.port());
  SendAll(fd, "{\"id\": 1, \"type\": \"healthz\"}\n");
  const std::string healthz = RecvLine(fd);
  EXPECT_NE(healthz.find("\"ok\":true"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"status\":\"serving\""), std::string::npos)
      << healthz;
  SendAll(fd, "{\"id\": 2, \"type\": \"metricsz\"}\n");
  const std::string metricsz = RecvLine(fd);
  auto parsed = ParseJson(metricsz);
  ASSERT_TRUE(parsed.ok()) << metricsz;
  EXPECT_NE(parsed->Find("payload")->Find("windowed"), nullptr);

  ::close(fd);
  server.Stop();
  serve_thread.join();
  core->Shutdown();
}

TEST(EventServerTest, ProfilezRoundTripsOverLoopback) {
  auto core = MakeCore(nullptr);
  EventServer server({}, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });
  const int fd = ConnectLoopback(server.port());

  SendAll(fd, "{\"id\": 1, \"type\": \"profilez\", \"action\": \"start\", "
              "\"hz\": 500}\n");
  const std::string started = RecvLine(fd);
  auto parsed = ParseJson(started);
  ASSERT_TRUE(parsed.ok()) << started;
  const JsonValue* payload = parsed->Find("payload");
  ASSERT_NE(payload, nullptr) << started;
  EXPECT_EQ(payload->Find("hz")->number, 500.0);
  EXPECT_TRUE(payload->Find("running")->boolean);

  // Starting twice is a client error, answered structurally.
  SendAll(fd, "{\"id\": 2, \"type\": \"profilez\", \"action\": \"start\"}\n");
  EXPECT_NE(RecvLine(fd).find("\"error\":\"bad_request\""),
            std::string::npos);

  // Burn some serving CPU so a fetch has a chance of holding samples (the
  // structure is asserted either way; sample counts are timing-dependent).
  for (int i = 0; i < 200; ++i) {
    SendAll(fd, StrFormat("{\"id\": %d, \"type\": \"embed\", "
                          "\"features\": [1, 2, 3]}\n",
                          100 + i));
    RecvLine(fd);
  }

  SendAll(fd, "{\"id\": 3, \"type\": \"profilez\", \"action\": \"fetch\"}\n");
  const std::string fetched = RecvLine(fd);
  parsed = ParseJson(fetched);
  ASSERT_TRUE(parsed.ok()) << fetched;
  payload = parsed->Find("payload");
  ASSERT_NE(payload, nullptr) << fetched;
  EXPECT_EQ(payload->Find("format")->string, "folded");
  ASSERT_NE(payload->Find("profile"), nullptr) << fetched;
  EXPECT_TRUE(payload->Find("profile")->is_string());
  EXPECT_TRUE(payload->Find("running")->boolean);

  // The JSON format nests the full report as parseable JSON.
  SendAll(fd, "{\"id\": 4, \"type\": \"profilez\", \"action\": \"fetch\", "
              "\"format\": \"json\"}\n");
  const std::string fetched_json = RecvLine(fd);
  parsed = ParseJson(fetched_json);
  ASSERT_TRUE(parsed.ok()) << fetched_json;
  const JsonValue* profile = parsed->Find("payload")->Find("profile");
  ASSERT_NE(profile, nullptr) << fetched_json;
  ASSERT_TRUE(profile->is_object());
  EXPECT_NE(profile->Find("by_span"), nullptr);
  EXPECT_NE(profile->Find("threads"), nullptr);

  SendAll(fd, "{\"id\": 5, \"type\": \"profilez\", \"action\": \"stop\"}\n");
  const std::string stopped = RecvLine(fd);
  parsed = ParseJson(stopped);
  ASSERT_TRUE(parsed.ok()) << stopped;
  EXPECT_FALSE(parsed->Find("payload")->Find("running")->boolean);

  // Unknown action and misplaced keys are strict-parse failures.
  SendAll(fd, "{\"id\": 6, \"type\": \"profilez\", \"action\": \"dump\"}\n");
  EXPECT_NE(RecvLine(fd).find("\"error\":\"bad_request\""),
            std::string::npos);
  SendAll(fd, "{\"id\": 7, \"type\": \"healthz\", \"action\": \"start\"}\n");
  EXPECT_NE(RecvLine(fd).find("\"error\":\"bad_request\""),
            std::string::npos);

  ::close(fd);
  server.Stop();
  serve_thread.join();
  core->Shutdown();
}

TEST(EventServerTest, StopUnblocksOpenConnections) {
  auto core = MakeCore(nullptr);
  EventServer server({}, core.get());
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&] { ASSERT_TRUE(server.Serve().ok()); });

  // An idle connection sits in recv() until Stop shuts it down.
  const int fd = ConnectLoopback(server.port());
  SendAll(fd, R"({"id": 9, "type": "embed", "features": [1, 2, 3]})"
              "\n");
  EXPECT_NE(RecvLine(fd).find("\"id\":9"), std::string::npos);

  server.Stop();
  serve_thread.join();
  ::close(fd);
  core->Shutdown();
}

}  // namespace
}  // namespace rll::serve
