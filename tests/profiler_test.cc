// Tests for the sampling CPU profiler (obs/profiler.h): deterministic
// capture through the injectable sampler hook (hz = 0, no timer), folded
// stack round-trips, span attribution across nested spans and pool worker
// threads, report bookkeeping (drops, clears, per-thread totals), and a
// real-timer smoke run that doubles as the TSan signal-safety check.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_registry.h"
#include "common/threading.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace rll::obs {

// External linkage + noinline: dladdr only resolves dynamic symbols, so
// this gives the captured stacks one guaranteed demangleable rll:: frame
// (anonymous-namespace test frames are local symbols and render as hex).
__attribute__((noinline)) void ProfilerTestCaptureFrame() {
  CaptureSampleNow();
  asm volatile("");  // Not a tail call: keep this frame on the stack.
}

namespace {

// The profiler is process-global state; every test starts from a stopped,
// empty profile so order and sharding cannot leak samples across tests.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StopCpuProfiler();
    ClearProfile();
  }
  void TearDown() override {
    StopCpuProfiler();
    ClearProfile();
  }
};

// Burns CPU the optimizer cannot elide, so the hz > 0 smoke test reliably
// consumes process CPU time and receives SIGPROF deliveries.
double BusyWork(size_t iters) {
  volatile double acc = 1.0;
  for (size_t i = 0; i < iters; ++i) {
    acc = acc * 1.000001 + 0.5;
  }
  return acc;
}

// One parsed line of ProfileToFolded() output.
struct FoldedLine {
  std::vector<std::string> frames;
  uint64_t count = 0;
};

std::vector<FoldedLine> ParseFolded(const std::string& folded) {
  std::vector<FoldedLine> lines;
  size_t pos = 0;
  while (pos < folded.size()) {
    const size_t eol = folded.find('\n', pos);
    EXPECT_NE(eol, std::string::npos) << "folded output must end in \\n";
    if (eol == std::string::npos) break;
    const std::string line = folded.substr(pos, eol - pos);
    pos = eol + 1;
    FoldedLine parsed;
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "no count in: " << line;
    if (space == std::string::npos) continue;
    parsed.count = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    EXPECT_GT(parsed.count, 0u) << line;
    std::string stack = line.substr(0, space);
    size_t start = 0;
    while (true) {
      const size_t semi = stack.find(';', start);
      if (semi == std::string::npos) {
        parsed.frames.push_back(stack.substr(start));
        break;
      }
      parsed.frames.push_back(stack.substr(start, semi - start));
      start = semi + 1;
    }
    lines.push_back(std::move(parsed));
  }
  return lines;
}

uint64_t SpanSamples(const ProfileReport& report, const std::string& span) {
  for (const ProfileSpanTotal& total : report.by_span) {
    if (total.span == span) return total.samples;
  }
  return 0;
}

// ------------------------------------------------ deterministic capture

TEST_F(ProfilerTest, InjectedSamplerRecordsExactCounts) {
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  for (int i = 0; i < 7; ++i) CaptureSampleNow();
  StopCpuProfiler();

  const ProfileReport report = CollectProfile();
  EXPECT_EQ(report.samples, 7u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.unattributed, 0u);
  EXPECT_EQ(report.hz, 0);
  // No span was open, so every sample lands in the "(none)" bucket.
  EXPECT_EQ(SpanSamples(report, "(none)"), 7u);
}

TEST_F(ProfilerTest, HzZeroArmsNoTimer) {
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  EXPECT_TRUE(CpuProfilerRunning());
  // Burn real CPU: with no ITIMER_PROF armed, nothing may be recorded.
  BusyWork(2'000'000);
  StopCpuProfiler();
  EXPECT_FALSE(CpuProfilerRunning());
  EXPECT_EQ(CollectProfile().samples, 0u);
}

TEST_F(ProfilerTest, StartValidatesOptions) {
  EXPECT_EQ(StartCpuProfiler({.hz = -1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StartCpuProfiler({.hz = kMaxProfileHz + 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StartCpuProfiler({.hz = 0, .max_samples_per_thread = 0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  EXPECT_EQ(StartCpuProfiler({.hz = 0}).code(),
            StatusCode::kFailedPrecondition);
  StopCpuProfiler();
  StopCpuProfiler();  // Idempotent.
}

TEST_F(ProfilerTest, FullBufferCountsDrops) {
  ASSERT_TRUE(StartCpuProfiler({.hz = 0, .max_samples_per_thread = 4}).ok());
  for (int i = 0; i < 10; ++i) CaptureSampleNow();
  StopCpuProfiler();

  const ProfileReport report = CollectProfile();
  EXPECT_EQ(report.samples, 4u);
  EXPECT_EQ(report.dropped, 6u);
  // The drop total is also attributed to the thread that dropped.
  uint64_t thread_dropped = 0;
  for (const ProfileThreadTotal& t : report.by_thread) {
    thread_dropped += t.dropped;
  }
  EXPECT_EQ(thread_dropped, 6u);
}

TEST_F(ProfilerTest, ClearProfileDropsSamplesButKeepsRegistration) {
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  CaptureSampleNow();
  CaptureSampleNow();
  StopCpuProfiler();
  ASSERT_EQ(CollectProfile().samples, 2u);

  ClearProfile();
  EXPECT_EQ(CollectProfile().samples, 0u);

  // The buffer survives a clear: a new session records again immediately.
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  CaptureSampleNow();
  StopCpuProfiler();
  EXPECT_EQ(CollectProfile().samples, 1u);
}

// ------------------------------------------------------ span attribution

TEST_F(ProfilerTest, SamplesCarryInnermostSpan) {
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  {
    RLL_TRACE_SPAN("outer");
    CaptureSampleNow();  // -> outer
    {
      RLL_TRACE_SPAN("inner");
      CaptureSampleNow();  // -> inner
      CaptureSampleNow();  // -> inner
    }
    CaptureSampleNow();  // -> outer again after inner closed
  }
  CaptureSampleNow();  // -> (none)
  StopCpuProfiler();

  const ProfileReport report = CollectProfile();
  EXPECT_EQ(report.samples, 5u);
  EXPECT_EQ(SpanSamples(report, "outer"), 2u);
  EXPECT_EQ(SpanSamples(report, "inner"), 2u);
  EXPECT_EQ(SpanSamples(report, "(none)"), 1u);
}

TEST_F(ProfilerTest, SpanMarkingWorksWithTracingOff) {
  // The whole point of profiler-driven marking: spans attribute samples
  // even though tracing never turned on, and no trace events are recorded.
  ASSERT_FALSE(TracingEnabled());
  ClearTraceEvents();
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  {
    RLL_TRACE_SPAN("marked_only");
    CaptureSampleNow();
  }
  StopCpuProfiler();
  EXPECT_EQ(SpanSamples(CollectProfile(), "marked_only"), 1u);
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(ProfilerTest, PoolWorkerSamplesAttributeToPoolTaskSpan) {
  SetGlobalThreads(2);
  // Touch the pool so its workers exist (they register their profiler slot
  // and name themselves "rll-pool-<id>" at startup).
  ParallelFor(0, 4, 1, [](size_t, size_t) {});

  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  std::atomic<int> captured{0};
  // Enough chunks that the workers (not just the caller) take some: inside
  // a dispatched chunk the innermost span is the pool's own "pool_task".
  ParallelFor(0, 16, 1, [&](size_t, size_t) {
    CaptureSampleNow();
    captured.fetch_add(1, std::memory_order_relaxed);
  });
  StopCpuProfiler();

  const ProfileReport report = CollectProfile();
  EXPECT_EQ(report.samples, static_cast<uint64_t>(captured.load()));
  EXPECT_EQ(SpanSamples(report, "pool_task"),
            static_cast<uint64_t>(captured.load()));

  // Worker threads show up by their registry names.
  std::vector<std::string> names;
  for (const ProfileThreadTotal& t : report.by_thread) {
    if (t.samples > 0) names.push_back(t.name);
  }
  bool saw_pool_worker = false;
  for (const std::string& name : names) {
    if (name.rfind("rll-pool-", 0) == 0) saw_pool_worker = true;
  }
  EXPECT_TRUE(saw_pool_worker)
      << "no rll-pool-* thread recorded samples";
  SetGlobalThreads(0);
}

// ------------------------------------------------------- report formats

TEST_F(ProfilerTest, FoldedRoundTripMatchesReport) {
  SetCurrentThreadName("rll-test-main");
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  {
    RLL_TRACE_SPAN("fold_span");
    for (int i = 0; i < 5; ++i) ProfilerTestCaptureFrame();
  }
  CaptureSampleNow();
  StopCpuProfiler();

  const ProfileReport report = CollectProfile();
  const std::string folded = ProfileToFolded();
  const std::vector<FoldedLine> lines = ParseFolded(folded);
  ASSERT_FALSE(lines.empty());

  uint64_t total = 0;
  std::map<std::string, uint64_t> span_counts;
  for (const FoldedLine& line : lines) {
    ASSERT_FALSE(line.frames.empty());
    // Every stack is rooted at the span pseudo-frame.
    ASSERT_EQ(line.frames.front().rfind("span:", 0), 0u) << folded;
    span_counts[line.frames.front().substr(5)] += line.count;
    total += line.count;
    for (const std::string& frame : line.frames) {
      EXPECT_FALSE(frame.empty());
      // ';' is the folded separator; frames must have been sanitized.
      EXPECT_EQ(frame.find(';'), std::string::npos);
    }
  }
  EXPECT_EQ(total, report.samples);
  EXPECT_EQ(span_counts["fold_span"], 5u);
  EXPECT_EQ(span_counts["(none)"], 1u);

  // Identical sample set => byte-identical export (lines are sorted).
  EXPECT_EQ(folded, ProfileToFolded());

  // The exported capture helper must have been symbolized by name.
  EXPECT_NE(folded.find("rll::obs::ProfilerTestCaptureFrame()"),
            std::string::npos)
      << folded;
}

TEST_F(ProfilerTest, JsonReportParsesAndMatchesTotals) {
  ASSERT_TRUE(StartCpuProfiler({.hz = 0}).ok());
  {
    RLL_TRACE_SPAN("json_span");
    for (int i = 0; i < 3; ++i) CaptureSampleNow();
  }
  StopCpuProfiler();

  const auto root = serve::ParseJson(ProfileToJson(/*top_n=*/5));
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const serve::JsonValue* samples = root->Find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->number, 3.0);
  const serve::JsonValue* by_span = root->Find("by_span");
  ASSERT_NE(by_span, nullptr);
  ASSERT_TRUE(by_span->is_array());
  bool found = false;
  for (const serve::JsonValue& entry : by_span->array) {
    const serve::JsonValue* span = entry.Find("span");
    if (span != nullptr && span->is_string() && span->string == "json_span") {
      found = true;
      const serve::JsonValue* count = entry.Find("samples");
      ASSERT_NE(count, nullptr);
      EXPECT_EQ(count->number, 3.0);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_NE(root->Find("threads"), nullptr);
  ASSERT_NE(root->Find("top"), nullptr);
  EXPECT_LE(root->Find("top")->array.size(), 5u);
}

// --------------------------------------------- real-timer smoke (+ TSan)
//
// With hz > 0 the kernel delivers SIGPROF on whichever thread is burning
// CPU; under TSan this exercises the handler's lock-free buffer writes
// against concurrent registration and the reader's acquire loads.

TEST_F(ProfilerTest, TimerSmokeCapturesBusyLoop) {
  SetGlobalThreads(2);
  ParallelFor(0, 4, 1, [](size_t, size_t) {});

  ASSERT_TRUE(StartCpuProfiler({.hz = 200}).ok());
  {
    RLL_TRACE_SPAN("busy");
    // ~250ms of CPU across the pool: at 200 Hz the process should land
    // tens of samples; assert only "some", timing is not deterministic.
    ParallelFor(0, 8, 1,
                [](size_t, size_t) { BusyWork(12'000'000); });
  }
  StopCpuProfiler();
  SetGlobalThreads(0);

  const ProfileReport report = CollectProfile();
  EXPECT_GT(report.samples, 0u);
  EXPECT_EQ(report.hz, 200);
  // Totals are internally consistent: per-thread counts sum to the total.
  uint64_t per_thread = 0;
  for (const ProfileThreadTotal& t : report.by_thread) {
    per_thread += t.samples;
  }
  EXPECT_EQ(per_thread, report.samples);
  // by_symbol self totals also sum to the total (every sample has a leaf).
  uint64_t self_total = 0;
  for (const ProfileSymbolTotal& s : report.by_symbol) {
    self_total += s.self;
  }
  EXPECT_EQ(self_total, report.samples);
}

}  // namespace
}  // namespace rll::obs
