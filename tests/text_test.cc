// Tests for the transcript/linguistic-feature substrate: vocabulary
// integrity, generative statistics of the transcript simulator, feature
// extraction on hand-built transcripts, and the end-to-end text dataset.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "classify/logistic_regression.h"
#include "classify/metrics.h"
#include "data/kfold.h"
#include "data/standardize.h"
#include "text/linguistic_features.h"
#include "text/text_dataset.h"
#include "text/transcript.h"
#include "text/vocabulary.h"

namespace rll::text {
namespace {

// -------------------------------------------------------------- Vocabulary

TEST(VocabularyTest, DefaultCoversAllClasses) {
  const Vocabulary& v = Vocabulary::Default();
  EXPECT_GT(v.size(), 50u);
  for (TokenClass cls :
       {TokenClass::kContent, TokenClass::kFunction, TokenClass::kMathTerm,
        TokenClass::kFiller, TokenClass::kPause}) {
    EXPECT_FALSE(v.ids_of(cls).empty());
  }
}

TEST(VocabularyTest, ClassPartitionIsConsistent) {
  const Vocabulary& v = Vocabulary::Default();
  size_t total = 0;
  std::set<size_t> seen;
  for (TokenClass cls :
       {TokenClass::kContent, TokenClass::kFunction, TokenClass::kMathTerm,
        TokenClass::kFiller, TokenClass::kPause}) {
    for (size_t id : v.ids_of(cls)) {
      EXPECT_EQ(v.token_class(id), cls);
      seen.insert(id);
      ++total;
    }
  }
  EXPECT_EQ(total, v.size());
  EXPECT_EQ(seen.size(), v.size());  // Partition: no id in two classes.
}

TEST(VocabularyTest, WordsAreNonEmptyAndDistinct) {
  const Vocabulary& v = Vocabulary::Default();
  std::set<std::string> words;
  for (size_t id = 0; id < v.size(); ++id) {
    EXPECT_FALSE(v.word(id).empty());
    words.insert(v.word(id));
  }
  EXPECT_EQ(words.size(), v.size());
}

// -------------------------------------------------------------- Transcript

TEST(TranscriptTest, ApproximatesTargetLength) {
  Rng rng(1);
  SpeakerProfile profile;
  for (size_t target : {50u, 120u, 300u}) {
    const Transcript t =
        GenerateTranscript(profile, Vocabulary::Default(), target, &rng);
    EXPECT_GE(t.size(), target);
    EXPECT_LE(t.size(), target + 40);
    EXPECT_GT(t.num_utterances(), 0u);
    EXPECT_EQ(t.utterance_ends.back(), t.size());
    EXPECT_GT(t.duration_seconds, 0.0);
  }
}

TEST(TranscriptTest, FillerRateIsHonoured) {
  Rng rng(2);
  SpeakerProfile profile;
  profile.filler_rate = 0.2;
  profile.pause_rate = 0.0;
  profile.repetition_rate = 0.0;
  const Vocabulary& v = Vocabulary::Default();
  const Transcript t = GenerateTranscript(profile, v, 5000, &rng);
  size_t fillers = 0;
  for (size_t tok : t.tokens) {
    fillers += (v.token_class(tok) == TokenClass::kFiller);
  }
  EXPECT_NEAR(static_cast<double>(fillers) / t.size(), 0.2, 0.02);
}

TEST(TranscriptTest, ZeroRatesProduceNoSpecialTokens) {
  Rng rng(3);
  SpeakerProfile profile;
  profile.filler_rate = 0.0;
  profile.pause_rate = 0.0;
  profile.repetition_rate = 0.0;
  const Vocabulary& v = Vocabulary::Default();
  const Transcript t = GenerateTranscript(profile, v, 1000, &rng);
  for (size_t tok : t.tokens) {
    const TokenClass cls = v.token_class(tok);
    EXPECT_NE(cls, TokenClass::kFiller);
    EXPECT_NE(cls, TokenClass::kPause);
  }
}

TEST(TranscriptTest, HigherZipfExponentLowersVocabularyRichness) {
  Rng rng(4);
  SpeakerProfile rich;
  rich.zipf_exponent = 0.5;
  SpeakerProfile poor;
  poor.zipf_exponent = 2.5;
  const Vocabulary& v = Vocabulary::Default();
  auto distinct = [&v](const Transcript& t) {
    std::set<size_t> types(t.tokens.begin(), t.tokens.end());
    return types.size();
  };
  const size_t rich_types =
      distinct(GenerateTranscript(rich, v, 2000, &rng));
  const size_t poor_types =
      distinct(GenerateTranscript(poor, v, 2000, &rng));
  EXPECT_GT(rich_types, poor_types);
}

TEST(TranscriptTest, SlowerSpeakersTakeLonger) {
  Rng rng(5);
  SpeakerProfile fast;
  fast.tokens_per_second = 3.0;
  SpeakerProfile slow;
  slow.tokens_per_second = 1.2;
  const Vocabulary& v = Vocabulary::Default();
  const Transcript a = GenerateTranscript(fast, v, 400, &rng);
  const Transcript b = GenerateTranscript(slow, v, 400, &rng);
  EXPECT_LT(a.duration_seconds, b.duration_seconds);
}

TEST(TranscriptTest, ToTextRendersWords) {
  Rng rng(6);
  const Vocabulary& v = Vocabulary::Default();
  const Transcript t = GenerateTranscript(SpeakerProfile{}, v, 50, &rng);
  const std::string text = ToText(t, v, 10);
  EXPECT_FALSE(text.empty());
  EXPECT_NE(text.find(' '), std::string::npos);
  EXPECT_NE(text.find("..."), std::string::npos);  // Truncated marker.
}

// ---------------------------------------------------------------- Features

// A tiny vocabulary where every id is predictable.
Vocabulary TinyVocab() {
  return Vocabulary({{"cat", TokenClass::kContent},
                     {"dog", TokenClass::kContent},
                     {"the", TokenClass::kFunction},
                     {"two", TokenClass::kMathTerm},
                     {"um", TokenClass::kFiller},
                     {"<p>", TokenClass::kPause}});
}

TEST(FeatureTest, NamesAlignWithVectorLength) {
  EXPECT_EQ(FeatureNames().size(), NumFeatures());
  std::set<std::string> names(FeatureNames().begin(), FeatureNames().end());
  EXPECT_EQ(names.size(), NumFeatures());  // No duplicate names.
}

TEST(FeatureTest, HandComputedValues) {
  const Vocabulary v = TinyVocab();
  Transcript t;
  // "the cat um um <p> two two" — 7 tokens, 2 utterances (4 + 3).
  t.tokens = {2, 0, 4, 4, 5, 3, 3};
  t.utterance_ends = {4, 7};
  t.duration_seconds = 3.5;
  const std::vector<double> f = ExtractFeatures(t, v);
  const auto& names = FeatureNames();
  auto get = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return f[i];
    }
    ADD_FAILURE() << "missing feature " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(get("token_count"), 7.0);
  EXPECT_DOUBLE_EQ(get("duration_seconds"), 3.5);
  EXPECT_DOUBLE_EQ(get("speech_rate"), 2.0);
  EXPECT_DOUBLE_EQ(get("type_token_ratio"), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(get("filler_ratio"), 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(get("pause_ratio"), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(get("math_term_ratio"), 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(get("function_ratio"), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(get("repetition_ratio"), 2.0 / 6.0);  // um-um, two-two.
  EXPECT_DOUBLE_EQ(get("mean_utterance_len"), 3.5);
  EXPECT_DOUBLE_EQ(get("max_filler_run"), 2.0);
  // Hapaxes: the, <p>, cat → 3/7.
  EXPECT_DOUBLE_EQ(get("hapax_ratio"), 3.0 / 7.0);
  // Bigrams: (2,0)(0,4)(4,4)(4,5)(5,3)(3,3) all distinct → 6/6.
  EXPECT_DOUBLE_EQ(get("distinct_bigram_ratio"), 1.0);
}

TEST(FeatureTest, SingleTokenTranscriptIsSafe) {
  const Vocabulary v = TinyVocab();
  Transcript t;
  t.tokens = {0};
  t.utterance_ends = {1};
  t.duration_seconds = 0.5;
  const std::vector<double> f = ExtractFeatures(t, v);
  for (double value : f) EXPECT_TRUE(std::isfinite(value));
}

// ----------------------------------------------------------- Text dataset

TEST(TextDatasetTest, ShapesAndRatio) {
  Rng rng(7);
  TextSimConfig config;
  config.num_examples = 300;
  const TextDatasetResult result = GenerateOralTextDataset(config, &rng);
  EXPECT_EQ(result.dataset.size(), 300u);
  EXPECT_EQ(result.dataset.dim(), NumFeatures());
  EXPECT_EQ(result.transcripts.size(), 300u);
  EXPECT_NEAR(result.dataset.PositiveFraction(), 1.8 / 2.8, 0.01);
}

TEST(TextDatasetTest, FluentSpeakersFillLess) {
  Rng rng(8);
  TextSimConfig config;
  config.num_examples = 400;
  const TextDatasetResult result = GenerateOralTextDataset(config, &rng);
  // filler_ratio is feature index 5.
  double fluent_filler = 0.0, influent_filler = 0.0;
  size_t nf = 0, ni = 0;
  for (size_t i = 0; i < result.dataset.size(); ++i) {
    const double filler = result.dataset.features()(i, 5);
    if (result.dataset.true_label(i) == 1) {
      fluent_filler += filler;
      ++nf;
    } else {
      influent_filler += filler;
      ++ni;
    }
  }
  EXPECT_LT(fluent_filler / nf, influent_filler / ni);
}

TEST(TextDatasetTest, ClassesOverlap) {
  // The task must be noisy (profiles overlap), not trivially separable:
  // a threshold on any single feature should leave errors.
  Rng rng(9);
  TextSimConfig config;
  config.num_examples = 500;
  const TextDatasetResult result = GenerateOralTextDataset(config, &rng);
  for (size_t feature : {2u, 5u, 10u}) {
    // Best single-feature threshold accuracy (coarse scan).
    double best = 0.0;
    for (int step = 1; step < 40; ++step) {
      double lo = 1e18, hi = -1e18;
      for (size_t i = 0; i < result.dataset.size(); ++i) {
        lo = std::min(lo, result.dataset.features()(i, feature));
        hi = std::max(hi, result.dataset.features()(i, feature));
      }
      const double thr = lo + (hi - lo) * step / 40.0;
      size_t correct_up = 0;
      for (size_t i = 0; i < result.dataset.size(); ++i) {
        const int pred = result.dataset.features()(i, feature) >= thr;
        correct_up += (pred == result.dataset.true_label(i));
      }
      const double acc = std::max(
          static_cast<double>(correct_up) / result.dataset.size(),
          1.0 - static_cast<double>(correct_up) / result.dataset.size());
      best = std::max(best, acc);
    }
    EXPECT_LT(best, 0.97) << "feature " << feature
                          << " is a trivial separator";
  }
}

TEST(TextDatasetTest, FeaturesSupportClassification) {
  // End-to-end sanity: LR on the extracted features beats chance by a wide
  // margin (the signal survives extraction).
  Rng rng(10);
  TextSimConfig config;
  config.num_examples = 500;
  const TextDatasetResult result = GenerateOralTextDataset(config, &rng);
  const data::Split split =
      data::TrainTestSplit(result.dataset.size(), 0.3, &rng);
  data::Dataset train = result.dataset.Subset(split.train);
  data::Dataset test = result.dataset.Subset(split.test);
  data::Standardizer standardizer;
  const Matrix train_features = standardizer.FitTransform(train.features());
  const Matrix test_features = standardizer.Transform(test.features());
  classify::LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(train_features, train.true_labels()).ok());
  const double acc =
      classify::Evaluate(test.true_labels(), lr.Predict(test_features))
          .accuracy;
  EXPECT_GT(acc, 0.75);
}

TEST(TextDatasetTest, DeterministicGivenSeed) {
  TextSimConfig config;
  config.num_examples = 50;
  Rng a(11), b(11);
  const TextDatasetResult r1 = GenerateOralTextDataset(config, &a);
  const TextDatasetResult r2 = GenerateOralTextDataset(config, &b);
  EXPECT_TRUE(r1.dataset.features().AllClose(r2.dataset.features(), 0, 0));
  EXPECT_EQ(r1.dataset.true_labels(), r2.dataset.true_labels());
}

TEST(SampleProfileTest, JitterStaysInBounds) {
  Rng rng(12);
  TextSimConfig config;
  for (int t = 0; t < 200; ++t) {
    const SpeakerProfile p =
        SampleProfile(config.influent, config.profile_noise, &rng);
    EXPECT_GE(p.filler_rate, 0.0);
    EXPECT_LE(p.filler_rate, 0.4);
    EXPECT_GE(p.zipf_exponent, 0.3);
    EXPECT_LE(p.zipf_exponent, 3.0);
    EXPECT_GE(p.mean_utterance_length, 2.0);
    EXPECT_GE(p.tokens_per_second, 0.8);
  }
}

}  // namespace
}  // namespace rll::text
