// Unit tests for the Matrix type and its kernels, including parameterized
// property sweeps (linearity, softmax identities) over random shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace rll {
namespace {

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m[1], -2.0);  // Row-major flat access.
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(MatrixTest, RowColVector) {
  Matrix col = Matrix::ColVector({1, 2, 3});
  EXPECT_EQ(col.rows(), 3u);
  EXPECT_EQ(col.cols(), 1u);
  Matrix row = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
}

TEST(MatrixTest, RowExtractAndSet) {
  Matrix m = {{1, 2}, {3, 4}};
  Matrix r = m.Row(1);
  EXPECT_EQ(r, Matrix({{3, 4}}));
  m.SetRow(0, r);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  m.SetRow(0, std::vector<double>{9, 8});
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
}

TEST(MatrixTest, GatherRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix g = m.GatherRows({2, 0, 2});
  EXPECT_EQ(g, Matrix({{5, 6}, {1, 2}, {5, 6}}));
}

TEST(MatrixTest, CompoundOpsShapeChecked) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}};
  a += b;
  EXPECT_EQ(a, Matrix({{4, 6}}));
  a -= b;
  EXPECT_EQ(a, Matrix({{1, 2}}));
  a *= 2.0;
  EXPECT_EQ(a, Matrix({{2, 4}}));
}

TEST(MatrixTest, AllClose) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{1.0 + 1e-13, 2.0}};
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(Matrix({{1.1, 2.0}})));
  EXPECT_FALSE(a.AllClose(Matrix({{1.0}, {2.0}})));  // Shape mismatch.
}

TEST(MatrixTest, ToString) {
  EXPECT_EQ(Matrix({{1, 2}}).ToString(), "[[1, 2]]");
}

// ------------------------------------------------------------------- Ops

TEST(OpsTest, MatmulHandValues) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  EXPECT_EQ(Matmul(a, b), Matrix({{19, 22}, {43, 50}}));
}

TEST(OpsTest, MatmulIdentity) {
  Rng rng(1);
  Matrix a = RandomNormal(4, 4, &rng);
  EXPECT_TRUE(Matmul(a, Matrix::Identity(4)).AllClose(a));
  EXPECT_TRUE(Matmul(Matrix::Identity(4), a).AllClose(a));
}

TEST(OpsTest, TransposedMatmulsAgreeWithExplicitTranspose) {
  Rng rng(2);
  Matrix a = RandomNormal(3, 5, &rng);
  Matrix b = RandomNormal(3, 4, &rng);
  EXPECT_TRUE(MatmulTransposeA(a, b).AllClose(Matmul(Transpose(a), b)));
  Matrix c = RandomNormal(4, 5, &rng);
  EXPECT_TRUE(MatmulTransposeB(a, c).AllClose(Matmul(a, Transpose(c))));
}

TEST(OpsTest, IntoVariantsMatchAllocatingOps) {
  Rng rng(3);
  Matrix a = RandomNormal(6, 5, &rng);
  Matrix b = RandomNormal(5, 7, &rng);
  Matrix out;
  MulInto(a, b, out);
  EXPECT_EQ(out, Matmul(a, b));

  Matrix ta = RandomNormal(5, 6, &rng);
  MulTransposeAInto(ta, b, out);
  EXPECT_EQ(out, MatmulTransposeA(ta, b));

  Matrix tb = RandomNormal(7, 5, &rng);
  MulTransposeBInto(a, tb, out);
  EXPECT_EQ(out, MatmulTransposeB(a, tb));

  Matrix c = RandomNormal(6, 7, &rng);
  AddInto(out, c, out);  // Aliased output is part of the contract.
  EXPECT_EQ(out, Add(MatmulTransposeB(a, tb), c));
}

TEST(OpsTest, MulIntoReshapesStaleOutput) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix out(9, 3, 1.0);  // Wrong shape and stale values.
  MulInto(a, b, out);
  EXPECT_EQ(out, Matrix({{19, 22}, {43, 50}}));
}

TEST(OpsTest, AddRowBroadcastInPlaceMatchesAllocatingOp) {
  Matrix a = {{1, 2}, {3, 4}};
  const Matrix row = {{10, 20}};
  Matrix m = a;
  AddRowBroadcastInPlace(m, row);
  EXPECT_EQ(m, AddRowBroadcast(a, row));
}

TEST(OpsTest, ElementwiseOps) {
  Matrix a = {{1, -2}, {3, 4}};
  Matrix b = {{2, 2}, {2, 2}};
  EXPECT_EQ(Add(a, b), Matrix({{3, 0}, {5, 6}}));
  EXPECT_EQ(Sub(a, b), Matrix({{-1, -4}, {1, 2}}));
  EXPECT_EQ(Hadamard(a, b), Matrix({{2, -4}, {6, 8}}));
  EXPECT_EQ(Divide(a, b), Matrix({{0.5, -1}, {1.5, 2}}));
  EXPECT_EQ(Scale(a, -1), Matrix({{-1, 2}, {-3, -4}}));
  EXPECT_EQ(AddScalar(a, 1), Matrix({{2, -1}, {4, 5}}));
}

TEST(OpsTest, Broadcasts) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_EQ(AddRowBroadcast(a, Matrix({{10, 20}})),
            Matrix({{11, 22}, {13, 24}}));
  EXPECT_EQ(MulRowBroadcast(a, Matrix({{2, 0}})), Matrix({{2, 0}, {6, 0}}));
  EXPECT_EQ(MulColBroadcast(a, Matrix({{2}, {3}})),
            Matrix({{2, 4}, {9, 12}}));
}

TEST(OpsTest, Reductions) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(Sum(a), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a), 2.5);
  EXPECT_DOUBLE_EQ(Min(a), 1.0);
  EXPECT_DOUBLE_EQ(Max(a), 4.0);
  EXPECT_EQ(RowSum(a), Matrix({{3}, {7}}));
  EXPECT_EQ(ColSum(a), Matrix({{4, 6}}));
  EXPECT_EQ(ColMean(a), Matrix({{2, 3}}));
}

TEST(OpsTest, DotAndNorm) {
  Matrix a = {{3, 4}};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
}

TEST(OpsTest, RowNormsClampedAtEps) {
  Matrix a = {{0, 0}, {3, 4}};
  Matrix norms = RowNorms(a, 1e-12);
  EXPECT_DOUBLE_EQ(norms(0, 0), 1e-12);
  EXPECT_DOUBLE_EQ(norms(1, 0), 5.0);
}

TEST(OpsTest, RowCosineHandValues) {
  Matrix a = {{1, 0}, {1, 1}};
  Matrix b = {{0, 1}, {1, 1}};
  Matrix cos = RowCosine(a, b);
  EXPECT_NEAR(cos(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(cos(1, 0), 1.0, 1e-12);
}

TEST(OpsTest, RowCosineOppositeVectors) {
  Matrix a = {{2, 0}};
  Matrix b = {{-5, 0}};
  EXPECT_NEAR(RowCosine(a, b)(0, 0), -1.0, 1e-12);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Matrix a = {{1, 2, 3}, {-5, 0, 5}};
  Matrix s = SoftmaxRows(a);
  for (size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(s(r, c), 0.0);
      total += s(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  // Monotone in the logits.
  EXPECT_LT(s(0, 0), s(0, 2));
}

TEST(OpsTest, SoftmaxStableForHugeLogits) {
  Matrix a = {{1000.0, 1000.0}};
  Matrix s = SoftmaxRows(a);
  EXPECT_NEAR(s(0, 0), 0.5, 1e-12);
  EXPECT_TRUE(std::isfinite(s(0, 1)));
}

TEST(OpsTest, LogSumExpMatchesDirectComputationWhenSafe) {
  Matrix a = {{0.1, 0.2, 0.3}};
  const double direct =
      std::log(std::exp(0.1) + std::exp(0.2) + std::exp(0.3));
  EXPECT_NEAR(LogSumExpRows(a)(0, 0), direct, 1e-12);
}

TEST(OpsTest, ArgmaxRows) {
  Matrix a = {{1, 5, 2}, {7, 0, 3}};
  const std::vector<size_t> idx = ArgmaxRows(a);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(OpsTest, MapAppliesFunction) {
  Matrix a = {{1, 4}};
  Matrix b = Map(a, [](double x) { return x * x; });
  EXPECT_EQ(b, Matrix({{1, 16}}));
}

// ------------------------------------------------------ Property sweeps

class MatmulPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatmulPropertyTest, AssociativityAndDistributivity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t m = 1 + rng.UniformInt(6u);
  const size_t k = 1 + rng.UniformInt(6u);
  const size_t n = 1 + rng.UniformInt(6u);
  const size_t p = 1 + rng.UniformInt(6u);
  Matrix a = RandomNormal(m, k, &rng);
  Matrix b = RandomNormal(k, n, &rng);
  Matrix c = RandomNormal(n, p, &rng);
  Matrix d = RandomNormal(k, n, &rng);
  EXPECT_TRUE(Matmul(Matmul(a, b), c).AllClose(Matmul(a, Matmul(b, c)),
                                               1e-9, 1e-9));
  EXPECT_TRUE(Matmul(a, Add(b, d)).AllClose(
      Add(Matmul(a, b), Matmul(a, d)), 1e-9, 1e-9));
}

TEST_P(MatmulPropertyTest, TransposeReversesProduct) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const size_t m = 1 + rng.UniformInt(6u);
  const size_t k = 1 + rng.UniformInt(6u);
  const size_t n = 1 + rng.UniformInt(6u);
  Matrix a = RandomNormal(m, k, &rng);
  Matrix b = RandomNormal(k, n, &rng);
  EXPECT_TRUE(Transpose(Matmul(a, b))
                  .AllClose(Matmul(Transpose(b), Transpose(a)), 1e-9, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatmulPropertyTest,
                         ::testing::Range(0, 10));

class SoftmaxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxPropertyTest, ShiftInvariance) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  Matrix a = RandomNormal(3, 5, &rng, 0.0, 3.0);
  Matrix shifted = AddScalar(a, rng.Uniform(-10.0, 10.0));
  EXPECT_TRUE(SoftmaxRows(a).AllClose(SoftmaxRows(shifted), 1e-9, 1e-12));
}

TEST_P(SoftmaxPropertyTest, LogSumExpDominatesMax) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 7);
  Matrix a = RandomNormal(4, 6, &rng, 0.0, 5.0);
  Matrix lse = LogSumExpRows(a);
  for (size_t r = 0; r < a.rows(); ++r) {
    double mx = a(r, 0);
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, a(r, c));
    EXPECT_GE(lse(r, 0), mx);
    EXPECT_LE(lse(r, 0), mx + std::log(static_cast<double>(a.cols())) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, SoftmaxPropertyTest,
                         ::testing::Range(0, 10));

TEST(InitTest, XavierWithinLimit) {
  Rng rng(3);
  const size_t fan_in = 30, fan_out = 20;
  Matrix w = XavierUniform(fan_in, fan_out, &rng);
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i]), limit);
  }
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(4);
  const size_t fan_in = 100;
  Matrix w = HeNormal(fan_in, 400, &rng);
  double sumsq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) sumsq += w[i] * w[i];
  EXPECT_NEAR(sumsq / static_cast<double>(w.size()), 2.0 / fan_in,
              0.2 / fan_in);
}

// ------------------------------------------------------------- Serialize

TEST(SerializeTest, StreamRoundTrip) {
  Rng rng(5);
  Matrix m = RandomNormal(4, 7, &rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrix(&ss, m).ok());
  Result<Matrix> back = ReadMatrix(&ss);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->AllClose(m, 0.0, 0.0));  // %.17g is lossless.
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(6);
  Matrix m = RandomNormal(3, 3, &rng);
  const std::string path = ::testing::TempDir() + "/mat.txt";
  ASSERT_TRUE(SaveMatrix(path, m).ok());
  Result<Matrix> back = LoadMatrix(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->AllClose(m, 0.0, 0.0));
}

TEST(SerializeTest, RejectsBadHeader) {
  std::stringstream ss("garbage 2 2\n1 2\n3 4\n");
  EXPECT_FALSE(ReadMatrix(&ss).ok());
}

TEST(SerializeTest, RejectsTruncatedBody) {
  std::stringstream ss("matrix 2 2\n1 2 3\n");
  EXPECT_FALSE(ReadMatrix(&ss).ok());
}

TEST(SerializeTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadMatrix("/nonexistent/path/m.txt").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace rll
