// Tests for the RLL core: group sampler invariants, the confidence-weighted
// group loss (values + gradients), trainer behaviour, and the CV pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include "autograd/gradcheck.h"
#include "common/threading.h"
#include "core/embedding_eval.h"
#include "core/embedding_index.h"
#include "core/group_sampler.h"
#include "core/model_bundle.h"
#include "core/pipeline.h"
#include "core/rll_model.h"
#include "core/rll_trainer.h"
#include "crowd/worker_pool.h"
#include "data/synthetic.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll::core {
namespace {

// Small, fast synthetic dataset with crowd annotations.
data::Dataset SmallAnnotatedDataset(Rng* rng, size_t n = 160) {
  data::SyntheticConfig config;
  config.num_examples = n;
  config.positive_fraction = 0.6;
  config.linear_dims = 4;
  config.xor_dims = 2;
  config.noise_dims = 4;
  config.clusters_per_class = 2;
  config.linear_sep = 1.6;
  config.xor_sep = 2.6;
  config.cluster_spread = 0.8;
  data::Dataset d = GenerateSynthetic(config, rng);
  crowd::WorkerPool pool({.num_workers = 12}, rng);
  pool.Annotate(&d, 5, rng);
  return d;
}

RllTrainerOptions FastTrainerOptions() {
  RllTrainerOptions options;
  options.model.hidden_dims = {16, 8};
  options.epochs = 6;
  options.groups_per_epoch = 256;
  options.batch_size = 32;
  return options;
}

// ------------------------------------------------------------ GroupSampler

TEST(GroupSamplerTest, GroupInvariants) {
  Rng rng(1);
  std::vector<int> labels(50);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 3 == 0;
  GroupSampler sampler(labels, {.negatives_per_group = 4});
  auto groups = sampler.Sample(500, &rng);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 500u);
  for (const Group& g : *groups) {
    EXPECT_NE(g.anchor, g.positive);
    EXPECT_EQ(labels[g.anchor], 1);
    EXPECT_EQ(labels[g.positive], 1);
    EXPECT_EQ(g.negatives.size(), 4u);
    std::set<size_t> negs(g.negatives.begin(), g.negatives.end());
    EXPECT_EQ(negs.size(), 4u);  // Distinct negatives.
    for (size_t neg : g.negatives) EXPECT_EQ(labels[neg], 0);
  }
}

TEST(GroupSamplerTest, CoversAllPositivesAsAnchors) {
  Rng rng(2);
  std::vector<int> labels = {1, 1, 1, 1, 0, 0, 0, 0};
  GroupSampler sampler(labels, {.negatives_per_group = 2});
  auto groups = sampler.Sample(400, &rng);
  ASSERT_TRUE(groups.ok());
  std::set<size_t> anchors;
  for (const Group& g : *groups) anchors.insert(g.anchor);
  EXPECT_EQ(anchors.size(), 4u);
}

TEST(GroupSamplerTest, FailsWithTooFewPositives) {
  Rng rng(3);
  GroupSampler sampler({1, 0, 0, 0}, {.negatives_per_group = 2});
  EXPECT_EQ(sampler.Sample(1, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GroupSamplerTest, FailsWithTooFewNegatives) {
  Rng rng(4);
  GroupSampler sampler({1, 1, 0}, {.negatives_per_group = 2});
  EXPECT_EQ(sampler.Sample(1, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GroupSamplerTest, LogGroupSpaceMatchesFormula) {
  GroupSampler sampler({1, 1, 1, 0, 0, 0, 0}, {.negatives_per_group = 3});
  // |D+| = 3, |D−| = 4, k = 3 → log(9·64).
  EXPECT_NEAR(sampler.LogGroupSpace(), std::log(9.0 * 64.0), 1e-12);
}

TEST(GroupSamplerTest, LogGroupSpaceInfeasibleIsMinusInf) {
  GroupSampler sampler({1, 0}, {.negatives_per_group = 1});
  EXPECT_TRUE(std::isinf(sampler.LogGroupSpace()));
  EXPECT_LT(sampler.LogGroupSpace(), 0);
}

// ------------------------------------------------------------ GroupNllLoss

TEST(GroupLossTest, PerfectRetrievalGivesLowLoss) {
  // Anchor identical to the positive, orthogonal to negatives → with high
  // η the softmax should put almost all mass on slot 0.
  Matrix anchor = {{1.0, 0.0}, {0.0, 1.0}};
  Matrix pos = anchor;
  Matrix neg = {{-1.0, 0.0}, {0.0, -1.0}};
  std::vector<Matrix> conf(2, Matrix(2, 1, 1.0));
  ag::Var loss = GroupNllLoss(ag::Constant(anchor),
                              {ag::Constant(pos), ag::Constant(neg)}, conf,
                              /*eta=*/10.0);
  EXPECT_LT(loss->value(0, 0), 1e-6);
}

TEST(GroupLossTest, UniformScoresGiveLogK1) {
  // All candidates equally similar → loss = log(#candidates).
  Matrix anchor = {{1.0, 0.0}};
  Matrix cand = {{1.0, 0.0}};
  std::vector<Matrix> conf(4, Matrix(1, 1, 1.0));
  ag::Var loss = GroupNllLoss(
      ag::Constant(anchor),
      {ag::Constant(cand), ag::Constant(cand), ag::Constant(cand),
       ag::Constant(cand)},
      conf, 10.0);
  EXPECT_NEAR(loss->value(0, 0), std::log(4.0), 1e-9);
}

TEST(GroupLossTest, LowConfidencePositiveRaisesItsWeightInLossLess) {
  // Down-weighting the positive slot's δ shrinks its score, making the
  // same geometry yield a larger loss.
  Matrix anchor = {{1.0, 0.2}};
  Matrix pos = {{0.9, 0.3}};
  Matrix neg = {{-0.5, 1.0}};
  std::vector<Matrix> full_conf = {Matrix(1, 1, 1.0), Matrix(1, 1, 1.0)};
  std::vector<Matrix> weak_conf = {Matrix(1, 1, 0.3), Matrix(1, 1, 1.0)};
  ag::Var strong = GroupNllLoss(
      ag::Constant(anchor), {ag::Constant(pos), ag::Constant(neg)},
      full_conf, 5.0);
  ag::Var weak = GroupNllLoss(
      ag::Constant(anchor), {ag::Constant(pos), ag::Constant(neg)},
      weak_conf, 5.0);
  EXPECT_GT(weak->value(0, 0), strong->value(0, 0));
}

TEST(GroupLossTest, GradCheckThroughEmbeddings) {
  Rng rng(5);
  ag::Var anchor = ag::Parameter(RandomNormal(3, 4, &rng));
  ag::Var pos = ag::Parameter(RandomNormal(3, 4, &rng));
  ag::Var neg1 = ag::Parameter(RandomNormal(3, 4, &rng));
  ag::Var neg2 = ag::Parameter(RandomNormal(3, 4, &rng));
  std::vector<Matrix> conf;
  for (int s = 0; s < 3; ++s) {
    Matrix c(3, 1);
    for (size_t i = 0; i < 3; ++i) c(i, 0) = 0.3 + 0.2 * (s + 1);
    conf.push_back(c);
  }
  auto r = ag::CheckGradients({anchor, pos, neg1, neg2}, [&] {
    return GroupNllLoss(anchor, {pos, neg1, neg2}, conf, 8.0);
  });
  EXPECT_LT(r.max_relative_error, 1e-5);
}

// ---------------------------------------------------------------- RllModel

TEST(RllModelTest, EmbedShapeAndBounds) {
  Rng rng(6);
  RllModel model({.input_dim = 10, .hidden_dims = {8, 4}}, &rng);
  EXPECT_EQ(model.embedding_dim(), 4u);
  Matrix x = RandomNormal(5, 10, &rng);
  Matrix e = model.Embed(x);
  EXPECT_EQ(e.rows(), 5u);
  EXPECT_EQ(e.cols(), 4u);
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_GE(e[i], -1.0);
    EXPECT_LE(e[i], 1.0);
  }
}

TEST(RllModelTest, SaveLoadRoundTrip) {
  Rng rng(7);
  RllModel a({.input_dim = 6, .hidden_dims = {4}}, &rng);
  RllModel b({.input_dim = 6, .hidden_dims = {4}}, &rng);
  const std::string path = ::testing::TempDir() + "/rll_model.ckpt";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  Matrix x = RandomNormal(3, 6, &rng);
  EXPECT_TRUE(a.Embed(x).AllClose(b.Embed(x)));
}

// --------------------------------------------------------------- RllTrainer

TEST(RllTrainerTest, LossDecreasesOverTraining) {
  Rng rng(8);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  RllTrainer trainer(FastTrainerOptions(), &rng);
  auto summary = trainer.Train(d.features(), d.MajorityVoteLabels(),
                               std::vector<double>(d.size(), 1.0));
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->epoch_losses.size(), 6u);
  EXPECT_LT(summary->epoch_losses.back(), summary->epoch_losses.front());
}

TEST(RllTrainerTest, TrainedEmbeddingsSeparateClasses) {
  Rng rng(9);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  RllTrainerOptions options = FastTrainerOptions();
  options.epochs = 10;
  RllTrainer trainer(options, &rng);
  const std::vector<int> labels = d.MajorityVoteLabels();
  ASSERT_TRUE(trainer
                  .Train(d.features(), labels,
                         std::vector<double>(d.size(), 1.0))
                  .ok());
  // Mean intra-class cosine must exceed mean inter-class cosine.
  const Matrix emb = trainer.model().Embed(d.features());
  double intra = 0.0, inter = 0.0;
  size_t intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < d.size(); i += 3) {
    for (size_t j = i + 1; j < d.size(); j += 3) {
      Matrix a = emb.Row(i);
      Matrix b = emb.Row(j);
      const double cos = RowCosine(a, b)(0, 0);
      if (d.true_label(i) == d.true_label(j)) {
        intra += cos;
        ++intra_n;
      } else {
        inter += cos;
        ++inter_n;
      }
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.2);
}

TEST(RllTrainerTest, ValidationTracksAndRestoresBest) {
  Rng rng(60);
  data::Dataset d = SmallAnnotatedDataset(&rng, 200);
  RllTrainerOptions options = FastTrainerOptions();
  options.epochs = 12;
  options.validation_fraction = 0.25;
  options.patience = 3;
  options.validation_groups = 128;
  RllTrainer trainer(options, &rng);
  auto summary = trainer.Train(d.features(), d.MajorityVoteLabels(),
                               std::vector<double>(d.size(), 1.0));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_FALSE(summary->validation_losses.empty());
  EXPECT_EQ(summary->validation_losses.size(),
            summary->epoch_losses.size());
  // best_epoch is the argmin of the validation curve.
  size_t argmin = 0;
  for (size_t e = 1; e < summary->validation_losses.size(); ++e) {
    if (summary->validation_losses[e] <
        summary->validation_losses[argmin]) {
      argmin = e;
    }
  }
  EXPECT_EQ(static_cast<size_t>(summary->best_epoch), argmin);
  if (summary->stopped_early) {
    EXPECT_LT(summary->epoch_losses.size(),
              static_cast<size_t>(options.epochs));
  }
}

TEST(RllTrainerTest, ValidationRejectsTinyDatasets) {
  Rng rng(61);
  RllTrainerOptions options = FastTrainerOptions();
  options.validation_fraction = 0.2;
  RllTrainer trainer(options, &rng);
  // 10 examples → 2-example validation split cannot form groups.
  Matrix x(10, 4);
  std::vector<int> labels = {1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  EXPECT_EQ(trainer.Train(x, labels, std::vector<double>(10, 1.0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(RllTrainerTest, ValidationFractionBoundsChecked) {
  Rng rng(62);
  RllTrainerOptions options = FastTrainerOptions();
  options.validation_fraction = 1.0;
  RllTrainer trainer(options, &rng);
  Matrix x(20, 4);
  std::vector<int> labels(20, 0);
  for (size_t i = 0; i < 10; ++i) labels[i] = 1;
  EXPECT_EQ(trainer.Train(x, labels, std::vector<double>(20, 1.0))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupSamplerTest, ExcludedLabelsNeverSampled) {
  Rng rng(63);
  // Index 2 and 5 are held out (-1): they must appear in no group.
  std::vector<int> labels = {1, 1, -1, 0, 0, -1, 1, 0};
  GroupSampler sampler(labels, {.negatives_per_group = 2});
  auto groups = sampler.Sample(200, &rng);
  ASSERT_TRUE(groups.ok());
  for (const Group& g : *groups) {
    EXPECT_NE(g.anchor, 2u);
    EXPECT_NE(g.anchor, 5u);
    EXPECT_NE(g.positive, 2u);
    EXPECT_NE(g.positive, 5u);
    for (size_t neg : g.negatives) {
      EXPECT_NE(neg, 2u);
      EXPECT_NE(neg, 5u);
    }
  }
}

TEST(RllTrainerTest, ValidatesInputSizes) {
  Rng rng(10);
  RllTrainer trainer(FastTrainerOptions(), &rng);
  Matrix x(10, 4);
  EXPECT_FALSE(trainer.Train(x, std::vector<int>(9, 1),
                             std::vector<double>(10, 1.0))
                   .ok());
  EXPECT_FALSE(trainer.Train(x, std::vector<int>(10, 1),
                             std::vector<double>(10, 2.0))
                   .ok());  // Confidence > 1.
  EXPECT_FALSE(
      trainer.Train(Matrix(), {}, {}).ok());
}

TEST(RllTrainerTest, FailsWhenGroupsInfeasible) {
  Rng rng(11);
  RllTrainer trainer(FastTrainerOptions(), &rng);
  Matrix x(5, 3);
  // All positive: no negatives to sample.
  EXPECT_FALSE(trainer.Train(x, std::vector<int>(5, 1),
                             std::vector<double>(5, 1.0))
                   .ok());
}

// ----------------------------------------------------------- EmbeddingEval

TEST(EmbeddingEvalTest, PerfectlySeparatedClusters) {
  // Class 1 along +x, class 0 along −x: margin ≈ 2, silhouette ≈ 1.
  Matrix emb = {{1, 0.01}, {1, -0.01}, {-1, 0.01}, {-1, -0.01}};
  const std::vector<int> labels = {1, 1, 0, 0};
  const EmbeddingQuality q = EvaluateEmbeddings(emb, labels);
  EXPECT_GT(q.intra_class_cosine, 0.99);
  EXPECT_LT(q.inter_class_cosine, -0.99);
  EXPECT_GT(q.cosine_margin, 1.9);
  EXPECT_GT(q.silhouette, 0.9);
  EXPECT_DOUBLE_EQ(KnnAccuracy(emb, labels, 1), 1.0);
}

TEST(EmbeddingEvalTest, RandomEmbeddingsHaveNoMargin) {
  Rng rng(40);
  Matrix emb = RandomNormal(60, 8, &rng);
  std::vector<int> labels(60);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = rng.Bernoulli(0.5);
  const EmbeddingQuality q = EvaluateEmbeddings(emb, labels);
  EXPECT_NEAR(q.cosine_margin, 0.0, 0.1);
  EXPECT_NEAR(q.silhouette, 0.0, 0.1);
  EXPECT_NEAR(KnnAccuracy(emb, labels, 5), 0.5, 0.2);
}

TEST(EmbeddingEvalTest, TrainingImprovesIntrinsicQuality) {
  Rng rng(41);
  data::Dataset d = SmallAnnotatedDataset(&rng);
  RllTrainerOptions options = FastTrainerOptions();
  options.epochs = 10;
  RllTrainer trainer(options, &rng);
  const std::vector<int> labels = d.MajorityVoteLabels();
  ASSERT_TRUE(trainer
                  .Train(d.features(), labels,
                         std::vector<double>(d.size(), 1.0))
                  .ok());
  const EmbeddingQuality before =
      EvaluateEmbeddings(d.features(), d.true_labels());
  const EmbeddingQuality after =
      EvaluateEmbeddings(trainer.model().Embed(d.features()),
                         d.true_labels());
  EXPECT_GT(after.cosine_margin, before.cosine_margin);
}

// ---------------------------------------------------------- EmbeddingIndex

TEST(EmbeddingIndexTest, ExactSelfMatch) {
  Rng rng(42);
  Matrix corpus = RandomNormal(20, 6, &rng);
  EmbeddingIndex index;
  ASSERT_TRUE(index.Build(corpus).ok());
  for (size_t q : {0u, 7u, 19u}) {
    auto neighbors = index.Query(corpus.Row(q), 1);
    ASSERT_TRUE(neighbors.ok());
    EXPECT_EQ((*neighbors)[0].index, q);
    EXPECT_NEAR((*neighbors)[0].similarity, 1.0, 1e-9);
  }
}

TEST(EmbeddingIndexTest, ResultsSortedBySimilarity) {
  Rng rng(43);
  Matrix corpus = RandomNormal(30, 4, &rng);
  EmbeddingIndex index;
  ASSERT_TRUE(index.Build(corpus).ok());
  auto neighbors = index.Query(RandomNormal(1, 4, &rng), 10);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_EQ(neighbors->size(), 10u);
  for (size_t i = 1; i < neighbors->size(); ++i) {
    EXPECT_GE((*neighbors)[i - 1].similarity, (*neighbors)[i].similarity);
  }
}

TEST(EmbeddingIndexTest, KClampedToCorpusSize) {
  Matrix corpus = {{1, 0}, {0, 1}};
  EmbeddingIndex index;
  ASSERT_TRUE(index.Build(corpus).ok());
  auto neighbors = index.Query(Matrix({{1, 1}}), 99);
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ(neighbors->size(), 2u);
}

TEST(EmbeddingIndexTest, CosineIsScaleInvariant) {
  Matrix corpus = {{2, 0}, {0, 5}};
  EmbeddingIndex index;
  ASSERT_TRUE(index.Build(corpus).ok());
  auto neighbors = index.Query(Matrix({{100, 1}}), 1);
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ((*neighbors)[0].index, 0u);  // Direction, not magnitude.
}

TEST(EmbeddingIndexTest, AddGrowsCorpus) {
  Matrix corpus = {{1, 0}};
  EmbeddingIndex index;
  ASSERT_TRUE(index.Build(corpus).ok());
  auto added = index.Add(Matrix({{0, 1}}));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 1u);
  EXPECT_EQ(index.size(), 2u);
  auto neighbors = index.Query(Matrix({{0, 2}}), 1);
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ((*neighbors)[0].index, 1u);
}

TEST(EmbeddingIndexTest, QueryIdenticalAcrossThreadCounts) {
  // Corpus large enough to cross the parallel-scan threshold, so threads 2
  // and 4 actually exercise the ParallelFor path.
  Rng rng(44);
  Matrix corpus = RandomNormal(1024, 16, &rng);
  EmbeddingIndex index;
  ASSERT_TRUE(index.Build(corpus).ok());
  const Matrix query = RandomNormal(1, 16, &rng);

  SetGlobalThreads(1);
  auto serial = index.Query(query, 10);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    SetGlobalThreads(threads);
    auto parallel = index.Query(query, 10);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*parallel)[i].index, (*serial)[i].index);
      // Bitwise, not approximate: the parallel scan must not change the
      // per-row accumulation order.
      EXPECT_EQ((*parallel)[i].similarity, (*serial)[i].similarity);
    }
  }
  SetGlobalThreads(0);
}

TEST(EmbeddingIndexTest, ErrorContracts) {
  EmbeddingIndex index;
  EXPECT_EQ(index.Query(Matrix({{1.0}}), 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(index.Build(Matrix()).ok());
  ASSERT_TRUE(index.Build(Matrix({{1, 0}})).ok());
  EXPECT_FALSE(index.Query(Matrix({{1, 0, 0}}), 1).ok());  // Dim mismatch.
  EXPECT_FALSE(index.Query(Matrix({{1, 0}}), 0).ok());     // k = 0.
  EXPECT_FALSE(index.Add(Matrix({{1, 0, 0}})).ok());
}

// -------------------------------------------------------------- ModelBundle

TEST(ModelBundleTest, SaveLoadEmbedRoundTrip) {
  Rng rng(50);
  Matrix raw = RandomNormal(20, 6, &rng, 5.0, 2.0);
  data::Standardizer standardizer;
  standardizer.Fit(raw);
  RllModel model({.input_dim = 6, .hidden_dims = {5, 3}}, &rng);

  auto bundle = ModelBundle::Create(standardizer, model, &rng);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::string path = ::testing::TempDir() + "/bundle.ckpt";
  ASSERT_TRUE(bundle->Save(path).ok());

  auto loaded = ModelBundle::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->input_dim(), 6u);
  EXPECT_EQ(loaded->embedding_dim(), 3u);

  auto original = bundle->Embed(raw);
  auto restored = loaded->Embed(raw);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(original->AllClose(*restored));
  // And the bundle path equals manual standardize + embed.
  EXPECT_TRUE(
      original->AllClose(model.Embed(standardizer.Transform(raw))));
}

TEST(ModelBundleTest, CreateRejectsMismatchedDims) {
  Rng rng(51);
  data::Standardizer standardizer;
  standardizer.Fit(Matrix(4, 7));
  RllModel model({.input_dim = 6, .hidden_dims = {3}}, &rng);
  EXPECT_FALSE(ModelBundle::Create(standardizer, model, &rng).ok());
}

TEST(ModelBundleTest, CreateRejectsUnfittedStandardizer) {
  Rng rng(52);
  RllModel model({.input_dim = 6, .hidden_dims = {3}}, &rng);
  EXPECT_FALSE(
      ModelBundle::Create(data::Standardizer(), model, &rng).ok());
}

TEST(ModelBundleTest, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/corrupt.ckpt";
  {
    std::ofstream f(path);
    f << "matrix 1 2\n0 0\nmatrix 1 2\n1 1\nmatrix 2 3\n1 2 3 4 5 6\n";
    // Weight without its bias: odd parameter count.
  }
  EXPECT_FALSE(ModelBundle::Load(path).ok());
  EXPECT_FALSE(ModelBundle::Load("/nonexistent/bundle").ok());
}

TEST(ModelBundleTest, EmbedRejectsWrongWidth) {
  Rng rng(53);
  data::Standardizer standardizer;
  standardizer.Fit(Matrix(4, 6, 1.0));
  RllModel model({.input_dim = 6, .hidden_dims = {3}}, &rng);
  auto bundle = ModelBundle::Create(standardizer, model, &rng);
  ASSERT_TRUE(bundle.ok());
  EXPECT_FALSE(bundle->Embed(Matrix(2, 5)).ok());
}

TEST(ModelBundleTest, V2RoundTripsNonDefaultArchitecture) {
  // The legacy loader hard-coded tanh; the v2 header must reconstruct a
  // relu/none LayerNorm encoder exactly.
  Rng rng(54);
  Matrix raw = RandomNormal(12, 5, &rng, 2.0, 1.5);
  data::Standardizer standardizer;
  standardizer.Fit(raw);
  RllModelConfig config;
  config.input_dim = 5;
  config.hidden_dims = {6, 4};
  config.hidden_activation = nn::Activation::kRelu;
  config.output_activation = nn::Activation::kNone;
  config.layer_norm = true;
  RllModel model(config, &rng);

  auto bundle = ModelBundle::Create(standardizer, model, &rng);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::string path = ::testing::TempDir() + "/bundle_v2.ckpt";
  ASSERT_TRUE(bundle->Save(path).ok());

  auto loaded = ModelBundle::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RllModelConfig& restored = loaded->model().config();
  EXPECT_EQ(restored.hidden_activation, nn::Activation::kRelu);
  EXPECT_EQ(restored.output_activation, nn::Activation::kNone);
  EXPECT_TRUE(restored.layer_norm);
  ASSERT_EQ(restored.hidden_dims, config.hidden_dims);

  auto original = bundle->Embed(raw);
  auto reloaded = loaded->Embed(raw);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  // %.17g round-trips doubles exactly, so the restored encoder is not just
  // close — it is the same function, bit for bit.
  EXPECT_TRUE(*original == *reloaded);
}

TEST(ModelBundleTest, LoadsLegacyHeaderlessFormat) {
  // A legacy file is exactly a v2 file minus its header line (mean,
  // stddev, weight/bias pairs); it must load via shape inference with the
  // tanh defaults it was trained with.
  Rng rng(55);
  Matrix raw = RandomNormal(10, 4, &rng);
  data::Standardizer standardizer;
  standardizer.Fit(raw);
  RllModel model({.input_dim = 4, .hidden_dims = {5, 3}}, &rng);
  auto bundle = ModelBundle::Create(standardizer, model, &rng);
  ASSERT_TRUE(bundle.ok());
  const std::string v2_path = ::testing::TempDir() + "/bundle_for_legacy.ckpt";
  ASSERT_TRUE(bundle->Save(v2_path).ok());

  const std::string legacy_path = ::testing::TempDir() + "/bundle_legacy.ckpt";
  {
    std::ifstream in(v2_path);
    std::ofstream out(legacy_path);
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // Drop header.
    EXPECT_EQ(line.rfind("rll-bundle", 0), 0u);
    while (std::getline(in, line)) out << line << "\n";
  }

  auto loaded = ModelBundle::Load(legacy_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model().config().hidden_activation,
            nn::Activation::kTanh);
  auto original = bundle->Embed(raw);
  auto restored = loaded->Embed(raw);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*original == *restored);
}

TEST(ModelBundleTest, RejectsMalformedHeaders) {
  const std::string path = ::testing::TempDir() + "/bad_header.ckpt";
  const std::string body =
      "matrix 1 2\n0 0\nmatrix 1 2\n1 1\n"
      "matrix 2 3\n1 2 3 4 5 6\nmatrix 1 3\n0 0 0\n";
  const std::vector<std::string> bad_headers = {
      "rll-bundle v99 dims=2,3 hidden=tanh output=tanh",  // Bad version.
      "rll-bundle v2 hidden=tanh output=tanh",            // Missing dims.
      "rll-bundle v2 dims=2,3 hidden=swish output=tanh",  // Bad activation.
      "rll-bundle v2 dims=2,3 hidden=tanh output=tanh shiny=1",  // Unknown.
      "rll-bundle v2 dims=2,3 hidden=tanh output=tanh embed_dim=7",
      "rll-bundle v2 dims=2 hidden=tanh output=tanh",     // Too few dims.
  };
  for (const std::string& header : bad_headers) {
    {
      std::ofstream f(path);
      f << header << "\n" << body;
    }
    auto loaded = ModelBundle::Load(path);
    EXPECT_FALSE(loaded.ok()) << "accepted header: " << header;
  }
}

TEST(ModelBundleTest, RejectsParameterShapeMismatchAgainstHeader) {
  const std::string path = ::testing::TempDir() + "/shape_mismatch.ckpt";
  {
    std::ofstream f(path);
    // Header declares dims=2,3 but the weight matrix is 2x4.
    f << "rll-bundle v2 dims=2,3 hidden=tanh output=tanh layer_norm=0\n"
      << "matrix 1 2\n0 0\nmatrix 1 2\n1 1\n"
      << "matrix 2 4\n1 2 3 4 5 6 7 8\nmatrix 1 4\n0 0 0 0\n";
  }
  EXPECT_FALSE(ModelBundle::Load(path).ok());
}

// ----------------------------------------------------------------- Pipeline

TEST(PipelineTest, CrossValidationProducesFoldMetrics) {
  Rng rng(12);
  data::Dataset d = SmallAnnotatedDataset(&rng, 120);
  RllPipelineOptions options;
  options.trainer = FastTrainerOptions();
  options.folds = 3;
  auto outcome = RunRllCrossValidation(d, options, &rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->per_fold.size(), 3u);
  EXPECT_GT(outcome->mean.accuracy, 0.5);  // Far above chance on easy data.
  EXPECT_LE(outcome->mean.accuracy, 1.0);
}

TEST(PipelineTest, RequiresAnnotations) {
  Rng rng(13);
  data::SyntheticConfig config;
  config.num_examples = 60;
  data::Dataset d = GenerateSynthetic(config, &rng);
  RllPipelineOptions options;
  options.trainer = FastTrainerOptions();
  EXPECT_EQ(RunRllCrossValidation(d, options, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, DeterministicGivenSeed) {
  RllPipelineOptions options;
  options.trainer = FastTrainerOptions();
  options.folds = 3;
  auto run = [&options](uint64_t seed) {
    Rng rng(seed);
    data::Dataset d = SmallAnnotatedDataset(&rng, 120);
    Rng eval_rng(seed + 1);
    auto outcome = RunRllCrossValidation(d, options, &eval_rng);
    EXPECT_TRUE(outcome.ok());
    return outcome->mean.accuracy;
  };
  EXPECT_DOUBLE_EQ(run(99), run(99));
}

}  // namespace
}  // namespace rll::core
