#include "text/transcript.h"

#include <cmath>

namespace rll::text {

namespace {

/// Zipf-distributed index in [0, n): P(i) ∝ 1/(i+1)^s.
size_t SampleZipf(size_t n, double s, Rng* rng) {
  RLL_CHECK_GT(n, 0u);
  // Small n: direct categorical sampling is cheapest and exact.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  double r = rng->Uniform() * total;
  for (size_t i = 0; i < n; ++i) {
    r -= 1.0 / std::pow(static_cast<double>(i + 1), s);
    if (r < 0.0) return i;
  }
  return n - 1;
}

}  // namespace

Transcript GenerateTranscript(const SpeakerProfile& profile,
                              const Vocabulary& vocabulary,
                              size_t target_tokens, Rng* rng) {
  RLL_CHECK_GT(target_tokens, 0u);
  RLL_CHECK(profile.mean_utterance_length >= 1.0);
  RLL_CHECK_GT(profile.tokens_per_second, 0.0);

  const auto& fillers = vocabulary.ids_of(TokenClass::kFiller);
  const auto& pauses = vocabulary.ids_of(TokenClass::kPause);
  const auto& math_terms = vocabulary.ids_of(TokenClass::kMathTerm);
  const auto& content = vocabulary.ids_of(TokenClass::kContent);
  const auto& function = vocabulary.ids_of(TokenClass::kFunction);
  RLL_CHECK(!fillers.empty() && !pauses.empty() && !math_terms.empty() &&
            !content.empty() && !function.empty());

  Transcript transcript;
  transcript.tokens.reserve(target_tokens + 16);
  // Probability an utterance ends after each token: 1/mean_length.
  const double end_prob = 1.0 / profile.mean_utterance_length;

  size_t previous_word = vocabulary.size();  // Sentinel: nothing yet.
  while (transcript.tokens.size() < target_tokens) {
    // One utterance.
    for (;;) {
      const double u = rng->Uniform();
      size_t token;
      if (u < profile.repetition_rate && previous_word < vocabulary.size()) {
        token = previous_word;  // Stutter: repeat the last real word.
      } else if (u < profile.repetition_rate + profile.filler_rate) {
        token = fillers[static_cast<size_t>(rng->UniformInt(fillers.size()))];
      } else if (u < profile.repetition_rate + profile.filler_rate +
                         profile.pause_rate) {
        token = pauses[0];
      } else {
        // A real word: math term, content, or function word.
        const double w = rng->Uniform();
        if (w < profile.math_term_share) {
          token = math_terms[SampleZipf(math_terms.size(),
                                        profile.zipf_exponent, rng)];
        } else if (w < profile.math_term_share +
                           (1.0 - profile.math_term_share) * 0.6) {
          token =
              content[SampleZipf(content.size(), profile.zipf_exponent, rng)];
        } else {
          token = function[SampleZipf(function.size(),
                                      profile.zipf_exponent, rng)];
        }
        previous_word = token;
      }
      transcript.tokens.push_back(token);
      if (rng->Bernoulli(end_prob) ||
          transcript.tokens.size() >= target_tokens + 8) {
        break;
      }
    }
    transcript.utterance_ends.push_back(transcript.tokens.size());
  }

  // Duration: pauses cost extra time; mild multiplicative noise.
  size_t pause_count = 0;
  for (size_t t : transcript.tokens) {
    pause_count += (vocabulary.token_class(t) == TokenClass::kPause);
  }
  const double base = static_cast<double>(transcript.tokens.size()) /
                      profile.tokens_per_second;
  transcript.duration_seconds =
      (base + 1.2 * static_cast<double>(pause_count)) *
      std::exp(rng->Normal(0.0, 0.05));
  return transcript;
}

std::string ToText(const Transcript& transcript,
                   const Vocabulary& vocabulary, size_t max_tokens) {
  std::string out;
  const size_t limit = std::min(max_tokens, transcript.tokens.size());
  for (size_t i = 0; i < limit; ++i) {
    if (i > 0) out += ' ';
    out += vocabulary.word(transcript.tokens[i]);
  }
  if (limit < transcript.tokens.size()) out += " ...";
  return out;
}

}  // namespace rll::text
