// Transcript simulator: a Markov token process driven by a speaker profile.
// Fluent speakers produce long, varied utterances with few fillers and
// pauses; influent speakers hesitate, repeat themselves, and drift off the
// math topic — the latent behaviours the paper's annotators were judging.

#ifndef RLL_TEXT_TRANSCRIPT_H_
#define RLL_TEXT_TRANSCRIPT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/vocabulary.h"

namespace rll::text {

/// Generative parameters of one speaker on one recording.
struct SpeakerProfile {
  /// Probability that the next token is a hesitation filler.
  double filler_rate = 0.05;
  /// Probability of a pause marker.
  double pause_rate = 0.04;
  /// Probability of repeating the previous (non-pause) token.
  double repetition_rate = 0.03;
  /// Among real words, the share that are math terms (topic focus).
  double math_term_share = 0.4;
  /// Zipf exponent for word choice inside a class; higher → fewer distinct
  /// words dominate (poorer vocabulary).
  double zipf_exponent = 1.0;
  /// Mean utterance length in tokens (geometric-ish).
  double mean_utterance_length = 9.0;
  /// Speaking speed in tokens per second (drives duration).
  double tokens_per_second = 2.2;
};

struct Transcript {
  /// Token ids into the generating vocabulary.
  std::vector<size_t> tokens;
  /// Utterance boundary offsets (end index of each utterance, exclusive).
  std::vector<size_t> utterance_ends;
  /// Simulated audio length in seconds.
  double duration_seconds = 0.0;

  size_t size() const { return tokens.size(); }
  size_t num_utterances() const { return utterance_ends.size(); }
};

/// Samples a transcript of approximately `target_tokens` tokens.
Transcript GenerateTranscript(const SpeakerProfile& profile,
                              const Vocabulary& vocabulary,
                              size_t target_tokens, Rng* rng);

/// Renders tokens as a space-separated string (debugging / examples).
std::string ToText(const Transcript& transcript,
                   const Vocabulary& vocabulary, size_t max_tokens = 40);

}  // namespace rll::text

#endif  // RLL_TEXT_TRANSCRIPT_H_
