// End-to-end oral-fluency dataset built mechanistically: latent fluency
// class → speaker profile → simulated transcript → linguistic features.
// A drop-in alternative to data::GenerateSynthetic for the oral task whose
// features come from an actual generative process instead of Gaussian
// blocks (DESIGN.md §2 documents both substitutions).

#ifndef RLL_TEXT_TEXT_DATASET_H_
#define RLL_TEXT_TEXT_DATASET_H_

#include "data/dataset.h"
#include "text/linguistic_features.h"
#include "text/transcript.h"

namespace rll::text {

struct TextSimConfig {
  size_t num_examples = 880;
  /// pos:neg = 1.8 like the paper's oral dataset.
  double positive_fraction = 1.8 / 2.8;
  /// Target transcript length range (uniform).
  size_t min_tokens = 60;
  size_t max_tokens = 160;
  /// Prototype profile of a fluent speaker (class 1). The prototypes are
  /// deliberately close — real fluency judgments are ambiguous — and the
  /// per-speaker noise below makes the classes overlap substantially.
  SpeakerProfile fluent = {.filler_rate = 0.055,
                           .pause_rate = 0.045,
                           .repetition_rate = 0.025,
                           .math_term_share = 0.44,
                           .zipf_exponent = 0.95,
                           .mean_utterance_length = 9.5,
                           .tokens_per_second = 2.35};
  /// Prototype profile of an influent speaker (class 0).
  SpeakerProfile influent = {.filler_rate = 0.095,
                             .pause_rate = 0.075,
                             .repetition_rate = 0.045,
                             .math_term_share = 0.36,
                             .zipf_exponent = 1.25,
                             .mean_utterance_length = 7.5,
                             .tokens_per_second = 2.0};
  /// Per-speaker lognormal variation around the prototype rates — classes
  /// overlap, so the task is noisy like real fluency judgments.
  double profile_noise = 0.45;
};

/// Draws one speaker's profile around the class prototype.
SpeakerProfile SampleProfile(const SpeakerProfile& prototype,
                             double profile_noise, Rng* rng);

struct TextDatasetResult {
  data::Dataset dataset;
  /// The generated transcripts, index-aligned with the dataset (kept for
  /// inspection / examples).
  std::vector<Transcript> transcripts;
};

/// Generates the dataset. Crowd annotations are added separately by
/// crowd::WorkerPool, exactly as with the Gaussian generator.
TextDatasetResult GenerateOralTextDataset(const TextSimConfig& config,
                                          Rng* rng);

}  // namespace rll::text

#endif  // RLL_TEXT_TEXT_DATASET_H_
