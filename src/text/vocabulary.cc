#include "text/vocabulary.h"

namespace rll::text {

namespace {

std::vector<Vocabulary::Entry> DefaultEntries() {
  std::vector<Vocabulary::Entry> entries;
  auto add = [&entries](TokenClass cls,
                        std::initializer_list<const char*> words) {
    for (const char* w : words) entries.push_back({w, cls});
  };
  add(TokenClass::kContent,
      {"apples",  "candies", "marbles", "pencils", "stickers", "books",
       "friends", "box",     "bag",     "basket",  "table",    "class",
       "teacher", "mom",     "store",   "gave",    "took",     "bought",
       "shared",  "counted", "left",    "more",    "fewer",    "each",
       "group",   "puts",    "needs",   "finds",   "makes",    "keeps",
       "red",     "blue",    "big",     "small",   "first",    "then",
       "because", "answer",  "question", "story"});
  add(TokenClass::kFunction,
      {"the", "a",  "an",  "i",   "we",  "he",  "she", "it",  "and",
       "so",  "to", "of",  "in",  "on",  "at",  "is",  "are", "was",
       "has", "had", "that", "this", "with", "for"});
  add(TokenClass::kMathTerm,
      {"one",      "two",     "three",  "four",   "five",     "six",
       "seven",    "eight",   "nine",   "ten",    "twenty",   "hundred",
       "plus",     "minus",   "times",  "divide", "equals",   "sum",
       "total",    "add",     "subtract", "count", "number",  "half",
       "double",   "tens",    "ones",   "carry",  "borrow",   "groups"});
  add(TokenClass::kFiller, {"um", "uh", "er", "hmm", "like", "well", "so-um"});
  add(TokenClass::kPause, {"<pause>"});
  return entries;
}

}  // namespace

Vocabulary::Vocabulary(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  RLL_CHECK(!entries_.empty());
  by_class_.resize(5);
  for (size_t id = 0; id < entries_.size(); ++id) {
    by_class_[static_cast<size_t>(entries_[id].token_class)].push_back(id);
  }
}

const Vocabulary& Vocabulary::Default() {
  // Meyers singleton: construct-on-first-use without a heap allocation, so
  // leak-checked (ASan/LSan) builds run clean without suppressions.
  static const Vocabulary instance(DefaultEntries());
  return instance;
}

const std::vector<size_t>& Vocabulary::ids_of(TokenClass token_class) const {
  return by_class_[static_cast<size_t>(token_class)];
}

}  // namespace rll::text
