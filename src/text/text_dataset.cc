#include "text/text_dataset.h"

#include <cmath>

namespace rll::text {

namespace {

/// Multiplies a rate by lognormal noise, clamped to a sane range.
double Jitter(double value, double noise, double lo, double hi, Rng* rng) {
  const double v = value * std::exp(rng->Normal(0.0, noise));
  return std::min(std::max(v, lo), hi);
}

}  // namespace

SpeakerProfile SampleProfile(const SpeakerProfile& prototype,
                             double profile_noise, Rng* rng) {
  SpeakerProfile p = prototype;
  p.filler_rate = Jitter(prototype.filler_rate, profile_noise, 0.0, 0.4, rng);
  p.pause_rate = Jitter(prototype.pause_rate, profile_noise, 0.0, 0.4, rng);
  p.repetition_rate =
      Jitter(prototype.repetition_rate, profile_noise, 0.0, 0.3, rng);
  p.math_term_share =
      Jitter(prototype.math_term_share, profile_noise, 0.05, 0.9, rng);
  p.zipf_exponent =
      Jitter(prototype.zipf_exponent, profile_noise, 0.3, 3.0, rng);
  p.mean_utterance_length =
      Jitter(prototype.mean_utterance_length, profile_noise, 2.0, 30.0, rng);
  p.tokens_per_second =
      Jitter(prototype.tokens_per_second, profile_noise, 0.8, 5.0, rng);
  return p;
}

TextDatasetResult GenerateOralTextDataset(const TextSimConfig& config,
                                          Rng* rng) {
  RLL_CHECK_GT(config.num_examples, 0u);
  RLL_CHECK(config.positive_fraction > 0.0 && config.positive_fraction < 1.0);
  RLL_CHECK_GE(config.max_tokens, config.min_tokens);
  RLL_CHECK_GT(config.min_tokens, 0u);

  const Vocabulary& vocabulary = Vocabulary::Default();
  const size_t n = config.num_examples;

  // Exact class counts to pin the ratio.
  const size_t num_pos = static_cast<size_t>(
      std::lround(config.positive_fraction * static_cast<double>(n)));
  std::vector<int> labels(n, 0);
  for (size_t i = 0; i < num_pos && i < n; ++i) labels[i] = 1;
  rng->Shuffle(&labels);

  Matrix features(n, NumFeatures());
  std::vector<Transcript> transcripts;
  transcripts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const SpeakerProfile profile = SampleProfile(
        labels[i] == 1 ? config.fluent : config.influent,
        config.profile_noise, rng);
    const size_t target =
        config.min_tokens +
        static_cast<size_t>(
            rng->UniformInt(config.max_tokens - config.min_tokens + 1));
    Transcript transcript =
        GenerateTranscript(profile, vocabulary, target, rng);
    features.SetRow(i, ExtractFeatures(transcript, vocabulary));
    transcripts.push_back(std::move(transcript));
  }

  TextDatasetResult result{data::Dataset(std::move(features), labels),
                           std::move(transcripts)};
  return result;
}

}  // namespace rll::text
