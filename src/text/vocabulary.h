// Token vocabulary for the transcript simulator. The paper's oral dataset
// consists of grade-2 students explaining math solutions; the built-in
// vocabulary mirrors that register: math terms, everyday content words,
// function words, hesitation fillers, and an explicit pause marker (what an
// ASR system emits for silence).

#ifndef RLL_TEXT_VOCABULARY_H_
#define RLL_TEXT_VOCABULARY_H_

#include <string>
#include <vector>

#include "common/check.h"

namespace rll::text {

enum class TokenClass {
  kContent,   // Everyday content words.
  kFunction,  // Articles, prepositions, pronouns.
  kMathTerm,  // Domain vocabulary ("plus", "hundred", "equals").
  kFiller,    // Hesitations ("um", "uh", "like").
  kPause,     // Silence marker from the ASR.
};

class Vocabulary {
 public:
  struct Entry {
    std::string word;
    TokenClass token_class;
  };

  /// The built-in grade-2 math register (shared instance).
  static const Vocabulary& Default();

  /// Builds from explicit entries (tests / custom registers).
  explicit Vocabulary(std::vector<Entry> entries);

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t id) const {
    RLL_DCHECK(id < entries_.size());
    return entries_[id];
  }
  const std::string& word(size_t id) const { return entry(id).word; }
  TokenClass token_class(size_t id) const { return entry(id).token_class; }

  /// Token ids of one class, in vocabulary order.
  const std::vector<size_t>& ids_of(TokenClass token_class) const;

 private:
  std::vector<Entry> entries_;
  std::vector<std::vector<size_t>> by_class_;
};

}  // namespace rll::text

#endif  // RLL_TEXT_VOCABULARY_H_
