// Linguistic feature extraction — the "wide range of linguistic features
// from the raw texts after automatic speech recognition" that §IV-B of the
// paper feeds to every method. Fixed-length, order-stable vector so feature
// matrices line up across examples.

#ifndef RLL_TEXT_LINGUISTIC_FEATURES_H_
#define RLL_TEXT_LINGUISTIC_FEATURES_H_

#include <string>
#include <vector>

#include "text/transcript.h"

namespace rll::text {

/// Names of the extracted features, index-aligned with ExtractFeatures.
const std::vector<std::string>& FeatureNames();

/// Number of features (== FeatureNames().size()).
size_t NumFeatures();

/// Extracts the feature vector from one transcript:
///   token_count, duration, speech_rate, type_token_ratio, hapax_ratio,
///   filler_ratio, pause_ratio, math_term_ratio, function_ratio,
///   repetition_ratio, mean_utterance_len, utterance_len_stddev,
///   distinct_bigram_ratio, max_filler_run.
std::vector<double> ExtractFeatures(const Transcript& transcript,
                                    const Vocabulary& vocabulary);

}  // namespace rll::text

#endif  // RLL_TEXT_LINGUISTIC_FEATURES_H_
