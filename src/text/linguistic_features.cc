#include "text/linguistic_features.h"

#include <cmath>
#include <set>

#include "common/check.h"

namespace rll::text {

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> names{
      "token_count",        "duration_seconds",  "speech_rate",
      "type_token_ratio",   "hapax_ratio",       "filler_ratio",
      "pause_ratio",        "math_term_ratio",   "function_ratio",
      "repetition_ratio",   "mean_utterance_len",
      "utterance_len_stddev", "distinct_bigram_ratio",
      "max_filler_run"};
  return names;
}

size_t NumFeatures() { return FeatureNames().size(); }

std::vector<double> ExtractFeatures(const Transcript& transcript,
                                    const Vocabulary& vocabulary) {
  RLL_CHECK(!transcript.tokens.empty());
  const double n = static_cast<double>(transcript.tokens.size());

  // Class counts, distinct types, repetitions, filler runs, bigrams.
  size_t fillers = 0, pauses = 0, math_terms = 0, function_words = 0;
  size_t repetitions = 0;
  size_t filler_run = 0, max_filler_run = 0;
  std::set<size_t> types;
  std::set<std::pair<size_t, size_t>> bigrams;
  std::vector<size_t> type_counts(vocabulary.size(), 0);

  size_t previous = vocabulary.size();
  for (size_t i = 0; i < transcript.tokens.size(); ++i) {
    const size_t t = transcript.tokens[i];
    const TokenClass cls = vocabulary.token_class(t);
    types.insert(t);
    type_counts[t]++;
    switch (cls) {
      case TokenClass::kFiller:
        ++fillers;
        ++filler_run;
        max_filler_run = std::max(max_filler_run, filler_run);
        break;
      case TokenClass::kPause:
        ++pauses;
        filler_run = 0;
        break;
      case TokenClass::kMathTerm:
        ++math_terms;
        filler_run = 0;
        break;
      case TokenClass::kFunction:
        ++function_words;
        filler_run = 0;
        break;
      case TokenClass::kContent:
        filler_run = 0;
        break;
    }
    if (i > 0) {
      if (t == transcript.tokens[i - 1]) ++repetitions;
      bigrams.insert({transcript.tokens[i - 1], t});
    }
    previous = t;
  }
  (void)previous;

  size_t hapaxes = 0;
  for (size_t c : type_counts) hapaxes += (c == 1);

  // Utterance length stats.
  double mean_len = 0.0, len_var = 0.0;
  if (!transcript.utterance_ends.empty()) {
    std::vector<double> lengths;
    size_t start = 0;
    for (size_t end : transcript.utterance_ends) {
      lengths.push_back(static_cast<double>(end - start));
      start = end;
    }
    for (double l : lengths) mean_len += l;
    mean_len /= static_cast<double>(lengths.size());
    for (double l : lengths) len_var += (l - mean_len) * (l - mean_len);
    len_var /= static_cast<double>(lengths.size());
  }

  const double duration = std::max(transcript.duration_seconds, 1e-9);
  std::vector<double> features = {
      n,
      transcript.duration_seconds,
      n / duration,
      static_cast<double>(types.size()) / n,
      static_cast<double>(hapaxes) / n,
      static_cast<double>(fillers) / n,
      static_cast<double>(pauses) / n,
      static_cast<double>(math_terms) / n,
      static_cast<double>(function_words) / n,
      transcript.tokens.size() > 1
          ? static_cast<double>(repetitions) / (n - 1.0)
          : 0.0,
      mean_len,
      std::sqrt(len_var),
      transcript.tokens.size() > 1
          ? static_cast<double>(bigrams.size()) / (n - 1.0)
          : 0.0,
      static_cast<double>(max_filler_run),
  };
  RLL_CHECK_EQ(features.size(), NumFeatures());
  return features;
}

}  // namespace rll::text
