// Weight initializers for neural layers and random matrix constructors.

#ifndef RLL_TENSOR_INIT_H_
#define RLL_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace rll {

/// Elementwise Uniform(lo, hi).
Matrix RandomUniform(size_t rows, size_t cols, Rng* rng, double lo = 0.0,
                     double hi = 1.0);

/// Elementwise Normal(mean, stddev).
Matrix RandomNormal(size_t rows, size_t cols, Rng* rng, double mean = 0.0,
                    double stddev = 1.0);

/// Xavier/Glorot uniform: U(±sqrt(6/(fan_in+fan_out))). Suits tanh layers
/// (the paper's MLP uses saturating nonlinearities).
Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng* rng);

/// He normal: N(0, sqrt(2/fan_in)); suits ReLU layers.
Matrix HeNormal(size_t fan_in, size_t fan_out, Rng* rng);

}  // namespace rll

#endif  // RLL_TENSOR_INIT_H_
