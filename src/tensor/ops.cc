// rll-analyze: hot-path — every kernel here sits inside the trainer batch
// loop or the serve request path; allocation is reserved for Reshape growth.
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/finite_check.h"
#include "common/threading.h"

namespace rll {

namespace {

// Grain calibration, measured with bench/micro_ops on the release preset:
// dispatching one pool chunk costs a few microseconds, so a chunk must carry
// at least ~64k flops (gemm) or ~16k touched elements (memory-bound maps)
// before parallelism wins. Work below the serial thresholds runs as a single
// inline chunk — identical code path and cost to the pre-pool kernels.
constexpr size_t kGemmSerialFlops = 1u << 18;
constexpr size_t kGemmGrainFlops = 1u << 16;
constexpr size_t kElemSerialSize = 1u << 15;
constexpr size_t kElemGrain = 1u << 14;
constexpr size_t kRowSerialSize = 1u << 15;
constexpr size_t kRowGrainFlops = 1u << 13;
constexpr size_t kReduceGrain = 1u << 15;

// Rows per chunk for a gemm-shaped kernel doing `flops_per_row` work per
// row; collapses to one chunk (inline execution) under the serial floor.
size_t GemmRowGrain(size_t rows, size_t flops_per_row) {
  if (rows * flops_per_row < kGemmSerialFlops) return std::max<size_t>(rows, 1);
  return std::max<size_t>(1, kGemmGrainFlops / std::max<size_t>(flops_per_row, 1));
}

// Rows per chunk for a row-wise map touching `cols` elements per row.
size_t RowOpGrain(size_t rows, size_t cols) {
  if (rows * cols < kRowSerialSize) return std::max<size_t>(rows, 1);
  return std::max<size_t>(1, kRowGrainFlops / std::max<size_t>(cols, 1));
}

// Elements per chunk for flat elementwise maps.
size_t ElemGrain(size_t n) {
  return n < kElemSerialSize ? std::max<size_t>(n, 1) : kElemGrain;
}

// Reshapes `out` to rows×cols, zeroing it either way (accumulating kernels).
// Reshape keeps capacity, so an output cycled through varying shapes (serve
// batches) reallocates only until it has seen its largest shape.
void EnsureZeroed(Matrix& out, size_t rows, size_t cols) {
  out.Reshape(rows, cols);
  out.Fill(0.0);
}

// Reshapes `out` without clearing it (kernels that overwrite every element;
// any garbage surviving the capacity reuse is overwritten before it is read).
void EnsureShape(Matrix& out, size_t rows, size_t cols) {
  out.Reshape(rows, cols);
}

}  // namespace

void MulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  RLL_CHECK_EQ(a.cols(), b.rows());
  EnsureZeroed(out, a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  // Rows of c are independent, so the row partition is bitwise-stable.
  ParallelFor(0, a.rows(), GemmRowGrain(a.rows(), a.cols() * b.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t i = row_begin; i < row_end; ++i) {
                  const double* arow = a.row_data(i);
                  double* crow = out.row_data(i);
                  for (size_t k = 0; k < a.cols(); ++k) {
                    const double aik = arow[k];
                    if (aik == 0.0) continue;
                    const double* brow = b.row_data(k);
                    for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
                  }
                }
              });
  RLL_DCHECK_FINITE(out);
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MulInto(a, b, c);
  return c;
}

void MulTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out) {
  RLL_CHECK_EQ(a.rows(), b.rows());
  EnsureZeroed(out, a.cols(), b.cols());
  // i-outer so rows of c are written by exactly one chunk; per element the
  // accumulation still runs over k ascending (with the same zero-skip), so
  // the sums match the historical k-outer kernel bit for bit.
  ParallelFor(0, a.cols(), GemmRowGrain(a.cols(), a.rows() * b.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t i = row_begin; i < row_end; ++i) {
                  double* crow = out.row_data(i);
                  for (size_t k = 0; k < a.rows(); ++k) {
                    const double aki = a(k, i);
                    if (aki == 0.0) continue;
                    const double* brow = b.row_data(k);
                    for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
                  }
                }
              });
  RLL_DCHECK_FINITE(out);
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  Matrix c;
  MulTransposeAInto(a, b, c);
  return c;
}

void MulTransposeBInto(const Matrix& a, const Matrix& b, Matrix& out) {
  RLL_CHECK_EQ(a.cols(), b.cols());
  EnsureShape(out, a.rows(), b.rows());
  ParallelFor(0, a.rows(), GemmRowGrain(a.rows(), b.rows() * a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t i = row_begin; i < row_end; ++i) {
                  const double* arow = a.row_data(i);
                  double* crow = out.row_data(i);
                  for (size_t j = 0; j < b.rows(); ++j) {
                    const double* brow = b.row_data(j);
                    double acc = 0.0;
                    for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
                    crow[j] = acc;
                  }
                }
              });
  RLL_DCHECK_FINITE(out);
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix c;
  MulTransposeBInto(a, b, c);
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  ParallelFor(0, a.cols(), RowOpGrain(a.cols(), a.rows()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  double* trow = t.row_data(r);
                  for (size_t c = 0; c < a.rows(); ++c) trow[c] = a(c, r);
                }
              });
  return t;
}

void AddInto(const Matrix& a, const Matrix& b, Matrix& out) {
  RLL_CHECK(a.SameShape(b));
  EnsureShape(out, a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) out[i] = a[i] + b[i];
  });
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c;
  AddInto(a, b, c);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) c[i] = a[i] - b[i];
  });
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) c[i] = a[i] * b[i];
  });
  return c;
}

Matrix Divide(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) c[i] = a[i] / b[i];
  });
  return c;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix c(a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) c[i] = a[i] * s;
  });
  return c;
}

Matrix AddScalar(const Matrix& a, double s) {
  Matrix c(a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) c[i] = a[i] + s;
  });
  return c;
}

void AddRowBroadcastInPlace(Matrix& m, const Matrix& row) {
  RLL_CHECK_EQ(row.rows(), 1u);
  RLL_CHECK_EQ(row.cols(), m.cols());
  ParallelFor(0, m.rows(), RowOpGrain(m.rows(), m.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  double* mrow = m.row_data(r);
                  for (size_t j = 0; j < m.cols(); ++j) mrow[j] += row[j];
                }
              });
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  Matrix c = a;
  AddRowBroadcastInPlace(c, row);
  return c;
}

Matrix MulRowBroadcast(const Matrix& a, const Matrix& row) {
  RLL_CHECK_EQ(row.rows(), 1u);
  RLL_CHECK_EQ(row.cols(), a.cols());
  Matrix c = a;
  ParallelFor(0, c.rows(), RowOpGrain(c.rows(), c.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  double* crow = c.row_data(r);
                  for (size_t j = 0; j < c.cols(); ++j) crow[j] *= row[j];
                }
              });
  return c;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  RLL_CHECK_EQ(col.cols(), 1u);
  RLL_CHECK_EQ(col.rows(), a.rows());
  Matrix c = a;
  ParallelFor(0, c.rows(), RowOpGrain(c.rows(), c.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double s = col(r, 0);
                  double* crow = c.row_data(r);
                  for (size_t j = 0; j < c.cols(); ++j) crow[j] *= s;
                }
              });
  return c;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c(a.rows(), a.cols());
  ParallelFor(0, a.size(), ElemGrain(a.size()), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) c[i] = f(a[i]);
  });
  return c;
}

double Sum(const Matrix& a) {
  const size_t n = a.size();
  if (n <= kReduceGrain) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += a[i];
    return s;
  }
  // Chunk boundaries depend only on n, so the tree shape (and the FP
  // result) is identical at any thread count.
  return ParallelReduce(
      0, n, kReduceGrain, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += a[i];
        return s;
      },
      [](double x, double y) { return x + y; });
}

double Mean(const Matrix& a) {
  RLL_CHECK_GT(a.size(), 0u);
  return Sum(a) / static_cast<double>(a.size());
}

double Min(const Matrix& a) {
  RLL_CHECK_GT(a.size(), 0u);
  double m = a[0];
  for (size_t i = 1; i < a.size(); ++i) m = std::min(m, a[i]);
  return m;
}

double Max(const Matrix& a) {
  RLL_CHECK_GT(a.size(), 0u);
  double m = a[0];
  for (size_t i = 1; i < a.size(); ++i) m = std::max(m, a[i]);
  return m;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowOpGrain(a.rows(), a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double* row = a.row_data(r);
                  double s = 0.0;
                  for (size_t c = 0; c < a.cols(); ++c) s += row[c];
                  out(r, 0) = s;
                }
              });
  return out;
}

Matrix ColSum(const Matrix& a) {
  // Accumulates across rows into one output row; kept serial so the
  // historical top-to-bottom summation order is preserved exactly.
  Matrix out(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    for (size_t c = 0; c < a.cols(); ++c) out[c] += row[c];
  }
  return out;
}

Matrix ColMean(const Matrix& a) {
  RLL_CHECK_GT(a.rows(), 0u);
  Matrix out = ColSum(a);
  out *= 1.0 / static_cast<double>(a.rows());
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  const size_t n = a.size();
  if (n <= kReduceGrain) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  }
  return ParallelReduce(
      0, n, kReduceGrain, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += a[i] * b[i];
        return s;
      },
      [](double x, double y) { return x + y; });
}

double Norm(const Matrix& a) { return std::sqrt(Dot(a, a)); }

Matrix RowNorms(const Matrix& a, double eps) {
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowOpGrain(a.rows(), a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double* row = a.row_data(r);
                  double s = 0.0;
                  for (size_t c = 0; c < a.cols(); ++c) s += row[c] * row[c];
                  out(r, 0) = std::max(std::sqrt(s), eps);
                }
              });
  return out;
}

Matrix RowCosine(const Matrix& a, const Matrix& b, double eps) {
  RLL_CHECK(a.SameShape(b));
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowOpGrain(a.rows(), a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double* ar = a.row_data(r);
                  const double* br = b.row_data(r);
                  double dot = 0.0, na = 0.0, nb = 0.0;
                  for (size_t c = 0; c < a.cols(); ++c) {
                    dot += ar[c] * br[c];
                    na += ar[c] * ar[c];
                    nb += br[c] * br[c];
                  }
                  out(r, 0) = dot / (std::max(std::sqrt(na), eps) *
                                     std::max(std::sqrt(nb), eps));
                }
              });
  RLL_DCHECK_FINITE(out);
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.rows(), RowOpGrain(a.rows(), a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double* in = a.row_data(r);
                  double* o = out.row_data(r);
                  double mx = in[0];
                  for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
                  double z = 0.0;
                  for (size_t c = 0; c < a.cols(); ++c) {
                    o[c] = std::exp(in[c] - mx);
                    z += o[c];
                  }
                  for (size_t c = 0; c < a.cols(); ++c) {
                    o[c] /= z;
                    RLL_DCHECK_PROB(o[c]);
                  }
                }
              });
  return out;
}

Matrix LogSumExpRows(const Matrix& a) {
  Matrix out(a.rows(), 1);
  ParallelFor(0, a.rows(), RowOpGrain(a.rows(), a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double* in = a.row_data(r);
                  double mx = in[0];
                  for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
                  double z = 0.0;
                  for (size_t c = 0; c < a.cols(); ++c) z += std::exp(in[c] - mx);
                  out(r, 0) = mx + std::log(z);
                }
              });
  RLL_DCHECK_FINITE(out);
  return out;
}

std::vector<size_t> ArgmaxRows(const Matrix& a) {
  RLL_CHECK_GT(a.cols(), 0u);
  std::vector<size_t> out(a.rows());
  ParallelFor(0, a.rows(), RowOpGrain(a.rows(), a.cols()),
              [&](size_t row_begin, size_t row_end) {
                for (size_t r = row_begin; r < row_end; ++r) {
                  const double* row = a.row_data(r);
                  size_t best = 0;
                  for (size_t c = 1; c < a.cols(); ++c) {
                    if (row[c] > row[best]) best = c;
                  }
                  out[r] = best;
                }
              });
  return out;
}

}  // namespace rll
