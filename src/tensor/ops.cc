#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/finite_check.h"

namespace rll {

Matrix Matmul(const Matrix& a, const Matrix& b) {
  RLL_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  RLL_DCHECK_FINITE(c);
  return c;
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  RLL_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_data(k);
    const double* brow = b.row_data(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_data(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  RLL_DCHECK_FINITE(c);
  return c;
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  RLL_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_data(j);
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  RLL_DCHECK_FINITE(c);
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r)
    for (size_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

Matrix Divide(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] / b[i];
  return c;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix c = a;
  c *= s;
  return c;
}

Matrix AddScalar(const Matrix& a, double s) {
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c[i] += s;
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  RLL_CHECK_EQ(row.rows(), 1u);
  RLL_CHECK_EQ(row.cols(), a.cols());
  Matrix c = a;
  for (size_t r = 0; r < c.rows(); ++r) {
    double* crow = c.row_data(r);
    for (size_t j = 0; j < c.cols(); ++j) crow[j] += row[j];
  }
  return c;
}

Matrix MulRowBroadcast(const Matrix& a, const Matrix& row) {
  RLL_CHECK_EQ(row.rows(), 1u);
  RLL_CHECK_EQ(row.cols(), a.cols());
  Matrix c = a;
  for (size_t r = 0; r < c.rows(); ++r) {
    double* crow = c.row_data(r);
    for (size_t j = 0; j < c.cols(); ++j) crow[j] *= row[j];
  }
  return c;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  RLL_CHECK_EQ(col.cols(), 1u);
  RLL_CHECK_EQ(col.rows(), a.rows());
  Matrix c = a;
  for (size_t r = 0; r < c.rows(); ++r) {
    const double s = col(r, 0);
    double* crow = c.row_data(r);
    for (size_t j = 0; j < c.cols(); ++j) crow[j] *= s;
  }
  return c;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c[i] = f(a[i]);
  return c;
}

double Sum(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double Mean(const Matrix& a) {
  RLL_CHECK_GT(a.size(), 0u);
  return Sum(a) / static_cast<double>(a.size());
}

double Min(const Matrix& a) {
  RLL_CHECK_GT(a.size(), 0u);
  double m = a[0];
  for (size_t i = 1; i < a.size(); ++i) m = std::min(m, a[i]);
  return m;
}

double Max(const Matrix& a) {
  RLL_CHECK_GT(a.size(), 0u);
  double m = a[0];
  for (size_t i = 1; i < a.size(); ++i) m = std::max(m, a[i]);
  return m;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    double s = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) s += row[c];
    out(r, 0) = s;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    for (size_t c = 0; c < a.cols(); ++c) out[c] += row[c];
  }
  return out;
}

Matrix ColMean(const Matrix& a) {
  RLL_CHECK_GT(a.rows(), 0u);
  Matrix out = ColSum(a);
  out *= 1.0 / static_cast<double>(a.rows());
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  RLL_CHECK(a.SameShape(b));
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Matrix& a) { return std::sqrt(Dot(a, a)); }

Matrix RowNorms(const Matrix& a, double eps) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    double s = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) s += row[c] * row[c];
    out(r, 0) = std::max(std::sqrt(s), eps);
  }
  return out;
}

Matrix RowCosine(const Matrix& a, const Matrix& b, double eps) {
  RLL_CHECK(a.SameShape(b));
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row_data(r);
    const double* br = b.row_data(r);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
      dot += ar[c] * br[c];
      na += ar[c] * ar[c];
      nb += br[c] * br[c];
    }
    out(r, 0) =
        dot / (std::max(std::sqrt(na), eps) * std::max(std::sqrt(nb), eps));
  }
  RLL_DCHECK_FINITE(out);
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* in = a.row_data(r);
    double* o = out.row_data(r);
    double mx = in[0];
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double z = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      z += o[c];
    }
    for (size_t c = 0; c < a.cols(); ++c) {
      o[c] /= z;
      RLL_DCHECK_PROB(o[c]);
    }
  }
  return out;
}

Matrix LogSumExpRows(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* in = a.row_data(r);
    double mx = in[0];
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double z = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) z += std::exp(in[c] - mx);
    out(r, 0) = mx + std::log(z);
  }
  RLL_DCHECK_FINITE(out);
  return out;
}

std::vector<size_t> ArgmaxRows(const Matrix& a) {
  RLL_CHECK_GT(a.cols(), 0u);
  std::vector<size_t> out(a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    size_t best = 0;
    for (size_t c = 1; c < a.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

}  // namespace rll
