#include "tensor/serialize.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rll {

Status WriteMatrix(std::ostream* os, const Matrix& m) {
  (*os) << "matrix " << m.rows() << " " << m.cols() << "\n";
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row_data(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) (*os) << " ";
      (*os) << StrFormat("%.17g", row[c]);
    }
    (*os) << "\n";
  }
  if (!os->good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Result<Matrix> ReadMatrix(std::istream* is) {
  std::string tag;
  size_t rows = 0, cols = 0;
  if (!((*is) >> tag >> rows >> cols)) {
    return Status::IOError("failed to read matrix header");
  }
  if (tag != "matrix") {
    return Status::InvalidArgument("bad matrix header tag: " + tag);
  }
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows * cols; ++i) {
    if (!((*is) >> m[i])) {
      return Status::IOError(
          StrFormat("failed to read matrix element %zu of %zu", i,
                    rows * cols));
    }
  }
  return m;
}

Status SaveMatrix(const std::string& path, const Matrix& m) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  return WriteMatrix(&f, m);
}

Result<Matrix> LoadMatrix(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  return ReadMatrix(&f);
}

}  // namespace rll
