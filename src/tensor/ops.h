// Free-function kernels over Matrix: BLAS-like products, elementwise maps,
// reductions, and row-wise similarity/softmax primitives used throughout the
// autograd layer and the classic-ML baselines.
//
// Large kernels run on the global ThreadPool (common/threading.h) with
// fixed row/element partitions, so results are bitwise identical at any
// thread count; below the per-kernel serial thresholds they run inline,
// so paper-scale matrices never pay queue overhead. Reductions (Sum, Dot)
// switch to a deterministic chunked tree above a size threshold — the
// chunking depends only on the input size, never the thread count.

#ifndef RLL_TENSOR_OPS_H_
#define RLL_TENSOR_OPS_H_

#include <functional>

#include "tensor/matrix.h"

namespace rll {

/// C = A·B. Requires a.cols() == b.rows().
Matrix Matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ·B without materializing the transpose.
Matrix MatmulTransposeA(const Matrix& a, const Matrix& b);

/// C = A·Bᵀ without materializing the transpose.
Matrix MatmulTransposeB(const Matrix& a, const Matrix& b);

/// out = A·B into a caller-provided matrix (reshaped when needed), so
/// steady-state loops reuse one buffer instead of allocating per call.
/// `out` must not alias a or b.
void MulInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out = Aᵀ·B; same contract as MulInto.
void MulTransposeAInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out = A·Bᵀ; same contract as MulInto.
void MulTransposeBInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out = A + B elementwise. `out` may alias a or b.
void AddInto(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds a 1×cols row vector to every row of `m`, in place.
void AddRowBroadcastInPlace(Matrix& m, const Matrix& row);

Matrix Transpose(const Matrix& a);

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
/// Elementwise product.
Matrix Hadamard(const Matrix& a, const Matrix& b);
/// Elementwise quotient; caller guarantees b has no zeros.
Matrix Divide(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double s);
Matrix AddScalar(const Matrix& a, double s);

/// Adds a 1×cols row vector to every row of a.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);
/// Multiplies every row of a elementwise by a 1×cols row vector.
Matrix MulRowBroadcast(const Matrix& a, const Matrix& row);
/// Multiplies row r of a by col(r, 0) of a rows×1 column vector.
Matrix MulColBroadcast(const Matrix& a, const Matrix& col);

/// Applies f to every element.
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

double Sum(const Matrix& a);
double Mean(const Matrix& a);
double Min(const Matrix& a);
double Max(const Matrix& a);
/// Sum over columns → rows×1.
Matrix RowSum(const Matrix& a);
/// Sum over rows → 1×cols.
Matrix ColSum(const Matrix& a);
/// Mean over rows → 1×cols.
Matrix ColMean(const Matrix& a);

/// Inner product of two same-shaped matrices viewed as flat vectors.
double Dot(const Matrix& a, const Matrix& b);
/// Frobenius / L2 norm.
double Norm(const Matrix& a);

/// Row-wise L2 norms → rows×1. Never returns exact zeros: clamped at eps.
Matrix RowNorms(const Matrix& a, double eps = 1e-12);

/// cosine(a_r, b_r) per row → rows×1. Shapes must match.
Matrix RowCosine(const Matrix& a, const Matrix& b, double eps = 1e-12);

/// Numerically stable row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// log(sum(exp(row))) per row → rows×1, numerically stable.
Matrix LogSumExpRows(const Matrix& a);

/// Index of the max element in each row → vector of size rows.
std::vector<size_t> ArgmaxRows(const Matrix& a);

}  // namespace rll

#endif  // RLL_TENSOR_OPS_H_
