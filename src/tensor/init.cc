#include "tensor/init.h"

#include <cmath>

namespace rll {

Matrix RandomUniform(size_t rows, size_t cols, Rng* rng, double lo,
                     double hi) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m[i] = rng->Uniform(lo, hi);
  return m;
}

Matrix RandomNormal(size_t rows, size_t cols, Rng* rng, double mean,
                    double stddev) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m[i] = rng->Normal(mean, stddev);
  return m;
}

Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng* rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, rng, -limit, limit);
}

Matrix HeNormal(size_t fan_in, size_t fan_out, Rng* rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return RandomNormal(fan_in, fan_out, rng, 0.0, stddev);
}

}  // namespace rll
