// Dense row-major matrix of doubles — the numeric workhorse under the
// autograd, nn, and classic-ML layers. Vectors are 1×n or n×1 matrices.

#ifndef RLL_TENSOR_MATRIX_H_
#define RLL_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/check.h"

namespace rll {

class Matrix {
 public:
  /// Empty 0×0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows×cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Copies a flat row-major buffer. data.size() must equal rows*cols.
  Matrix(size_t rows, size_t cols, const std::vector<double>& data);

  /// Builds from nested initializer lists: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Zeros(size_t rows, size_t cols) {
    return Matrix(rows, cols, 0.0);
  }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0);
  }
  static Matrix Identity(size_t n);
  /// Column vector from values.
  static Matrix ColVector(const std::vector<double>& values);
  /// Row vector from values.
  static Matrix RowVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    RLL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    RLL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Flat row-major access.
  double& operator[](size_t i) {
    RLL_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    RLL_DCHECK(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_data(size_t r) {
    RLL_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row_data(size_t r) const {
    RLL_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a new 1×cols matrix.
  Matrix Row(size_t r) const;
  /// Copies column c into a new rows×1 matrix.
  Matrix Col(size_t c) const;
  /// Overwrites row r from a 1×cols matrix or flat values.
  void SetRow(size_t r, const Matrix& row);
  void SetRow(size_t r, const std::vector<double>& values);

  /// Returns a new matrix of the selected rows, in the given order.
  Matrix GatherRows(const std::vector<size_t>& indices) const;
  /// Pointer form for hot paths whose index lists live in scratch storage.
  Matrix GatherRows(const size_t* indices, size_t count) const;
  /// Gathers into an existing matrix (reshaped to count×cols), so a
  /// workspace buffer can absorb the copy without allocating.
  void GatherRowsInto(const size_t* indices, size_t count,
                      Matrix& out) const;

  /// Re-declares the shape, reusing the existing storage. The value prefix
  /// that survives a std::vector resize is preserved; new elements are
  /// zero. Capacity is never released, so a steady-state loop that cycles
  /// shapes (e.g. varying serve batch sizes) stops allocating once it has
  /// seen its largest shape.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every element to `value`.
  void Fill(double value);

  /// In-place compound ops (shape-checked).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Elementwise exact equality (mostly for tests; prefer AllClose).
  bool operator==(const Matrix& other) const;

  /// True when |a-b| <= atol + rtol*|b| holds elementwise and shapes match.
  bool AllClose(const Matrix& other, double rtol = 1e-9,
                double atol = 1e-12) const;

  /// Human-readable rendering for debugging, e.g. "[[1, 2], [3, 4]]".
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  // Scratch-backed: inside an ArenaScope the elements land in the scope's
  // arena (per-batch temporaries cost a pointer bump); outside any scope
  // the allocator is a 64-byte-aligned heap — so every Matrix is
  // SIMD-aligned either way. See common/arena.h for the lifetime rule.
  ScratchVector<double> data_;
};

/// List of matrices whose spine follows the scratch rules — used for
/// per-batch collections (e.g. slot confidence matrices in the trainer).
using MatrixList = ScratchVector<Matrix>;

/// Keyed reusable Matrix buffers (see BasicWorkspace in common/arena.h).
using Workspace = BasicWorkspace<Matrix>;

}  // namespace rll

#endif  // RLL_TENSOR_MATRIX_H_
