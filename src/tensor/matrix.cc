#include "tensor/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace rll {

Matrix::Matrix(size_t rows, size_t cols, const std::vector<double>& data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
  RLL_CHECK_EQ(rows_ * cols_, data_.size());
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    RLL_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColVector(const std::vector<double>& values) {
  return Matrix(values.size(), 1, values);
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  return Matrix(1, values.size(), values);
}

Matrix Matrix::Row(size_t r) const {
  RLL_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  for (size_t c = 0; c < cols_; ++c) out(0, c) = (*this)(r, c);
  return out;
}

Matrix Matrix::Col(size_t c) const {
  RLL_CHECK_LT(c, cols_);
  Matrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) out(r, 0) = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const Matrix& row) {
  RLL_CHECK_LT(r, rows_);
  RLL_CHECK_EQ(row.rows(), 1u);
  RLL_CHECK_EQ(row.cols(), cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = row(0, c);
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  RLL_CHECK_LT(r, rows_);
  RLL_CHECK_EQ(values.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  return GatherRows(indices.data(), indices.size());
}

Matrix Matrix::GatherRows(const size_t* indices, size_t count) const {
  Matrix out(count, cols_);
  for (size_t i = 0; i < count; ++i) {
    RLL_CHECK_LT(indices[i], rows_);
    const double* src = row_data(indices[i]);
    double* dst = out.row_data(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::GatherRowsInto(const size_t* indices, size_t count,
                            Matrix& out) const {
  out.Reshape(count, cols_);
  for (size_t i = 0; i < count; ++i) {
    RLL_CHECK_LT(indices[i], rows_);
    const double* src = row_data(indices[i]);
    double* dst = out.row_data(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
}

void Matrix::Fill(double value) {
  for (double& v : data_) v = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  RLL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  RLL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

bool Matrix::operator==(const Matrix& other) const {
  return SameShape(other) && data_ == other.data_;
}

bool Matrix::AllClose(const Matrix& other, double rtol, double atol) const {
  if (!SameShape(other)) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double diff = std::fabs(data_[i] - other.data_[i]);
    if (diff > atol + rtol * std::fabs(other.data_[i])) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out = "[";
  for (size_t r = 0; r < rows_; ++r) {
    if (r > 0) out += ", ";
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += StrFormat("%.*g", precision, (*this)(r, c));
    }
    out += "]";
  }
  out += "]";
  return out;
}

}  // namespace rll
