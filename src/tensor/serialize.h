// Text (de)serialization of matrices — used for model checkpoints and for
// exporting learned embeddings to downstream tooling.
//
// Format (line-oriented, locale-independent):
//   matrix <rows> <cols>
//   <row 0: cols space-separated %.17g doubles>
//   ...

#ifndef RLL_TENSOR_SERIALIZE_H_
#define RLL_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "tensor/matrix.h"

namespace rll {

/// Writes `m` to the stream in the text format above.
Status WriteMatrix(std::ostream* os, const Matrix& m);

/// Reads one matrix from the stream; fails on malformed headers or rows.
Result<Matrix> ReadMatrix(std::istream* is);

/// Convenience file wrappers.
Status SaveMatrix(const std::string& path, const Matrix& m);
Result<Matrix> LoadMatrix(const std::string& path);

}  // namespace rll

#endif  // RLL_TENSOR_SERIALIZE_H_
