// Threshold-free metrics over predicted probabilities: ROC AUC and binary
// log-loss. Complements the thresholded metrics in classify/metrics.h when
// comparing calibration rather than hard decisions.

#ifndef RLL_CLASSIFY_RANKING_METRICS_H_
#define RLL_CLASSIFY_RANKING_METRICS_H_

#include <vector>

namespace rll::classify {

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic, with
/// ties counted as half. Returns 0.5 when either class is absent.
double RocAuc(const std::vector<int>& truth,
              const std::vector<double>& scores);

/// Mean binary cross-entropy −[y·log p + (1−y)·log(1−p)]; probabilities are
/// clamped to [eps, 1−eps].
double LogLoss(const std::vector<int>& truth,
               const std::vector<double>& probabilities, double eps = 1e-12);

/// Brier score: mean squared error between probability and outcome.
double BrierScore(const std::vector<int>& truth,
                  const std::vector<double>& probabilities);

}  // namespace rll::classify

#endif  // RLL_CLASSIFY_RANKING_METRICS_H_
