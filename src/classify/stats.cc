#include "classify/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rll::classify {

Result<BootstrapCi> BootstrapMeanCi(const std::vector<double>& values,
                                    Rng* rng, double confidence,
                                    int resamples) {
  if (values.empty()) return Status::InvalidArgument("no values");
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  if (resamples < 100) {
    return Status::InvalidArgument("need >= 100 resamples");
  }
  const size_t n = values.size();
  double total = 0.0;
  for (double v : values) total += v;

  std::vector<double> means(static_cast<size_t>(resamples));
  for (double& m : means) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      s += values[static_cast<size_t>(rng->UniformInt(n))];
    }
    m = s / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  auto percentile = [&means](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, means.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return means[lo] * (1.0 - frac) + means[hi] * frac;
  };

  BootstrapCi ci;
  ci.mean = total / static_cast<double>(n);
  ci.lower = percentile(alpha);
  ci.upper = percentile(1.0 - alpha);
  return ci;
}

Result<PairedTestResult> PairedPermutationTest(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               Rng* rng, int resamples) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired vectors must match in size");
  }
  if (a.empty()) return Status::InvalidArgument("no pairs");
  const size_t n = a.size();
  std::vector<double> diff(n);
  double observed = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diff[i] = a[i] - b[i];
    observed += diff[i];
  }
  observed /= static_cast<double>(n);

  PairedTestResult result;
  result.mean_difference = observed;
  const double threshold = std::fabs(observed) - 1e-15;

  if (n <= 20 && (1u << n) <= static_cast<unsigned>(resamples)) {
    // Exact enumeration of all sign assignments.
    const size_t total = 1u << n;
    size_t at_least = 0;
    for (size_t mask = 0; mask < total; ++mask) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        s += (mask >> i) & 1u ? -diff[i] : diff[i];
      }
      if (std::fabs(s / static_cast<double>(n)) >= threshold) ++at_least;
    }
    result.p_value = static_cast<double>(at_least) /
                     static_cast<double>(total);
  } else {
    // Monte Carlo with the +1 correction (Davison & Hinkley).
    size_t at_least = 0;
    for (int r = 0; r < resamples; ++r) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        s += rng->Bernoulli(0.5) ? -diff[i] : diff[i];
      }
      if (std::fabs(s / static_cast<double>(n)) >= threshold) ++at_least;
    }
    result.p_value = static_cast<double>(at_least + 1) /
                     static_cast<double>(resamples + 1);
  }
  return result;
}

std::vector<double> CorrectnessVector(const std::vector<int>& truth,
                                      const std::vector<int>& predicted) {
  RLL_CHECK_EQ(truth.size(), predicted.size());
  std::vector<double> out(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    out[i] = truth[i] == predicted[i] ? 1.0 : 0.0;
  }
  return out;
}

}  // namespace rll::classify
