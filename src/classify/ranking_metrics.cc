#include "classify/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace rll::classify {

double RocAuc(const std::vector<int>& truth,
              const std::vector<double>& scores) {
  RLL_CHECK_EQ(truth.size(), scores.size());
  const size_t n = truth.size();
  size_t num_pos = 0;
  for (int y : truth) num_pos += (y == 1);
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Ranks with ties averaged.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (truth[k] == 1) pos_rank_sum += rank[k];
  }
  const double np = static_cast<double>(num_pos);
  const double nn = static_cast<double>(num_neg);
  return (pos_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

double LogLoss(const std::vector<int>& truth,
               const std::vector<double>& probabilities, double eps) {
  RLL_CHECK_EQ(truth.size(), probabilities.size());
  RLL_CHECK(!truth.empty());
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double p =
        std::min(std::max(probabilities[i], eps), 1.0 - eps);
    total -= truth[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return total / static_cast<double>(truth.size());
}

double BrierScore(const std::vector<int>& truth,
                  const std::vector<double>& probabilities) {
  RLL_CHECK_EQ(truth.size(), probabilities.size());
  RLL_CHECK(!truth.empty());
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = probabilities[i] - static_cast<double>(truth[i]);
    total += d * d;
  }
  return total / static_cast<double>(truth.size());
}

}  // namespace rll::classify
