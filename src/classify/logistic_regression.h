// L2-regularized binary logistic regression — the paper's "basic classifier"
// applied on top of every representation (§IV-A). Trained full-batch with
// gradient descent + momentum; supports soft targets and per-sample weights
// so the SoftProb baseline (Raykar et al.) can reuse it directly.

#ifndef RLL_CLASSIFY_LOGISTIC_REGRESSION_H_
#define RLL_CLASSIFY_LOGISTIC_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace rll::classify {

struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  double momentum = 0.9;
  int max_epochs = 500;
  /// L2 penalty on weights (not the intercept).
  double l2 = 1e-3;
  /// Stop when the gradient's infinity norm drops below this.
  double tolerance = 1e-6;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  /// Fits on x (n×dim) and targets in [0,1] (hard 0/1 labels or soft
  /// probabilities). Optional per-sample weights (empty → all 1).
  Status Fit(const Matrix& x, const std::vector<double>& targets,
             const std::vector<double>& sample_weights = {});

  /// Convenience overload for hard integer labels.
  Status Fit(const Matrix& x, const std::vector<int>& labels,
             const std::vector<double>& sample_weights = {});

  /// P(y=1|x) per row. Requires a successful Fit.
  std::vector<double> PredictProba(const Matrix& x) const;

  /// Hard labels at threshold 0.5.
  std::vector<int> Predict(const Matrix& x) const;

  bool fitted() const { return fitted_; }
  const Matrix& weights() const { return weights_; }  // dim×1
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions options_;
  bool fitted_ = false;
  Matrix weights_;  // dim×1
  double bias_ = 0.0;
};

}  // namespace rll::classify

#endif  // RLL_CLASSIFY_LOGISTIC_REGRESSION_H_
