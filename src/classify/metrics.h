// Binary classification metrics (positive class = 1) and small summary
// helpers for cross-validated results — the quantities every table in the
// paper reports.

#ifndef RLL_CLASSIFY_METRICS_H_
#define RLL_CLASSIFY_METRICS_H_

#include <string>
#include <vector>

namespace rll::classify {

struct ConfusionMatrix {
  size_t tp = 0;
  size_t fp = 0;
  size_t tn = 0;
  size_t fn = 0;

  size_t total() const { return tp + fp + tn + fn; }
};

/// Tallies predictions against ground truth; sizes must match.
ConfusionMatrix Confusion(const std::vector<int>& truth,
                          const std::vector<int>& predicted);

double Accuracy(const ConfusionMatrix& cm);
/// Precision/recall/F1 for the positive class; 0 when undefined.
double Precision(const ConfusionMatrix& cm);
double Recall(const ConfusionMatrix& cm);
double F1(const ConfusionMatrix& cm);

struct EvalMetrics {
  double accuracy = 0.0;
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// All four metrics at once.
EvalMetrics Evaluate(const std::vector<int>& truth,
                     const std::vector<int>& predicted);

/// Arithmetic mean of per-fold metrics (the paper reports fold averages).
EvalMetrics MeanMetrics(const std::vector<EvalMetrics>& folds);

/// Sample standard deviation of each metric across folds.
EvalMetrics StdDevMetrics(const std::vector<EvalMetrics>& folds);

/// "acc=0.888 f1=0.915" style rendering.
std::string ToString(const EvalMetrics& m);

}  // namespace rll::classify

#endif  // RLL_CLASSIFY_METRICS_H_
