// Principal component analysis via power iteration with deflation — the
// classic unsupervised representation baseline: what do crowdsourced labels
// buy over a label-free projection of the same dimensionality?

#ifndef RLL_CLASSIFY_PCA_H_
#define RLL_CLASSIFY_PCA_H_

#include "common/status.h"
#include "tensor/matrix.h"

namespace rll::classify {

struct PcaOptions {
  size_t num_components = 2;
  int max_iterations = 300;
  /// Power iteration stops when the direction moves less than this.
  double tolerance = 1e-9;
};

class Pca {
 public:
  explicit Pca(PcaOptions options = {}) : options_(options) {}

  /// Learns the top principal directions of x (n×dim). Requires
  /// num_components <= dim and n >= 2.
  Status Fit(const Matrix& x);

  /// Projects onto the learned components → n×num_components.
  Matrix Transform(const Matrix& x) const;

  Result<Matrix> FitTransform(const Matrix& x) {
    RLL_RETURN_IF_ERROR(Fit(x));
    return Transform(x);
  }

  bool fitted() const { return fitted_; }
  /// Component directions, one per row (num_components×dim), unit norm,
  /// mutually orthogonal.
  const Matrix& components() const { return components_; }
  /// Variance captured by each component, descending.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }
  const Matrix& mean() const { return mean_; }

 private:
  PcaOptions options_;
  bool fitted_ = false;
  Matrix mean_;        // 1×dim
  Matrix components_;  // num_components×dim
  std::vector<double> explained_variance_;
};

}  // namespace rll::classify

#endif  // RLL_CLASSIFY_PCA_H_
