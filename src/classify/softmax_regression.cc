#include "classify/softmax_regression.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace rll::classify {

Status SoftmaxRegression::Fit(const Matrix& x, const std::vector<int>& labels,
                              size_t num_classes) {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("labels size != rows");
  }
  int max_label = 0;
  for (int y : labels) {
    if (y < 0) return Status::InvalidArgument("labels must be >= 0");
    max_label = std::max(max_label, y);
  }
  size_t k = num_classes == 0 ? static_cast<size_t>(max_label) + 1
                              : num_classes;
  if (k < 2) return Status::InvalidArgument("need at least 2 classes");
  if (static_cast<size_t>(max_label) >= k) {
    return Status::InvalidArgument("label exceeds num_classes");
  }

  weights_ = Matrix(dim, k);
  bias_ = Matrix(1, k);
  Matrix vel_w(dim, k);
  Matrix vel_b(1, k);

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    // P = softmax(XW + b); grad = Xᵀ(P − Y)/n (+ L2 on W).
    Matrix logits =
        AddRowBroadcast(Matmul(x, weights_), bias_);
    Matrix probs = SoftmaxRows(logits);
    for (size_t i = 0; i < n; ++i) {
      probs(i, static_cast<size_t>(labels[i])) -= 1.0;
    }
    probs *= 1.0 / static_cast<double>(n);
    Matrix grad_w = MatmulTransposeA(x, probs);
    Matrix grad_b = ColSum(probs);

    double max_grad = 0.0;
    for (size_t j = 0; j < grad_w.size(); ++j) {
      grad_w[j] += options_.l2 * weights_[j];
      max_grad = std::max(max_grad, std::fabs(grad_w[j]));
    }
    for (size_t j = 0; j < grad_b.size(); ++j) {
      max_grad = std::max(max_grad, std::fabs(grad_b[j]));
    }

    for (size_t j = 0; j < weights_.size(); ++j) {
      vel_w[j] = options_.momentum * vel_w[j] -
                 options_.learning_rate * grad_w[j];
      weights_[j] += vel_w[j];
    }
    for (size_t j = 0; j < bias_.size(); ++j) {
      vel_b[j] = options_.momentum * vel_b[j] -
                 options_.learning_rate * grad_b[j];
      bias_[j] += vel_b[j];
    }
    if (max_grad < options_.tolerance) break;
  }
  fitted_ = true;
  return Status::OK();
}

Matrix SoftmaxRegression::PredictProba(const Matrix& x) const {
  RLL_CHECK_MSG(fitted_, "PredictProba before Fit");
  RLL_CHECK_EQ(x.cols(), weights_.rows());
  return SoftmaxRows(AddRowBroadcast(Matmul(x, weights_), bias_));
}

std::vector<int> SoftmaxRegression::Predict(const Matrix& x) const {
  const Matrix probs = PredictProba(x);
  const std::vector<size_t> argmax = ArgmaxRows(probs);
  std::vector<int> out(argmax.size());
  for (size_t i = 0; i < argmax.size(); ++i) {
    out[i] = static_cast<int>(argmax[i]);
  }
  return out;
}

}  // namespace rll::classify
