#include "classify/pca.h"

#include <cmath>

#include "tensor/ops.h"

namespace rll::classify {

Status Pca::Fit(const Matrix& x) {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  if (n < 2) return Status::InvalidArgument("PCA needs at least 2 rows");
  if (options_.num_components == 0 || options_.num_components > dim) {
    return Status::InvalidArgument("num_components must be in [1, dim]");
  }

  mean_ = ColMean(x);
  // Covariance (dim×dim) of the centered data.
  Matrix centered = x;
  for (size_t r = 0; r < n; ++r) {
    double* row = centered.row_data(r);
    for (size_t c = 0; c < dim; ++c) row[c] -= mean_[c];
  }
  Matrix cov = MatmulTransposeA(centered, centered);
  cov *= 1.0 / static_cast<double>(n - 1);

  components_ = Matrix(options_.num_components, dim);
  explained_variance_.assign(options_.num_components, 0.0);

  for (size_t k = 0; k < options_.num_components; ++k) {
    // Deterministic non-degenerate start: basis vector with the largest
    // remaining diagonal, plus a small ramp to break symmetry.
    Matrix v(dim, 1);
    size_t best_diag = 0;
    for (size_t j = 1; j < dim; ++j) {
      if (cov(j, j) > cov(best_diag, best_diag)) best_diag = j;
    }
    for (size_t j = 0; j < dim; ++j) {
      v(j, 0) = (j == best_diag ? 1.0 : 0.0) +
                1e-3 * static_cast<double>(j + 1) /
                    static_cast<double>(dim);
    }

    double eigenvalue = 0.0;
    for (int it = 0; it < options_.max_iterations; ++it) {
      Matrix next = Matmul(cov, v);
      const double norm = Norm(next);
      if (norm < 1e-15) break;  // Remaining space is (numerically) null.
      next *= 1.0 / norm;
      const double shift = Norm(Sub(next, v));
      eigenvalue = norm;
      v = std::move(next);
      if (shift < options_.tolerance) break;
    }

    for (size_t j = 0; j < dim; ++j) components_(k, j) = v(j, 0);
    explained_variance_[k] = eigenvalue;

    // Deflate: cov ← cov − λ·v·vᵀ.
    for (size_t a = 0; a < dim; ++a) {
      for (size_t b = 0; b < dim; ++b) {
        cov(a, b) -= eigenvalue * v(a, 0) * v(b, 0);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Matrix Pca::Transform(const Matrix& x) const {
  RLL_CHECK_MSG(fitted_, "Pca::Transform before Fit");
  RLL_CHECK_EQ(x.cols(), mean_.cols());
  Matrix centered = x;
  for (size_t r = 0; r < centered.rows(); ++r) {
    double* row = centered.row_data(r);
    for (size_t c = 0; c < centered.cols(); ++c) row[c] -= mean_[c];
  }
  return MatmulTransposeB(centered, components_);
}

}  // namespace rll::classify
