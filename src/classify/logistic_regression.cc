#include "classify/logistic_regression.h"

#include <cmath>

#include "common/finite_check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rll::classify {

namespace {

double StableSigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Fit(const Matrix& x,
                               const std::vector<double>& targets,
                               const std::vector<double>& sample_weights) {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (targets.size() != n) {
    return Status::InvalidArgument("targets size != rows");
  }
  for (double t : targets) {
    if (t < 0.0 || t > 1.0 || !std::isfinite(t)) {
      return Status::InvalidArgument("targets must lie in [0, 1]");
    }
  }
  std::vector<double> w = sample_weights;
  if (w.empty()) {
    w.assign(n, 1.0);
  } else if (w.size() != n) {
    return Status::InvalidArgument("sample_weights size != rows");
  }
  double wsum = 0.0;
  for (double v : w) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument("sample weights must be >= 0");
    }
    wsum += v;
  }
  if (wsum <= 0.0) {
    return Status::InvalidArgument("all sample weights are zero");
  }

  RLL_TRACE_SPAN("logreg_fit");
  weights_ = Matrix(dim, 1);
  bias_ = 0.0;
  Matrix vel_w(dim, 1);
  double vel_b = 0.0;

  int epochs_run = 0;
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    epochs_run = epoch + 1;
    // Gradient of the weighted mean cross-entropy + L2.
    Matrix grad_w(dim, 1);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.row_data(i);
      double z = bias_;
      for (size_t j = 0; j < dim; ++j) z += row[j] * weights_(j, 0);
      const double err = (StableSigmoid(z) - targets[i]) * w[i] / wsum;
      for (size_t j = 0; j < dim; ++j) grad_w(j, 0) += err * row[j];
      grad_b += err;
    }
    double max_grad = std::fabs(grad_b);
    for (size_t j = 0; j < dim; ++j) {
      grad_w(j, 0) += options_.l2 * weights_(j, 0);
      max_grad = std::max(max_grad, std::fabs(grad_w(j, 0)));
    }
    for (size_t j = 0; j < dim; ++j) {
      vel_w(j, 0) = options_.momentum * vel_w(j, 0) - options_.learning_rate * grad_w(j, 0);
      weights_(j, 0) += vel_w(j, 0);
    }
    vel_b = options_.momentum * vel_b - options_.learning_rate * grad_b;
    bias_ += vel_b;
    // A diverging fit (lr too high, degenerate features) shows up as
    // NaN/Inf weights; trip at the epoch that produced them.
    RLL_DCHECK_FINITE(grad_w);
    RLL_DCHECK_FINITE(weights_);
    RLL_DCHECK_FINITE(bias_);
    if (max_grad < options_.tolerance) break;
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("rll_logreg_fits_total")->Increment();
  // Convergence behaviour: max_epochs hugging p99 means fits routinely hit
  // the epoch cap instead of the gradient tolerance.
  obs::HistogramOptions epoch_buckets;
  epoch_buckets.start = 1.0;
  epoch_buckets.growth = 2.0;
  epoch_buckets.count = 12;
  registry.GetHistogram("rll_logreg_epochs", {}, epoch_buckets)
      ->Observe(static_cast<double>(epochs_run));
  fitted_ = true;
  return Status::OK();
}

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& labels,
                               const std::vector<double>& sample_weights) {
  std::vector<double> targets(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    targets[i] = static_cast<double>(labels[i]);
  }
  return Fit(x, targets, sample_weights);
}

std::vector<double> LogisticRegression::PredictProba(const Matrix& x) const {
  RLL_CHECK_MSG(fitted_, "PredictProba before Fit");
  RLL_CHECK_EQ(x.cols(), weights_.rows());
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    double z = bias_;
    for (size_t j = 0; j < x.cols(); ++j) z += row[j] * weights_(j, 0);
    out[i] = StableSigmoid(z);
    RLL_DCHECK_PROB(out[i]);
  }
  return out;
}

std::vector<int> LogisticRegression::Predict(const Matrix& x) const {
  const std::vector<double> proba = PredictProba(x);
  std::vector<int> labels(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) labels[i] = proba[i] >= 0.5;
  return labels;
}

}  // namespace rll::classify
