// Resampling statistics for experiment reporting: bootstrap confidence
// intervals on a metric and a paired permutation test for "is method A
// really better than method B on the same folds/examples?".

#ifndef RLL_CLASSIFY_STATS_H_
#define RLL_CLASSIFY_STATS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace rll::classify {

struct BootstrapCi {
  double mean = 0.0;
  double lower = 0.0;  // e.g. 2.5th percentile.
  double upper = 0.0;  // e.g. 97.5th percentile.
};

/// Percentile-bootstrap CI of the mean of `values` (e.g. per-fold
/// accuracies). `confidence` in (0, 1), default 95%.
Result<BootstrapCi> BootstrapMeanCi(const std::vector<double>& values,
                                    Rng* rng, double confidence = 0.95,
                                    int resamples = 10000);

struct PairedTestResult {
  /// Mean of a − b.
  double mean_difference = 0.0;
  /// Two-sided p-value under the sign-flip permutation null.
  double p_value = 1.0;
};

/// Paired permutation (sign-flip) test on per-item paired scores, e.g.
/// per-fold accuracy of two methods evaluated on identical folds. Exact
/// when 2^n <= resamples, Monte Carlo otherwise.
Result<PairedTestResult> PairedPermutationTest(
    const std::vector<double>& a, const std::vector<double>& b, Rng* rng,
    int resamples = 10000);

/// Per-example 0/1 correctness vector — the natural paired unit for
/// McNemar-style comparisons of two prediction vectors.
std::vector<double> CorrectnessVector(const std::vector<int>& truth,
                                      const std::vector<int>& predicted);

}  // namespace rll::classify

#endif  // RLL_CLASSIFY_STATS_H_
