#include "classify/metrics.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace rll::classify {

ConfusionMatrix Confusion(const std::vector<int>& truth,
                          const std::vector<int>& predicted) {
  RLL_CHECK_EQ(truth.size(), predicted.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      predicted[i] == 1 ? ++cm.tp : ++cm.fn;
    } else {
      predicted[i] == 1 ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

double Accuracy(const ConfusionMatrix& cm) {
  const size_t total = cm.total();
  if (total == 0) return 0.0;
  return static_cast<double>(cm.tp + cm.tn) / static_cast<double>(total);
}

double Precision(const ConfusionMatrix& cm) {
  const size_t denom = cm.tp + cm.fp;
  if (denom == 0) return 0.0;
  return static_cast<double>(cm.tp) / static_cast<double>(denom);
}

double Recall(const ConfusionMatrix& cm) {
  const size_t denom = cm.tp + cm.fn;
  if (denom == 0) return 0.0;
  return static_cast<double>(cm.tp) / static_cast<double>(denom);
}

double F1(const ConfusionMatrix& cm) {
  const double p = Precision(cm);
  const double r = Recall(cm);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

EvalMetrics Evaluate(const std::vector<int>& truth,
                     const std::vector<int>& predicted) {
  const ConfusionMatrix cm = Confusion(truth, predicted);
  EvalMetrics m;
  m.accuracy = Accuracy(cm);
  m.f1 = F1(cm);
  m.precision = Precision(cm);
  m.recall = Recall(cm);
  return m;
}

EvalMetrics MeanMetrics(const std::vector<EvalMetrics>& folds) {
  RLL_CHECK(!folds.empty());
  EvalMetrics m;
  for (const EvalMetrics& f : folds) {
    m.accuracy += f.accuracy;
    m.f1 += f.f1;
    m.precision += f.precision;
    m.recall += f.recall;
  }
  const double n = static_cast<double>(folds.size());
  m.accuracy /= n;
  m.f1 /= n;
  m.precision /= n;
  m.recall /= n;
  return m;
}

EvalMetrics StdDevMetrics(const std::vector<EvalMetrics>& folds) {
  RLL_CHECK(!folds.empty());
  if (folds.size() == 1) return EvalMetrics{};
  const EvalMetrics mean = MeanMetrics(folds);
  EvalMetrics v;
  for (const EvalMetrics& f : folds) {
    v.accuracy += (f.accuracy - mean.accuracy) * (f.accuracy - mean.accuracy);
    v.f1 += (f.f1 - mean.f1) * (f.f1 - mean.f1);
    v.precision +=
        (f.precision - mean.precision) * (f.precision - mean.precision);
    v.recall += (f.recall - mean.recall) * (f.recall - mean.recall);
  }
  const double n = static_cast<double>(folds.size() - 1);
  v.accuracy = std::sqrt(v.accuracy / n);
  v.f1 = std::sqrt(v.f1 / n);
  v.precision = std::sqrt(v.precision / n);
  v.recall = std::sqrt(v.recall / n);
  return v;
}

std::string ToString(const EvalMetrics& m) {
  return StrFormat("acc=%.3f f1=%.3f precision=%.3f recall=%.3f", m.accuracy,
                   m.f1, m.precision, m.recall);
}

}  // namespace rll::classify
