// Multinomial logistic (softmax) regression. The paper treats binary labels
// "without loss of generality"; this is the K-class classifier that makes
// the pipeline generalize — embeddings in, class posteriors out.

#ifndef RLL_CLASSIFY_SOFTMAX_REGRESSION_H_
#define RLL_CLASSIFY_SOFTMAX_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace rll::classify {

struct SoftmaxRegressionOptions {
  double learning_rate = 0.5;
  double momentum = 0.9;
  int max_epochs = 500;
  /// L2 penalty on weights (not intercepts).
  double l2 = 1e-3;
  /// Stop when the gradient's infinity norm drops below this.
  double tolerance = 1e-6;
};

class SoftmaxRegression {
 public:
  explicit SoftmaxRegression(SoftmaxRegressionOptions options = {})
      : options_(options) {}

  /// Fits on x (n×dim) and labels in [0, num_classes). num_classes == 0
  /// infers max(labels)+1. Requires at least 2 classes.
  Status Fit(const Matrix& x, const std::vector<int>& labels,
             size_t num_classes = 0);

  /// Class posteriors, one row per example (rows sum to 1).
  Matrix PredictProba(const Matrix& x) const;

  /// argmax class per row.
  std::vector<int> Predict(const Matrix& x) const;

  bool fitted() const { return fitted_; }
  size_t num_classes() const { return weights_.cols(); }
  const Matrix& weights() const { return weights_; }  // dim×K
  const Matrix& bias() const { return bias_; }        // 1×K

 private:
  SoftmaxRegressionOptions options_;
  bool fitted_ = false;
  Matrix weights_;
  Matrix bias_;
};

}  // namespace rll::classify

#endif  // RLL_CLASSIFY_SOFTMAX_REGRESSION_H_
