// Layer normalization (Ba et al., 2016): per-example feature normalization
// with learned gain and bias. Stabilizes the small-data encoders this
// library trains — an optional ingredient of the RLL encoder (see
// MlpConfig::layer_norm) ablatable against the paper's plain architecture.

#ifndef RLL_NN_LAYER_NORM_H_
#define RLL_NN_LAYER_NORM_H_

#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace rll::nn {

class LayerNorm {
 public:
  /// Gain initialized to 1, bias to 0.
  explicit LayerNorm(size_t features, double eps = 1e-5);

  /// y = gain ⊙ (x − μ_row)/√(σ²_row + eps) + bias, per row.
  ag::Var Forward(const ag::Var& x) const;

  std::vector<ag::Var> Parameters() const { return {gain_, bias_}; }
  size_t features() const { return features_; }

 private:
  size_t features_;
  double eps_;
  ag::Var gain_;  // 1×features
  ag::Var bias_;  // 1×features
};

}  // namespace rll::nn

#endif  // RLL_NN_LAYER_NORM_H_
