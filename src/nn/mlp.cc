// rll-analyze: hot-path — Embed/EmbedInto sit on the serve request path
// and Run() inside the trainer batch loop; per-call containers are banned.
#include "nn/mlp.h"

#include <cmath>
#include <fstream>
#include <utility>

#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace rll::nn {

namespace {

// In-place twin of Activate for the graph-free Embed path. The scalar
// formulas mirror the autograd ops exactly so Embed stays bitwise equal to
// Forward(Constant(x))->value.
void ActivateInPlace(Matrix& m, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < m.size(); ++i) m[i] = std::tanh(m[i]);
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < m.size(); ++i) m[i] = m[i] > 0.0 ? m[i] : 0.0;
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < m.size(); ++i) {
        const double x = m[i];
        if (x >= 0.0) {
          m[i] = 1.0 / (1.0 + std::exp(-x));
        } else {
          const double e = std::exp(x);
          m[i] = e / (1.0 + e);
        }
      }
      return;
  }
  RLL_CHECK_MSG(false, "unknown activation");
}

}  // namespace

const char* ActivationName(Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return "none";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  RLL_CHECK_MSG(false, "unknown activation");
  return "";
}

Result<Activation> ParseActivation(const std::string& name) {
  if (name == "none") return Activation::kNone;
  if (name == "tanh") return Activation::kTanh;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  return Status::InvalidArgument("unknown activation: " + name);
}

ag::Var Activate(const ag::Var& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kTanh:
      return ag::Tanh(x);
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
  }
  RLL_CHECK_MSG(false, "unknown activation");
  return x;
}

Mlp::Mlp(const MlpConfig& config, Rng* rng) : config_(config) {
  RLL_CHECK_GE(config.dims.size(), 2u);
  layers_.reserve(config.dims.size() - 1);
  for (size_t i = 0; i + 1 < config.dims.size(); ++i) {
    layers_.emplace_back(config.dims[i], config.dims[i + 1], rng);
    // LayerNorm after every hidden activation (never on the output).
    if (config.layer_norm && i + 2 < config.dims.size()) {
      norms_.emplace_back(config.dims[i + 1]);
    }
  }
}

ag::Var Mlp::Run(const ag::Var& x, bool training, Rng* rng) const {
  const double keep = 1.0 - config_.dropout;
  ag::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    const bool last = (i + 1 == layers_.size());
    h = Activate(h, last ? config_.output_activation
                         : config_.hidden_activation);
    if (last) break;
    if (config_.layer_norm) h = norms_[i].Forward(h);
    if (training && config_.dropout > 0.0) {
      // Inverted dropout: zero with probability p, scale survivors by
      // 1/keep so inference needs no rescaling.
      Matrix mask(h->value.rows(), h->value.cols());
      for (size_t j = 0; j < mask.size(); ++j) {
        mask[j] = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
      }
      h = ag::Mul(h, ag::Constant(std::move(mask)));
    }
  }
  return h;
}

ag::Var Mlp::Forward(const ag::Var& x) const {
  return Run(x, /*training=*/false, nullptr);
}

ag::Var Mlp::ForwardTrain(const ag::Var& x, Rng* rng) const {
  if (config_.dropout > 0.0) {
    RLL_CHECK(rng != nullptr);
    RLL_CHECK_LT(config_.dropout, 1.0);
  }
  return Run(x, /*training=*/true, rng);
}

Matrix Mlp::Embed(const Matrix& x) const {
  // Thin wrapper: run the workspace path against per-thread buffers and
  // hand back a copy the caller owns. Call sites that want the copy
  // elided (the serve batcher) pass their own workspace to EmbedInto.
  thread_local Workspace ws;
  return EmbedInto(x, ws);
}

const Matrix& Mlp::EmbedInto(const Matrix& x, Workspace& ws) const {
  // Workspace buffers outlive any ArenaScope, so suspend arena routing for
  // the whole pass — growth (first call, or a larger batch) must be
  // heap-backed. Steady state performs zero allocations either way.
  ArenaPause pause;
  if (config_.layer_norm) {
    // LayerNorm keeps its math in one place (the autograd op), so fall
    // back to the graph there; only the result lands in the workspace.
    const Matrix value = Forward(ag::Constant(x))->value;
    Matrix& out = ws.GetReshaped("mlp.embed.pong", value.rows(),
                                 value.cols());
    out = value;
    return out;
  }
  // Graph-free path: two ping-pong workspace buffers instead of one graph
  // node + value matrix per layer. This is the steady-state inference call
  // (every serve batch hits it), so the reuse pays every request.
  const Matrix* cur = &x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Matrix& weight = layers_[i].weight()->value;
    Matrix& next = ws.GetReshaped(
        i % 2 == 0 ? "mlp.embed.ping" : "mlp.embed.pong", x.rows(),
        weight.cols());
    MulInto(*cur, weight, next);
    AddRowBroadcastInPlace(next, layers_[i].bias()->value);
    const bool last = (i + 1 == layers_.size());
    ActivateInPlace(next, last ? config_.output_activation
                               : config_.hidden_activation);
    cur = &next;
  }
  return *cur;
}

std::vector<ag::Var> Mlp::Parameters() const {
  std::vector<ag::Var> params;
  for (const Linear& layer : layers_) {
    for (const ag::Var& p : layer.Parameters()) params.push_back(p);
  }
  for (const LayerNorm& norm : norms_) {
    for (const ag::Var& p : norm.Parameters()) params.push_back(p);
  }
  return params;
}

Status Mlp::Save(const std::string& path) const {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  for (const ag::Var& p : Parameters()) {
    RLL_RETURN_IF_ERROR(WriteMatrix(&f, p->value));
  }
  return Status::OK();
}

Status Mlp::Load(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  for (const ag::Var& p : Parameters()) {
    Result<Matrix> m = ReadMatrix(&f);
    if (!m.ok()) return m.status();
    if (m->rows() != p->value.rows() || m->cols() != p->value.cols()) {
      return Status::InvalidArgument(
          "checkpoint shape mismatch (architecture differs)");
    }
    p->value = std::move(*m);
  }
  return Status::OK();
}

}  // namespace rll::nn
