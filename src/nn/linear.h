// Fully-connected layer: y = x·W + b with W (in×out) Xavier-initialized.

#ifndef RLL_NN_LINEAR_H_
#define RLL_NN_LINEAR_H_

#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"

namespace rll::nn {

class Linear {
 public:
  /// Xavier-uniform weights, zero bias.
  Linear(size_t in_features, size_t out_features, Rng* rng);

  /// x: batch×in → batch×out.
  ag::Var Forward(const ag::Var& x) const;

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

  /// Trainable leaves: {weight, bias}.
  std::vector<ag::Var> Parameters() const { return {weight_, bias_}; }

  const ag::Var& weight() const { return weight_; }
  const ag::Var& bias() const { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  ag::Var weight_;  // in×out
  ag::Var bias_;    // 1×out
};

}  // namespace rll::nn

#endif  // RLL_NN_LINEAR_H_
