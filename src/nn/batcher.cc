#include "nn/batcher.h"

#include <cstddef>
#include <numeric>

namespace rll::nn {

Batcher::Batcher(size_t n, size_t batch_size, Rng* rng, bool drop_last)
    : n_(n), batch_size_(batch_size), drop_last_(drop_last), rng_(rng) {
  RLL_CHECK_GT(batch_size, 0u);
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  NewEpoch();
}

void Batcher::NewEpoch() {
  rng_->Shuffle(&order_);
  cursor_ = 0;
}

bool Batcher::Next(std::vector<size_t>* batch) {
  batch->clear();
  if (cursor_ >= n_) return false;
  const size_t remaining = n_ - cursor_;
  if (drop_last_ && remaining < batch_size_) return false;
  const size_t take = std::min(batch_size_, remaining);
  batch->assign(order_.begin() + static_cast<ptrdiff_t>(cursor_),
                order_.begin() + static_cast<ptrdiff_t>(cursor_ + take));
  cursor_ += take;
  return true;
}

size_t Batcher::BatchesPerEpoch() const {
  if (drop_last_) return n_ / batch_size_;
  return (n_ + batch_size_ - 1) / batch_size_;
}

}  // namespace rll::nn
