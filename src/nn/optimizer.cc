#include "nn/optimizer.h"

#include <cmath>

#include "common/finite_check.h"

namespace rll::nn {

void Optimizer::ZeroGrad() {
  for (const ag::Var& p : params_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<ag::Var> params, SgdOptions options)
    : Optimizer(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (const ag::Var& p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    if (p->grad.empty()) continue;
    Matrix& vel = velocity_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      double g = p->grad[j] + options_.weight_decay * p->value[j];
      if (options_.momentum != 0.0) {
        vel[j] = options_.momentum * vel[j] + g;
        g = vel[j];
      }
      p->value[j] -= options_.lr * g;
    }
  }
}

Adam::Adam(std::vector<ag::Var> params, AdamOptions options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Var& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  steps_metric_ = registry.GetCounter("rll_adam_steps_total");
  lr_metric_ = registry.GetGauge("rll_adam_lr");
}

void Adam::Step() {
  ++t_;
  steps_metric_->Increment();
  lr_metric_->Set(options_.lr);
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    if (p->grad.empty()) continue;
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      const double g = p->grad[j] + options_.weight_decay * p->value[j];
      m[j] = options_.beta1 * m[j] + (1.0 - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0 - options_.beta2) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p->value[j] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
    // Parameters leave each Adam step finite; a blown-up update points at
    // the gradient (or eps/lr config) that produced it.
    RLL_DCHECK_FINITE(p->value);
  }
}

RmsProp::RmsProp(std::vector<ag::Var> params, RmsPropOptions options)
    : Optimizer(std::move(params)), options_(options) {
  sq_avg_.reserve(params_.size());
  for (const ag::Var& p : params_) {
    sq_avg_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    if (p->grad.empty()) continue;
    Matrix& s = sq_avg_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      const double g = p->grad[j] + options_.weight_decay * p->value[j];
      s[j] = options_.rho * s[j] + (1.0 - options_.rho) * g * g;
      p->value[j] -= options_.lr * g / (std::sqrt(s[j]) + options_.eps);
    }
  }
}

double ClipGradNorm(const std::vector<ag::Var>& params, double max_norm) {
  double total = 0.0;
  for (const ag::Var& p : params) {
    if (p->grad.empty()) continue;
    for (size_t j = 0; j < p->grad.size(); ++j) {
      total += p->grad[j] * p->grad[j];
    }
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (const ag::Var& p : params) {
      if (p->grad.empty()) continue;
      p->grad *= scale;
    }
  }
  return norm;
}

double StepDecaySchedule::LrAt(int epoch) const {
  return base_lr_ * std::pow(gamma_, static_cast<double>(epoch / step_size_));
}

double CosineSchedule::LrAt(int epoch) const {
  if (epoch >= total_epochs_) return min_lr_;
  const double t = static_cast<double>(epoch) /
                   static_cast<double>(total_epochs_);
  return min_lr_ +
         0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(t * 3.14159265358979));
}

}  // namespace rll::nn
