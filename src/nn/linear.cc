#include "nn/linear.h"

#include "tensor/init.h"

namespace rll::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(ag::Parameter(XavierUniform(in_features, out_features, rng))),
      bias_(ag::Parameter(Matrix(1, out_features))) {}

ag::Var Linear::Forward(const ag::Var& x) const {
  RLL_CHECK_EQ(x->value.cols(), in_features_);
  return ag::AddRowBroadcast(ag::Matmul(x, weight_), bias_);
}

}  // namespace rll::nn
