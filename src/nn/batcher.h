// Mini-batch index iteration with per-epoch shuffling.

#ifndef RLL_NN_BATCHER_H_
#define RLL_NN_BATCHER_H_

#include <vector>

#include "common/rng.h"

namespace rll::nn {

/// Yields index batches covering [0, n) in shuffled order. The final batch
/// of an epoch may be smaller unless drop_last is set.
class Batcher {
 public:
  Batcher(size_t n, size_t batch_size, Rng* rng, bool drop_last = false);

  /// Reshuffles and restarts the epoch.
  void NewEpoch();

  /// Fills `batch` with the next index set; returns false at epoch end.
  bool Next(std::vector<size_t>* batch);

  /// Number of batches per epoch.
  size_t BatchesPerEpoch() const;

 private:
  size_t n_;
  size_t batch_size_;
  bool drop_last_;
  Rng* rng_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

}  // namespace rll::nn

#endif  // RLL_NN_BATCHER_H_
