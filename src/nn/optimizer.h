// First-order optimizers over autograd parameters.
//
// Usage pattern per step:
//   opt.ZeroGrad(); Var loss = ...; ag::Backward(loss); opt.Step();

#ifndef RLL_NN_OPTIMIZER_H_
#define RLL_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "obs/metrics.h"

namespace rll::nn {

/// Abstract optimizer bound to a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on params.
  /// Parameters with empty gradients are skipped.
  virtual void Step() = 0;

  /// Clears gradients on all bound parameters.
  void ZeroGrad();

  const std::vector<ag::Var>& params() const { return params_; }

 protected:
  std::vector<ag::Var> params_;
};

struct SgdOptions {
  double lr = 0.01;
  double momentum = 0.0;
  /// Decoupled L2 penalty added to gradients as wd·θ.
  double weight_decay = 0.0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, SgdOptions options);
  void Step() override;

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }

 private:
  SgdOptions options_;
  std::vector<Matrix> velocity_;  // Parallel to params_.
};

struct AdamOptions {
  double lr = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, AdamOptions options);
  void Step() override;

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }

 private:
  AdamOptions options_;
  std::vector<Matrix> m_;  // First moment, parallel to params_.
  std::vector<Matrix> v_;  // Second moment.
  int64_t t_ = 0;
  // Resolved once at construction; Step() pays one relaxed increment and
  // one relaxed store, never a registry lookup.
  obs::Counter* steps_metric_;
  obs::Gauge* lr_metric_;
};

struct RmsPropOptions {
  double lr = 0.001;
  /// Exponential decay of the squared-gradient average.
  double rho = 0.9;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<ag::Var> params, RmsPropOptions options);
  void Step() override;

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }

 private:
  RmsPropOptions options_;
  std::vector<Matrix> sq_avg_;  // Parallel to params_.
};

/// Scales all gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clipping norm. Call between Backward() and Step().
double ClipGradNorm(const std::vector<ag::Var>& params, double max_norm);

/// Multiplicative step decay: lr ← lr0 · gamma^(epoch / step_size).
class StepDecaySchedule {
 public:
  StepDecaySchedule(double base_lr, double gamma, int step_size)
      : base_lr_(base_lr), gamma_(gamma), step_size_(step_size) {}

  double LrAt(int epoch) const;

 private:
  double base_lr_;
  double gamma_;
  int step_size_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineSchedule {
 public:
  CosineSchedule(double base_lr, double min_lr, int total_epochs)
      : base_lr_(base_lr), min_lr_(min_lr), total_epochs_(total_epochs) {}

  double LrAt(int epoch) const;

 private:
  double base_lr_;
  double min_lr_;
  int total_epochs_;
};

}  // namespace rll::nn

#endif  // RLL_NN_OPTIMIZER_H_
