// Multi-layer perceptron — the "multi-layer non-linear projection" encoder
// from Figure 1 of the paper, shared by RLL and the deep baselines.

#ifndef RLL_NN_MLP_H_
#define RLL_NN_MLP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace rll::nn {

enum class Activation { kNone, kTanh, kRelu, kSigmoid };

/// Stable wire name ("none" | "tanh" | "relu" | "sigmoid") — recorded in
/// model-bundle headers, so renaming a value breaks saved bundles.
const char* ActivationName(Activation activation);

/// Inverse of ActivationName; fails on unknown names.
Result<Activation> ParseActivation(const std::string& name);

/// Applies an activation as an autograd op (kNone is identity).
ag::Var Activate(const ag::Var& x, Activation activation);

struct MlpConfig {
  /// Layer widths including input and output, e.g. {60, 128, 64, 32}.
  std::vector<size_t> dims;
  /// Nonlinearity between hidden layers. The paper's encoder uses tanh.
  Activation hidden_activation = Activation::kTanh;
  /// Applied after the final layer (kTanh for bounded embeddings).
  Activation output_activation = Activation::kTanh;
  /// Inverted-dropout rate on hidden activations; only applied by
  /// ForwardTrain. 0 disables dropout.
  double dropout = 0.0;
  /// Applies LayerNorm after each hidden activation.
  bool layer_norm = false;
};

class Mlp {
 public:
  /// Requires at least 2 dims (input and output widths).
  Mlp(const MlpConfig& config, Rng* rng);

  /// x: batch×dims.front() → batch×dims.back(). Inference path: dropout
  /// (if configured) is NOT applied.
  ag::Var Forward(const ag::Var& x) const;

  /// Training path: applies inverted dropout after each hidden activation
  /// when config.dropout > 0. Identical to Forward when dropout == 0.
  ag::Var ForwardTrain(const ag::Var& x, Rng* rng) const;

  /// Forward pass on raw features without building graph history
  /// (inference). Equivalent to Forward on a Constant input but documents
  /// intent at call sites.
  Matrix Embed(const Matrix& x) const;

  /// Allocation-free Embed: every intermediate (and the result) lives in
  /// keyed `ws` buffers, reused across calls — the steady-state serve
  /// path. Bitwise identical to Embed (same kernels, same order). The
  /// returned reference aliases a `ws` buffer and is valid until the next
  /// EmbedInto against the same workspace.
  const Matrix& EmbedInto(const Matrix& x, Workspace& ws) const;

  /// All trainable leaves, layer by layer.
  std::vector<ag::Var> Parameters() const;

  size_t input_dim() const { return config_.dims.front(); }
  size_t output_dim() const { return config_.dims.back(); }
  const MlpConfig& config() const { return config_; }

  /// Checkpointing: text format, one matrix per parameter.
  Status Save(const std::string& path) const;
  /// Loads parameter values into this (architecture must match).
  Status Load(const std::string& path);

 private:
  /// Shared tail of Forward / ForwardTrain.
  ag::Var Run(const ag::Var& x, bool training, Rng* rng) const;

  MlpConfig config_;
  std::vector<Linear> layers_;
  std::vector<LayerNorm> norms_;  // One per hidden layer when enabled.
};

}  // namespace rll::nn

#endif  // RLL_NN_MLP_H_
