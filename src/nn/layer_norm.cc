#include "nn/layer_norm.h"

namespace rll::nn {

LayerNorm::LayerNorm(size_t features, double eps)
    : features_(features),
      eps_(eps),
      gain_(ag::Parameter(Matrix(1, features, 1.0))),
      bias_(ag::Parameter(Matrix(1, features, 0.0))) {
  RLL_CHECK_GT(features, 0u);
  RLL_CHECK_GT(eps, 0.0);
}

ag::Var LayerNorm::Forward(const ag::Var& x) const {
  RLL_CHECK_EQ(x->value.cols(), features_);
  const double inv_c = 1.0 / static_cast<double>(features_);
  ag::Var mean = ag::Scale(ag::RowSum(x), inv_c);                  // n×1
  ag::Var centered = ag::Sub(x, ag::BroadcastCol(mean, features_));
  ag::Var variance =
      ag::Scale(ag::RowSum(ag::Square(centered)), inv_c);          // n×1
  ag::Var stddev = ag::Sqrt(ag::AddScalar(variance, eps_), 0.0);
  ag::Var normalized =
      ag::Div(centered, ag::BroadcastCol(stddev, features_));
  return ag::AddRowBroadcast(ag::MulRowBroadcast(normalized, gain_), bias_);
}

}  // namespace rll::nn
