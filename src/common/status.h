// Status and Result<T>: RocksDB-style error propagation without exceptions.
//
// Fallible operations (I/O, parsing, shape-checked public entry points) return
// Status or Result<T>. Programmer errors (violated preconditions on internal
// hot paths) use the RLL_CHECK macros from common/check.h instead.

#ifndef RLL_COMMON_STATUS_H_
#define RLL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace rll {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kNotConverged,
};

/// Human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Inspired by
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  /// OK when a value is held, the stored error otherwise.
  const Status& status() const { return status_; }

  /// Access the contained value. Undefined if !ok(); callers must check.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

}  // namespace rll

/// Propagates a non-OK Status to the caller.
#define RLL_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::rll::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (false)

#define RLL_MACRO_CONCAT_INNER(a, b) a##b
#define RLL_MACRO_CONCAT(a, b) RLL_MACRO_CONCAT_INNER(a, b)

#define RLL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

/// Evaluates a Result<T> expression; assigns the value or propagates error.
#define RLL_ASSIGN_OR_RETURN(lhs, expr) \
  RLL_ASSIGN_OR_RETURN_IMPL(RLL_MACRO_CONCAT(_rll_result_, __LINE__), lhs, \
                            expr)

#endif  // RLL_COMMON_STATUS_H_
