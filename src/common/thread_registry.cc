#include "common/thread_registry.h"

#include <pthread.h>

#include <cstring>

#include "common/mutex.h"

namespace rll {

namespace {

struct Registry {
  Mutex mu;
  std::vector<std::string> names RLL_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry registry;
  return registry;
}

std::string& LocalName() {
  thread_local std::string name;
  return name;
}

}  // namespace

void SetCurrentThreadName(const std::string& name) {
  LocalName() = name;
  // The kernel caps thread names at 16 bytes including the terminator;
  // the registry and the thread-local cache keep the full string.
  char truncated[16];
  std::strncpy(truncated, name.c_str(), sizeof(truncated) - 1);
  truncated[sizeof(truncated) - 1] = '\0';
  pthread_setname_np(pthread_self(), truncated);
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  registry.names.push_back(name);
}

const std::string& CurrentThreadName() { return LocalName(); }

std::vector<std::string> RegisteredThreadNames() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  return registry.names;
}

}  // namespace rll
