#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace rll {

namespace {

// The startup default honours RLL_LOG_LEVEL once; SetLogLevel overrides.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("RLL_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warning") == 0 || std::strcmp(env, "warn") == 0 ||
      std::strcmp(env, "2") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    return LogLevel::kError;
  }
  std::fprintf(stderr, "[WARN logging] unknown RLL_LOG_LEVEL '%s' ignored\n",
               env);
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Small per-process thread ordinal — readable in logs, and consistent from
// a thread's first log line onward.
int ThreadOrdinal() {
  static std::atomic<int> next{1};
  thread_local const int ordinal = next.fetch_add(1);
  return ordinal;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Trim directory for compactness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Log timestamps are the one legitimate wall-clock read: they label
  // output for humans and never feed computation.
  using Wall = std::chrono::system_clock;  // rll-analyze: allow(wall-clock)
  const auto now = Wall::now();
  const std::time_t seconds = Wall::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char timestamp[64];  // Generous: snprintf's worst-case int widths.
  std::snprintf(timestamp, sizeof(timestamp),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  stream_ << "[" << timestamp << " " << LevelName(level) << " t"
          << ThreadOrdinal() << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace rll
