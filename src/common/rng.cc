#include "common/rng.h"

#include <cmath>

namespace rll {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  RLL_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  RLL_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RLL_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gamma(double shape) {
  RLL_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  RLL_CHECK_GT(alpha, 0.0);
  RLL_CHECK_GT(beta, 0.0);
  const double x = Gamma(alpha);
  const double y = Gamma(beta);
  return x / (x + y);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  RLL_CHECK_LE(k, n);
  // Floyd's algorithm preserves O(k) memory; for small k relative to n it
  // avoids building the full permutation.
  std::vector<size_t> picked;
  picked.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = static_cast<size_t>(UniformInt(j + 1));
    bool seen = false;
    for (size_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  RLL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RLL_DCHECK(w >= 0.0);
    total += w;
  }
  RLL_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

Rng Rng::Split() { return Rng(Next()); }

uint64_t SplitSeed(uint64_t parent, uint64_t index) {
  // Two dependent splitmix64 rounds: the first whitens the parent, the
  // second folds in the (typically small, sequential) index. A golden-ratio
  // multiple decorrelates index i from i+1 before mixing.
  uint64_t state = parent;
  const uint64_t whitened = SplitMix64(&state);
  state = whitened ^ (index * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
  return SplitMix64(&state);
}

}  // namespace rll
