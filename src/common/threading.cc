#include "common/threading.h"

#include <cstdlib>
#include <exception>

#include "common/check.h"
#include "common/strings.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace rll {

namespace {

// Identifies the pool (and worker slot) owning the current thread, so
// nested ParallelFor calls from inside a task run inline instead of
// re-entering the queue (which could deadlock once every worker blocks on
// a child ParallelFor).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_id = -1;

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricRegistry::Global().GetGauge("rll_pool_queue_depth");
  return gauge;
}

obs::Gauge* ActiveWorkersGauge() {
  static obs::Gauge* gauge =
      obs::MetricRegistry::Global().GetGauge("rll_pool_active_workers");
  return gauge;
}

obs::Counter* TasksCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("rll_pool_tasks_total");
  return counter;
}

size_t DefaultThreadCount() {
  const char* env = std::getenv("RLL_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || parsed == 0) return 1;
  return static_cast<size_t>(parsed);
}

}  // namespace

// Completion state shared between one ParallelFor call and its chunks.
struct ThreadPool::ForState {
  Mutex mu;
  CondVar done;
  size_t remaining RLL_GUARDED_BY(mu) = 0;
  // First chunk exception, rethrown by the caller.
  std::exception_ptr error RLL_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(num_threads, 1)) {
  if (num_threads_ == 1) return;  // Inline execution; no workers, no queue.
  workers_.reserve(num_threads_);
  for (size_t w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_pool == this; }

int ThreadPool::CurrentWorkerId() { return tls_worker_id; }

void ThreadPool::WorkerLoop(size_t worker_id) {
  tls_pool = this;
  tls_worker_id = static_cast<int>(worker_id);
  // Name the worker (kernel + registry) and register its profiler sample
  // buffer up front, so CPU samples and trace rows attribute to
  // "rll-pool-N" instead of an anonymous tid.
  SetCurrentThreadName(StrFormat("rll-pool-%zu", worker_id));
  obs::RegisterProfilerThread();
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      // Safe during shutdown: holding a just-popped task means its
      // enqueuer is still blocked in ParallelFor, so static teardown
      // (which destroys the metric registry) cannot have started.
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<size_t>(grain, 1);
  const size_t n = end - begin;
  // Serial paths: a size-1 pool, a range that fits one chunk, or a call
  // from inside one of our own tasks (run inline; see header).
  if (num_threads_ == 1 || n <= grain || OnWorkerThread()) {
    fn(begin, end);
    return;
  }

  const size_t chunks = (n + grain - 1) / grain;
  auto state = std::make_shared<ForState>();
  {
    MutexLock state_lock(state->mu);
    state->remaining = chunks;
  }
  {
    MutexLock lock(mu_);
    RLL_CHECK_MSG(!stopping_, "ParallelFor on a stopping ThreadPool");
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = begin + c * grain;
      const size_t hi = std::min(end, lo + grain);
      queue_.emplace_back([state, lo, hi, &fn] {
        // Every observability touch must precede the completion
        // notification below: once the last chunk notifies, the caller's
        // ParallelFor returns and the process may begin static teardown
        // (destroying the metric registry) while this worker is still in
        // its epilogue.
        ActiveWorkersGauge()->Add(1.0);
        {
          // Tag the span with the worker slot so Perfetto shows which
          // worker ran each chunk of the parallel schedule.
          RLL_TRACE_SPAN_ID("pool_task",
                            static_cast<size_t>(ThreadPool::CurrentWorkerId()));
          try {
            fn(lo, hi);
          } catch (...) {
            MutexLock state_lock(state->mu);
            if (!state->error) state->error = std::current_exception();
          }
        }
        ActiveWorkersGauge()->Add(-1.0);
        MutexLock state_lock(state->mu);
        if (--state->remaining == 0) state->done.NotifyAll();
      });
    }
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    TasksCounter()->Increment(chunks);
  }
  cv_.NotifyAll();

  MutexLock lock(state->mu);
  while (state->remaining != 0) state->done.Wait(state->mu);
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

Mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool RLL_GUARDED_BY(g_pool_mu);
// 0 = use RLL_THREADS / default.
size_t g_requested_threads RLL_GUARDED_BY(g_pool_mu) = 0;

}  // namespace

std::shared_ptr<ThreadPool> GlobalThreadPool() {
  MutexLock lock(g_pool_mu);
  if (g_pool == nullptr) {
    const size_t threads =
        g_requested_threads > 0 ? g_requested_threads : DefaultThreadCount();
    g_pool = std::make_shared<ThreadPool>(threads);
  }
  return g_pool;
}

void SetGlobalThreads(size_t num_threads) {
  MutexLock lock(g_pool_mu);
  g_requested_threads = num_threads;
  g_pool.reset();  // Recreated lazily at the new size.
}

size_t GlobalThreadCount() {
  MutexLock lock(g_pool_mu);
  if (g_pool != nullptr) return g_pool->num_threads();
  return g_requested_threads > 0 ? g_requested_threads
                                 : DefaultThreadCount();
}

}  // namespace rll
