// Arena-backed scratch memory for the training and serving hot loops.
//
// Three cooperating pieces:
//
//   Arena          — a bump-pointer allocator over 64-byte-aligned chunks.
//                    Allocation is a pointer increment; Reset() reclaims
//                    everything at once and keeps the chunks for reuse, so
//                    a steady-state loop (one batch, one request) touches
//                    the system allocator zero times after warm-up.
//   ArenaScope     — routes ScratchAllocator allocations on the current
//                    thread into an Arena for the scope's lifetime. The
//                    trainer opens one scope per batch: every autograd
//                    node, gradient, and tensor temporary built inside it
//                    lands in the arena and is reclaimed by one Reset().
//   Workspace      — keyed, shape-checked, reusable buffers for code that
//                    wants named scratch (Mlp::EmbedInto, the serve
//                    micro-batcher) rather than a per-iteration scope.
//                    Buffers are deliberately heap-backed (never arena)
//                    because they outlive any scope.
//
// Ownership and thread model: an Arena is single-owner — exactly one
// thread allocates from and resets a given arena (the trainer's batch
// arena lives on the training thread; each serve worker owns its own
// Workspace). Per-arena usage counters are relaxed atomics so the
// process-wide gauge snapshot (GlobalArenaStats, exported via metricsz)
// may read them from another thread without a data race; the registry of
// live arenas is guarded by an annotated rll::Mutex per the repo's lock
// discipline. Nothing here adds cross-thread ordering: arenas do not
// change what is computed, only where the bytes live, so bitwise
// determinism at every thread count is preserved by construction.
//
// Lifetime contract (the one rule): memory obtained through a
// ScratchAllocator while a scope is active must be released — or simply
// abandoned — before the arena's next Reset() reuses it. Every
// allocation carries a one-cache-line header tagging its origin;
// releasing arena-backed memory is a no-op, and releasing it after the
// header has been overwritten by a new epoch trips a loud RLL_CHECK
// instead of corrupting the heap.

#ifndef RLL_COMMON_ARENA_H_
#define RLL_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace rll {

class Arena {
 public:
  /// Every allocation (and every chunk base) is aligned to this many
  /// bytes — one cache line, and enough for any planned SIMD kernel.
  static constexpr size_t kAlignment = 64;

  /// `min_chunk_bytes` sizes the first chunk; later chunks double until
  /// kMaxChunkBytes. A request larger than the current chunk gets a chunk
  /// of its own size, so arbitrarily large matrices still work.
  explicit Arena(size_t min_chunk_bytes = size_t{1} << 16);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` (rounded up to kAlignment), 64-byte aligned.
  /// Never returns nullptr; grows by appending chunks.
  void* Allocate(size_t bytes);

  /// Reclaims every allocation at once; keeps the chunks, so the next
  /// epoch of identical shape allocates purely by pointer bumps.
  void Reset();

  /// Live bytes handed out since the last Reset().
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  /// Total chunk capacity owned by this arena.
  size_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }
  /// Largest bytes_used() ever observed (across Resets).
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  /// Allocations served since construction (across Resets).
  uint64_t allocation_count() const {
    return allocation_count_.load(std::memory_order_relaxed);
  }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  /// Ensures chunks_[active_] can hold `bytes`, appending a chunk if no
  /// existing one fits.
  void EnsureRoom(size_t bytes);

  std::vector<Chunk> chunks_;
  size_t active_ = 0;
  size_t next_chunk_bytes_;
  // Relaxed atomics: written only by the owning thread, readable by the
  // metrics snapshot without a lock.
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> bytes_reserved_{0};
  std::atomic<size_t> high_water_{0};
  std::atomic<uint64_t> allocation_count_{0};
};

/// The arena (if any) that ScratchAllocator routes to on this thread.
Arena* CurrentArena();

/// Routes this thread's ScratchAllocator allocations into `arena` for the
/// scope's lifetime. Nests: the previous arena (or none) is restored on
/// destruction.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

/// Temporarily suspends arena routing (allocations go to the heap), for
/// objects that must outlive any enclosing scope — Workspace buffers use
/// this so a workspace touched inside a scope can never dangle.
class ArenaPause {
 public:
  ArenaPause();
  ~ArenaPause();
  ArenaPause(const ArenaPause&) = delete;
  ArenaPause& operator=(const ArenaPause&) = delete;

 private:
  Arena* prev_;
};

namespace arena_internal {
// Origin tags written into the header cache line ahead of every scratch
// allocation. Anything else found at deallocation time means the bytes
// were reused after a Reset — a use-after-reset bug worth aborting on.
inline constexpr uint64_t kHeapMagic = 0x52'4c'4c'48'45'41'50'31ull;
inline constexpr uint64_t kArenaMagic = 0x52'4c'4c'41'52'45'4e'41ull;
}  // namespace arena_internal

/// Standard allocator that draws from the thread's current Arena when an
/// ArenaScope is active and from the aligned heap otherwise. Stateless:
/// any instance can release any other instance's memory, because each
/// allocation's header records where it came from. Both paths return
/// 64-byte-aligned storage, so Matrix data is SIMD-ready everywhere.
template <typename T>
class ScratchAllocator {
 public:
  using value_type = T;
  static_assert(alignof(T) <= Arena::kAlignment,
                "over-aligned types need a bigger arena alignment");

  ScratchAllocator() = default;
  template <typename U>
  ScratchAllocator(const ScratchAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T) + Arena::kAlignment;
    std::byte* raw;
    uint64_t magic;
    if (Arena* arena = CurrentArena()) {
      raw = static_cast<std::byte*>(arena->Allocate(bytes));
      magic = arena_internal::kArenaMagic;
    } else {
      raw = static_cast<std::byte*>(::operator new(  // rll-lint: allow(naked-new-delete)
          bytes, std::align_val_t{Arena::kAlignment}));
      magic = arena_internal::kHeapMagic;
    }
    *reinterpret_cast<uint64_t*>(raw) = magic;
    return reinterpret_cast<T*>(raw + Arena::kAlignment);
  }

  void deallocate(T* p, size_t /*n*/) noexcept {
    std::byte* raw = reinterpret_cast<std::byte*>(p) - Arena::kAlignment;
    const uint64_t magic = *reinterpret_cast<const uint64_t*>(raw);
    if (magic == arena_internal::kHeapMagic) {
      ::operator delete(raw, std::align_val_t{Arena::kAlignment});  // rll-lint: allow(naked-new-delete)
      return;
    }
    // Arena memory is reclaimed wholesale by Arena::Reset(); a header that
    // matches neither tag means the bytes were already recycled.
    RLL_CHECK_MSG(magic == arena_internal::kArenaMagic,
                  "scratch buffer released after its arena was reset and "
                  "reused (use-after-reset)");
  }

  bool operator==(const ScratchAllocator&) const { return true; }
  bool operator!=(const ScratchAllocator&) const { return false; }
};

/// Vector whose storage follows the scope rules above — the container of
/// choice for per-batch index lists and autograd bookkeeping.
template <typename T>
using ScratchVector = std::vector<T, ScratchAllocator<T>>;

/// Process-wide arena gauges for metricsz / bench reporting.
struct ArenaStatsSnapshot {
  size_t live_arenas = 0;
  size_t bytes_used = 0;
  size_t bytes_reserved = 0;
  size_t high_water = 0;
};
ArenaStatsSnapshot GlobalArenaStats();

/// Keyed, shape-checked, reusable buffers. `BufferT` is any type with
/// rows()/cols()/Reshape(rows, cols) — in practice rll::Matrix; the
/// template keeps this header below tensor/ in the layering DAG. Buffers
/// are created on first use and reused (capacity and all) thereafter;
/// they are always heap-backed via ArenaPause, so a workspace is safe to
/// touch from inside any ArenaScope. A Workspace is single-owner, like
/// the per-worker instances in src/serve/.
template <typename BufferT>
class BasicWorkspace {
 public:
  /// Strict checkout: creates rows×cols on first use; thereafter the
  /// requested shape must match exactly (RLL_CHECK aborts on mismatch —
  /// a shape drift under a stable key is a logic bug, not a resize).
  BufferT& Get(std::string_view key, size_t rows, size_t cols) {
    ArenaPause pause;
    BufferT& buffer = Slot(key);
    if (buffer.rows() == 0 && buffer.cols() == 0) {
      buffer.Reshape(rows, cols);
      return buffer;
    }
    RLL_CHECK_MSG(buffer.rows() == rows && buffer.cols() == cols,
                  "Workspace::Get shape mismatch for a keyed buffer — use "
                  "GetReshaped for buffers whose shape varies");
    return buffer;
  }

  /// Flexible checkout for shapes that vary call to call (e.g. the serve
  /// batcher's stacked matrix, whose row count is the batch size).
  /// Reshape preserves capacity, so steady-state reuse does not allocate.
  BufferT& GetReshaped(std::string_view key, size_t rows, size_t cols) {
    ArenaPause pause;
    BufferT& buffer = Slot(key);
    buffer.Reshape(rows, cols);
    return buffer;
  }

  size_t size() const { return buffers_.size(); }

 private:
  BufferT& Slot(std::string_view key) {
    // Transparent find: steady-state lookups build no std::string.
    auto it = buffers_.find(key);
    if (it == buffers_.end()) {
      it = buffers_.emplace(std::string(key), BufferT()).first;
    }
    return it->second;
  }

  std::map<std::string, BufferT, std::less<>> buffers_;
};

}  // namespace rll

#endif  // RLL_COMMON_ARENA_H_
