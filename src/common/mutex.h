// Annotated mutex wrapper: the one lock vocabulary for src/.
//
// Clang's -Wthread-safety analysis proves at compile time that every
// access to a RLL_GUARDED_BY member happens with its mutex held — but only
// for types it can see capabilities on. std::mutex has none, so the repo
// wraps it:
//
//   class RLL_CAPABILITY("mutex") Mutex     — lockable capability
//   class RLL_SCOPED_CAPABILITY MutexLock   — RAII lock (std::lock_guard)
//   class CondVar                            — condition variable whose
//                                              Wait() REQUIRES the mutex
//
// Usage mirrors the std types it replaces:
//
//   Mutex mu_;
//   std::deque<Task> queue_ RLL_GUARDED_BY(mu_);
//   ...
//   MutexLock lock(mu_);
//   while (queue_.empty()) cv_.Wait(mu_);   // explicit loop, not a lambda
//   queue_.pop_front();
//
// Condition-variable predicates are written as explicit while loops rather
// than wait(lock, pred) lambdas: the analysis is intraprocedural, so a
// lambda body would be checked without the caller's lock context and every
// guarded access inside it would (correctly, but uselessly) warn.
//
// On non-Clang compilers the annotation macros expand to nothing and the
// wrapper degrades to a zero-overhead veneer over std::mutex — every
// method is a single inlined forwarding call. The thread-safety build
// (CMake preset `thread-safety`, CI job `analysis`) compiles with
// -Wthread-safety -Werror=thread-safety so violations break the build.
//
// tools/analyze's lock-discipline pass bans raw std::mutex / std::lock_guard
// / std::condition_variable in src/ outside this file, so new concurrent
// code cannot silently opt out of the analysis.

#ifndef RLL_COMMON_MUTEX_H_
#define RLL_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Annotation macros expand to Clang thread-safety attributes under Clang
// and to nothing elsewhere (GCC accepts but ignores most of them, and the
// spellings drift across versions — empty is the portable no-op).
#if defined(__clang__)
#define RLL_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RLL_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

/// Declares a type to be a capability (lockable).
#define RLL_CAPABILITY(x) RLL_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction.
#define RLL_SCOPED_CAPABILITY \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
/// Data member readable/writable only with the given mutex held.
#define RLL_GUARDED_BY(x) RLL_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
/// Pointer member whose pointee is guarded by the given mutex.
#define RLL_PT_GUARDED_BY(x) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
/// Function that must be called with the listed mutexes held.
#define RLL_REQUIRES(...) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
/// Function that acquires the listed mutexes and returns holding them.
#define RLL_ACQUIRE(...) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
/// Function that releases the listed mutexes.
#define RLL_RELEASE(...) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
/// Function that acquires on a true (or listed) return value.
#define RLL_TRY_ACQUIRE(...) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be called with the listed mutexes held.
#define RLL_EXCLUDES(...) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the mutex is held (informs the analysis).
#define RLL_ASSERT_CAPABILITY(x) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
/// Function returning a reference to the mutex guarding its result.
#define RLL_RETURN_CAPABILITY(x) \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Use only where
/// the locking pattern is genuinely invisible to the analysis, and say why.
#define RLL_NO_THREAD_SAFETY_ANALYSIS \
  RLL_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace rll {

class CondVar;

/// std::mutex with a thread-safety capability. Prefer MutexLock to manual
/// Lock/Unlock pairs.
class RLL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RLL_ACQUIRE() { mu_.lock(); }
  void Unlock() RLL_RELEASE() { mu_.unlock(); }
  bool TryLock() RLL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock, the analysis-aware std::lock_guard. Not movable: one scope,
/// one lock.
class RLL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RLL_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() RLL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable for rll::Mutex. Wait-with-predicate is spelled as an
/// explicit loop at the call site (see file comment):
///
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires. Spurious
  /// wakeups happen; always re-check the condition in a loop.
  void Wait(Mutex& mu) RLL_REQUIRES(mu) {
    // Adopt the held lock for the wait, then release ownership without
    // unlocking: the caller's MutexLock still owns the mutex.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait, but give up at `deadline`. Returns std::cv_status::timeout when
  /// the deadline passed (the mutex is reacquired either way).
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      RLL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  /// Notification does not require the mutex (though holding it is fine).
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rll

#endif  // RLL_COMMON_MUTEX_H_
