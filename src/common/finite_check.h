// Numeric-invariant tripwires for the float-heavy pipeline.
//
//   RLL_DCHECK_FINITE(x)      x (scalar, Matrix, vector, span — anything
//                             indexable) contains no NaN/Inf; reports the
//                             first offending index and value.
//   RLL_DCHECK_PROB(p)        p is finite and in [0, 1] — confidences,
//                             softmax outputs, Beta posteriors.
//   RLL_DCHECK_SHAPE(m, r, c) m is exactly r x c.
//
// These are debug tripwires, not error handling: they are wired into the
// ops that *produce* values (matmul/softmax outputs, backward gradients,
// per-step losses) so a NaN aborts at its source instead of surfacing
// three tables later as a quietly degraded AUC. In NDEBUG builds every
// macro compiles to an unevaluated sizeof — zero instructions in Release,
// but the expression stays parsed, type-checked, and odr-used (same
// contract as RLL_DCHECK in common/check.h).
//
// Policy recap (see DESIGN.md "Correctness tooling"): user input and I/O
// failures return Status; violated internal preconditions that are cheap
// to test use RLL_CHECK; numeric invariants on hot paths use these
// RLL_DCHECK_* tripwires.

#ifndef RLL_COMMON_FINITE_CHECK_H_
#define RLL_COMMON_FINITE_CHECK_H_

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <type_traits>

#include "common/check.h"

namespace rll::internal {

template <typename T>
concept FiniteScalar = std::is_arithmetic_v<std::remove_cvref_t<T>>;

/// Anything with size() and operator[] yielding numbers: Matrix,
/// std::vector<double>, std::span<const double>, ...
template <typename C>
concept FiniteIndexable = requires(const C& c) {
  { c.size() } -> std::convertible_to<std::size_t>;
  { c[std::size_t{0}] } -> std::convertible_to<double>;
};

template <FiniteScalar T>
inline bool AllFinite(T v) {
  return std::isfinite(static_cast<double>(v));
}

template <FiniteIndexable C>
inline bool AllFinite(const C& c) {
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(c[i]))) return false;
  }
  return true;
}

[[noreturn]] inline void FiniteCheckFailed(const char* file, int line,
                                           const char* expr, double value) {
  char msg[128];
  std::snprintf(msg, sizeof(msg), "non-finite value %g", value);
  CheckFailed(file, line, expr, msg);
}

[[noreturn]] inline void FiniteCheckFailedAt(const char* file, int line,
                                             const char* expr,
                                             std::size_t index, double value) {
  char msg[128];
  std::snprintf(msg, sizeof(msg), "non-finite value %g at flat index %zu",
                value, index);
  CheckFailed(file, line, expr, msg);
}

template <FiniteScalar T>
inline void DcheckFinite(T v, const char* file, int line, const char* expr) {
  if (!std::isfinite(static_cast<double>(v))) {
    FiniteCheckFailed(file, line, expr, static_cast<double>(v));
  }
}

template <FiniteIndexable C>
inline void DcheckFinite(const C& c, const char* file, int line,
                         const char* expr) {
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(c[i]);
    if (!std::isfinite(v)) FiniteCheckFailedAt(file, line, expr, i, v);
  }
}

inline void DcheckProb(double p, const char* file, int line,
                       const char* expr) {
  if (!(std::isfinite(p) && p >= 0.0 && p <= 1.0)) {
    char msg[128];
    std::snprintf(msg, sizeof(msg), "value %g is not a probability in [0, 1]",
                  p);
    CheckFailed(file, line, expr, msg);
  }
}

template <typename M>
inline void DcheckShape(const M& m, std::size_t rows, std::size_t cols,
                        const char* file, int line, const char* expr) {
  if (m.rows() != rows || m.cols() != cols) {
    char msg[128];
    std::snprintf(msg, sizeof(msg), "shape %zux%zu, expected %zux%zu",
                  static_cast<std::size_t>(m.rows()),
                  static_cast<std::size_t>(m.cols()), rows, cols);
    CheckFailed(file, line, expr, msg);
  }
}

}  // namespace rll::internal

#ifdef NDEBUG
#define RLL_DCHECK_FINITE(x)                                   \
  do {                                                         \
    static_cast<void>(sizeof(::rll::internal::AllFinite(x)));  \
  } while (false)
#define RLL_DCHECK_PROB(x)                                       \
  do {                                                           \
    static_cast<void>(sizeof(static_cast<double>(x) >= 0.0));    \
  } while (false)
#define RLL_DCHECK_SHAPE(m, r, c)                                         \
  do {                                                                    \
    static_cast<void>(sizeof((m).rows() + (m).cols() + (r) + (c)));       \
  } while (false)
#else
#define RLL_DCHECK_FINITE(x) \
  ::rll::internal::DcheckFinite((x), __FILE__, __LINE__, #x)
#define RLL_DCHECK_PROB(x) \
  ::rll::internal::DcheckProb((x), __FILE__, __LINE__, #x)
#define RLL_DCHECK_SHAPE(m, r, c)                                      \
  ::rll::internal::DcheckShape((m), static_cast<std::size_t>(r),       \
                               static_cast<std::size_t>(c), __FILE__,  \
                               __LINE__, #m)
#endif

#endif  // RLL_COMMON_FINITE_CHECK_H_
