// Minimal leveled logger writing to stderr.
//
// Usage: RLL_LOG(INFO) << "epoch " << e << " loss " << loss;
// Benchmarks and examples raise the threshold to keep stdout tables clean.

#ifndef RLL_COMMON_LOGGING_H_
#define RLL_COMMON_LOGGING_H_

#include <sstream>

namespace rll {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Messages below this level are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rll

#define RLL_LOG(severity)                                          \
  if (::rll::LogLevel::k##severity < ::rll::GetLogLevel()) {       \
  } else                                                           \
    ::rll::internal::LogMessage(::rll::LogLevel::k##severity,      \
                                __FILE__, __LINE__)                \
        .stream()

#endif  // RLL_COMMON_LOGGING_H_
