// Minimal leveled logger writing to stderr.
//
// Usage: RLL_LOG(INFO) << "epoch " << e << " loss " << loss;
//        RLL_LOG_EVERY_N(Info, 100) << "heartbeat";   // 1st, 101st, ...
// Benchmarks and examples raise the threshold to keep stdout tables clean.
//
// Each line is prefixed "[<ISO-8601 UTC> <LEVEL> t<tid> <file>:<line>]";
// the thread id is a small per-process ordinal, stable within a run. The
// initial threshold honours the RLL_LOG_LEVEL environment variable
// (debug|info|warning|error, or 0–3), read once at startup; SetLogLevel
// still overrides it at any time.

#ifndef RLL_COMMON_LOGGING_H_
#define RLL_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>

namespace rll {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Messages below this level are dropped. Default: kInfo, or the
/// RLL_LOG_LEVEL environment variable when set.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rll

#define RLL_LOG(severity)                                          \
  if (::rll::LogLevel::k##severity < ::rll::GetLogLevel()) {       \
  } else                                                           \
    ::rll::internal::LogMessage(::rll::LogLevel::k##severity,      \
                                __FILE__, __LINE__)                \
        .stream()

// Logs on the 1st, (n+1)th, (2n+1)th, ... execution of this statement.
// The call-site counter lives in a lambda-local static so each expansion
// counts independently; it advances even when the severity is below the
// threshold, matching the usual every-N semantics. Single statement, safe
// in unbraced if/else.
#define RLL_LOG_EVERY_N(severity, n)                                   \
  if (![]() -> bool {                                                  \
        static ::std::atomic<unsigned long long> rll_every_count{0};   \
        return rll_every_count.fetch_add(                              \
                   1, ::std::memory_order_relaxed) %                   \
                   static_cast<unsigned long long>(n) ==               \
               0;                                                      \
      }()) {                                                           \
  } else                                                               \
    RLL_LOG(severity)

#endif  // RLL_COMMON_LOGGING_H_
