// Deterministic, seedable random number generation.
//
// All stochastic components in the library (data synthesis, worker
// simulation, group sampling, weight init, optimizers) draw from an Rng
// passed in explicitly, so every experiment is reproducible from a seed.
// The engine is xoshiro256** seeded via splitmix64 — fast, high quality,
// and stable across platforms (unlike std::normal_distribution, whose
// output differs between standard library implementations; we implement
// our own transforms).

#ifndef RLL_COMMON_RNG_H_
#define RLL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rll {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded with splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Marsaglia polar method.
  double Normal();

  /// Normal with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Gamma(shape, 1) via Marsaglia–Tsang; shape > 0.
  double Gamma(double shape);

  /// Beta(alpha, beta) via two Gamma draws; alpha, beta > 0.
  double Beta(double alpha, double beta);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) in selection order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Index sampled from an unnormalized non-negative weight vector.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-fold / per-worker
  /// streams that must not interact).
  Rng Split();

  /// Derives the base seed for a family of SplitSeed streams, advancing
  /// this generator once. Sugar for Next() that documents intent at call
  /// sites handing work to the thread pool.
  uint64_t SplitSeedBase() { return Next(); }

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derives the seed of stream `index` under `parent` — a splitmix64-based
/// hash of both values, so the streams {SplitSeed(p, 0), SplitSeed(p, 1),
/// …} are statistically independent of each other and of Rng(p) itself.
///
/// This is the seeding discipline for every parallel layer: instead of
/// threading one mutable Rng through a loop (whose draws would then depend
/// on execution order), the caller derives one seed per unit of work —
/// per fold, per epoch, per example — and each task builds a private
/// Rng(SplitSeed(parent, i)). Results are then independent of how tasks
/// interleave across threads.
uint64_t SplitSeed(uint64_t parent, uint64_t index);

}  // namespace rll

#endif  // RLL_COMMON_RNG_H_
