// Wall-clock stopwatch for benchmark harnesses and training-loop telemetry.

#ifndef RLL_COMMON_STOPWATCH_H_
#define RLL_COMMON_STOPWATCH_H_

#include <chrono>

namespace rll {

/// Starts on construction; ElapsedSeconds()/ElapsedMillis() read without
/// stopping, Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rll

#endif  // RLL_COMMON_STOPWATCH_H_
