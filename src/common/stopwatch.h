// Wall-clock stopwatch for benchmark harnesses and training-loop telemetry.

#ifndef RLL_COMMON_STOPWATCH_H_
#define RLL_COMMON_STOPWATCH_H_

#include <chrono>
#include <functional>
#include <utility>

namespace rll {

/// Starts on construction; ElapsedSeconds()/ElapsedMillis()/ElapsedMicros()
/// read without stopping, Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Times a scope and reports the elapsed milliseconds to a callback on
/// destruction — the glue between Stopwatch and any sink (a metrics
/// histogram via obs::ObserveMillis, a bench table row, a log line):
///
///   {
///     ScopedTimer timer(obs::ObserveMillis(histogram));
///     ...work...
///   }  // histogram->Observe(elapsed_ms)
class ScopedTimer {
 public:
  explicit ScopedTimer(std::function<void(double elapsed_ms)> on_done)
      : on_done_(std::move(on_done)) {}

  ~ScopedTimer() {
    if (on_done_) on_done_(watch_.ElapsedMillis());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Reads without stopping — the callback still fires at scope exit.
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }

  /// Drops the callback; the scope exits silently.
  void Cancel() { on_done_ = nullptr; }

 private:
  Stopwatch watch_;
  std::function<void(double)> on_done_;
};

}  // namespace rll

#endif  // RLL_COMMON_STOPWATCH_H_
