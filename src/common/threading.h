// Deterministic parallel execution core.
//
// A fixed-partition ThreadPool plus ParallelFor / ParallelReduce helpers
// whose results are independent of the worker count. Determinism is the
// design constraint everything else bends around:
//
//   * ParallelFor partitions a range into grain-sized chunks whose
//     boundaries depend only on (begin, end, grain) — never on the number
//     of threads — so row-partitioned kernels are bitwise identical at any
//     --threads value.
//   * ParallelReduce computes one partial per chunk and combines partials
//     sequentially in chunk order, so floating-point reductions are also
//     bitwise identical at any --threads value (though not necessarily to
//     a plain left-fold over the whole range).
//   * Randomized work never shares a mutable Rng across tasks; callers
//     derive independent per-task streams with SplitSeed (common/rng.h).
//
// The global pool is a lazy singleton sized by the RLL_THREADS environment
// variable (tools expose it as --threads). The default is 1: parallelism is
// opt-in, and a size-1 pool runs every ParallelFor inline with no queue,
// matching the serial code path exactly. Nested ParallelFor calls issued
// from inside a pool task run inline on the worker, so composed layers
// (parallel CV folds over parallel kernels) cannot deadlock.

#ifndef RLL_COMMON_THREADING_H_
#define RLL_COMMON_THREADING_H_

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace rll {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). A size-1 pool spawns
  /// no workers at all; every ParallelFor runs inline on the caller.
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
  /// at most `grain` indices (grain clamped to >= 1). Blocks until every
  /// chunk has finished. The partition depends only on the arguments, so
  /// per-index work is scheduled identically at any pool size. The first
  /// exception thrown by a chunk is rethrown here after the remaining
  /// chunks finish. Calls from inside one of this pool's tasks run inline.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// Worker index in [0, num_threads) when called from any pool's worker
  /// thread, -1 otherwise (e.g. the main thread).
  static int CurrentWorkerId();

 private:
  struct ForState;

  void WorkerLoop(size_t worker_id);
  void RunTask(const std::function<void()>& task);

  size_t num_threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ RLL_GUARDED_BY(mu_);
  bool stopping_ RLL_GUARDED_BY(mu_) = false;
};

/// The process-wide pool. Created on first use with the thread count from
/// SetGlobalThreads if called, else the RLL_THREADS environment variable,
/// else 1. The returned shared_ptr keeps the pool alive across a concurrent
/// SetGlobalThreads.
std::shared_ptr<ThreadPool> GlobalThreadPool();

/// Resizes the global pool (0 restores the RLL_THREADS/1 default). The old
/// pool is destroyed once in-flight holders release it; the next
/// GlobalThreadPool() call builds the new one lazily. Not meant to be
/// called concurrently with work already in flight.
void SetGlobalThreads(size_t num_threads);

/// Worker count the global pool has (or would be created with).
size_t GlobalThreadCount();

/// ParallelFor on the global pool. A template so the serial paths — a
/// size-1 pool, a range that fits one chunk, a nested call from a worker —
/// invoke `fn` directly: no std::function is materialized, which keeps the
/// hot loops built on these kernels allocation-free at --threads 1. Only
/// an actual pool dispatch pays the type-erasure (and task-queue) cost.
/// The chunk partition is the same either way, so results stay bitwise
/// identical at any thread count.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, size_t grain, const Fn& fn) {
  if (end <= begin) return;
  grain = std::max<size_t>(grain, 1);
  const std::shared_ptr<ThreadPool> pool = GlobalThreadPool();
  if (pool->num_threads() == 1 || end - begin <= grain ||
      pool->OnWorkerThread()) {
    fn(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain,
                    std::function<void(size_t, size_t)>(std::cref(fn)));
}

/// Deterministic tree reduction over [begin, end): `map_chunk(lo, hi)`
/// produces one partial per grain-sized chunk (computed in parallel), and
/// `combine` folds the partials left-to-right in chunk order. Because the
/// chunk boundaries and the combine order depend only on the arguments,
/// the result is bitwise identical at any pool size.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T identity,
                 const MapFn& map_chunk, const CombineFn& combine) {
  if (end <= begin) return identity;
  grain = std::max<size_t>(grain, 1);
  const size_t chunks = (end - begin + grain - 1) / grain;
  {
    const std::shared_ptr<ThreadPool> pool = GlobalThreadPool();
    if (pool->num_threads() == 1 || chunks == 1 || pool->OnWorkerThread()) {
      // Serial fold with the SAME chunk boundaries and combine order as
      // the parallel path — bitwise identical result — but no partials
      // buffer and no dispatch, so the path allocates nothing.
      T acc = identity;
      for (size_t c = 0; c < chunks; ++c) {
        const size_t lo = begin + c * grain;
        const size_t hi = std::min(end, lo + grain);
        acc = combine(acc, map_chunk(lo, hi));
      }
      return acc;
    }
  }
  std::vector<T> partials(chunks, identity);
  ParallelFor(0, chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      const size_t lo = begin + c * grain;
      const size_t hi = std::min(end, lo + grain);
      partials[c] = map_chunk(lo, hi);
    }
  });
  T acc = identity;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

}  // namespace rll

#endif  // RLL_COMMON_THREADING_H_
