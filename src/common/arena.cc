#include "common/arena.h"

#include <algorithm>

#include "common/mutex.h"

namespace rll {
namespace {

// Chunk growth doubles from the arena's minimum up to this cap, bounding
// both the number of system allocations during warm-up and the worst-case
// over-reservation once the working set stabilizes.
constexpr size_t kMaxChunkBytes = size_t{8} << 20;

// Registry of live arenas, for the process-wide gauge snapshot. A plain
// vector: arenas are few (one per trainer, one per test) and churn is
// construction/destruction only, never the allocation path.
Mutex& RegistryMutex() {
  static Mutex mu;
  return mu;
}

std::vector<Arena*>& Registry() RLL_REQUIRES(RegistryMutex()) {
  static std::vector<Arena*> arenas;
  return arenas;
}

// The arena ScratchAllocator routes to on this thread; null means heap.
Arena*& TlsArenaSlot() {
  thread_local Arena* slot = nullptr;
  return slot;
}

size_t AlignUp(size_t bytes) {
  return (bytes + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

}  // namespace

Arena::Arena(size_t min_chunk_bytes)
    : next_chunk_bytes_(std::max(AlignUp(min_chunk_bytes), kAlignment)) {
  MutexLock lock(RegistryMutex());
  Registry().push_back(this);
}

Arena::~Arena() {
  {
    MutexLock lock(RegistryMutex());
    std::vector<Arena*>& arenas = Registry();
    arenas.erase(std::remove(arenas.begin(), arenas.end(), this),
                 arenas.end());
  }
  for (Chunk& chunk : chunks_) {
    ::operator delete(chunk.base, std::align_val_t{kAlignment});  // rll-lint: allow(naked-new-delete)
  }
}

void* Arena::Allocate(size_t bytes) {
  bytes = AlignUp(std::max(bytes, size_t{1}));
  if (active_ >= chunks_.size() ||
      chunks_[active_].used + bytes > chunks_[active_].capacity) {
    EnsureRoom(bytes);
  }
  Chunk& chunk = chunks_[active_];
  void* out = chunk.base + chunk.used;
  chunk.used += bytes;
  const size_t used = bytes_used_.load(std::memory_order_relaxed) + bytes;
  bytes_used_.store(used, std::memory_order_relaxed);
  if (used > high_water_.load(std::memory_order_relaxed)) {
    high_water_.store(used, std::memory_order_relaxed);
  }
  allocation_count_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void Arena::EnsureRoom(size_t bytes) {
  // Walk forward over chunks retained by earlier epochs before growing:
  // after a Reset they are all empty, so a stable working set settles into
  // the same chunk sequence every epoch with no new reservations.
  while (active_ + 1 < chunks_.size()) {
    ++active_;
    if (chunks_[active_].used + bytes <= chunks_[active_].capacity) return;
  }
  Chunk chunk;
  chunk.capacity = std::max(next_chunk_bytes_, bytes);
  chunk.base = static_cast<std::byte*>(::operator new(  // rll-lint: allow(naked-new-delete)
      chunk.capacity, std::align_val_t{kAlignment}));
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  bytes_reserved_.fetch_add(chunk.capacity, std::memory_order_relaxed);
  chunks_.push_back(chunk);
  active_ = chunks_.size() - 1;
}

void Arena::Reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
  bytes_used_.store(0, std::memory_order_relaxed);
}

Arena* CurrentArena() { return TlsArenaSlot(); }

ArenaScope::ArenaScope(Arena* arena) : prev_(TlsArenaSlot()) {
  TlsArenaSlot() = arena;
}

ArenaScope::~ArenaScope() { TlsArenaSlot() = prev_; }

ArenaPause::ArenaPause() : prev_(TlsArenaSlot()) { TlsArenaSlot() = nullptr; }

ArenaPause::~ArenaPause() { TlsArenaSlot() = prev_; }

ArenaStatsSnapshot GlobalArenaStats() {
  ArenaStatsSnapshot snapshot;
  MutexLock lock(RegistryMutex());
  for (const Arena* arena : Registry()) {
    ++snapshot.live_arenas;
    snapshot.bytes_used += arena->bytes_used();
    snapshot.bytes_reserved += arena->bytes_reserved();
    snapshot.high_water += arena->high_water();
  }
  return snapshot;
}

}  // namespace rll
