// Small string helpers (printf-style formatting, joining, splitting).
// libstdc++ 12 has no <format>, so we wrap vsnprintf.

#ifndef RLL_COMMON_STRINGS_H_
#define RLL_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace rll {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Parses a double; returns false on malformed input or trailing junk.
bool ParseDouble(const std::string& s, double* out);

/// Parses a signed integer; returns false on malformed input.
bool ParseInt(const std::string& s, int64_t* out);

}  // namespace rll

#endif  // RLL_COMMON_STRINGS_H_
