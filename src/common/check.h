// Fatal-assert macros for programmer errors (precondition violations on
// internal paths where returning a Status would be noise). RLL_CHECK is
// always on; RLL_DCHECK compiles out in NDEBUG builds.

#ifndef RLL_COMMON_CHECK_H_
#define RLL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rll::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "RLL_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace rll::internal

#define RLL_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::rll::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
  } while (false)

#define RLL_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond))                                                     \
      ::rll::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
  } while (false)

#define RLL_CHECK_EQ(a, b) RLL_CHECK((a) == (b))
#define RLL_CHECK_NE(a, b) RLL_CHECK((a) != (b))
#define RLL_CHECK_LT(a, b) RLL_CHECK((a) < (b))
#define RLL_CHECK_LE(a, b) RLL_CHECK((a) <= (b))
#define RLL_CHECK_GT(a, b) RLL_CHECK((a) > (b))
#define RLL_CHECK_GE(a, b) RLL_CHECK((a) >= (b))

// In NDEBUG builds the condition must still be parsed, type-checked, and
// odr-visible — otherwise variables referenced only in a DCHECK draw
// unused-variable warnings in Release, and a side-effecting condition
// would silently change behavior between build types (it is a bug either
// way, but it should fail to compile the same in both). sizeof over the
// negated condition does exactly that at zero runtime cost: the operand
// is unevaluated, so nothing runs, but every name in it is used.
#ifdef NDEBUG
#define RLL_DCHECK(cond)               \
  do {                                 \
    static_cast<void>(sizeof(!(cond))); \
  } while (false)
#else
#define RLL_DCHECK(cond) RLL_CHECK(cond)
#endif

#define RLL_DCHECK_EQ(a, b) RLL_DCHECK((a) == (b))
#define RLL_DCHECK_NE(a, b) RLL_DCHECK((a) != (b))
#define RLL_DCHECK_LT(a, b) RLL_DCHECK((a) < (b))
#define RLL_DCHECK_LE(a, b) RLL_DCHECK((a) <= (b))
#define RLL_DCHECK_GT(a, b) RLL_DCHECK((a) > (b))
#define RLL_DCHECK_GE(a, b) RLL_DCHECK((a) >= (b))

#endif  // RLL_COMMON_CHECK_H_
