#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace rll {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseDouble(const std::string& s, double* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int64_t* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size()) return false;
  *out = v;
  return true;
}

}  // namespace rll
