// Process-wide registry of named threads.
//
// Threads that matter operationally — pool workers, the serve batcher, TCP
// connection handlers — name themselves at entry with SetCurrentThreadName.
// The name is cached thread-locally (so readers on the same thread pay one
// TLS load), recorded in a process-wide registry (so exporters can list
// every name ever seen), and mirrored into the kernel via
// pthread_setname_np (so `top -H`, gdb, and perf show the same names the
// trace viewer and profiler reports do).
//
// Lives in rll_common (below obs in the layering DAG) so both the trace
// exporter and the profiler can stamp thread names without a cycle.

#ifndef RLL_COMMON_THREAD_REGISTRY_H_
#define RLL_COMMON_THREAD_REGISTRY_H_

#include <string>
#include <vector>

namespace rll {

/// Names the calling thread. The name is stored in the process registry,
/// cached thread-locally, and pushed to the kernel (truncated to the
/// 15-character pthread limit; the registry keeps the full string).
/// Renaming is allowed; the latest name wins for this thread.
void SetCurrentThreadName(const std::string& name);

/// The calling thread's registered name, "" when it never named itself.
const std::string& CurrentThreadName();

/// Every name ever registered, in registration order. Names of exited
/// threads stay listed — this is an audit trail, not a liveness view.
std::vector<std::string> RegisteredThreadNames();

}  // namespace rll

#endif  // RLL_COMMON_THREAD_REGISTRY_H_
