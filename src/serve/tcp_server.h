// TCP transport for ServerCore: a loopback-friendly, newline-delimited
// JSON listener. One accept loop (poll-based, so a stop flag is honored
// within ~100 ms) plus one thread per connection; connections past
// `max_connections` receive a structured "overloaded" response and are
// closed instead of queueing invisibly in the backlog.
//
// The transport owns sockets and threads only — all request semantics
// live in ServerCore, which is what lets tests and the bench harness run
// the identical logic in-process. Stop() (or the caller's stop flag, e.g.
// a SIGINT handler's sig_atomic_t) ends the accept loop and unblocks the
// connection threads; the caller then drains the core with
// ServerCore::Shutdown().

#ifndef RLL_SERVE_TCP_SERVER_H_
#define RLL_SERVE_TCP_SERVER_H_

#include <atomic>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "serve/server_core.h"

namespace rll::serve {

struct TcpServerOptions {
  /// Listen address. The default stays off the network: serving beyond
  /// localhost is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
  /// Concurrent connections beyond this are turned away with an
  /// "overloaded" response line.
  size_t max_connections = 64;
};

class TcpServer {
 public:
  TcpServer(const TcpServerOptions& options, ServerCore* core);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens. port() is valid afterwards.
  Status Start();

  /// Blocking accept loop. Returns cleanly when Stop() is called or when
  /// *stop_flag becomes nonzero (polled every ~100 ms — the flag can be
  /// written from a signal handler).
  Status Serve(const volatile std::sig_atomic_t* stop_flag = nullptr);

  /// Ends the accept loop, shuts down open connections, joins their
  /// threads. Idempotent; safe from any thread.
  void Stop();

  /// Bound port after Start() (resolves port 0 to the real one).
  int port() const { return port_; }

 private:
  void HandleConnection(int fd);
  void CloseListener();
  /// Joins connection threads that have announced completion (called from
  /// the accept loop so a long-lived server does not accumulate finished
  /// thread handles).
  void ReapFinished();

  const TcpServerOptions options_;
  ServerCore* const core_;  // Not owned.
  /// Atomic because Stop() (any thread) closes it while the accept loop
  /// polls it; CloseListener's exchange makes the close idempotent.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> active_connections_{0};

  Mutex mu_;
  std::vector<std::thread> threads_ RLL_GUARDED_BY(mu_);
  std::vector<int> conn_fds_ RLL_GUARDED_BY(mu_);
  std::vector<std::thread::id> finished_ RLL_GUARDED_BY(mu_);
};

}  // namespace rll::serve

#endif  // RLL_SERVE_TCP_SERVER_H_
