// Background reload thread for ServerCore: serializes hot model swaps off
// the serving threads. A reload builds a whole new generation — bundle
// load, corpus re-embed, index rebuild — which can take seconds; running
// it on a shard worker would stall every connection on that shard, so the
// event plane hands `reloadz action=reload` requests here (via
// ServerCore::SetReloadRequestHandler) and answers "accepted"
// immediately.
//
// The same thread optionally watches the served bundle file: when
// `watch_interval_ms` > 0, it stats `watch_path` on that cadence and
// triggers a reload whenever the modification time changes — so
// `rll train --save-model m.rll` into the served path rolls the server
// forward with no operator action at all. Failed reloads keep the old
// generation serving and are retried on the next mtime change.

#ifndef RLL_SERVE_EVENT_RELOAD_MANAGER_H_
#define RLL_SERVE_EVENT_RELOAD_MANAGER_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "serve/server_core.h"

namespace rll::serve {

struct ReloadManagerOptions {
  /// Bundle file to poll for mtime changes; empty disables watching
  /// (the thread then only serves explicit RequestReload calls).
  std::string watch_path;
  /// Poll cadence; 0 disables watching.
  int64_t watch_interval_ms = 0;
};

class ReloadManager {
 public:
  ReloadManager(ServerCore* core, ReloadManagerOptions options);
  ~ReloadManager();

  ReloadManager(const ReloadManager&) = delete;
  ReloadManager& operator=(const ReloadManager&) = delete;

  /// Spawns the "rll-reload" thread. Call once, before serving starts.
  void Start();

  /// Stops the thread; queued reloads that have not started are dropped
  /// (the requester already got "accepted" — shutdown outranks it, and
  /// ServerCore would refuse the swap anyway). Idempotent.
  void Stop();

  /// Enqueues a reload (empty path: the served bundle's source) and
  /// returns immediately; the background thread runs ServerCore::Reload.
  /// Fails once Stop() has been called.
  Status RequestReload(const std::string& path);

  /// Reloads triggered by the file watcher so far.
  uint64_t watch_triggers() const;

 private:
  void Run();
  /// Returns the watch file's mtime as nanoseconds-since-epoch, or -1
  /// when the file is missing/unreadable (missing is not an error: a
  /// writer may be mid-rename).
  int64_t WatchFileMtimeNs() const;

  ServerCore* const core_;  // Not owned.
  const ReloadManagerOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::string> queue_ RLL_GUARDED_BY(mu_);
  bool stop_ RLL_GUARDED_BY(mu_) = false;
  bool started_ RLL_GUARDED_BY(mu_) = false;
  uint64_t watch_triggers_ RLL_GUARDED_BY(mu_) = 0;

  std::thread thread_;
};

}  // namespace rll::serve

#endif  // RLL_SERVE_EVENT_RELOAD_MANAGER_H_
