#include "serve/event/reload_manager.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace rll::serve {

ReloadManager::ReloadManager(ServerCore* core, ReloadManagerOptions options)
    : core_(core), options_(std::move(options)) {}

ReloadManager::~ReloadManager() { Stop(); }

void ReloadManager::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return;
    started_ = true;
  }
  thread_ = std::thread([this] { Run(); });
}

void ReloadManager::Stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

Status ReloadManager::RequestReload(const std::string& path) {
  {
    MutexLock lock(mu_);
    if (stop_ || !started_) {
      return Status::FailedPrecondition("reload manager is not running");
    }
    queue_.push_back(path);
  }
  cv_.NotifyAll();
  return Status::OK();
}

uint64_t ReloadManager::watch_triggers() const {
  MutexLock lock(mu_);
  return watch_triggers_;
}

int64_t ReloadManager::WatchFileMtimeNs() const {
  struct stat st;
  if (::stat(options_.watch_path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

void ReloadManager::Run() {
  SetCurrentThreadName("rll-reload");
  obs::RegisterProfilerThread();
  const bool watching =
      !options_.watch_path.empty() && options_.watch_interval_ms > 0;
  // The mtime at startup is the generation already being served; only a
  // change after this point triggers a reload.
  int64_t last_mtime = watching ? WatchFileMtimeNs() : -1;
  obs::Counter* triggers = obs::MetricRegistry::Global().GetCounter(
      "rll_serve_watch_triggers_total");

  for (;;) {
    std::vector<std::string> batch;
    bool fire_watch = false;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stop_) {
        if (watching) {
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.watch_interval_ms);
          if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
            break;  // Poll tick: check the file below.
          }
        } else {
          cv_.Wait(mu_);
        }
      }
      if (stop_) return;
      batch.swap(queue_);
    }
    for (const std::string& path : batch) {
      const Status status = core_->Reload(path);
      if (!status.ok()) {
        RLL_LOG(Warning) << "reload failed: " << status.message();
      }
    }
    if (watching && batch.empty()) {
      const int64_t mtime = WatchFileMtimeNs();
      if (mtime >= 0 && mtime != last_mtime) {
        // A change while unreadable (mtime -1) is picked up once the file
        // reappears; the comparison is against the last *seen* stamp.
        if (last_mtime >= 0) fire_watch = true;
        last_mtime = mtime;
      }
    }
    if (fire_watch) {
      {
        MutexLock lock(mu_);
        ++watch_triggers_;
      }
      triggers->Increment();
      const Status status = core_->Reload(options_.watch_path);
      if (!status.ok()) {
        RLL_LOG(Warning) << "watch-triggered reload failed: "
                      << status.message();
      }
    }
  }
}

}  // namespace rll::serve
