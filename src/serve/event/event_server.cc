#include "serve/event/event_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace rll::serve {

namespace {

constexpr int kPollTimeoutMs = 100;
constexpr int kEpollBatch = 64;

/// Blocking full write, used only on the acceptor's turn-away path where
/// the fd is still in blocking mode (handles short writes; MSG_NOSIGNAL
/// so a vanished client surfaces as EPIPE, not SIGPIPE).
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Wakes a worker blocked in epoll_wait.
void KickEventFd(int event_fd) {
  const uint64_t one = 1;
  // A full eventfd counter already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd, &one, sizeof(one));
}

bool IsBlank(const std::string& s) {
  return s.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

EventServer::EventServer(const EventServerOptions& options, ServerCore* core)
    : options_(options), core_(core) {}

EventServer::~EventServer() {
  Stop();
  // Workers may still be parked in epoll_wait if Serve() was never
  // entered (Start-then-destroy); join them here.
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
    if (worker->event_fd >= 0) ::close(worker->event_fd);
  }
  core_->SetTransportStatusProvider(nullptr);
}

Status EventServer::Start() {
  if (options_.shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  listen_fd_.store(fd, std::memory_order_release);
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseListener();
    return Status::InvalidArgument("cannot parse listen host: " +
                                   options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        "bind " + options_.host + ":" + std::to_string(options_.port) +
        ": " + std::strerror(errno));
    CloseListener();
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    CloseListener();
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  workers_.reserve(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    auto worker = std::make_unique<Worker>();
    worker->index = s;
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epoll_fd < 0) {
      CloseListener();
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    worker->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->event_fd < 0) {
      ::close(worker->epoll_fd);
      CloseListener();
      return Status::IOError(std::string("eventfd: ") +
                             std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->event_fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->event_fd,
                    &ev) != 0) {
      ::close(worker->epoll_fd);
      ::close(worker->event_fd);
      CloseListener();
      return Status::IOError(std::string("epoll_ctl: ") +
                             std::strerror(errno));
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { RunWorker(w); });
  }
  core_->SetTransportStatusProvider(
      [this] { return TransportStatusJson(); });
  return Status::OK();
}

size_t EventServer::shard_connections(size_t s) const {
  return workers_[s]->connections.load(std::memory_order_relaxed);
}

std::string EventServer::TransportStatusJson() const {
  std::string out = StrFormat("{\"max_connections\":%zu,\"shard_count\":%zu",
                              options_.max_connections, workers_.size());
  out += ",\"shards\":[";
  for (size_t s = 0; s < workers_.size(); ++s) {
    const Worker& w = *workers_[s];
    if (s > 0) out += ",";
    out += StrFormat(
        "{\"connections\":%zu,\"intake\":%zu,\"lines\":%llu}",
        w.connections.load(std::memory_order_relaxed),
        w.intake_depth.load(std::memory_order_relaxed),
        static_cast<unsigned long long>(
            w.lines_handled.load(std::memory_order_relaxed)));
  }
  out += "],\"type\":\"epoll\"}";
  return out;
}

Status EventServer::Serve(const volatile std::sig_atomic_t* stop_flag) {
  if (listen_fd_.load(std::memory_order_acquire) < 0) {
    return Status::FailedPrecondition("Serve called before Start");
  }
  obs::Gauge* active =
      obs::MetricRegistry::Global().GetGauge("serve_connections_active");
  obs::Counter* accepted =
      obs::MetricRegistry::Global().GetCounter("serve_connections_total");

  size_t next_shard = 0;
  Status status = Status::OK();
  while (!stop_.load(std::memory_order_acquire) &&
         (stop_flag == nullptr || *stop_flag == 0)) {
    // Reloaded every iteration: a concurrent Stop() closes the socket and
    // stores -1, and the loop must never poll a dead (or recycled) fd.
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // Signal delivery; loop re-checks.
      if (stop_.load(std::memory_order_acquire)) break;
      status = Status::IOError(std::string("poll: ") + std::strerror(errno));
      break;
    }
    if (ready == 0) continue;  // Timeout tick: re-check the stop flags.

    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      status =
          Status::IOError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    accepted->Increment();
    accepted_total_.fetch_add(1, std::memory_order_relaxed);

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      WriteAll(fd, SerializeResponse(MakeErrorResponse(
                       "", ServeError::kOverloaded,
                       "too many concurrent connections")) +
                       "\n");
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }

    active_connections_.fetch_add(1, std::memory_order_relaxed);
    active->Set(static_cast<double>(
        active_connections_.load(std::memory_order_relaxed)));
    Worker* worker = workers_[next_shard].get();
    next_shard = (next_shard + 1) % workers_.size();
    {
      MutexLock lock(worker->mu);
      worker->intake.push_back(fd);
      worker->intake_depth.store(worker->intake.size(),
                                 std::memory_order_relaxed);
    }
    KickEventFd(worker->event_fd);
  }

  // Teardown: stop accepting, then let every worker drain and join. Done
  // here (not in Stop) so exactly one thread runs the joins.
  Stop();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  active->Set(0.0);
  return status;
}

void EventServer::Stop() {
  stop_.store(true, std::memory_order_release);
  CloseListener();
  draining_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker->event_fd >= 0) KickEventFd(worker->event_fd);
  }
}

void EventServer::CloseListener() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void EventServer::RunWorker(Worker* worker) {
  // Shard workers are where every byte is parsed and every response
  // serialized — name them and give them a profiler buffer so that time
  // is attributed, not "unattributed".
  SetCurrentThreadName(StrFormat("rll-shard-%zu", worker->index));
  obs::RegisterProfilerThread();
  obs::Gauge* shard_gauge = obs::MetricRegistry::Global().GetGauge(
      "serve_shard_connections", {{"shard", std::to_string(worker->index)}});
  obs::Counter* shard_lines = obs::MetricRegistry::Global().GetCounter(
      "serve_shard_lines_total", {{"shard", std::to_string(worker->index)}});

  std::map<int, Connection> conns;
  epoll_event events[kEpollBatch];
  while (!draining_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(worker->epoll_fd, events, kEpollBatch, kPollTimeoutMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker->event_fd) {
        uint64_t drained;
        while (::read(worker->event_fd, &drained, sizeof(drained)) > 0) {
        }
        AdoptIntake(worker, &conns);
        shard_gauge->Set(static_cast<double>(conns.size()));
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) continue;  // Closed earlier in this batch.
      Connection* conn = &it->second;
      bool alive = true;
      const uint64_t before =
          worker->lines_handled.load(std::memory_order_relaxed);
      if ((events[i].events & EPOLLOUT) != 0) {
        alive = FlushWrites(worker, fd, conn);
      }
      // EPOLLHUP/EPOLLERR still route through the read path: recv returns
      // any bytes the peer flushed before dying, then 0/-1 closes cleanly.
      if (alive &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        alive = OnReadable(worker, fd, conn);
      }
      const uint64_t after =
          worker->lines_handled.load(std::memory_order_relaxed);
      if (after != before) {
        shard_lines->Increment(after - before);
      }
      if (!alive) {
        CloseConnection(worker, fd, &conns);
        shard_gauge->Set(static_cast<double>(conns.size()));
      }
    }
  }
  DrainWorker(worker, &conns);
  shard_gauge->Set(0.0);
}

void EventServer::AdoptIntake(Worker* worker,
                              std::map<int, Connection>* conns) {
  std::vector<int> fresh;
  {
    MutexLock lock(worker->mu);
    fresh.swap(worker->intake);
    worker->intake_depth.store(0, std::memory_order_relaxed);
  }
  for (int fd : fresh) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    (*conns)[fd] = Connection{};
  }
  worker->connections.store(conns->size(), std::memory_order_relaxed);
}

bool EventServer::ProcessFrames(Worker* worker, int fd, Connection* conn) {
  (void)fd;
  std::string& buf = conn->read_buf;
  size_t start = 0;
  for (size_t nl = buf.find('\n', start); nl != std::string::npos;
       nl = buf.find('\n', start)) {
    std::string line = buf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (line.size() > options_.max_line_bytes) {
      buf.erase(0, start);
      conn->write_buf += SerializeResponse(MakeErrorResponse(
                             "", ServeError::kBadRequest,
                             "request line exceeds 1 MiB")) +
                         "\n";
      conn->close_after_flush = true;
      conn->read_paused = true;
      return false;
    }
    conn->write_buf += core_->HandleLine(line) + "\n";
    worker->lines_handled.fetch_add(1, std::memory_order_relaxed);
  }
  buf.erase(0, start);
  // A partial line past the cap will never grow a terminator we accept.
  if (buf.size() > options_.max_line_bytes) {
    conn->write_buf += SerializeResponse(MakeErrorResponse(
                           "", ServeError::kBadRequest,
                           "request line exceeds 1 MiB")) +
                       "\n";
    conn->close_after_flush = true;
    conn->read_paused = true;
    return false;
  }
  return true;
}

bool EventServer::OnReadable(Worker* worker, int fd, Connection* conn) {
  char chunk[4096];
  bool saw_eof = false;
  while (!conn->read_paused && !conn->close_after_flush) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // Connection error: drop it, nothing to salvage.
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    conn->read_buf.append(chunk, static_cast<size_t>(n));
    if (!ProcessFrames(worker, fd, conn)) break;
    if (conn->write_buf.size() > options_.max_write_buffer_bytes) {
      // Backpressure: stop reading until the peer drains what it owes us.
      conn->read_paused = true;
    }
  }
  if (saw_eof) {
    // A final unterminated line still gets an answer (nc-without-newline),
    // delivered through the flush path before the close.
    if (!conn->read_buf.empty() && !IsBlank(conn->read_buf)) {
      conn->write_buf += core_->HandleLine(conn->read_buf) + "\n";
      worker->lines_handled.fetch_add(1, std::memory_order_relaxed);
      conn->read_buf.clear();
    }
    conn->close_after_flush = true;
    conn->read_paused = true;
  }
  return FlushWrites(worker, fd, conn);
}

bool EventServer::FlushWrites(Worker* worker, int fd, Connection* conn) {
  std::string& buf = conn->write_buf;
  size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // Peer is gone; parked bytes are undeliverable.
    }
    sent += static_cast<size_t>(n);
  }
  buf.erase(0, sent);
  if (buf.empty()) {
    if (conn->close_after_flush) return false;
    conn->want_write = false;
    if (conn->read_paused) conn->read_paused = false;  // Backpressure off.
  } else {
    conn->want_write = true;
  }
  UpdateEpoll(worker, fd, *conn);
  return true;
}

void EventServer::UpdateEpoll(Worker* worker, int fd,
                              const Connection& conn) {
  epoll_event ev{};
  ev.events = (conn.read_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void EventServer::CloseConnection(Worker* worker, int fd,
                                  std::map<int, Connection>* conns) {
  ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns->erase(fd);
  worker->connections.store(conns->size(), std::memory_order_relaxed);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void EventServer::DrainWorker(Worker* worker,
                              std::map<int, Connection>* conns) {
  // Adopt any connections still parked on the intake queue so their fds
  // are accounted for (and closed) rather than leaked.
  AdoptIntake(worker, conns);
  // Flush parked responses under a bounded deadline: a graceful stop
  // should not swallow answers already produced, but one stalled reader
  // must not hold the process open either.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_deadline_ms);
  epoll_event events[kEpollBatch];
  for (;;) {
    bool pending = false;
    for (auto it = conns->begin(); it != conns->end();) {
      const int fd = it->first;
      Connection* conn = &it->second;
      ++it;  // FlushWrites may close (erase) behind us.
      if (conn->write_buf.empty()) continue;
      if (!FlushWrites(worker, fd, conn)) {
        CloseConnection(worker, fd, conns);
      } else if (!conn->write_buf.empty()) {
        pending = true;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (!pending || now >= deadline) break;
    const int wait_ms = static_cast<int>(std::min<int64_t>(
        50, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count() +
            1));
    ::epoll_wait(worker->epoll_fd, events, kEpollBatch, wait_ms);
  }
  while (!conns->empty()) {
    CloseConnection(worker, conns->begin()->first, conns);
  }
  worker->connections.store(0, std::memory_order_relaxed);
}

}  // namespace rll::serve
