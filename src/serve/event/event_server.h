// Epoll event plane for ServerCore: the production transport. One
// poll-based acceptor plus N shard workers, each running a non-blocking
// epoll loop over its own set of connections — no thread per connection,
// so ten thousand idle sockets cost two fds apiece and zero stacks.
//
// Connections are handed off round-robin: the acceptor enqueues the fd on
// a worker's intake queue and kicks its eventfd; from then on the worker
// owns the socket exclusively (read buffers, write buffers, epoll
// registration), so the per-connection state needs no locks at all.
// Framing is incremental — a request line may arrive across any number of
// reads, and responses that do not fit the socket buffer are parked in a
// per-connection write buffer and drained under EPOLLOUT. A connection
// whose write buffer grows past `max_write_buffer_bytes` stops being read
// (EPOLLIN disarmed) until the peer drains it: backpressure, not
// unbounded buffering.
//
// Wire semantics match the retired thread-per-connection transport
// exactly: newline-delimited JSON, \r stripped, blank lines skipped,
// lines past `max_line_bytes` answered with a structured bad_request and
// closed, a final unterminated line still answered at EOF, connections
// past `max_connections` turned away with an "overloaded" line. Malformed
// input never disconnects.
//
// The transport owns sockets and threads only — all request semantics
// live in ServerCore. Stop() (or the caller's stop flag, e.g. a SIGINT
// handler's sig_atomic_t) ends the accept loop; workers then drain:
// pending responses are flushed under a bounded deadline before the
// sockets close. The caller finishes with ServerCore::Shutdown().

#ifndef RLL_SERVE_EVENT_EVENT_SERVER_H_
#define RLL_SERVE_EVENT_EVENT_SERVER_H_

#include <atomic>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "serve/server_core.h"

namespace rll::serve {

struct EventServerOptions {
  /// Listen address. The default stays off the network: serving beyond
  /// localhost is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
  /// Concurrent connections beyond this are turned away with an
  /// "overloaded" response line.
  size_t max_connections = 1024;
  /// Shard workers. Each runs one epoll loop; connections are distributed
  /// round-robin at accept time.
  size_t shards = 1;
  /// Requests are a few KB at most; a line past this is protocol abuse
  /// and the connection is answered with bad_request and closed rather
  /// than buffered without bound.
  size_t max_line_bytes = 1 << 20;
  /// Per-connection pending-response cap; past it the connection stops
  /// being read until the peer drains.
  size_t max_write_buffer_bytes = 4 << 20;
  /// How long a draining worker keeps flushing parked responses before
  /// closing the sockets out from under slow readers.
  int drain_deadline_ms = 1000;
};

class EventServer {
 public:
  EventServer(const EventServerOptions& options, ServerCore* core);
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  /// Binds and listens; spawns the shard workers ("rll-shard-N") and
  /// registers the transport-status provider on the core. port() is valid
  /// afterwards.
  Status Start();

  /// Blocking accept loop on the calling thread. Returns cleanly when
  /// Stop() is called or when *stop_flag becomes nonzero (polled every
  /// ~100 ms — the flag can be written from a signal handler). On return
  /// the workers have drained and joined.
  Status Serve(const volatile std::sig_atomic_t* stop_flag = nullptr);

  /// Ends the accept loop and wakes the workers into their drain path.
  /// Idempotent; safe from any thread (including concurrently with a
  /// blocked Serve(), which performs the actual teardown).
  void Stop();

  /// Bound port after Start() (resolves port 0 to the real one).
  int port() const { return port_; }
  size_t shard_count() const { return workers_.size(); }
  /// Connections currently owned by shard `s` (approximate: updated by
  /// the worker as connections open and close).
  size_t shard_connections(size_t s) const;

 private:
  /// Everything one shard worker owns. Connection state (buffers, epoll
  /// registration) lives only on the worker thread; the mutex covers just
  /// the accept-side intake queue.
  struct Worker {
    size_t index = 0;
    int epoll_fd = -1;
    /// Kicked by the acceptor on handoff and by Stop() for drain.
    int event_fd = -1;
    std::thread thread;
    Mutex mu;
    std::vector<int> intake RLL_GUARDED_BY(mu);
    /// Gauges mirrored for statusz/metricsz without touching the maps.
    std::atomic<size_t> connections{0};
    std::atomic<size_t> intake_depth{0};
    std::atomic<uint64_t> lines_handled{0};
  };

  /// One socket's event-loop state, owned by exactly one worker.
  struct Connection {
    std::string read_buf;
    /// Bytes accepted from HandleLine but not yet written to the socket.
    std::string write_buf;
    /// EPOLLOUT is armed (write_buf was non-empty at last flush).
    bool want_write = false;
    /// EPOLLIN disarmed under write-buffer backpressure.
    bool read_paused = false;
    /// Close as soon as write_buf drains (EOF seen or line-cap breach).
    bool close_after_flush = false;
  };

  void RunWorker(Worker* worker);
  /// Drains the intake queue into the epoll set.
  void AdoptIntake(Worker* worker, std::map<int, Connection>* conns);
  /// Reads until EAGAIN/EOF, frames lines, handles them, flushes.
  /// Returns false when the connection should be closed now.
  bool OnReadable(Worker* worker, int fd, Connection* conn);
  /// Writes as much of write_buf as the socket accepts; re-arms EPOLLOUT
  /// on partial progress and resumes reading once under the cap. Returns
  /// false when the connection should be closed now.
  bool FlushWrites(Worker* worker, int fd, Connection* conn);
  /// Frames and handles every complete line currently in read_buf.
  /// Returns false on a line-cap breach (error queued, close pending).
  bool ProcessFrames(Worker* worker, int fd, Connection* conn);
  void UpdateEpoll(Worker* worker, int fd, const Connection& conn);
  void CloseConnection(Worker* worker, int fd,
                       std::map<int, Connection>* conns);
  /// Flush-with-deadline then close everything: the SIGINT drain path.
  void DrainWorker(Worker* worker, std::map<int, Connection>* conns);
  void CloseListener();
  /// JSON object for statusz's "transport" key.
  std::string TransportStatusJson() const;

  const EventServerOptions options_;
  ServerCore* const core_;  // Not owned.
  /// Atomic because Stop() (any thread) closes it while the accept loop
  /// polls it; CloseListener's exchange makes the close idempotent.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> accepted_total_{0};
  /// Sized at Start(), structurally immutable afterwards (workers
  /// themselves are internally synchronized).
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace rll::serve

#endif  // RLL_SERVE_EVENT_EVENT_SERVER_H_
