#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace rll::serve {

namespace {

constexpr int kPollTimeoutMs = 100;
/// Requests are a few KB at most; a line past this is a protocol abuse and
/// the connection is dropped rather than buffered without bound.
constexpr size_t kMaxLineBytes = 1 << 20;

/// Blocking full write (handles short writes; MSG_NOSIGNAL so a client
/// that disappeared mid-response surfaces as EPIPE, not SIGPIPE).
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(const TcpServerOptions& options, ServerCore* core)
    : options_(options), core_(core) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  listen_fd_.store(fd, std::memory_order_release);
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseListener();
    return Status::InvalidArgument("cannot parse listen host: " +
                                   options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        "bind " + options_.host + ":" + std::to_string(options_.port) +
        ": " + std::strerror(errno));
    CloseListener();
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    CloseListener();
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

Status TcpServer::Serve(const volatile std::sig_atomic_t* stop_flag) {
  if (listen_fd_.load(std::memory_order_acquire) < 0) {
    return Status::FailedPrecondition("Serve called before Start");
  }
  obs::Gauge* active =
      obs::MetricRegistry::Global().GetGauge("serve_connections_active");
  obs::Counter* accepted =
      obs::MetricRegistry::Global().GetCounter("serve_connections_total");

  while (!stop_.load(std::memory_order_acquire) &&
         (stop_flag == nullptr || *stop_flag == 0)) {
    // Reloaded every iteration: a concurrent Stop() closes the socket and
    // stores -1, and the loop must never poll a dead (or recycled) fd.
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // Signal delivery; loop re-checks.
      if (stop_.load(std::memory_order_acquire)) break;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // Timeout tick: re-check the stop flags.

    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      return Status::IOError(std::string("accept: ") +
                             std::strerror(errno));
    }
    accepted->Increment();

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      WriteAll(fd, SerializeResponse(MakeErrorResponse(
                       "", ServeError::kOverloaded,
                       "too many concurrent connections")) +
                       "\n");
      ::close(fd);
      continue;
    }

    active_connections_.fetch_add(1, std::memory_order_relaxed);
    active->Set(
        static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
    {
      MutexLock lock(mu_);
      conn_fds_.push_back(fd);
      threads_.emplace_back([this, fd, active] {
        HandleConnection(fd);
        active_connections_.fetch_sub(1, std::memory_order_relaxed);
        active->Set(static_cast<double>(
            active_connections_.load(std::memory_order_relaxed)));
        MutexLock inner(mu_);
        finished_.push_back(std::this_thread::get_id());
      });
    }
    ReapFinished();
  }
  return Status::OK();
}

void TcpServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    MutexLock lock(mu_);
    if (finished_.empty()) return;
    for (std::thread::id id : finished_) {
      for (auto it = threads_.begin(); it != threads_.end(); ++it) {
        if (it->get_id() == id) {
          done.push_back(std::move(*it));
          threads_.erase(it);
          break;
        }
      }
    }
    finished_.clear();
  }
  // The announcing thread may still be returning from its lambda; join
  // waits out those last few instructions.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::HandleConnection(int fd) {
  // Per-connection threads are short-lived, but they burn the CPU that
  // parses and serializes the protocol — name them and give them a
  // profiler buffer so that time is attributed, not "unattributed".
  SetCurrentThreadName(StrFormat("rll-conn-%d", fd));
  obs::RegisterProfilerThread();
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Connection error (or shutdown() from Stop).
    }
    if (n == 0) break;  // Peer closed.
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxLineBytes) {
      WriteAll(fd, SerializeResponse(MakeErrorResponse(
                       "", ServeError::kBadRequest,
                       "request line exceeds 1 MiB")) +
                       "\n");
      break;
    }
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      if (!WriteAll(fd, core_->HandleLine(line) + "\n")) {
        start = buffer.size();
        break;
      }
    }
    buffer.erase(0, start);
  }
  // A final unterminated line still gets an answer (nc-without-newline).
  if (!buffer.empty() &&
      buffer.find_first_not_of(" \t\r") != std::string::npos) {
    WriteAll(fd, core_->HandleLine(buffer) + "\n");
  }
  // Deregister before closing so Stop() never calls shutdown() on an fd
  // number the kernel has already recycled for a newer connection.
  {
    MutexLock lock(mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

void TcpServer::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) {
    // Already stopping; still join below in case the first caller raced.
  }
  CloseListener();
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    // Wake blocked recv() calls; the threads then drain and close their
    // own fds.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_fds_.clear();
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::CloseListener() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

}  // namespace rll::serve
