// LRU embedding cache for the inference server. Keyed by a 64-bit hash of
// the standardized feature row; the full key row is stored alongside each
// entry and compared exactly on lookup, so a hash collision degrades to a
// miss instead of serving a wrong embedding. Thread-safe (one mutex —
// entries are a few hundred bytes, so the critical sections are copies,
// not compute).

#ifndef RLL_SERVE_CACHE_H_
#define RLL_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/mutex.h"
#include "tensor/matrix.h"

namespace rll::serve {

class EmbeddingCache {
 public:
  /// Capacity 0 disables the cache: Lookup always misses, Insert drops.
  explicit EmbeddingCache(size_t capacity) : capacity_(capacity) {}

  EmbeddingCache(const EmbeddingCache&) = delete;
  EmbeddingCache& operator=(const EmbeddingCache&) = delete;

  /// Mixes the bit patterns of a 1×d row into a 64-bit key (splitmix64
  /// finalizer per element). Exposed so callers can hash once and reuse
  /// the key across Lookup/Insert.
  static uint64_t HashRow(const Matrix& row);

  /// On hit, copies the cached embedding into *embedding, refreshes the
  /// entry's recency, and returns true. `key` must be HashRow(row).
  bool Lookup(uint64_t key, const Matrix& row, Matrix* embedding);

  /// Inserts (or refreshes) the mapping row → embedding, evicting the
  /// least-recently-used entry when over capacity.
  void Insert(uint64_t key, const Matrix& row, const Matrix& embedding);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// hits / (hits + misses); 0 when no lookups have happened.
  double HitRate() const;

 private:
  struct Entry {
    uint64_t key;
    Matrix row;        // Exact key material (collision guard).
    Matrix embedding;  // Cached value.
  };

  const size_t capacity_;
  mutable Mutex mu_;
  // Front = most recently used. The map is index-only (lookup by hash,
  // never iterated), so its nondeterministic order cannot leak into
  // results.
  std::list<Entry> lru_ RLL_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> by_key_
      RLL_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace rll::serve

#endif  // RLL_SERVE_CACHE_H_
