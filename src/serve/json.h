// Minimal JSON value + recursive-descent parser for the serving protocol
// (newline-delimited JSON requests). Parsing lives here, in the transport
// layer, by design: obs/json_util stays emission-only, and nothing below
// src/serve ever consumes JSON.
//
// Supported: objects, arrays, strings (with \uXXXX escapes, surrogate
// pairs), numbers (via strtod, round-trip exact with obs::JsonNumber's
// %.17g), true/false/null. Depth-capped so a hostile request cannot blow
// the stack.

#ifndef RLL_SERVE_JSON_H_
#define RLL_SERVE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rll::serve {

/// One parsed JSON value. A plain tagged struct rather than a variant:
/// protocol messages are tiny, so the unused members cost nothing that
/// matters, and field access stays greppable.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order (duplicate keys keep the last occurrence
  /// reachable via Find, matching common JSON semantics).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Last member with the given key, or nullptr (also nullptr when this is
  /// not an object).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses exactly one JSON value; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace rll::serve

#endif  // RLL_SERVE_JSON_H_
