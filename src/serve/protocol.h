// Wire protocol for the inference server: newline-delimited JSON, one
// request object in, one response object out, over any byte stream (TCP
// in production, in-process strings in tests and the bench harness).
//
// Requests:
//   {"id": 7, "type": "embed",     "features": [f0, f1, ...]}
//   {"id": 8, "type": "predict",   "features": [...]}
//   {"id": 9, "type": "neighbors", "features": [...], "k": 5}
//
// Admin requests (no features; answered by the server core itself, never
// routed through the batcher):
//   {"id": 1, "type": "healthz"}     — liveness, answers even while draining
//   {"id": 2, "type": "statusz"}     — uptime, bundle dims, configuration
//   {"id": 3, "type": "metricsz"}    — metric snapshot: cumulative,
//                                      since-last-scrape delta, and
//                                      sliding-window views
//   {"id": 4, "type": "profilez", "action": "start", "hz": 99}
//   {"id": 5, "type": "profilez", "action": "stop"}
//   {"id": 6, "type": "profilez", "action": "fetch", "format": "folded"}
//                                    — in-process CPU profiler control:
//                                      "hz" only with start (optional),
//                                      "format" only with fetch
//                                      ("folded" | "json", default folded)
//   {"id": 7, "type": "reloadz", "action": "reload", "path": "m.rll"}
//   {"id": 8, "type": "reloadz", "action": "status"}
//                                    — zero-downtime model swap: "reload"
//                                      loads the bundle at "path" (omitted:
//                                      the currently served path) as the
//                                      next generation; "status" reports
//                                      generation / reload counters /
//                                      last_error. "path" is only valid
//                                      with "reload".
// Admin responses carry the JSON document in a "payload" member.
//
// Responses (always one line, always carry "ok"):
//   {"id": 7, "type": "embed",   "ok": true, "embedding": [...]}
//   {"id": 8, "type": "predict", "ok": true, "score": 0.93, "label": 1}
//   {"id": 9, "type": "neighbors", "ok": true,
//    "neighbors": [{"index": 3, "label": 1, "similarity": 0.98}, ...]}
//   {"id": 7, "ok": false, "error": "bad_request", "message": "..."}
//
// "id" is optional and echoed verbatim (number or string); it lets clients
// pipeline requests on one connection. Malformed input yields a structured
// error response, never a disconnect. Doubles are emitted with %.17g
// (obs::JsonNumber), so embeddings round-trip bit-exactly through the
// protocol.

#ifndef RLL_SERVE_PROTOCOL_H_
#define RLL_SERVE_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rll::serve {

enum class RequestType {
  kEmbed,
  kPredict,
  kNeighbors,
  kHealthz,
  kStatusz,
  kMetricsz,
  kProfilez,
  kReloadz,
};

const char* RequestTypeName(RequestType type);

/// True for the introspection/control commands (healthz/statusz/metricsz/
/// profilez/reloadz), which carry no features and bypass the model
/// entirely.
bool IsAdminRequest(RequestType type);

/// profilez sub-commands.
enum class ProfileAction {
  kStart,  // Arm the sampling profiler (optional "hz").
  kStop,   // Disarm; samples survive for a later fetch.
  kFetch,  // Export samples ("format": "folded" | "json").
};

/// Fetch export formats: collapsed stacks for flamegraph.pl, or the
/// aggregated JSON report.
enum class ProfileFormat {
  kFolded,
  kJson,
};

/// reloadz sub-commands.
enum class ReloadAction {
  kReload,  // Swap in a new bundle generation (optional "path").
  kStatus,  // Report generation, counters, and the last reload error.
};

/// Machine-readable error classes, mirrored into the "error" field and the
/// serve_requests_total{status=...} metric label.
enum class ServeError {
  kBadRequest,   // Unparseable or semantically invalid request.
  kUnsupported,  // Valid request the server is not configured for.
  kOverloaded,   // Rejected by admission control; retry later.
  kShutdown,     // Server is draining; connection should close.
  kInternal,     // Bug or unexpected state.
};

const char* ServeErrorName(ServeError error);

struct Request {
  RequestType type = RequestType::kEmbed;
  /// The request's "id" member re-serialized as JSON (empty = absent).
  std::string id_json;
  std::vector<double> features;
  /// neighbors only; 0 means "use the server default".
  size_t k = 0;
  /// profilez only.
  ProfileAction profile_action = ProfileAction::kFetch;
  /// profilez start only; 0 means "use the profiler default".
  int profile_hz = 0;
  ProfileFormat profile_format = ProfileFormat::kFolded;
  /// reloadz only.
  ReloadAction reload_action = ReloadAction::kStatus;
  /// reloadz action=reload only; empty means "reload the served path".
  std::string reload_path;
};

struct NeighborHit {
  size_t index = 0;       // Row in the served corpus.
  int label = 0;          // Expert label of that corpus row.
  double similarity = 0;  // Cosine in [-1, 1].
};

struct Response {
  std::string id_json;  // Echo of the request id ("" = absent).
  bool ok = false;
  bool has_type = false;  // False for errors before the type was known.
  RequestType type = RequestType::kEmbed;
  std::vector<double> embedding;         // embed
  double score = 0.0;                    // predict
  int label = 0;                         // predict
  std::vector<NeighborHit> neighbors;    // neighbors
  /// Admin responses: a complete JSON document spliced verbatim into the
  /// "payload" member (empty renders as {}).
  std::string payload_json;
  /// Nonzero when the request was trace-sampled; echoed as "trace_id" so
  /// clients can correlate responses with server-side trace spans.
  uint64_t trace_id = 0;
  ServeError error = ServeError::kInternal;  // when !ok
  std::string message;                       // when !ok
};

/// Parses one request line. On failure returns a non-OK status and — when
/// the line was at least valid JSON with an "id" member — leaves the
/// serialized id in *id_json so the error response can still echo it.
Result<Request> ParseRequest(const std::string& line, std::string* id_json);

/// One-line JSON serialization (no trailing newline).
std::string SerializeResponse(const Response& response);

Response MakeErrorResponse(const std::string& id_json, ServeError error,
                           std::string message);

}  // namespace rll::serve

#endif  // RLL_SERVE_PROTOCOL_H_
