#include "serve/json.h"

#include <cctype>
#include <cstdlib>

namespace rll::serve {

namespace {

/// Nesting bound: protocol messages are two levels deep, so 64 is pure
/// headroom while keeping adversarial inputs from recursing to a crash.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    RLL_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      RLL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      RLL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      RLL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  /// Appends the UTF-8 encoding of `codepoint` to `out`.
  static void AppendUtf8(uint32_t codepoint, std::string* out) {
    if (codepoint < 0x80) {
      out->push_back(static_cast<char>(codepoint));
    } else if (codepoint < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else if (codepoint < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          RLL_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired high surrogate");
            }
            uint32_t low = 0;
            RLL_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign handled by strtod; just validate a digit follows.
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return Error("invalid number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("invalid number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace rll::serve
