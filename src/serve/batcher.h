// Dynamic micro-batcher: the mechanism that turns many concurrent
// single-row embedding requests into a few large Mlp::Embed calls.
//
// Shape: a bounded MPSC queue in front of one worker thread. Producers
// (transport threads) enqueue a standardized feature row and block on a
// future; the worker coalesces up to `max_batch` rows — waiting at most
// `batch_timeout_us` after the first arrival for stragglers — stacks them
// into one matrix, runs the batch function once, and demultiplexes the
// result rows back to the per-request futures.
//
// Backpressure is admission control, not buffering: when `max_queue`
// requests are already pending, Embed fails immediately with an
// "overloaded" status instead of letting latency grow without bound.
//
// Determinism: Mlp::Embed computes each output row from its input row
// alone, with a fixed per-row accumulation order, so a row embedded in a
// batch of 32 is bitwise identical to the same row embedded alone
// (tests/serve_test.cc pins this). The batcher therefore never changes
// results — only how many forward passes they cost.
//
// Graceful shutdown: Stop() rejects new arrivals, drains every queued
// request through the normal batch path, then joins the worker.

#ifndef RLL_SERVE_BATCHER_H_
#define RLL_SERVE_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "serve/cache.h"
#include "tensor/matrix.h"

namespace rll::serve {

struct MicroBatcherOptions {
  /// Largest coalesced batch (rows per BatchFn call).
  size_t max_batch = 32;
  /// How long the worker waits after the first queued request for more
  /// arrivals before running a partial batch. 0 = run immediately.
  int64_t batch_timeout_us = 200;
  /// Admission bound: requests beyond this many pending fail immediately
  /// with OverloadedStatus().
  size_t max_queue = 256;
};

/// Status returned to callers rejected by admission control.
Status OverloadedStatus();
/// Status returned to callers arriving after Stop().
Status ShuttingDownStatus();
bool IsOverloaded(const Status& status);
bool IsShuttingDown(const Status& status);

class MicroBatcher {
 public:
  /// Maps a stacked n×in matrix to the n×out result, row-aligned. Runs on
  /// the batcher's worker thread (never on a producer).
  using BatchFn = std::function<Matrix(const Matrix&)>;
  /// Workspace-threading variant: the result reference must alias a `ws`
  /// buffer (or otherwise outlive the call) and is consumed before the
  /// next invocation. With this form the whole stack→embed step reuses
  /// the worker's buffers — zero allocations at steady state.
  using BatchIntoFn =
      std::function<const Matrix&(const Matrix&, Workspace&)>;

  /// `cache` is optional (nullptr disables caching); it is probed in
  /// Embed before enqueueing and filled by the worker after each batch.
  MicroBatcher(const MicroBatcherOptions& options, BatchFn batch_fn,
               EmbeddingCache* cache);
  /// Allocation-free form (preferred): batch matrices come from the
  /// worker's Workspace and the batch function writes into it too.
  MicroBatcher(const MicroBatcherOptions& options, BatchIntoFn batch_fn,
               EmbeddingCache* cache);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Embeds one 1×in row. Blocks until the coalesced batch containing it
  /// completes. Fails fast with OverloadedStatus() / ShuttingDownStatus()
  /// under backpressure or after Stop(). `trace_id` > 0 marks a sampled
  /// request: the cache probe, the queue wait, and the row's slice of the
  /// batch are recorded as linked "name:id" spans.
  Result<Matrix> Embed(const Matrix& row, int64_t trace_id = 0);

  /// Drains queued requests, then joins the worker. Idempotent.
  void Stop();
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // Introspection (mirrored into the obs metric registry).
  uint64_t batches_run() const {
    return batches_run_.load(std::memory_order_relaxed);
  }
  uint64_t rows_batched() const {
    return rows_batched_.load(std::memory_order_relaxed);
  }
  uint64_t max_batch_observed() const {
    return max_batch_observed_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  const MicroBatcherOptions& options() const { return options_; }

 private:
  struct Pending {
    Matrix row;
    uint64_t key = 0;
    int64_t trace_id = 0;  // > 0: emit linked spans for this row.
    std::promise<Result<Matrix>> promise;
  };

  void WorkerLoop();
  /// Stacks, embeds, demultiplexes, and caches one batch. The vector is
  /// owned by WorkerLoop and cleared (capacity kept) after each batch.
  void RunBatch(std::vector<Pending>& batch);

  const MicroBatcherOptions options_;
  const BatchFn batch_fn_;            // Exactly one of batch_fn_ /
  const BatchIntoFn batch_into_fn_;   // batch_into_fn_ is set.
  EmbeddingCache* const cache_;  // Not owned; may be nullptr.

  // Worker-thread state (no locking: RunBatch only runs on worker_).
  Workspace ws_;
  std::vector<char> failed_;

  Mutex mu_;
  CondVar cv_;
  std::deque<Pending> queue_ RLL_GUARDED_BY(mu_);
  bool stopping_ RLL_GUARDED_BY(mu_) = false;  // Set once by Stop().
  std::atomic<bool> stopped_{false};

  std::atomic<uint64_t> batches_run_{0};
  std::atomic<uint64_t> rows_batched_{0};
  std::atomic<uint64_t> max_batch_observed_{0};
  std::atomic<uint64_t> rejected_{0};

  std::thread worker_;  // Last member: starts after everything above.
};

}  // namespace rll::serve

#endif  // RLL_SERVE_BATCHER_H_
