#include "serve/cache.h"

#include <cstring>

namespace rll::serve {

namespace {

/// splitmix64 finalizer — the same mixing core as common/rng's seeding,
/// reused here as a hash combiner.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t EmbeddingCache::HashRow(const Matrix& row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (row.size() * 0xff51afd7ed558ccdULL);
  for (size_t i = 0; i < row.size(); ++i) {
    uint64_t bits = 0;
    const double v = row[i];
    std::memcpy(&bits, &v, sizeof(bits));
    h = Mix64(h ^ bits);
  }
  return h;
}

bool EmbeddingCache::Lookup(uint64_t key, const Matrix& row,
                            Matrix* embedding) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  MutexLock lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end() || !(it->second->row == row)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *embedding = it->second->embedding;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EmbeddingCache::Insert(uint64_t key, const Matrix& row,
                            const Matrix& embedding) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Refresh (also heals a colliding entry: last writer wins, and the
    // stored row keeps lookups exact either way).
    it->second->row = row;
    it->second->embedding = embedding;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({key, row, embedding});
  by_key_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t EmbeddingCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

double EmbeddingCache::HitRate() const {
  const double h = static_cast<double>(hits());
  const double m = static_cast<double>(misses());
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

}  // namespace rll::serve
