#include "serve/protocol.h"

#include <utility>

#include "common/check.h"
#include "obs/json_util.h"
#include "serve/json.h"

namespace rll::serve {

namespace {

/// Re-serializes a parsed "id" member. Only numbers and strings are
/// accepted (booleans/objects as correlation ids are a client bug worth
/// rejecting loudly).
Result<std::string> SerializeId(const JsonValue& id) {
  if (id.is_number()) return obs::JsonNumber(id.number);
  if (id.is_string()) return "\"" + obs::JsonEscape(id.string) + "\"";
  return Status::InvalidArgument("\"id\" must be a number or a string");
}

}  // namespace

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kEmbed:
      return "embed";
    case RequestType::kPredict:
      return "predict";
    case RequestType::kNeighbors:
      return "neighbors";
    case RequestType::kHealthz:
      return "healthz";
    case RequestType::kStatusz:
      return "statusz";
    case RequestType::kMetricsz:
      return "metricsz";
    case RequestType::kProfilez:
      return "profilez";
    case RequestType::kReloadz:
      return "reloadz";
  }
  RLL_CHECK_MSG(false, "unknown request type");
  return "";
}

bool IsAdminRequest(RequestType type) {
  return type == RequestType::kHealthz || type == RequestType::kStatusz ||
         type == RequestType::kMetricsz || type == RequestType::kProfilez ||
         type == RequestType::kReloadz;
}

const char* ServeErrorName(ServeError error) {
  switch (error) {
    case ServeError::kBadRequest:
      return "bad_request";
    case ServeError::kUnsupported:
      return "unsupported";
    case ServeError::kOverloaded:
      return "overloaded";
    case ServeError::kShutdown:
      return "shutdown";
    case ServeError::kInternal:
      return "internal";
  }
  RLL_CHECK_MSG(false, "unknown serve error");
  return "";
}

Result<Request> ParseRequest(const std::string& line, std::string* id_json) {
  id_json->clear();
  RLL_ASSIGN_OR_RETURN(JsonValue root, ParseJson(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request request;
  if (const JsonValue* id = root.Find("id"); id != nullptr) {
    RLL_ASSIGN_OR_RETURN(request.id_json, SerializeId(*id));
    *id_json = request.id_json;
  }

  const JsonValue* type = root.Find("type");
  if (type == nullptr || !type->is_string()) {
    return Status::InvalidArgument("missing or non-string \"type\"");
  }
  if (type->string == "embed") {
    request.type = RequestType::kEmbed;
  } else if (type->string == "predict") {
    request.type = RequestType::kPredict;
  } else if (type->string == "neighbors") {
    request.type = RequestType::kNeighbors;
  } else if (type->string == "healthz") {
    request.type = RequestType::kHealthz;
  } else if (type->string == "statusz") {
    request.type = RequestType::kStatusz;
  } else if (type->string == "metricsz") {
    request.type = RequestType::kMetricsz;
  } else if (type->string == "profilez") {
    request.type = RequestType::kProfilez;
  } else if (type->string == "reloadz") {
    request.type = RequestType::kReloadz;
  } else {
    return Status::InvalidArgument("unknown \"type\": " + type->string);
  }

  if (IsAdminRequest(request.type)) {
    if (root.Find("features") != nullptr) {
      return Status::InvalidArgument("\"" + type->string +
                                     "\" takes no \"features\"");
    }
    if (root.Find("k") != nullptr) {
      return Status::InvalidArgument("\"k\" is only valid for neighbors");
    }
    if (request.type == RequestType::kReloadz) {
      if (root.Find("hz") != nullptr || root.Find("format") != nullptr) {
        return Status::InvalidArgument(
            "\"hz\"/\"format\" are only valid for profilez");
      }
      const JsonValue* action = root.Find("action");
      if (action == nullptr || !action->is_string()) {
        return Status::InvalidArgument(
            "reloadz requires a string \"action\"");
      }
      if (action->string == "reload") {
        request.reload_action = ReloadAction::kReload;
      } else if (action->string == "status") {
        request.reload_action = ReloadAction::kStatus;
      } else {
        return Status::InvalidArgument("unknown reloadz \"action\": " +
                                       action->string);
      }
      if (const JsonValue* path = root.Find("path"); path != nullptr) {
        if (request.reload_action != ReloadAction::kReload) {
          return Status::InvalidArgument(
              "\"path\" is only valid with action \"reload\"");
        }
        if (!path->is_string() || path->string.empty()) {
          return Status::InvalidArgument(
              "\"path\" must be a non-empty string");
        }
        request.reload_path = path->string;
      }
      return request;
    }
    if (root.Find("path") != nullptr) {
      return Status::InvalidArgument("\"path\" is only valid for reloadz");
    }
    if (request.type != RequestType::kProfilez) {
      if (root.Find("action") != nullptr || root.Find("hz") != nullptr ||
          root.Find("format") != nullptr) {
        return Status::InvalidArgument(
            "\"action\"/\"hz\"/\"format\" are only valid for profilez");
      }
      return request;
    }
    const JsonValue* action = root.Find("action");
    if (action == nullptr || !action->is_string()) {
      return Status::InvalidArgument(
          "profilez requires a string \"action\"");
    }
    if (action->string == "start") {
      request.profile_action = ProfileAction::kStart;
    } else if (action->string == "stop") {
      request.profile_action = ProfileAction::kStop;
    } else if (action->string == "fetch") {
      request.profile_action = ProfileAction::kFetch;
    } else {
      return Status::InvalidArgument("unknown profilez \"action\": " +
                                     action->string);
    }
    if (const JsonValue* hz = root.Find("hz"); hz != nullptr) {
      if (request.profile_action != ProfileAction::kStart) {
        return Status::InvalidArgument(
            "\"hz\" is only valid with action \"start\"");
      }
      if (!hz->is_number() || hz->number < 1.0 ||
          hz->number != static_cast<double>(static_cast<int>(hz->number))) {
        return Status::InvalidArgument("\"hz\" must be a positive integer");
      }
      request.profile_hz = static_cast<int>(hz->number);
    }
    if (const JsonValue* format = root.Find("format"); format != nullptr) {
      if (request.profile_action != ProfileAction::kFetch) {
        return Status::InvalidArgument(
            "\"format\" is only valid with action \"fetch\"");
      }
      if (!format->is_string()) {
        return Status::InvalidArgument("\"format\" must be a string");
      }
      if (format->string == "folded") {
        request.profile_format = ProfileFormat::kFolded;
      } else if (format->string == "json") {
        request.profile_format = ProfileFormat::kJson;
      } else {
        return Status::InvalidArgument("unknown profilez \"format\": " +
                                       format->string);
      }
    }
    return request;
  }
  if (root.Find("action") != nullptr || root.Find("hz") != nullptr ||
      root.Find("format") != nullptr) {
    return Status::InvalidArgument(
        "\"action\"/\"hz\"/\"format\" are only valid for profilez");
  }
  if (root.Find("path") != nullptr) {
    return Status::InvalidArgument("\"path\" is only valid for reloadz");
  }

  const JsonValue* features = root.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument("missing or non-array \"features\"");
  }
  if (features->array.empty()) {
    return Status::InvalidArgument("\"features\" must be non-empty");
  }
  request.features.reserve(features->array.size());
  for (const JsonValue& v : features->array) {
    if (!v.is_number()) {
      return Status::InvalidArgument("\"features\" entries must be numbers");
    }
    request.features.push_back(v.number);
  }

  if (const JsonValue* k = root.Find("k"); k != nullptr) {
    if (request.type != RequestType::kNeighbors) {
      return Status::InvalidArgument("\"k\" is only valid for neighbors");
    }
    if (!k->is_number() || k->number < 1.0 ||
        k->number != static_cast<double>(static_cast<size_t>(k->number))) {
      return Status::InvalidArgument("\"k\" must be a positive integer");
    }
    request.k = static_cast<size_t>(k->number);
  }
  return request;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "{";
  if (!response.id_json.empty()) {
    out += "\"id\":" + response.id_json + ",";
  }
  if (response.has_type) {
    out += "\"type\":\"";
    out += RequestTypeName(response.type);
    out += "\",";
  }
  out += response.ok ? "\"ok\":true" : "\"ok\":false";
  if (response.trace_id != 0) {
    out += ",\"trace_id\":" + std::to_string(response.trace_id);
  }
  if (!response.ok) {
    out += ",\"error\":\"";
    out += ServeErrorName(response.error);
    out += "\",\"message\":\"" + obs::JsonEscape(response.message) + "\"";
    out += "}";
    return out;
  }
  switch (response.type) {
    case RequestType::kEmbed: {
      out += ",\"embedding\":[";
      for (size_t i = 0; i < response.embedding.size(); ++i) {
        if (i > 0) out += ",";
        out += obs::JsonNumber(response.embedding[i]);
      }
      out += "]";
      break;
    }
    case RequestType::kPredict: {
      out += ",\"score\":" + obs::JsonNumber(response.score);
      out += ",\"label\":" + std::to_string(response.label);
      break;
    }
    case RequestType::kNeighbors: {
      out += ",\"neighbors\":[";
      for (size_t i = 0; i < response.neighbors.size(); ++i) {
        const NeighborHit& hit = response.neighbors[i];
        if (i > 0) out += ",";
        out += "{\"index\":" + std::to_string(hit.index);
        out += ",\"label\":" + std::to_string(hit.label);
        out += ",\"similarity\":" + obs::JsonNumber(hit.similarity) + "}";
      }
      out += "]";
      break;
    }
    case RequestType::kHealthz:
    case RequestType::kStatusz:
    case RequestType::kMetricsz:
    case RequestType::kProfilez:
    case RequestType::kReloadz: {
      // payload_json is produced server-side (never from client input), so
      // it is spliced in verbatim as a complete JSON document.
      out += ",\"payload\":";
      out += response.payload_json.empty() ? "{}" : response.payload_json;
      break;
    }
  }
  out += "}";
  return out;
}

Response MakeErrorResponse(const std::string& id_json, ServeError error,
                           std::string message) {
  Response response;
  response.id_json = id_json;
  response.ok = false;
  response.error = error;
  response.message = std::move(message);
  return response;
}

}  // namespace rll::serve
