#include "serve/server_core.h"

#include <algorithm>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/threading.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace rll::serve {

namespace {

/// Request counter + latency histogram per (type, status) resolved on the
/// fly: the registry lookup takes a lock, but request handling already
/// crosses the batcher's mutex and a future, so one map lookup is noise.
void RecordRequest(const char* type, const char* status, double millis,
                   uint64_t trace_id) {
  auto& registry = obs::MetricRegistry::Global();
  registry
      .GetCounter("serve_requests_total",
                  {{"type", type}, {"status", status}})
      ->Increment();
  // Trace-sampled requests stamp their id as the latency bucket's
  // exemplar, so metricsz can point at one concrete traced request per
  // bucket (trace_id 0 degrades to a plain Observe).
  registry.GetHistogram("serve_request_latency_ms", {{"type", type}})
      ->ObserveWithExemplar(millis, trace_id);
}

/// Data-plane request types index windowed_latency_by_type_.
size_t TypeIndex(RequestType type) {
  const size_t index = static_cast<size_t>(type);
  RLL_DCHECK_LT(index, 3u);
  return index;
}

std::string WindowedHistogramJson(
    const obs::WindowedHistogram::Snapshot& s) {
  std::string out = StrFormat("{\"count\":%llu",
                              static_cast<unsigned long long>(s.count));
  out += ",\"max\":" + obs::JsonNumber(s.max);
  out += ",\"mean\":" + obs::JsonNumber(s.mean);
  out += ",\"min\":" + obs::JsonNumber(s.min);
  out += ",\"p50\":" + obs::JsonNumber(s.p50);
  out += ",\"p95\":" + obs::JsonNumber(s.p95);
  out += ",\"p99\":" + obs::JsonNumber(s.p99);
  out += ",\"rate_per_sec\":" + obs::JsonNumber(s.rate_per_sec);
  out += ",\"window_seconds\":" + obs::JsonNumber(s.window_seconds) + "}";
  return out;
}

}  // namespace

ServerCore::ServerCore(const ServerCoreOptions& options, data::Dataset corpus,
                       bool has_corpus)
    : options_(options),
      corpus_(std::move(corpus)),
      has_corpus_(has_corpus),
      windowed_requests_(options.window) {
  windowed_latency_all_ =
      std::make_unique<obs::WindowedHistogram>(obs::HistogramOptions{},
                                               options_.window);
  for (auto& histogram : windowed_latency_by_type_) {
    histogram = std::make_unique<obs::WindowedHistogram>(
        obs::HistogramOptions{}, options_.window);
  }
  // Register the reload families up front so they export at 0 from the
  // first scrape, not only after the first reload.
  auto& registry = obs::MetricRegistry::Global();
  registry.GetCounter("rll_serve_reloads_total", {});
  registry.GetCounter("rll_serve_reload_failures_total", {});
  registry.GetGauge("rll_serve_generation")->Set(1.0);
}

const obs::WindowedHistogram& ServerCore::windowed_latency(
    RequestType type) const {
  return *windowed_latency_by_type_[TypeIndex(type)];
}

ServerCore::~ServerCore() { Shutdown(); }

Result<std::unique_ptr<ServerCore>> ServerCore::Create(
    core::ModelBundle bundle, const data::Dataset* corpus,
    const ServerCoreOptions& options, std::string bundle_source) {
  if (options.default_k == 0) {
    return Status::InvalidArgument("default_k must be >= 1");
  }
  if (options.shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (corpus != nullptr && corpus->empty()) {
    return Status::InvalidArgument("corpus must be non-empty");
  }
  std::unique_ptr<ServerCore> server(new ServerCore(  // rll-lint: allow(naked-new-delete)
      options, corpus != nullptr ? *corpus : data::Dataset(),
      corpus != nullptr));
  RLL_ASSIGN_OR_RETURN(
      std::shared_ptr<ServingState> state,
      server->BuildState(std::move(bundle), std::move(bundle_source)));
  {
    MutexLock lock(server->state_mu_);
    server->state_ = std::move(state);
  }
  return server;
}

Result<std::shared_ptr<ServerCore::ServingState>> ServerCore::BuildState(
    core::ModelBundle bundle, std::string source) {
  if (has_corpus_ && corpus_.dim() != bundle.input_dim()) {
    return Status::InvalidArgument(
        "corpus feature dimensionality does not match the bundle");
  }
  auto state = std::make_shared<ServingState>(std::move(bundle));
  state->source = std::move(source);
  if (has_corpus_) {
    // One batched pass through the same encoder that will serve traffic.
    // On reload this re-embeds the retained corpus with the incoming
    // bundle, so the index and the head always match the live encoder.
    RLL_ASSIGN_OR_RETURN(Matrix embeddings,
                         state->bundle.Embed(corpus_.features()));
    RLL_RETURN_IF_ERROR(state->index.Build(embeddings, options_.shards));
    RLL_RETURN_IF_ERROR(
        state->predictor.Fit(embeddings, corpus_.true_labels()));
    state->corpus_labels = corpus_.true_labels();
  }
  state->cache = std::make_unique<EmbeddingCache>(options_.cache_capacity);
  // The batch function runs on this generation's batcher worker thread;
  // RllModel::EmbedInto is const and the bundle is immutable once the
  // state is published, so no synchronization is needed. The raw model
  // pointer is stable (ModelBundle holds the model behind a shared_ptr)
  // and the batcher is a member of the same ServingState, declared last so
  // its drain finishes before the bundle dies. Rows arrive already
  // standardized. The workspace-threading form keeps the steady-state
  // batch → embed step allocation-free.
  const core::RllModel* model = &state->bundle.model();
  state->batcher = std::make_unique<MicroBatcher>(
      options_.batcher,
      MicroBatcher::BatchIntoFn(
          [model](const Matrix& x, Workspace& ws) -> const Matrix& {
            return model->EmbedInto(x, ws);
          }),
      state->cache.get());
  return state;
}

std::shared_ptr<ServerCore::ServingState> ServerCore::state() const {
  MutexLock lock(state_mu_);
  return state_;
}

Status ServerCore::Reload(const std::string& path) {
  const std::string target = path.empty() ? bundle_source() : path;
  if (target.empty()) {
    const Status status =
        Status::InvalidArgument("no bundle path to reload from");
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricRegistry::Global()
        .GetCounter("rll_serve_reload_failures_total", {})
        ->Increment();
    MutexLock lock(admin_mu_);
    last_reload_error_ = status.message();
    return status;
  }
  Result<core::ModelBundle> bundle = core::ModelBundle::Load(target);
  if (!bundle.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricRegistry::Global()
        .GetCounter("rll_serve_reload_failures_total", {})
        ->Increment();
    MutexLock lock(admin_mu_);
    last_reload_error_ = bundle.status().message();
    return bundle.status();
  }
  return ReloadFromBundle(*std::move(bundle), target);
}

Status ServerCore::ReloadFromBundle(core::ModelBundle bundle,
                                    std::string source) {
  // One build at a time: concurrent reload requests queue on this mutex
  // and each swaps in turn (last writer wins, generations stay monotone).
  MutexLock reload_lock(reload_mu_);
  reload_in_progress_.store(true, std::memory_order_release);
  Result<std::shared_ptr<ServingState>> built =
      BuildState(std::move(bundle), std::move(source));
  Status status = built.status();
  std::shared_ptr<ServingState> retired;
  if (status.ok()) {
    MutexLock lock(state_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      // The swap would publish a batcher Shutdown() will never stop.
      status = Status::FailedPrecondition("server is shutting down");
    } else {
      (*built)->generation = state_->generation + 1;
      retired = std::move(state_);
      state_ = *std::move(built);
    }
  }
  auto& registry = obs::MetricRegistry::Global();
  if (status.ok()) {
    reloads_total_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("rll_serve_reloads_total", {})->Increment();
    uint64_t generation;
    {
      MutexLock lock(state_mu_);
      generation = state_->generation;
    }
    registry.GetGauge("rll_serve_generation")
        ->Set(static_cast<double>(generation));
    MutexLock lock(admin_mu_);
    last_reload_error_.clear();
  } else {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("rll_serve_reload_failures_total", {})->Increment();
    MutexLock lock(admin_mu_);
    last_reload_error_ = status.message();
  }
  reload_in_progress_.store(false, std::memory_order_release);
  // `retired` dies here (or when the last in-flight request that pinned it
  // finishes): its destructor stops the old generation's batcher, which
  // drains every request already queued against the old bundle.
  return status;
}

uint64_t ServerCore::generation() const { return state()->generation; }

std::string ServerCore::bundle_source() const { return state()->source; }

void ServerCore::SetReloadRequestHandler(ReloadRequestFn handler) {
  MutexLock lock(admin_mu_);
  reload_handler_ = std::move(handler);
}

void ServerCore::SetTransportStatusProvider(TransportStatusFn provider) {
  MutexLock lock(admin_mu_);
  transport_status_ = std::move(provider);
}

const EmbeddingCache& ServerCore::cache() const { return *state()->cache; }

const MicroBatcher& ServerCore::batcher() const {
  return *state()->batcher;
}

const core::ModelBundle& ServerCore::bundle() const {
  return state()->bundle;
}

size_t ServerCore::corpus_size() const { return corpus_.size(); }

bool ServerCore::supports_predict() const { return has_corpus_; }

bool ServerCore::supports_neighbors() const { return has_corpus_; }

size_t ServerCore::index_shards() const {
  return state()->index.shard_count();
}

Result<Matrix> ServerCore::EmbedRow(const ServingState& st,
                                    const std::vector<double>& features,
                                    int64_t trace_id) {
  const Matrix raw = Matrix::RowVector(features);
  return st.batcher->Embed(st.bundle.standardizer().Transform(raw),
                           trace_id);
}

Response ServerCore::Handle(const Request& request) {
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sampled = options_.trace_sample_every > 0 &&
                       request_id % options_.trace_sample_every == 0;
  const int64_t trace_id = sampled ? static_cast<int64_t>(request_id) : 0;
  obs::TraceSpan span("serve_request", trace_id, sampled);
  Stopwatch timer;
  // Pin this request's generation once: everything below — dimension
  // check, batcher, head, index — runs against one consistent bundle even
  // if a reload swaps the current pointer mid-request.
  const std::shared_ptr<ServingState> st = state();
  Response response = HandleInternal(request, *st, trace_id);
  if (sampled) response.trace_id = request_id;
  const double millis = timer.ElapsedMillis();
  const char* status =
      response.ok ? "ok" : ServeErrorName(response.error);
  RecordRequest(RequestTypeName(request.type), status, millis,
                sampled ? request_id : 0);
  if (!IsAdminRequest(request.type)) {
    windowed_requests_.Increment();
    windowed_latency_all_->Observe(millis);
    windowed_latency_by_type_[TypeIndex(request.type)]->Observe(millis);
  }
  return response;
}

Response ServerCore::HandleInternal(const Request& request,
                                    const ServingState& st,
                                    int64_t trace_id) {
  // Admin commands answer even while draining: an operator watching a
  // shutdown is exactly when introspection must keep working.
  if (IsAdminRequest(request.type)) return HandleAdmin(request);
  if (shutting_down()) {
    return MakeErrorResponse(request.id_json, ServeError::kShutdown,
                             "server is shutting down");
  }
  if (request.features.size() != st.bundle.input_dim()) {
    return MakeErrorResponse(
        request.id_json, ServeError::kBadRequest,
        "expected " + std::to_string(st.bundle.input_dim()) +
            " features, got " + std::to_string(request.features.size()));
  }

  Result<Matrix> embedded = EmbedRow(st, request.features, trace_id);
  if (!embedded.ok()) {
    ServeError error = ServeError::kInternal;
    if (IsOverloaded(embedded.status())) error = ServeError::kOverloaded;
    if (IsShuttingDown(embedded.status())) error = ServeError::kShutdown;
    return MakeErrorResponse(request.id_json, error,
                             embedded.status().message());
  }

  Response response;
  response.id_json = request.id_json;
  response.has_type = true;
  response.type = request.type;
  switch (request.type) {
    case RequestType::kEmbed: {
      response.embedding.assign(
          embedded->data(), embedded->data() + embedded->size());
      response.ok = true;
      return response;
    }
    case RequestType::kPredict: {
      if (!supports_predict()) {
        return MakeErrorResponse(
            request.id_json, ServeError::kUnsupported,
            "predict needs a labeled corpus (start the server with one)");
      }
      response.score = st.predictor.PredictProba(*embedded)[0];
      response.label = response.score >= 0.5 ? 1 : 0;
      response.ok = true;
      return response;
    }
    case RequestType::kNeighbors: {
      if (!supports_neighbors()) {
        return MakeErrorResponse(
            request.id_json, ServeError::kUnsupported,
            "neighbors needs a corpus (start the server with one)");
      }
      const size_t k = request.k > 0 ? request.k : options_.default_k;
      const int64_t query_start =
          trace_id > 0 ? obs::TraceNowMicros() : 0;
      auto hits = st.index.Query(*embedded, k);
      if (trace_id > 0) {
        obs::RecordSpanWithId("serve_index_query", trace_id, query_start);
      }
      if (!hits.ok()) {
        return MakeErrorResponse(request.id_json, ServeError::kInternal,
                                 hits.status().message());
      }
      response.neighbors.reserve(hits->size());
      for (const core::Neighbor& n : *hits) {
        response.neighbors.push_back(
            {n.index, st.corpus_labels[n.index], n.similarity});
      }
      response.ok = true;
      return response;
    }
    case RequestType::kHealthz:
    case RequestType::kStatusz:
    case RequestType::kMetricsz:
    case RequestType::kProfilez:
    case RequestType::kReloadz:
      break;  // Unreachable: dispatched to HandleAdmin above.
  }
  return MakeErrorResponse(request.id_json, ServeError::kInternal,
                           "unhandled request type");
}

Response ServerCore::HandleAdmin(const Request& request) {
  Response response;
  response.id_json = request.id_json;
  response.has_type = true;
  response.type = request.type;
  switch (request.type) {
    case RequestType::kHealthz:
      response.payload_json = HealthzPayload();
      break;
    case RequestType::kStatusz:
      response.payload_json = StatuszPayload();
      break;
    case RequestType::kMetricsz:
      response.payload_json = MetricszPayload();
      break;
    case RequestType::kProfilez: {
      Result<std::string> payload = ProfilezPayload(request);
      if (!payload.ok()) {
        // Operator errors (already running, bad hz) come back structured,
        // like every other protocol failure.
        const ServeError error = payload.status().code() == StatusCode::kInternal
                                     ? ServeError::kInternal
                                     : ServeError::kBadRequest;
        return MakeErrorResponse(request.id_json, error,
                                 payload.status().message());
      }
      response.payload_json = *std::move(payload);
      break;
    }
    case RequestType::kReloadz: {
      Result<std::string> payload = ReloadzPayload(request);
      if (!payload.ok()) {
        const ServeError error = payload.status().code() == StatusCode::kInternal
                                     ? ServeError::kInternal
                                     : ServeError::kBadRequest;
        return MakeErrorResponse(request.id_json, error,
                                 payload.status().message());
      }
      response.payload_json = *std::move(payload);
      break;
    }
    default:
      return MakeErrorResponse(request.id_json, ServeError::kInternal,
                               "non-admin type in HandleAdmin");
  }
  response.ok = true;
  return response;
}

Result<std::string> ServerCore::ReloadzPayload(const Request& request) {
  switch (request.reload_action) {
    case ReloadAction::kStatus: {
      std::string last_error;
      {
        MutexLock lock(admin_mu_);
        last_error = last_reload_error_;
      }
      const std::shared_ptr<ServingState> st = state();
      std::string out = "{\"action\":\"status\"";
      out += StrFormat(",\"failures\":%llu",
                       static_cast<unsigned long long>(reload_failures()));
      out += StrFormat(",\"generation\":%llu",
                       static_cast<unsigned long long>(st->generation));
      out += StrFormat(",\"in_progress\":%s",
                       reload_in_progress() ? "true" : "false");
      out += ",\"last_error\":\"" + obs::JsonEscape(last_error) + "\"";
      out += StrFormat(",\"reloads\":%llu",
                       static_cast<unsigned long long>(reloads_total()));
      out += ",\"source\":\"" + obs::JsonEscape(st->source) + "\"}";
      return out;
    }
    case ReloadAction::kReload: {
      ReloadRequestFn handler;
      {
        MutexLock lock(admin_mu_);
        handler = reload_handler_;
      }
      if (handler) {
        // Asynchronous mode (event plane): hand the request to the reload
        // thread and answer immediately — a reload can take seconds and
        // must not stall the connection (or its shard) that asked for it.
        RLL_RETURN_IF_ERROR(handler(request.reload_path));
        std::string out = "{\"action\":\"reload\"";
        out += StrFormat(",\"generation\":%llu",
                         static_cast<unsigned long long>(generation()));
        out += ",\"path\":\"" + obs::JsonEscape(request.reload_path) + "\"";
        out += ",\"status\":\"accepted\"}";
        return out;
      }
      // Synchronous mode (tests, bench, embedded use): run the reload
      // inline and report the outcome in the response.
      RLL_RETURN_IF_ERROR(Reload(request.reload_path));
      const std::shared_ptr<ServingState> st = state();
      std::string out = "{\"action\":\"reload\"";
      out += StrFormat(",\"generation\":%llu",
                       static_cast<unsigned long long>(st->generation));
      out += ",\"source\":\"" + obs::JsonEscape(st->source) + "\"";
      out += ",\"status\":\"ok\"}";
      return out;
    }
  }
  return Status::Internal("unknown reloadz action");
}

Result<std::string> ServerCore::ProfilezPayload(const Request& request) {
  switch (request.profile_action) {
    case ProfileAction::kStart: {
      obs::ProfilerOptions options;
      if (request.profile_hz > 0) options.hz = request.profile_hz;
      RLL_RETURN_IF_ERROR(obs::StartCpuProfiler(options));
      profiler_started_.store(true, std::memory_order_relaxed);
      return StrFormat("{\"action\":\"start\",\"hz\":%d,\"running\":true}",
                       options.hz);
    }
    case ProfileAction::kStop: {
      obs::StopCpuProfiler();
      profiler_started_.store(false, std::memory_order_relaxed);
      return std::string("{\"action\":\"stop\",\"running\":false}");
    }
    case ProfileAction::kFetch: {
      std::string out = StrFormat(
          "{\"action\":\"fetch\",\"format\":\"%s\",\"profile\":",
          request.profile_format == ProfileFormat::kFolded ? "folded"
                                                           : "json");
      if (request.profile_format == ProfileFormat::kFolded) {
        out += "\"" + obs::JsonEscape(obs::ProfileToFolded()) + "\"";
      } else {
        out += obs::ProfileToJson();
      }
      out += StrFormat(",\"running\":%s}",
                       obs::CpuProfilerRunning() ? "true" : "false");
      return out;
    }
  }
  return Status::Internal("unknown profilez action");
}

std::string ServerCore::HealthzPayload() const {
  return StrFormat(
      "{\"status\":\"%s\",\"uptime_s\":%s}",
      shutting_down() ? "draining" : "serving",
      obs::JsonNumber(uptime_seconds()).c_str());
}

std::string ServerCore::StatuszPayload() const {
  const std::shared_ptr<ServingState> st = state();
  std::string transport;
  {
    MutexLock lock(admin_mu_);
    transport = transport_status_ ? transport_status_() : "{}";
  }
  std::string out = "{";
  out += StrFormat("\"batch_timeout_us\":%lld",
                   static_cast<long long>(options_.batcher.batch_timeout_us));
  out += ",\"bundle_source\":\"" + obs::JsonEscape(st->source) + "\"";
  out += StrFormat(",\"cache_capacity\":%zu", st->cache->capacity());
  out += StrFormat(",\"cache_size\":%zu", st->cache->size());
  out += StrFormat(",\"corpus_size\":%zu", corpus_size());
  out += StrFormat(",\"default_k\":%zu", options_.default_k);
  out += StrFormat(",\"embedding_dim\":%zu", st->bundle.embedding_dim());
  out += StrFormat(",\"generation\":%llu",
                   static_cast<unsigned long long>(st->generation));
  out += StrFormat(",\"index_shards\":%zu", st->index.shard_count());
  out += StrFormat(",\"input_dim\":%zu", st->bundle.input_dim());
  out += StrFormat(",\"max_batch\":%zu", options_.batcher.max_batch);
  out += StrFormat(",\"max_queue\":%zu", options_.batcher.max_queue);
  out += StrFormat(",\"reload_in_progress\":%s",
                   reload_in_progress() ? "true" : "false");
  out += StrFormat(",\"requests_handled\":%llu",
                   static_cast<unsigned long long>(requests_handled()));
  out += StrFormat(",\"schema_version\":%d", obs::kMetricsSchemaVersion);
  out += StrFormat(",\"status\":\"%s\"",
                   shutting_down() ? "draining" : "serving");
  out += StrFormat(",\"supports_neighbors\":%s",
                   supports_neighbors() ? "true" : "false");
  out += StrFormat(",\"supports_predict\":%s",
                   supports_predict() ? "true" : "false");
  out += StrFormat(",\"threads\":%zu", GlobalThreadCount());
  out += StrFormat(",\"trace_sample_every\":%llu",
                   static_cast<unsigned long long>(
                       options_.trace_sample_every));
  // transport is produced by the event plane (never from client input), so
  // it is spliced in verbatim as a complete JSON object.
  out += ",\"transport\":" + transport;
  out += ",\"uptime_s\":" + obs::JsonNumber(uptime_seconds());
  out += StrFormat(",\"window_interval_us\":%lld",
                   static_cast<long long>(options_.window.interval_us));
  out += StrFormat(",\"window_intervals\":%zu}", options_.window.intervals);
  return out;
}

std::string ServerCore::MetricszPayload() {
  auto& registry = obs::MetricRegistry::Global();
  // Arena gauges are refreshed at scrape time (pull, not push): the
  // memory plane has no natural event to hook, and a scrape-time snapshot
  // is exactly as fresh as any other gauge here.
  const ArenaStatsSnapshot arenas = GlobalArenaStats();
  registry.GetGauge("rll_arena_live")
      ->Set(static_cast<double>(arenas.live_arenas));
  registry.GetGauge("rll_arena_used_bytes")
      ->Set(static_cast<double>(arenas.bytes_used));
  registry.GetGauge("rll_arena_reserved_bytes")
      ->Set(static_cast<double>(arenas.bytes_reserved));
  registry.GetGauge("rll_arena_high_water_bytes")
      ->Set(static_cast<double>(arenas.high_water));
  // Counters are snapshotted once and reused for the delta, so the two
  // views in one payload never disagree with each other.
  const std::map<std::string, uint64_t> counters = registry.CounterValues();
  const std::string cumulative = registry.ExportJson();

  double delta_seconds;
  unsigned long long seq;
  std::string delta = "{";
  {
    MutexLock lock(admin_mu_);
    delta_seconds = has_scrape_ ? last_scrape_.ElapsedSeconds()
                                : uptime_.ElapsedSeconds();
    seq = static_cast<unsigned long long>(++scrape_seq_);
    bool first = true;
    for (const auto& [id, value] : counters) {
      uint64_t previous = 0;
      if (const auto it = last_counters_.find(id);
          it != last_counters_.end()) {
        previous = it->second;
      }
      if (!first) delta += ",";
      first = false;
      delta += "\"" + obs::JsonEscape(id) +
               "\":" + std::to_string(value - previous);
    }
    last_counters_ = counters;
    last_scrape_.Restart();
    has_scrape_ = true;
  }
  delta += "}";

  std::string windowed = "{\"latency_ms\":{";
  windowed +=
      "\"all\":" + WindowedHistogramJson(windowed_latency_all_->GetSnapshot());
  windowed += ",\"embed\":" +
              WindowedHistogramJson(
                  windowed_latency(RequestType::kEmbed).GetSnapshot());
  windowed += ",\"neighbors\":" +
              WindowedHistogramJson(
                  windowed_latency(RequestType::kNeighbors).GetSnapshot());
  windowed += ",\"predict\":" +
              WindowedHistogramJson(
                  windowed_latency(RequestType::kPredict).GetSnapshot());
  const obs::WindowedCounter::Snapshot requests =
      windowed_requests_.GetSnapshot();
  windowed += StrFormat(
      "},\"requests\":{\"count\":%llu,\"rate_per_sec\":%s,"
      "\"window_seconds\":%s}}",
      static_cast<unsigned long long>(requests.count),
      obs::JsonNumber(requests.rate_per_sec).c_str(),
      obs::JsonNumber(requests.window_seconds).c_str());

  // Latency exemplars: per data-plane type, every bucket that has seen a
  // trace-sampled request, as {le, trace_id, value}. An operator reading a
  // suspicious p99 here gets a concrete trace_id to pull up.
  std::string exemplars = "{";
  bool first_type = true;
  for (const char* type : {"embed", "neighbors", "predict"}) {
    obs::Histogram* histogram =
        registry.GetHistogram("serve_request_latency_ms", {{"type", type}});
    const std::vector<double>& bounds = histogram->bucket_bounds();
    const std::vector<obs::HistogramExemplar> buckets =
        histogram->bucket_exemplars();
    if (!first_type) exemplars += ",";
    first_type = false;
    exemplars += StrFormat("\"%s\":[", type);
    bool first_bucket = true;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i].trace_id == 0) continue;
      if (!first_bucket) exemplars += ",";
      first_bucket = false;
      const std::string le =
          i < bounds.size() ? obs::JsonNumber(bounds[i]) : "null";
      exemplars += StrFormat(
          "{\"le\":%s,\"trace_id\":%llu,\"value\":%s}", le.c_str(),
          static_cast<unsigned long long>(buckets[i].trace_id),
          obs::JsonNumber(buckets[i].value).c_str());
    }
    exemplars += "]";
  }
  exemplars += "}";

  std::string out = "{\"cumulative\":" + cumulative;
  out += ",\"delta\":" + delta;
  out += ",\"delta_seconds\":" + obs::JsonNumber(delta_seconds);
  out += ",\"exemplars\":" + exemplars;
  out += StrFormat(",\"schema_version\":%d", obs::kMetricsSchemaVersion);
  out += StrFormat(",\"scrape_seq\":%llu", seq);
  out += ",\"uptime_s\":" + obs::JsonNumber(uptime_seconds());
  out += ",\"windowed\":" + windowed + "}";
  return out;
}

std::string ServerCore::HandleLine(const std::string& line) {
  std::string id_json;
  Result<Request> request = ParseRequest(line, &id_json);
  if (!request.ok()) {
    RecordRequest("unknown", ServeErrorName(ServeError::kBadRequest), 0.0,
                  /*trace_id=*/0);
    return SerializeResponse(MakeErrorResponse(
        id_json, ServeError::kBadRequest, request.status().message()));
  }
  return SerializeResponse(Handle(*request));
}

void ServerCore::Shutdown() {
  // Flag first so new arrivals fail fast, and so any reload that has not
  // yet swapped is refused at publish time; then stop the current
  // generation's batcher, which drains what is already queued — requests
  // blocked in Embed complete normally instead of being dropped. Requests
  // still in flight on an older, already-retired generation hold their own
  // shared_ptr; that generation's batcher stops when the last one
  // releases it.
  shutdown_.store(true, std::memory_order_release);
  std::shared_ptr<ServingState> st;
  {
    MutexLock lock(state_mu_);
    st = state_;
  }
  if (st != nullptr) st->batcher->Stop();
  // A profilez "start" without a matching "stop" must not outlive the
  // server that armed it.
  if (profiler_started_.exchange(false, std::memory_order_relaxed)) {
    obs::StopCpuProfiler();
  }
}

}  // namespace rll::serve
