#include "serve/server_core.h"

#include <algorithm>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/threading.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace rll::serve {

namespace {

/// Request counter + latency histogram per (type, status) resolved on the
/// fly: the registry lookup takes a lock, but request handling already
/// crosses the batcher's mutex and a future, so one map lookup is noise.
void RecordRequest(const char* type, const char* status, double millis,
                   uint64_t trace_id) {
  auto& registry = obs::MetricRegistry::Global();
  registry
      .GetCounter("serve_requests_total",
                  {{"type", type}, {"status", status}})
      ->Increment();
  // Trace-sampled requests stamp their id as the latency bucket's
  // exemplar, so metricsz can point at one concrete traced request per
  // bucket (trace_id 0 degrades to a plain Observe).
  registry.GetHistogram("serve_request_latency_ms", {{"type", type}})
      ->ObserveWithExemplar(millis, trace_id);
}

/// Data-plane request types index windowed_latency_by_type_.
size_t TypeIndex(RequestType type) {
  const size_t index = static_cast<size_t>(type);
  RLL_DCHECK_LT(index, 3u);
  return index;
}

std::string WindowedHistogramJson(
    const obs::WindowedHistogram::Snapshot& s) {
  std::string out = StrFormat("{\"count\":%llu",
                              static_cast<unsigned long long>(s.count));
  out += ",\"max\":" + obs::JsonNumber(s.max);
  out += ",\"mean\":" + obs::JsonNumber(s.mean);
  out += ",\"min\":" + obs::JsonNumber(s.min);
  out += ",\"p50\":" + obs::JsonNumber(s.p50);
  out += ",\"p95\":" + obs::JsonNumber(s.p95);
  out += ",\"p99\":" + obs::JsonNumber(s.p99);
  out += ",\"rate_per_sec\":" + obs::JsonNumber(s.rate_per_sec);
  out += ",\"window_seconds\":" + obs::JsonNumber(s.window_seconds) + "}";
  return out;
}

}  // namespace

ServerCore::ServerCore(core::ModelBundle bundle,
                       const ServerCoreOptions& options)
    : options_(options),
      bundle_(std::move(bundle)),
      windowed_requests_(options.window) {
  windowed_latency_all_ =
      std::make_unique<obs::WindowedHistogram>(obs::HistogramOptions{},
                                               options_.window);
  for (auto& histogram : windowed_latency_by_type_) {
    histogram = std::make_unique<obs::WindowedHistogram>(
        obs::HistogramOptions{}, options_.window);
  }
  cache_ = std::make_unique<EmbeddingCache>(options_.cache_capacity);
  // The batch function runs on the batcher's worker thread; RllModel::
  // EmbedInto is const and the bundle is immutable after construction, so
  // no synchronization is needed. Rows arrive already standardized. The
  // workspace-threading form keeps the steady-state batch → embed step
  // allocation-free: every intermediate lives in the worker's reused
  // buffers.
  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      MicroBatcher::BatchIntoFn(
          [this](const Matrix& x, Workspace& ws) -> const Matrix& {
            return bundle_.model().EmbedInto(x, ws);
          }),
      cache_.get());
}

const obs::WindowedHistogram& ServerCore::windowed_latency(
    RequestType type) const {
  return *windowed_latency_by_type_[TypeIndex(type)];
}

ServerCore::~ServerCore() { Shutdown(); }

Result<std::unique_ptr<ServerCore>> ServerCore::Create(
    core::ModelBundle bundle, const data::Dataset* corpus,
    const ServerCoreOptions& options) {
  if (options.default_k == 0) {
    return Status::InvalidArgument("default_k must be >= 1");
  }
  std::unique_ptr<ServerCore> server(
      new ServerCore(std::move(bundle), options));  // rll-lint: allow(naked-new-delete)
  if (corpus != nullptr) {
    if (corpus->empty()) {
      return Status::InvalidArgument("corpus must be non-empty");
    }
    if (corpus->dim() != server->bundle_.input_dim()) {
      return Status::InvalidArgument(
          "corpus feature dimensionality does not match the bundle");
    }
    // One batched pass through the same encoder that will serve traffic.
    RLL_ASSIGN_OR_RETURN(Matrix embeddings,
                         server->bundle_.Embed(corpus->features()));
    RLL_RETURN_IF_ERROR(server->index_.Build(embeddings));
    RLL_RETURN_IF_ERROR(
        server->predictor_.Fit(embeddings, corpus->true_labels()));
    server->corpus_labels_ = corpus->true_labels();
  }
  return server;
}

Result<Matrix> ServerCore::EmbedRow(const std::vector<double>& features,
                                    int64_t trace_id) {
  const Matrix raw = Matrix::RowVector(features);
  return batcher_->Embed(bundle_.standardizer().Transform(raw), trace_id);
}

Response ServerCore::Handle(const Request& request) {
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sampled = options_.trace_sample_every > 0 &&
                       request_id % options_.trace_sample_every == 0;
  const int64_t trace_id = sampled ? static_cast<int64_t>(request_id) : 0;
  obs::TraceSpan span("serve_request", trace_id, sampled);
  Stopwatch timer;
  Response response = HandleInternal(request, trace_id);
  if (sampled) response.trace_id = request_id;
  const double millis = timer.ElapsedMillis();
  const char* status =
      response.ok ? "ok" : ServeErrorName(response.error);
  RecordRequest(RequestTypeName(request.type), status, millis,
                sampled ? request_id : 0);
  if (!IsAdminRequest(request.type)) {
    windowed_requests_.Increment();
    windowed_latency_all_->Observe(millis);
    windowed_latency_by_type_[TypeIndex(request.type)]->Observe(millis);
  }
  return response;
}

Response ServerCore::HandleInternal(const Request& request,
                                    int64_t trace_id) {
  // Admin commands answer even while draining: an operator watching a
  // shutdown is exactly when introspection must keep working.
  if (IsAdminRequest(request.type)) return HandleAdmin(request);
  if (shutting_down()) {
    return MakeErrorResponse(request.id_json, ServeError::kShutdown,
                             "server is shutting down");
  }
  if (request.features.size() != bundle_.input_dim()) {
    return MakeErrorResponse(
        request.id_json, ServeError::kBadRequest,
        "expected " + std::to_string(bundle_.input_dim()) +
            " features, got " + std::to_string(request.features.size()));
  }

  Result<Matrix> embedded = EmbedRow(request.features, trace_id);
  if (!embedded.ok()) {
    ServeError error = ServeError::kInternal;
    if (IsOverloaded(embedded.status())) error = ServeError::kOverloaded;
    if (IsShuttingDown(embedded.status())) error = ServeError::kShutdown;
    return MakeErrorResponse(request.id_json, error,
                             embedded.status().message());
  }

  Response response;
  response.id_json = request.id_json;
  response.has_type = true;
  response.type = request.type;
  switch (request.type) {
    case RequestType::kEmbed: {
      response.embedding.assign(
          embedded->data(), embedded->data() + embedded->size());
      response.ok = true;
      return response;
    }
    case RequestType::kPredict: {
      if (!supports_predict()) {
        return MakeErrorResponse(
            request.id_json, ServeError::kUnsupported,
            "predict needs a labeled corpus (start the server with one)");
      }
      response.score = predictor_.PredictProba(*embedded)[0];
      response.label = response.score >= 0.5 ? 1 : 0;
      response.ok = true;
      return response;
    }
    case RequestType::kNeighbors: {
      if (!supports_neighbors()) {
        return MakeErrorResponse(
            request.id_json, ServeError::kUnsupported,
            "neighbors needs a corpus (start the server with one)");
      }
      const size_t k = request.k > 0 ? request.k : options_.default_k;
      const int64_t query_start =
          trace_id > 0 ? obs::TraceNowMicros() : 0;
      auto hits = index_.Query(*embedded, k);
      if (trace_id > 0) {
        obs::RecordSpanWithId("serve_index_query", trace_id, query_start);
      }
      if (!hits.ok()) {
        return MakeErrorResponse(request.id_json, ServeError::kInternal,
                                 hits.status().message());
      }
      response.neighbors.reserve(hits->size());
      for (const core::Neighbor& n : *hits) {
        response.neighbors.push_back(
            {n.index, corpus_labels_[n.index], n.similarity});
      }
      response.ok = true;
      return response;
    }
    case RequestType::kHealthz:
    case RequestType::kStatusz:
    case RequestType::kMetricsz:
    case RequestType::kProfilez:
      break;  // Unreachable: dispatched to HandleAdmin above.
  }
  return MakeErrorResponse(request.id_json, ServeError::kInternal,
                           "unhandled request type");
}

Response ServerCore::HandleAdmin(const Request& request) {
  Response response;
  response.id_json = request.id_json;
  response.has_type = true;
  response.type = request.type;
  switch (request.type) {
    case RequestType::kHealthz:
      response.payload_json = HealthzPayload();
      break;
    case RequestType::kStatusz:
      response.payload_json = StatuszPayload();
      break;
    case RequestType::kMetricsz:
      response.payload_json = MetricszPayload();
      break;
    case RequestType::kProfilez: {
      Result<std::string> payload = ProfilezPayload(request);
      if (!payload.ok()) {
        // Operator errors (already running, bad hz) come back structured,
        // like every other protocol failure.
        const ServeError error = payload.status().code() == StatusCode::kInternal
                                     ? ServeError::kInternal
                                     : ServeError::kBadRequest;
        return MakeErrorResponse(request.id_json, error,
                                 payload.status().message());
      }
      response.payload_json = *std::move(payload);
      break;
    }
    default:
      return MakeErrorResponse(request.id_json, ServeError::kInternal,
                               "non-admin type in HandleAdmin");
  }
  response.ok = true;
  return response;
}

Result<std::string> ServerCore::ProfilezPayload(const Request& request) {
  switch (request.profile_action) {
    case ProfileAction::kStart: {
      obs::ProfilerOptions options;
      if (request.profile_hz > 0) options.hz = request.profile_hz;
      RLL_RETURN_IF_ERROR(obs::StartCpuProfiler(options));
      profiler_started_.store(true, std::memory_order_relaxed);
      return StrFormat("{\"action\":\"start\",\"hz\":%d,\"running\":true}",
                       options.hz);
    }
    case ProfileAction::kStop: {
      obs::StopCpuProfiler();
      profiler_started_.store(false, std::memory_order_relaxed);
      return std::string("{\"action\":\"stop\",\"running\":false}");
    }
    case ProfileAction::kFetch: {
      std::string out = StrFormat(
          "{\"action\":\"fetch\",\"format\":\"%s\",\"profile\":",
          request.profile_format == ProfileFormat::kFolded ? "folded"
                                                           : "json");
      if (request.profile_format == ProfileFormat::kFolded) {
        out += "\"" + obs::JsonEscape(obs::ProfileToFolded()) + "\"";
      } else {
        out += obs::ProfileToJson();
      }
      out += StrFormat(",\"running\":%s}",
                       obs::CpuProfilerRunning() ? "true" : "false");
      return out;
    }
  }
  return Status::Internal("unknown profilez action");
}

std::string ServerCore::HealthzPayload() const {
  return StrFormat(
      "{\"status\":\"%s\",\"uptime_s\":%s}",
      shutting_down() ? "draining" : "serving",
      obs::JsonNumber(uptime_seconds()).c_str());
}

std::string ServerCore::StatuszPayload() const {
  std::string out = "{";
  out += StrFormat("\"batch_timeout_us\":%lld",
                   static_cast<long long>(options_.batcher.batch_timeout_us));
  out += StrFormat(",\"cache_capacity\":%zu", cache_->capacity());
  out += StrFormat(",\"cache_size\":%zu", cache_->size());
  out += StrFormat(",\"corpus_size\":%zu", corpus_size());
  out += StrFormat(",\"default_k\":%zu", options_.default_k);
  out += StrFormat(",\"embedding_dim\":%zu", bundle_.embedding_dim());
  out += StrFormat(",\"input_dim\":%zu", bundle_.input_dim());
  out += StrFormat(",\"max_batch\":%zu", options_.batcher.max_batch);
  out += StrFormat(",\"max_queue\":%zu", options_.batcher.max_queue);
  out += StrFormat(",\"requests_handled\":%llu",
                   static_cast<unsigned long long>(requests_handled()));
  out += StrFormat(",\"schema_version\":%d", obs::kMetricsSchemaVersion);
  out += StrFormat(",\"status\":\"%s\"",
                   shutting_down() ? "draining" : "serving");
  out += StrFormat(",\"supports_neighbors\":%s",
                   supports_neighbors() ? "true" : "false");
  out += StrFormat(",\"supports_predict\":%s",
                   supports_predict() ? "true" : "false");
  out += StrFormat(",\"threads\":%zu", GlobalThreadCount());
  out += StrFormat(",\"trace_sample_every\":%llu",
                   static_cast<unsigned long long>(
                       options_.trace_sample_every));
  out += ",\"uptime_s\":" + obs::JsonNumber(uptime_seconds());
  out += StrFormat(",\"window_interval_us\":%lld",
                   static_cast<long long>(options_.window.interval_us));
  out += StrFormat(",\"window_intervals\":%zu}", options_.window.intervals);
  return out;
}

std::string ServerCore::MetricszPayload() {
  auto& registry = obs::MetricRegistry::Global();
  // Arena gauges are refreshed at scrape time (pull, not push): the
  // memory plane has no natural event to hook, and a scrape-time snapshot
  // is exactly as fresh as any other gauge here.
  const ArenaStatsSnapshot arenas = GlobalArenaStats();
  registry.GetGauge("rll_arena_live")
      ->Set(static_cast<double>(arenas.live_arenas));
  registry.GetGauge("rll_arena_used_bytes")
      ->Set(static_cast<double>(arenas.bytes_used));
  registry.GetGauge("rll_arena_reserved_bytes")
      ->Set(static_cast<double>(arenas.bytes_reserved));
  registry.GetGauge("rll_arena_high_water_bytes")
      ->Set(static_cast<double>(arenas.high_water));
  // Counters are snapshotted once and reused for the delta, so the two
  // views in one payload never disagree with each other.
  const std::map<std::string, uint64_t> counters = registry.CounterValues();
  const std::string cumulative = registry.ExportJson();

  double delta_seconds;
  unsigned long long seq;
  std::string delta = "{";
  {
    MutexLock lock(admin_mu_);
    delta_seconds = has_scrape_ ? last_scrape_.ElapsedSeconds()
                                : uptime_.ElapsedSeconds();
    seq = static_cast<unsigned long long>(++scrape_seq_);
    bool first = true;
    for (const auto& [id, value] : counters) {
      uint64_t previous = 0;
      if (const auto it = last_counters_.find(id);
          it != last_counters_.end()) {
        previous = it->second;
      }
      if (!first) delta += ",";
      first = false;
      delta += "\"" + obs::JsonEscape(id) +
               "\":" + std::to_string(value - previous);
    }
    last_counters_ = counters;
    last_scrape_.Restart();
    has_scrape_ = true;
  }
  delta += "}";

  std::string windowed = "{\"latency_ms\":{";
  windowed +=
      "\"all\":" + WindowedHistogramJson(windowed_latency_all_->GetSnapshot());
  windowed += ",\"embed\":" +
              WindowedHistogramJson(
                  windowed_latency(RequestType::kEmbed).GetSnapshot());
  windowed += ",\"neighbors\":" +
              WindowedHistogramJson(
                  windowed_latency(RequestType::kNeighbors).GetSnapshot());
  windowed += ",\"predict\":" +
              WindowedHistogramJson(
                  windowed_latency(RequestType::kPredict).GetSnapshot());
  const obs::WindowedCounter::Snapshot requests =
      windowed_requests_.GetSnapshot();
  windowed += StrFormat(
      "},\"requests\":{\"count\":%llu,\"rate_per_sec\":%s,"
      "\"window_seconds\":%s}}",
      static_cast<unsigned long long>(requests.count),
      obs::JsonNumber(requests.rate_per_sec).c_str(),
      obs::JsonNumber(requests.window_seconds).c_str());

  // Latency exemplars: per data-plane type, every bucket that has seen a
  // trace-sampled request, as {le, trace_id, value}. An operator reading a
  // suspicious p99 here gets a concrete trace_id to pull up.
  std::string exemplars = "{";
  bool first_type = true;
  for (const char* type : {"embed", "neighbors", "predict"}) {
    obs::Histogram* histogram =
        registry.GetHistogram("serve_request_latency_ms", {{"type", type}});
    const std::vector<double>& bounds = histogram->bucket_bounds();
    const std::vector<obs::HistogramExemplar> buckets =
        histogram->bucket_exemplars();
    if (!first_type) exemplars += ",";
    first_type = false;
    exemplars += StrFormat("\"%s\":[", type);
    bool first_bucket = true;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i].trace_id == 0) continue;
      if (!first_bucket) exemplars += ",";
      first_bucket = false;
      const std::string le =
          i < bounds.size() ? obs::JsonNumber(bounds[i]) : "null";
      exemplars += StrFormat(
          "{\"le\":%s,\"trace_id\":%llu,\"value\":%s}", le.c_str(),
          static_cast<unsigned long long>(buckets[i].trace_id),
          obs::JsonNumber(buckets[i].value).c_str());
    }
    exemplars += "]";
  }
  exemplars += "}";

  std::string out = "{\"cumulative\":" + cumulative;
  out += ",\"delta\":" + delta;
  out += ",\"delta_seconds\":" + obs::JsonNumber(delta_seconds);
  out += ",\"exemplars\":" + exemplars;
  out += StrFormat(",\"schema_version\":%d", obs::kMetricsSchemaVersion);
  out += StrFormat(",\"scrape_seq\":%llu", seq);
  out += ",\"uptime_s\":" + obs::JsonNumber(uptime_seconds());
  out += ",\"windowed\":" + windowed + "}";
  return out;
}

std::string ServerCore::HandleLine(const std::string& line) {
  std::string id_json;
  Result<Request> request = ParseRequest(line, &id_json);
  if (!request.ok()) {
    RecordRequest("unknown", ServeErrorName(ServeError::kBadRequest), 0.0,
                  /*trace_id=*/0);
    return SerializeResponse(MakeErrorResponse(
        id_json, ServeError::kBadRequest, request.status().message()));
  }
  return SerializeResponse(Handle(*request));
}

void ServerCore::Shutdown() {
  // Flag first so new arrivals fail fast; Stop() then drains what is
  // already queued, so requests blocked in batcher_->Embed complete
  // normally instead of being dropped.
  shutdown_.store(true, std::memory_order_release);
  batcher_->Stop();
  // A profilez "start" without a matching "stop" must not outlive the
  // server that armed it.
  if (profiler_started_.exchange(false, std::memory_order_relaxed)) {
    obs::StopCpuProfiler();
  }
}

}  // namespace rll::serve
