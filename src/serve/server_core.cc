#include "serve/server_core.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rll::serve {

namespace {

/// Request counter + latency histogram per (type, status) resolved on the
/// fly: the registry lookup takes a lock, but request handling already
/// crosses the batcher's mutex and a future, so one map lookup is noise.
void RecordRequest(const char* type, const char* status, double millis) {
  auto& registry = obs::MetricRegistry::Global();
  registry
      .GetCounter("serve_requests_total",
                  {{"type", type}, {"status", status}})
      ->Increment();
  registry.GetHistogram("serve_request_latency_ms", {{"type", type}})
      ->Observe(millis);
}

}  // namespace

ServerCore::ServerCore(core::ModelBundle bundle,
                       const ServerCoreOptions& options)
    : options_(options), bundle_(std::move(bundle)) {
  cache_ = std::make_unique<EmbeddingCache>(options_.cache_capacity);
  // The batch function runs on the batcher's worker thread; RllModel::
  // Embed is const and the bundle is immutable after construction, so no
  // synchronization is needed. Rows arrive already standardized.
  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      [this](const Matrix& x) { return bundle_.model().Embed(x); },
      cache_.get());
}

ServerCore::~ServerCore() { Shutdown(); }

Result<std::unique_ptr<ServerCore>> ServerCore::Create(
    core::ModelBundle bundle, const data::Dataset* corpus,
    const ServerCoreOptions& options) {
  if (options.default_k == 0) {
    return Status::InvalidArgument("default_k must be >= 1");
  }
  std::unique_ptr<ServerCore> server(
      new ServerCore(std::move(bundle), options));  // rll-lint: allow(naked-new-delete)
  if (corpus != nullptr) {
    if (corpus->empty()) {
      return Status::InvalidArgument("corpus must be non-empty");
    }
    if (corpus->dim() != server->bundle_.input_dim()) {
      return Status::InvalidArgument(
          "corpus feature dimensionality does not match the bundle");
    }
    // One batched pass through the same encoder that will serve traffic.
    RLL_ASSIGN_OR_RETURN(Matrix embeddings,
                         server->bundle_.Embed(corpus->features()));
    RLL_RETURN_IF_ERROR(server->index_.Build(embeddings));
    RLL_RETURN_IF_ERROR(
        server->predictor_.Fit(embeddings, corpus->true_labels()));
    server->corpus_labels_ = corpus->true_labels();
  }
  return server;
}

Result<Matrix> ServerCore::EmbedRow(const std::vector<double>& features) {
  const Matrix raw = Matrix::RowVector(features);
  return batcher_->Embed(bundle_.standardizer().Transform(raw));
}

Response ServerCore::Handle(const Request& request) {
  RLL_TRACE_SPAN("serve_request");
  Stopwatch timer;
  Response response = HandleInternal(request);
  const char* status =
      response.ok ? "ok" : ServeErrorName(response.error);
  RecordRequest(RequestTypeName(request.type), status,
                timer.ElapsedMillis());
  return response;
}

Response ServerCore::HandleInternal(const Request& request) {
  if (shutting_down()) {
    return MakeErrorResponse(request.id_json, ServeError::kShutdown,
                             "server is shutting down");
  }
  if (request.features.size() != bundle_.input_dim()) {
    return MakeErrorResponse(
        request.id_json, ServeError::kBadRequest,
        "expected " + std::to_string(bundle_.input_dim()) +
            " features, got " + std::to_string(request.features.size()));
  }

  Result<Matrix> embedded = EmbedRow(request.features);
  if (!embedded.ok()) {
    ServeError error = ServeError::kInternal;
    if (IsOverloaded(embedded.status())) error = ServeError::kOverloaded;
    if (IsShuttingDown(embedded.status())) error = ServeError::kShutdown;
    return MakeErrorResponse(request.id_json, error,
                             embedded.status().message());
  }

  Response response;
  response.id_json = request.id_json;
  response.has_type = true;
  response.type = request.type;
  switch (request.type) {
    case RequestType::kEmbed: {
      response.embedding.assign(
          embedded->data(), embedded->data() + embedded->size());
      response.ok = true;
      return response;
    }
    case RequestType::kPredict: {
      if (!supports_predict()) {
        return MakeErrorResponse(
            request.id_json, ServeError::kUnsupported,
            "predict needs a labeled corpus (start the server with one)");
      }
      response.score = predictor_.PredictProba(*embedded)[0];
      response.label = response.score >= 0.5 ? 1 : 0;
      response.ok = true;
      return response;
    }
    case RequestType::kNeighbors: {
      if (!supports_neighbors()) {
        return MakeErrorResponse(
            request.id_json, ServeError::kUnsupported,
            "neighbors needs a corpus (start the server with one)");
      }
      const size_t k = request.k > 0 ? request.k : options_.default_k;
      auto hits = index_.Query(*embedded, k);
      if (!hits.ok()) {
        return MakeErrorResponse(request.id_json, ServeError::kInternal,
                                 hits.status().message());
      }
      response.neighbors.reserve(hits->size());
      for (const core::Neighbor& n : *hits) {
        response.neighbors.push_back(
            {n.index, corpus_labels_[n.index], n.similarity});
      }
      response.ok = true;
      return response;
    }
  }
  return MakeErrorResponse(request.id_json, ServeError::kInternal,
                           "unhandled request type");
}

std::string ServerCore::HandleLine(const std::string& line) {
  std::string id_json;
  Result<Request> request = ParseRequest(line, &id_json);
  if (!request.ok()) {
    RecordRequest("unknown", ServeErrorName(ServeError::kBadRequest), 0.0);
    return SerializeResponse(MakeErrorResponse(
        id_json, ServeError::kBadRequest, request.status().message()));
  }
  return SerializeResponse(Handle(*request));
}

void ServerCore::Shutdown() {
  // Flag first so new arrivals fail fast; Stop() then drains what is
  // already queued, so requests blocked in batcher_->Embed complete
  // normally instead of being dropped.
  shutdown_.store(true, std::memory_order_release);
  batcher_->Stop();
}

}  // namespace rll::serve
