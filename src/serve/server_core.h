// ServerCore: the transport-independent heart of the inference server.
//
// Owns a trained ModelBundle, the micro-batcher + LRU cache in front of
// its encoder, and (when a labeled corpus is provided) a logistic-
// regression head fit on the corpus embeddings plus a cosine retrieval
// index over them. Every transport — the TCP listener, the bench load
// generator, the tests — drives this one class, so all serving logic is
// exercisable without a socket.
//
// Request flow for all three types:
//   raw features → standardize (bundle statistics) → cache probe →
//   micro-batched Mlp::Embed → [predict: LR head | neighbors: index query]
//
// Thread-safe: Handle/HandleLine may be called from any number of
// transport threads concurrently. Shutdown() drains in-flight work;
// requests arriving afterwards fail with a structured "shutdown" error.

#ifndef RLL_SERVE_SERVER_CORE_H_
#define RLL_SERVE_SERVER_CORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classify/logistic_regression.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "core/embedding_index.h"
#include "core/model_bundle.h"
#include "data/dataset.h"
#include "obs/window.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/protocol.h"

namespace rll::serve {

struct ServerCoreOptions {
  MicroBatcherOptions batcher;
  /// LRU entries keyed by standardized feature row (0 disables caching).
  size_t cache_capacity = 1024;
  /// k used by neighbors requests that do not pass one.
  size_t default_k = 5;
  /// Trace sampling: every Nth request gets linked "name:id" spans down
  /// the whole pipeline and its id echoed as "trace_id". 0 disables
  /// sampling (requests still get plain unlinked spans when tracing is
  /// on).
  uint64_t trace_sample_every = 0;
  /// Ring shape for the sliding-window views served by metricsz.
  obs::WindowOptions window;
};

class ServerCore {
 public:
  /// Builds a server around a trained bundle. `corpus` is optional: when
  /// non-null, its rows are embedded once (one batched Embed call), a
  /// logistic-regression head is fit on (embeddings, expert labels) for
  /// `predict`, and a cosine index is built for `neighbors`. Without a
  /// corpus those two request types answer a structured "unsupported"
  /// error and only `embed` is live.
  static Result<std::unique_ptr<ServerCore>> Create(
      core::ModelBundle bundle, const data::Dataset* corpus,
      const ServerCoreOptions& options);

  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Typed entry point: answers one request (blocking until its batch
  /// completes). Never fails structurally — errors come back as `ok ==
  /// false` responses so transports have exactly one write path.
  Response Handle(const Request& request);

  /// Wire entry point: parses one protocol line, handles it, serializes
  /// the response (no trailing newline). Parse errors yield a structured
  /// bad_request response, never an empty string.
  std::string HandleLine(const std::string& line);

  /// Graceful shutdown: drains every queued request through the batcher,
  /// then fails later arrivals with a "shutdown" error. Idempotent.
  void Shutdown();
  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  const EmbeddingCache& cache() const { return *cache_; }
  const MicroBatcher& batcher() const { return *batcher_; }
  const core::ModelBundle& bundle() const { return bundle_; }
  /// 0 when no corpus was provided.
  size_t corpus_size() const { return corpus_labels_.size(); }
  bool supports_predict() const { return predictor_.fitted(); }
  bool supports_neighbors() const { return !index_.empty(); }
  const ServerCoreOptions& options() const { return options_; }

  /// Sliding-window views backing metricsz (data-plane requests only;
  /// admin scrapes are excluded so watching the server does not move the
  /// latency it reports).
  const obs::WindowedCounter& windowed_requests() const {
    return windowed_requests_;
  }
  const obs::WindowedHistogram& windowed_latency() const {
    return *windowed_latency_all_;
  }
  /// Per-type latency window; `type` must be a data-plane type.
  const obs::WindowedHistogram& windowed_latency(RequestType type) const;

  /// Total requests minted so far (every Handle call, admin included).
  uint64_t requests_handled() const {
    return next_request_id_.load(std::memory_order_relaxed);
  }
  double uptime_seconds() const { return uptime_.ElapsedSeconds(); }

 private:
  ServerCore(core::ModelBundle bundle, const ServerCoreOptions& options);

  /// Standardizes one raw feature row and embeds it through the batcher.
  /// `trace_id` > 0 threads linked spans through the batcher pipeline.
  Result<Matrix> EmbedRow(const std::vector<double>& features,
                          int64_t trace_id);
  Response HandleInternal(const Request& request, int64_t trace_id);
  Response HandleAdmin(const Request& request);
  std::string HealthzPayload() const;
  std::string StatuszPayload() const;
  std::string MetricszPayload();
  /// profilez start/stop/fetch against the process-wide CPU profiler
  /// (obs/profiler.h). Errors (already running, invalid hz) surface as a
  /// structured response, not a dropped connection.
  Result<std::string> ProfilezPayload(const Request& request);

  const ServerCoreOptions options_;
  core::ModelBundle bundle_;
  classify::LogisticRegression predictor_;
  core::EmbeddingIndex index_;
  std::vector<int> corpus_labels_;
  std::unique_ptr<EmbeddingCache> cache_;
  std::unique_ptr<MicroBatcher> batcher_;
  std::atomic<bool> shutdown_{false};
  /// True while a profilez "start" this core issued is live, so Shutdown
  /// can disarm the timer instead of leaving SIGPROF firing into teardown.
  std::atomic<bool> profiler_started_{false};

  Stopwatch uptime_;
  std::atomic<uint64_t> next_request_id_{0};
  obs::WindowedCounter windowed_requests_;
  std::unique_ptr<obs::WindowedHistogram> windowed_latency_all_;
  /// Indexed by RequestType value; data-plane types only.
  std::unique_ptr<obs::WindowedHistogram> windowed_latency_by_type_[3];

  // Since-last-scrape state for the metricsz delta view. Scrapes are rare
  // (seconds apart), so one mutex here costs nothing on the request path.
  mutable Mutex admin_mu_;
  std::map<std::string, uint64_t> last_counters_ RLL_GUARDED_BY(admin_mu_);
  Stopwatch last_scrape_ RLL_GUARDED_BY(admin_mu_);
  uint64_t scrape_seq_ RLL_GUARDED_BY(admin_mu_) = 0;
  bool has_scrape_ RLL_GUARDED_BY(admin_mu_) = false;
};

}  // namespace rll::serve

#endif  // RLL_SERVE_SERVER_CORE_H_
