// ServerCore: the transport-independent heart of the inference server.
//
// Owns the current *generation* of serving state — a trained ModelBundle,
// the micro-batcher + LRU cache in front of its encoder, and (when a
// labeled corpus is provided) a logistic-regression head fit on the corpus
// embeddings plus a sharded cosine retrieval index over them. Every
// transport — the epoll event plane, the bench load generator, the tests —
// drives this one class, so all serving logic is exercisable without a
// socket.
//
// Request flow for all three types:
//   raw features → standardize (bundle statistics) → cache probe →
//   micro-batched Mlp::Embed → [predict: LR head | neighbors: index query]
//
// Zero-downtime reload (RCU-style generations): the whole serving state is
// one immutable-once-published ServingState behind a shared_ptr. Reload()
// builds the next generation in the background — load + shape-validate the
// new bundle, re-embed the corpus, rebuild index/head/cache/batcher — then
// atomically swaps the pointer. Requests pin their generation at entry, so
// in-flight work finishes on the bundle it started with; the old
// generation (and its batcher thread) is torn down when the last in-flight
// request releases it. Exposed on the wire as the strict `reloadz` admin
// verb and, via serve/event/reload_manager.h, as a bundle-file watcher.
//
// Thread-safe: Handle/HandleLine may be called from any number of
// transport threads concurrently, including while a reload swaps the
// generation. Shutdown() drains in-flight work; requests arriving
// afterwards fail with a structured "shutdown" error.

#ifndef RLL_SERVE_SERVER_CORE_H_
#define RLL_SERVE_SERVER_CORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classify/logistic_regression.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "core/model_bundle.h"
#include "core/sharded_index.h"
#include "data/dataset.h"
#include "obs/window.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/protocol.h"

namespace rll::serve {

struct ServerCoreOptions {
  MicroBatcherOptions batcher;
  /// LRU entries keyed by standardized feature row (0 disables caching).
  size_t cache_capacity = 1024;
  /// k used by neighbors requests that do not pass one.
  size_t default_k = 5;
  /// Contiguous shards the retrieval index is split into (clamped to the
  /// corpus size). Mirrors the event plane's worker count; `neighbors`
  /// results are bitwise identical at any value (core/sharded_index.h).
  size_t shards = 1;
  /// Trace sampling: every Nth request gets linked "name:id" spans down
  /// the whole pipeline and its id echoed as "trace_id". 0 disables
  /// sampling (requests still get plain unlinked spans when tracing is
  /// on).
  uint64_t trace_sample_every = 0;
  /// Ring shape for the sliding-window views served by metricsz.
  obs::WindowOptions window;
};

class ServerCore {
 public:
  /// Builds a server around a trained bundle. `corpus` is optional: when
  /// non-null, it is copied (reloads re-embed it with each new bundle),
  /// its rows are embedded once (one batched Embed call), a logistic-
  /// regression head is fit on (embeddings, expert labels) for `predict`,
  /// and a sharded cosine index is built for `neighbors`. Without a
  /// corpus those two request types answer a structured "unsupported"
  /// error and only `embed` is live. `bundle_source` is the path the
  /// bundle came from; it seeds the default reload target and statusz's
  /// bundle_source field.
  static Result<std::unique_ptr<ServerCore>> Create(
      core::ModelBundle bundle, const data::Dataset* corpus,
      const ServerCoreOptions& options, std::string bundle_source = "");

  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Typed entry point: answers one request (blocking until its batch
  /// completes). Never fails structurally — errors come back as `ok ==
  /// false` responses so transports have exactly one write path.
  Response Handle(const Request& request);

  /// Wire entry point: parses one protocol line, handles it, serializes
  /// the response (no trailing newline). Parse errors yield a structured
  /// bad_request response, never an empty string.
  std::string HandleLine(const std::string& line);

  /// Graceful shutdown: drains every queued request through the batcher,
  /// then fails later arrivals with a "shutdown" error. A reload that is
  /// mid-build when shutdown begins is refused at swap time. Idempotent.
  void Shutdown();
  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------- reload

  /// Loads a bundle from `path` (empty: the current bundle_source) and
  /// swaps it in as the next generation. Synchronous — runs the load,
  /// validation, and corpus re-embed on the calling thread; in-flight
  /// requests keep answering on the old generation throughout. On any
  /// failure the old generation stays current and the error is recorded
  /// (reloadz action=status, rll_serve_reload_failures_total).
  Status Reload(const std::string& path);

  /// Reload from an already-loaded bundle (tests, in-process trainers).
  Status ReloadFromBundle(core::ModelBundle bundle, std::string source);

  /// Monotone generation counter: 1 for the bundle served at Create, +1
  /// per successful reload.
  uint64_t generation() const;
  /// Path of the currently served bundle ("" when Create got none).
  std::string bundle_source() const;
  bool reload_in_progress() const {
    return reload_in_progress_.load(std::memory_order_acquire);
  }
  uint64_t reloads_total() const {
    return reloads_total_.load(std::memory_order_relaxed);
  }
  uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

  /// When set, `reloadz` action=reload dispatches through this handler
  /// (the ReloadManager's queue) and answers "accepted" immediately;
  /// without one the reload runs inline on the handling thread and the
  /// response carries the final outcome. Set before serving starts.
  using ReloadRequestFn = std::function<Status(const std::string& path)>;
  void SetReloadRequestHandler(ReloadRequestFn handler);

  /// Transport hook for statusz: returns a JSON object describing the
  /// event-plane shape (shard count, per-shard connection/queue gauges).
  /// Set by the transport before serving starts; statusz renders it under
  /// the "transport" key ({} when unset).
  using TransportStatusFn = std::function<std::string()>;
  void SetTransportStatusProvider(TransportStatusFn provider);

  // ------------------------------------------- current-generation views
  //
  // References into the generation current at call time. They stay valid
  // while that generation is current and until every in-flight request
  // drains; callers that race reloads should go through Handle() instead
  // of holding these across a swap.

  const EmbeddingCache& cache() const;
  const MicroBatcher& batcher() const;
  const core::ModelBundle& bundle() const;
  /// 0 when no corpus was provided.
  size_t corpus_size() const;
  bool supports_predict() const;
  bool supports_neighbors() const;
  /// Shard count of the live retrieval index (0 without a corpus).
  size_t index_shards() const;
  const ServerCoreOptions& options() const { return options_; }

  /// Sliding-window views backing metricsz (data-plane requests only;
  /// admin scrapes are excluded so watching the server does not move the
  /// latency it reports).
  const obs::WindowedCounter& windowed_requests() const {
    return windowed_requests_;
  }
  const obs::WindowedHistogram& windowed_latency() const {
    return *windowed_latency_all_;
  }
  /// Per-type latency window; `type` must be a data-plane type.
  const obs::WindowedHistogram& windowed_latency(RequestType type) const;

  /// Total requests minted so far (every Handle call, admin included).
  uint64_t requests_handled() const {
    return next_request_id_.load(std::memory_order_relaxed);
  }
  double uptime_seconds() const { return uptime_.ElapsedSeconds(); }

 private:
  /// One model generation: everything a request touches, immutable once
  /// published. The batcher is declared last so it is destroyed first —
  /// its drain may still run the embed lambda against this bundle.
  struct ServingState {
    explicit ServingState(core::ModelBundle b) : bundle(std::move(b)) {}
    core::ModelBundle bundle;
    classify::LogisticRegression predictor;
    core::ShardedEmbeddingIndex index;
    std::vector<int> corpus_labels;
    uint64_t generation = 1;
    std::string source;
    std::unique_ptr<EmbeddingCache> cache;
    std::unique_ptr<MicroBatcher> batcher;
  };

  ServerCore(const ServerCoreOptions& options, data::Dataset corpus,
             bool has_corpus);

  /// Builds a complete generation: validates the bundle against the
  /// retained corpus, embeds the corpus through the new encoder, fits the
  /// head, builds the sharded index, and spins up a fresh cache+batcher.
  Result<std::shared_ptr<ServingState>> BuildState(core::ModelBundle bundle,
                                                   std::string source);

  /// The current generation (mutex-guarded shared_ptr copy — the
  /// "read-side lock" of the RCU swap; the critical section is a refcount
  /// bump).
  std::shared_ptr<ServingState> state() const;

  /// Standardizes one raw feature row and embeds it through the given
  /// generation's batcher. `trace_id` > 0 threads linked spans through
  /// the batcher pipeline.
  Result<Matrix> EmbedRow(const ServingState& st,
                          const std::vector<double>& features,
                          int64_t trace_id);
  Response HandleInternal(const Request& request, const ServingState& st,
                          int64_t trace_id);
  Response HandleAdmin(const Request& request);
  std::string HealthzPayload() const;
  std::string StatuszPayload() const;
  std::string MetricszPayload();
  /// profilez start/stop/fetch against the process-wide CPU profiler
  /// (obs/profiler.h). Errors (already running, invalid hz) surface as a
  /// structured response, not a dropped connection.
  Result<std::string> ProfilezPayload(const Request& request);
  Result<std::string> ReloadzPayload(const Request& request);

  const ServerCoreOptions options_;
  /// Retained copy of the Create-time corpus: every reload re-embeds it
  /// with the incoming bundle.
  const data::Dataset corpus_;
  const bool has_corpus_;

  mutable Mutex state_mu_;
  std::shared_ptr<ServingState> state_ RLL_GUARDED_BY(state_mu_);

  /// Serializes reloads: one build at a time, triggers queue behind it.
  Mutex reload_mu_;
  std::atomic<bool> reload_in_progress_{false};
  std::atomic<uint64_t> reloads_total_{0};
  std::atomic<uint64_t> reload_failures_{0};

  std::atomic<bool> shutdown_{false};
  /// True while a profilez "start" this core issued is live, so Shutdown
  /// can disarm the timer instead of leaving SIGPROF firing into teardown.
  std::atomic<bool> profiler_started_{false};

  Stopwatch uptime_;
  std::atomic<uint64_t> next_request_id_{0};
  obs::WindowedCounter windowed_requests_;
  std::unique_ptr<obs::WindowedHistogram> windowed_latency_all_;
  /// Indexed by RequestType value; data-plane types only.
  std::unique_ptr<obs::WindowedHistogram> windowed_latency_by_type_[3];

  // Since-last-scrape state for the metricsz delta view, the transport
  // statusz hook, and the last reload error. Scrapes are rare (seconds
  // apart), so one mutex here costs nothing on the request path.
  mutable Mutex admin_mu_;
  std::map<std::string, uint64_t> last_counters_ RLL_GUARDED_BY(admin_mu_);
  Stopwatch last_scrape_ RLL_GUARDED_BY(admin_mu_);
  uint64_t scrape_seq_ RLL_GUARDED_BY(admin_mu_) = 0;
  bool has_scrape_ RLL_GUARDED_BY(admin_mu_) = false;
  ReloadRequestFn reload_handler_ RLL_GUARDED_BY(admin_mu_);
  TransportStatusFn transport_status_ RLL_GUARDED_BY(admin_mu_);
  std::string last_reload_error_ RLL_GUARDED_BY(admin_mu_);
};

}  // namespace rll::serve

#endif  // RLL_SERVE_SERVER_CORE_H_
