// ServerCore: the transport-independent heart of the inference server.
//
// Owns a trained ModelBundle, the micro-batcher + LRU cache in front of
// its encoder, and (when a labeled corpus is provided) a logistic-
// regression head fit on the corpus embeddings plus a cosine retrieval
// index over them. Every transport — the TCP listener, the bench load
// generator, the tests — drives this one class, so all serving logic is
// exercisable without a socket.
//
// Request flow for all three types:
//   raw features → standardize (bundle statistics) → cache probe →
//   micro-batched Mlp::Embed → [predict: LR head | neighbors: index query]
//
// Thread-safe: Handle/HandleLine may be called from any number of
// transport threads concurrently. Shutdown() drains in-flight work;
// requests arriving afterwards fail with a structured "shutdown" error.

#ifndef RLL_SERVE_SERVER_CORE_H_
#define RLL_SERVE_SERVER_CORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "classify/logistic_regression.h"
#include "core/embedding_index.h"
#include "core/model_bundle.h"
#include "data/dataset.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/protocol.h"

namespace rll::serve {

struct ServerCoreOptions {
  MicroBatcherOptions batcher;
  /// LRU entries keyed by standardized feature row (0 disables caching).
  size_t cache_capacity = 1024;
  /// k used by neighbors requests that do not pass one.
  size_t default_k = 5;
};

class ServerCore {
 public:
  /// Builds a server around a trained bundle. `corpus` is optional: when
  /// non-null, its rows are embedded once (one batched Embed call), a
  /// logistic-regression head is fit on (embeddings, expert labels) for
  /// `predict`, and a cosine index is built for `neighbors`. Without a
  /// corpus those two request types answer a structured "unsupported"
  /// error and only `embed` is live.
  static Result<std::unique_ptr<ServerCore>> Create(
      core::ModelBundle bundle, const data::Dataset* corpus,
      const ServerCoreOptions& options);

  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Typed entry point: answers one request (blocking until its batch
  /// completes). Never fails structurally — errors come back as `ok ==
  /// false` responses so transports have exactly one write path.
  Response Handle(const Request& request);

  /// Wire entry point: parses one protocol line, handles it, serializes
  /// the response (no trailing newline). Parse errors yield a structured
  /// bad_request response, never an empty string.
  std::string HandleLine(const std::string& line);

  /// Graceful shutdown: drains every queued request through the batcher,
  /// then fails later arrivals with a "shutdown" error. Idempotent.
  void Shutdown();
  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  const EmbeddingCache& cache() const { return *cache_; }
  const MicroBatcher& batcher() const { return *batcher_; }
  const core::ModelBundle& bundle() const { return bundle_; }
  /// 0 when no corpus was provided.
  size_t corpus_size() const { return corpus_labels_.size(); }
  bool supports_predict() const { return predictor_.fitted(); }
  bool supports_neighbors() const { return !index_.empty(); }
  const ServerCoreOptions& options() const { return options_; }

 private:
  ServerCore(core::ModelBundle bundle, const ServerCoreOptions& options);

  /// Standardizes one raw feature row and embeds it through the batcher.
  Result<Matrix> EmbedRow(const std::vector<double>& features);
  Response HandleInternal(const Request& request);

  const ServerCoreOptions options_;
  core::ModelBundle bundle_;
  classify::LogisticRegression predictor_;
  core::EmbeddingIndex index_;
  std::vector<int> corpus_labels_;
  std::unique_ptr<EmbeddingCache> cache_;
  std::unique_ptr<MicroBatcher> batcher_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace rll::serve

#endif  // RLL_SERVE_SERVER_CORE_H_
