// rll-analyze: hot-path — WorkerLoop/RunBatch execute once per coalesced
// batch on the serve request path; per-batch containers are banned (the
// batch vector, failure flags, and stacked matrix are all reused).
#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace rll::serve {

namespace {

constexpr char kOverloadedMessage[] = "overloaded: request queue is full";
constexpr char kShuttingDownMessage[] = "server is shutting down";

struct BatcherMetrics {
  obs::Gauge* queue_depth;
  obs::Histogram* batch_size;
  obs::Histogram* batch_embed_ms;
  obs::Counter* batches;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* rejected;
};

/// Hot-path instruments, resolved once (registry lookup takes a lock).
const BatcherMetrics& Metrics() {
  static const BatcherMetrics metrics = [] {
    auto& registry = obs::MetricRegistry::Global();
    obs::HistogramOptions batch_buckets;
    batch_buckets.buckets = obs::HistogramOptions::Buckets::kLinear;
    batch_buckets.count = 64;
    batch_buckets.min = 0.0;
    batch_buckets.max = 64.0;  // Width-1 buckets: exact up to 64 rows.
    return BatcherMetrics{
        registry.GetGauge("serve_queue_depth"),
        registry.GetHistogram("serve_batch_size", {}, batch_buckets),
        registry.GetHistogram("serve_batch_embed_ms"),
        registry.GetCounter("serve_batches_total"),
        registry.GetCounter("serve_cache_hits_total"),
        registry.GetCounter("serve_cache_misses_total"),
        registry.GetCounter("serve_rejected_total"),
    };
  }();
  return metrics;
}

}  // namespace

Status OverloadedStatus() {
  return Status::FailedPrecondition(kOverloadedMessage);
}

Status ShuttingDownStatus() {
  return Status::FailedPrecondition(kShuttingDownMessage);
}

bool IsOverloaded(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message() == kOverloadedMessage;
}

bool IsShuttingDown(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message() == kShuttingDownMessage;
}

MicroBatcher::MicroBatcher(const MicroBatcherOptions& options,
                           BatchFn batch_fn, EmbeddingCache* cache)
    : options_(options), batch_fn_(std::move(batch_fn)), cache_(cache) {
  RLL_CHECK_GE(options_.max_batch, 1u);
  RLL_CHECK_GE(options_.max_queue, 1u);
  Metrics();  // Resolve instruments before concurrent use.
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::MicroBatcher(const MicroBatcherOptions& options,
                           BatchIntoFn batch_fn, EmbeddingCache* cache)
    : options_(options), batch_into_fn_(std::move(batch_fn)), cache_(cache) {
  RLL_CHECK_GE(options_.max_batch, 1u);
  RLL_CHECK_GE(options_.max_queue, 1u);
  Metrics();  // Resolve instruments before concurrent use.
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

Result<Matrix> MicroBatcher::Embed(const Matrix& row, int64_t trace_id) {
  if (row.rows() != 1) {
    return Status::InvalidArgument("Embed expects a single 1xdim row");
  }
  // Span starts are only stamped for sampled requests (trace_id > 0);
  // RecordSpanWithId itself no-ops when tracing is globally off.
  uint64_t key = 0;
  if (cache_ != nullptr) {
    const int64_t probe_start =
        trace_id > 0 ? obs::TraceNowMicros() : 0;
    key = EmbeddingCache::HashRow(row);
    Matrix cached;
    const bool hit = cache_->Lookup(key, row, &cached);
    if (trace_id > 0) {
      obs::RecordSpanWithId("serve_cache_probe", trace_id, probe_start);
    }
    if (hit) {
      Metrics().cache_hits->Increment();
      return cached;
    }
    Metrics().cache_misses->Increment();
  }

  const int64_t wait_start = trace_id > 0 ? obs::TraceNowMicros() : 0;
  std::future<Result<Matrix>> future;
  {
    MutexLock lock(mu_);
    if (stopping_) return ShuttingDownStatus();
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Metrics().rejected->Increment();
      return OverloadedStatus();
    }
    Pending pending;
    pending.row = row;
    pending.key = key;
    pending.trace_id = trace_id;
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.NotifyAll();
  Result<Matrix> result = future.get();
  if (trace_id > 0) {
    // Covers enqueue → batch completion, i.e. queueing plus the batch
    // itself; the overlapping serve_batch_row span isolates the latter.
    obs::RecordSpanWithId("serve_queue_wait", trace_id, wait_start);
  }
  return result;
}

void MicroBatcher::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) {
      // Second caller: fall through to join (idempotence), but the flag
      // is already set.
    }
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
  stopped_.store(true, std::memory_order_release);
}

void MicroBatcher::WorkerLoop() {
  // Once, at thread start (the per-batch loop below stays allocation-free):
  // name the worker and register its profiler buffer — this thread runs
  // every Embed forward pass, so it dominates serve CPU profiles.
  SetCurrentThreadName("rll-batcher");
  obs::RegisterProfilerThread();
  // Hoisted out of the loop: at steady state the vector's capacity (like
  // every other per-batch buffer) is reused, so draining a batch performs
  // no heap allocation.
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ && drained.
      // First request in hand: linger for stragglers up to the timeout
      // (skipped when already full or when shutting down — the drain
      // should be fast, not well-batched).
      if (options_.batch_timeout_us > 0 && !stopping_ &&
          queue_.size() < options_.max_batch) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.batch_timeout_us);
        while (!stopping_ && queue_.size() < options_.max_batch) {
          if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
        }
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    RunBatch(batch);
  }
}

void MicroBatcher::RunBatch(std::vector<Pending>& batch) {
  RLL_TRACE_SPAN("serve_batch");
  const int64_t batch_start = obs::TraceNowMicros();
  const size_t n = batch.size();
  // Batch assembly reuses the worker's keyed buffer: GetReshaped keeps
  // the capacity across batches, so varying batch sizes only allocate
  // until the high-water shape has been seen once.
  Matrix& stacked = ws_.GetReshaped("batcher.stacked", n, batch[0].row.cols());
  failed_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (batch[i].row.cols() != stacked.cols()) {
      // Mixed widths cannot be stacked; fail the odd row out and embed
      // the rest (ServerCore validates dimensions up front, so this is
      // belt-and-braces against direct batcher users; the stale row left
      // in `stacked` only feeds a result nobody reads — every kernel in
      // the embed path maps input rows to output rows independently).
      batch[i].promise.set_value(
          Status::InvalidArgument("row width differs within batch"));
      failed_[i] = 1;
      continue;
    }
    stacked.SetRow(i, batch[i].row);
  }

  Stopwatch timer;
  Matrix legacy;  // Holds the result only on the copying BatchFn path.
  const Matrix* embedded_ptr;
  if (batch_into_fn_) {
    // Allocation-free path: the batch function writes into (and returns a
    // reference aliasing) the worker's workspace.
    embedded_ptr = &batch_into_fn_(stacked, ws_);
  } else {
    legacy = batch_fn_(stacked);
    embedded_ptr = &legacy;
  }
  const Matrix& embedded = *embedded_ptr;
  Metrics().batch_embed_ms->Observe(timer.ElapsedMillis());
  Metrics().batch_size->Observe(static_cast<double>(n));
  Metrics().batches->Increment();
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  rows_batched_.fetch_add(n, std::memory_order_relaxed);
  uint64_t seen = max_batch_observed_.load(std::memory_order_relaxed);
  while (n > seen && !max_batch_observed_.compare_exchange_weak(
                         seen, n, std::memory_order_relaxed)) {
  }

  if (embedded.rows() != n) {
    const Status broken = Status::Internal(
        "batch function returned " + std::to_string(embedded.rows()) +
        " rows for a batch of " + std::to_string(n));
    for (size_t i = 0; i < n; ++i) {
      if (!failed_[i]) batch[i].promise.set_value(broken);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (failed_[i]) continue;
    Matrix row = embedded.Row(i);
    if (cache_ != nullptr) cache_->Insert(batch[i].key, batch[i].row, row);
    if (batch[i].trace_id > 0) {
      // One linked span per sampled row: assembly through demux, so a
      // sampled request's timeline shows its share of the coalesced batch.
      obs::RecordSpanWithId("serve_batch_row", batch[i].trace_id,
                            batch_start);
    }
    batch[i].promise.set_value(std::move(row));
  }
}

}  // namespace rll::serve
