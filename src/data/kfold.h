// Train/test splitting and stratified K-fold cross-validation, matching the
// paper's evaluation protocol (5-fold CV, averaged metrics).

#ifndef RLL_DATA_KFOLD_H_
#define RLL_DATA_KFOLD_H_

#include <vector>

#include "common/rng.h"

namespace rll::data {

struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Shuffled train/test split; test_fraction in (0, 1).
Split TrainTestSplit(size_t n, double test_fraction, Rng* rng);

/// K folds preserving the label ratio in every fold. Each example appears
/// in exactly one test set. Requires 2 <= k <= n.
std::vector<Split> StratifiedKFold(const std::vector<int>& labels, size_t k,
                                   Rng* rng);

}  // namespace rll::data

#endif  // RLL_DATA_KFOLD_H_
