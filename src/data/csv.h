// CSV import/export so datasets and annotations can round-trip to standard
// crowdsourcing tooling.
//
// Features file: header "f0,...,f{d-1},label", one example per row.
// Annotations file (long format, the de-facto crowdsourcing layout):
// header "example_id,worker_id,label", one vote per row.

#ifndef RLL_DATA_CSV_H_
#define RLL_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace rll::data {

/// Writes features + expert labels.
Status SaveFeaturesCsv(const std::string& path, const Dataset& dataset);

/// Reads features + expert labels (annotations left empty).
Result<Dataset> LoadFeaturesCsv(const std::string& path);

/// Writes all crowd annotations in long format.
Status SaveAnnotationsCsv(const std::string& path, const Dataset& dataset);

/// Loads annotations into an existing dataset (replaces current ones).
/// Fails if any example_id is out of range.
Status LoadAnnotationsCsv(const std::string& path, Dataset* dataset);

}  // namespace rll::data

#endif  // RLL_DATA_CSV_H_
