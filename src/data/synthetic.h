// Synthetic stand-ins for the paper's proprietary education datasets.
//
// The real "oral" (880 audio clips) and "class" (472 class videos) datasets
// are proprietary TAL data. What the algorithms actually consume is a fixed-
// length feature vector per example plus labels, so we reproduce the
// *measurable* properties the paper reports: example counts, positive/negative
// ratios (1.8 and 2.1), and — critically for the method comparison — a feature
// distribution whose class signal is only partially linear:
//
//   • a *linear* block whose class-conditional means differ (what logistic
//     regression on raw features can exploit, bounding the group-1 baselines);
//   • an *XOR* block of latent cluster corners whose parity encodes the class
//     (invisible to linear models; recoverable by the nonlinear encoders —
//     the "hidden patterns" representation learning is meant to discover);
//   • pure noise dimensions;
//   • a random dense mixing map entangling everything, the way raw
//     ASR-derived linguistic features entangle latent causes.
//
// Difficulty presets are calibrated so baseline and RLL accuracies land in
// the ranges Table I reports.

#ifndef RLL_DATA_SYNTHETIC_H_
#define RLL_DATA_SYNTHETIC_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace rll::data {

struct SyntheticConfig {
  size_t num_examples = 880;
  /// Fraction of examples whose expert label is 1.
  double positive_fraction = 0.643;
  /// Dimensions with class-dependent means (linearly separable signal).
  size_t linear_dims = 6;
  /// Dimensions holding the parity-structured corners (nonlinear signal).
  size_t xor_dims = 3;
  /// Pure-noise dimensions appended after the informative blocks.
  size_t noise_dims = 24;
  /// Latent clusters per class (diverse "styles" within a class).
  size_t clusters_per_class = 3;
  /// Distance between the class means in the linear block.
  double linear_sep = 1.0;
  /// Scale of the XOR corners.
  double xor_sep = 2.0;
  /// Within-cluster standard deviation in the linear block.
  double cluster_spread = 1.0;
  /// Within-cluster standard deviation in the XOR block (tighter clusters
  /// keep the nonlinear structure recoverable from few examples).
  double xor_spread = 0.6;
  /// Additive measurement noise on every output dimension.
  double feature_noise = 0.1;
  /// Applies a random dense mixing matrix so raw features are not axis-
  /// aligned with the latent factors (like real extracted features).
  bool mix_features = true;
  /// Off-diagonal strength of the mixing map (0 → identity).
  double mix_strength = 0.5;

  /// Total feature dimensionality.
  size_t TotalDims() const { return linear_dims + xor_dims + noise_dims; }
};

/// Preset matching the "oral math questions" dataset: 880 examples,
/// pos:neg = 1.8, moderate difficulty (group-1 LR accuracy ≈ 0.82).
SyntheticConfig OralSimConfig();

/// Preset matching the "online 1v1 class quality" dataset: 472 examples,
/// pos:neg = 2.1, harder and less linear (group-1 accuracy ≈ 0.6–0.76).
SyntheticConfig ClassSimConfig();

/// Generates features + expert labels. Crowd annotations are added
/// separately by rll::crowd::WorkerPool.
Dataset GenerateSynthetic(const SyntheticConfig& config, Rng* rng);

}  // namespace rll::data

#endif  // RLL_DATA_SYNTHETIC_H_
