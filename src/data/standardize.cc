#include "data/standardize.h"

#include <cmath>

#include "tensor/ops.h"

namespace rll::data {

void Standardizer::Fit(const Matrix& x) {
  RLL_CHECK_GT(x.rows(), 0u);
  mean_ = ColMean(x);
  stddev_ = Matrix(1, x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    double ss = 0.0;
    for (size_t r = 0; r < x.rows(); ++r) {
      const double d = x(r, c) - mean_[c];
      ss += d * d;
    }
    const double var = ss / static_cast<double>(x.rows());
    stddev_[c] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  fitted_ = true;
}

Standardizer Standardizer::FromMoments(Matrix mean, Matrix stddev) {
  RLL_CHECK_EQ(mean.rows(), 1u);
  RLL_CHECK(mean.SameShape(stddev));
  for (size_t c = 0; c < stddev.cols(); ++c) RLL_CHECK_GT(stddev[c], 0.0);
  Standardizer s;
  s.mean_ = std::move(mean);
  s.stddev_ = std::move(stddev);
  s.fitted_ = true;
  return s;
}

Matrix Standardizer::Transform(const Matrix& x) const {
  RLL_CHECK_MSG(fitted_, "Standardizer::Transform before Fit");
  RLL_CHECK_EQ(x.cols(), mean_.cols());
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* in = x.row_data(r);
    double* o = out.row_data(r);
    for (size_t c = 0; c < x.cols(); ++c) {
      o[c] = (in[c] - mean_[c]) / stddev_[c];
    }
  }
  return out;
}

}  // namespace rll::data
