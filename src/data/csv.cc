#include "data/csv.h"

#include <fstream>

#include "common/strings.h"

namespace rll::data {

Status SaveFeaturesCsv(const std::string& path, const Dataset& dataset) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  for (size_t c = 0; c < dataset.dim(); ++c) f << "f" << c << ",";
  f << "label\n";
  for (size_t i = 0; i < dataset.size(); ++i) {
    const double* row = dataset.features().row_data(i);
    for (size_t c = 0; c < dataset.dim(); ++c) {
      f << StrFormat("%.17g", row[c]) << ",";
    }
    f << dataset.true_label(i) << "\n";
  }
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadFeaturesCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(f, line)) return Status::IOError("empty file: " + path);
  const size_t num_cols = Split(line, ',').size();
  if (num_cols < 2) {
    return Status::InvalidArgument("features CSV needs >= 2 columns");
  }
  const size_t dim = num_cols - 1;

  std::vector<double> values;
  std::vector<int> labels;
  size_t row_index = 1;
  while (std::getline(f, line)) {
    ++row_index;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != num_cols) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu cells, expected %zu", row_index,
                    cells.size(), num_cols));
    }
    for (size_t c = 0; c < dim; ++c) {
      double v = 0.0;
      if (!ParseDouble(cells[c], &v)) {
        return Status::InvalidArgument(
            StrFormat("row %zu col %zu: bad double '%s'", row_index, c,
                      cells[c].c_str()));
      }
      values.push_back(v);
    }
    int64_t y = 0;
    if (!ParseInt(cells[dim], &y) || (y != 0 && y != 1)) {
      return Status::InvalidArgument(
          StrFormat("row %zu: bad label '%s'", row_index,
                    cells[dim].c_str()));
    }
    labels.push_back(static_cast<int>(y));
  }
  Matrix features(labels.size(), dim, std::move(values));
  return Dataset(std::move(features), std::move(labels));
}

Status SaveAnnotationsCsv(const std::string& path, const Dataset& dataset) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  f << "example_id,worker_id,label\n";
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (const Annotation& a : dataset.annotations(i)) {
      f << i << "," << a.worker_id << "," << a.label << "\n";
    }
  }
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadAnnotationsCsv(const std::string& path, Dataset* dataset) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(f, line)) return Status::IOError("empty file: " + path);
  dataset->ClearAnnotations();
  size_t row_index = 1;
  while (std::getline(f, line)) {
    ++row_index;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    int64_t example = 0, worker = 0, label = 0;
    if (cells.size() != 3 || !ParseInt(cells[0], &example) ||
        !ParseInt(cells[1], &worker) || !ParseInt(cells[2], &label) ||
        (label != 0 && label != 1) || example < 0 || worker < 0) {
      return Status::InvalidArgument(
          StrFormat("bad annotation row %zu: '%s'", row_index, line.c_str()));
    }
    if (static_cast<size_t>(example) >= dataset->size()) {
      return Status::OutOfRange(
          StrFormat("row %zu: example_id %lld out of range", row_index,
                    static_cast<long long>(example)));
    }
    dataset->AddAnnotation(static_cast<size_t>(example),
                           {static_cast<size_t>(worker),
                            static_cast<int>(label)});
  }
  return Status::OK();
}

}  // namespace rll::data
