// Per-feature z-score standardization. Fit on training folds only; apply
// the same transform to test folds (avoids leakage in cross-validation).

#ifndef RLL_DATA_STANDARDIZE_H_
#define RLL_DATA_STANDARDIZE_H_

#include "tensor/matrix.h"

namespace rll::data {

class Standardizer {
 public:
  /// Computes per-column mean and stddev. Constant columns get stddev 1 so
  /// they map to zero instead of dividing by zero.
  void Fit(const Matrix& x);

  /// (x - mean) / stddev, column-wise. Requires Fit first.
  Matrix Transform(const Matrix& x) const;

  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  /// Reconstructs a fitted standardizer from stored statistics (both
  /// 1×dim; stddev strictly positive). Used by model-bundle loading.
  static Standardizer FromMoments(Matrix mean, Matrix stddev);

  bool fitted() const { return fitted_; }
  const Matrix& mean() const { return mean_; }
  const Matrix& stddev() const { return stddev_; }

 private:
  bool fitted_ = false;
  Matrix mean_;    // 1×dim
  Matrix stddev_;  // 1×dim
};

}  // namespace rll::data

#endif  // RLL_DATA_STANDARDIZE_H_
