#include "data/dataset.h"

#include <algorithm>

namespace rll::data {

Dataset::Dataset(Matrix features, std::vector<int> true_labels)
    : features_(std::move(features)), true_labels_(std::move(true_labels)) {
  RLL_CHECK_EQ(features_.rows(), true_labels_.size());
  for (int y : true_labels_) RLL_CHECK(y == 0 || y == 1);
  annotations_.resize(true_labels_.size());
}

void Dataset::AddAnnotation(size_t i, Annotation a) {
  RLL_CHECK_LT(i, annotations_.size());
  RLL_CHECK(a.label == 0 || a.label == 1);
  annotations_[i].push_back(a);
}

void Dataset::ClearAnnotations() {
  for (auto& anns : annotations_) anns.clear();
}

bool Dataset::FullyAnnotated() const {
  return std::all_of(annotations_.begin(), annotations_.end(),
                     [](const auto& anns) { return !anns.empty(); });
}

size_t Dataset::NumWorkers() const {
  size_t max_id = 0;
  bool any = false;
  for (const auto& anns : annotations_) {
    for (const Annotation& a : anns) {
      max_id = std::max(max_id, a.worker_id);
      any = true;
    }
  }
  return any ? max_id + 1 : 0;
}

size_t Dataset::PositiveVotes(size_t i) const {
  RLL_CHECK_LT(i, annotations_.size());
  size_t count = 0;
  for (const Annotation& a : annotations_[i]) count += (a.label == 1);
  return count;
}

int Dataset::MajorityVote(size_t i) const {
  RLL_CHECK_LT(i, annotations_.size());
  const size_t d = annotations_[i].size();
  RLL_CHECK_GT(d, 0u);
  const size_t pos = PositiveVotes(i);
  return 2 * pos >= d ? 1 : 0;
}

std::vector<int> Dataset::MajorityVoteLabels() const {
  std::vector<int> labels(size());
  for (size_t i = 0; i < size(); ++i) labels[i] = MajorityVote(i);
  return labels;
}

double Dataset::PositiveFraction() const {
  if (empty()) return 0.0;
  size_t pos = 0;
  for (int y : true_labels_) pos += (y == 1);
  return static_cast<double>(pos) / static_cast<double>(size());
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  std::vector<int> labels;
  labels.reserve(indices.size());
  for (size_t i : indices) {
    RLL_CHECK_LT(i, size());
    labels.push_back(true_labels_[i]);
  }
  Dataset out(features_.GatherRows(indices), std::move(labels));
  for (size_t j = 0; j < indices.size(); ++j) {
    out.annotations_[j] = annotations_[indices[j]];
  }
  return out;
}

std::vector<size_t> Dataset::PositiveIndices(const std::vector<int>& labels) {
  std::vector<size_t> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Dataset::NegativeIndices(const std::vector<int>& labels) {
  std::vector<size_t> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 1) out.push_back(i);
  }
  return out;
}

}  // namespace rll::data
