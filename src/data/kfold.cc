#include "data/kfold.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace rll::data {

Split TrainTestSplit(size_t n, double test_fraction, Rng* rng) {
  RLL_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  RLL_CHECK_GE(n, 2u);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng->Shuffle(&order);
  size_t num_test = static_cast<size_t>(test_fraction * static_cast<double>(n));
  num_test = std::clamp<size_t>(num_test, 1, n - 1);
  Split split;
  split.test.assign(order.begin(), order.begin() + num_test);
  split.train.assign(order.begin() + num_test, order.end());
  return split;
}

std::vector<Split> StratifiedKFold(const std::vector<int>& labels, size_t k,
                                   Rng* rng) {
  const size_t n = labels.size();
  RLL_CHECK_GE(k, 2u);
  RLL_CHECK_LE(k, n);

  // Deal each class's shuffled indices round-robin into folds.
  std::vector<std::vector<size_t>> fold_members(k);
  for (int cls : {0, 1}) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i) {
      if (labels[i] == cls) members.push_back(i);
    }
    rng->Shuffle(&members);
    for (size_t j = 0; j < members.size(); ++j) {
      fold_members[j % k].push_back(members[j]);
    }
  }

  std::vector<Split> splits(k);
  for (size_t f = 0; f < k; ++f) {
    splits[f].test = fold_members[f];
    std::sort(splits[f].test.begin(), splits[f].test.end());
    for (size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      splits[f].train.insert(splits[f].train.end(), fold_members[g].begin(),
                             fold_members[g].end());
    }
    std::sort(splits[f].train.begin(), splits[f].train.end());
  }
  return splits;
}

}  // namespace rll::data
