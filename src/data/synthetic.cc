#include "data/synthetic.h"

#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace rll::data {

SyntheticConfig OralSimConfig() {
  SyntheticConfig c;
  c.num_examples = 880;
  c.positive_fraction = 1.8 / 2.8;  // pos:neg = 1.8 (paper, §IV-A).
  c.linear_dims = 8;
  c.xor_dims = 2;
  c.noise_dims = 6;  // 16 raw feature dims total.
  c.clusters_per_class = 3;
  // Calibrated so group-1 LR lands near the paper's 0.815–0.843 band and
  // RLL-Bayesian near 0.888 (see EXPERIMENTS.md).
  c.linear_sep = 0.7;
  c.xor_sep = 4.0;
  c.cluster_spread = 1.0;
  c.xor_spread = 0.5;
  c.feature_noise = 0.1;
  c.mix_features = true;
  c.mix_strength = 0.3;
  return c;
}

SyntheticConfig ClassSimConfig() {
  SyntheticConfig c;
  c.num_examples = 472;
  c.positive_fraction = 2.1 / 3.1;  // pos:neg = 2.1 (paper, §IV-A).
  c.linear_dims = 6;
  c.xor_dims = 2;
  c.noise_dims = 6;  // 14 raw feature dims total.
  c.clusters_per_class = 4;
  // Weak linear signal: the linear group-1 baselines cap near the paper's
  // 0.6–0.76 band while RLL-Bayesian reaches ≈ 0.88 via the XOR block.
  c.linear_sep = 0.4;
  c.xor_sep = 4.2;
  c.cluster_spread = 1.05;
  c.xor_spread = 0.45;
  c.feature_noise = 0.15;
  c.mix_features = true;
  c.mix_strength = 0.3;
  return c;
}

Dataset GenerateSynthetic(const SyntheticConfig& config, Rng* rng) {
  RLL_CHECK_GT(config.num_examples, 0u);
  RLL_CHECK_GT(config.linear_dims + config.xor_dims, 0u);
  RLL_CHECK_GT(config.clusters_per_class, 0u);
  RLL_CHECK(config.positive_fraction > 0.0 && config.positive_fraction < 1.0);

  const size_t n = config.num_examples;
  const size_t dl = config.linear_dims;
  const size_t dx = config.xor_dims;
  const size_t dim = config.TotalDims();

  // ---- Linear block: class means at ±(linear_sep/2)·dir, where dir is a
  // random sign pattern; each cluster adds its own small offset ("style").
  std::vector<double> direction(dl);
  for (size_t j = 0; j < dl; ++j) direction[j] = rng->Bernoulli(0.5) ? 1 : -1;
  const size_t num_clusters = 2 * config.clusters_per_class;
  Matrix linear_offsets(num_clusters, dl);
  for (size_t c = 0; c < num_clusters; ++c) {
    for (size_t j = 0; j < dl; ++j) {
      linear_offsets(c, j) = rng->Normal(0.0, 0.3);
    }
  }

  // ---- XOR block: each example sits near a corner of {−1,+1}^dx whose bit
  // parity equals its class, drawn uniformly over all corners of that
  // parity. Uniformity makes the class-conditional mean of this block
  // exactly zero — parity is invisible to any linear model, so this block
  // is signal only nonlinear encoders can use.
  auto sample_xor_corner = [&](int cls, double* out) {
    size_t parity = static_cast<size_t>(cls);
    for (size_t j = 0; j + 1 < dx; ++j) {
      const size_t bit = rng->Bernoulli(0.5) ? 1u : 0u;
      out[j] = bit ? 1.0 : -1.0;
      parity ^= bit;
    }
    out[dx - 1] = parity ? 1.0 : -1.0;
  };

  // ---- Exact class counts to pin the positive:negative ratio.
  const size_t num_pos = static_cast<size_t>(
      std::lround(config.positive_fraction * static_cast<double>(n)));
  std::vector<int> labels(n, 0);
  for (size_t i = 0; i < num_pos && i < n; ++i) labels[i] = 1;
  rng->Shuffle(&labels);

  Matrix features(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const size_t within =
        static_cast<size_t>(rng->UniformInt(config.clusters_per_class));
    const size_t cluster =
        static_cast<size_t>(labels[i]) * config.clusters_per_class + within;
    double* row = features.row_data(i);
    const double class_sign = labels[i] == 1 ? 1.0 : -1.0;
    for (size_t j = 0; j < dl; ++j) {
      row[j] = class_sign * 0.5 * config.linear_sep * direction[j] +
               linear_offsets(cluster, j) +
               rng->Normal(0.0, config.cluster_spread);
    }
    if (dx > 0) {
      std::vector<double> corner(dx);
      sample_xor_corner(labels[i], corner.data());
      for (size_t j = 0; j < dx; ++j) {
        row[dl + j] = 0.5 * config.xor_sep * corner[j] +
                      rng->Normal(0.0, config.xor_spread);
      }
    }
    for (size_t j = dl + dx; j < dim; ++j) {
      row[j] = rng->Normal(0.0, 1.0);
    }
  }

  if (config.mix_features) {
    // Random dense map entangling latent factors across output dims, the
    // way extracted linguistic features mix underlying causes.
    Matrix mix = RandomNormal(
        dim, dim, rng, 0.0,
        config.mix_strength / std::sqrt(static_cast<double>(dim)));
    // Keep a strong diagonal so signal is dispersed but not destroyed.
    for (size_t j = 0; j < dim; ++j) mix(j, j) += 1.0;
    features = Matmul(features, mix);
  }

  if (config.feature_noise > 0.0) {
    for (size_t i = 0; i < features.size(); ++i) {
      features[i] += rng->Normal(0.0, config.feature_noise);
    }
  }

  return Dataset(std::move(features), std::move(labels));
}

}  // namespace rll::data
