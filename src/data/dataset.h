// Core dataset abstraction: feature vectors, expert (ground-truth) labels,
// and per-example crowdsourced annotations in long format (worker id +
// binary label), matching the paper's setting where each example is labeled
// by d crowd workers and expert labels exist only for evaluation.

#ifndef RLL_DATA_DATASET_H_
#define RLL_DATA_DATASET_H_

#include <vector>

#include "tensor/matrix.h"

namespace rll::data {

/// One crowd worker's vote on one example.
struct Annotation {
  size_t worker_id;
  int label;  // 0 or 1.
};

class Dataset {
 public:
  Dataset() = default;

  /// features: n×dim; true_labels: expert ground truth (0/1), length n.
  Dataset(Matrix features, std::vector<int> true_labels);

  size_t size() const { return true_labels_.size(); }
  size_t dim() const { return features_.cols(); }
  bool empty() const { return true_labels_.empty(); }

  const Matrix& features() const { return features_; }
  Matrix* mutable_features() { return &features_; }
  const std::vector<int>& true_labels() const { return true_labels_; }
  int true_label(size_t i) const { return true_labels_[i]; }

  /// Crowd annotations for example i (may be empty before annotation).
  const std::vector<Annotation>& annotations(size_t i) const {
    RLL_DCHECK(i < annotations_.size());
    return annotations_[i];
  }
  void AddAnnotation(size_t i, Annotation a);
  void ClearAnnotations();
  /// True when every example has at least one crowd label.
  bool FullyAnnotated() const;
  /// Number of distinct worker ids across all annotations (max id + 1).
  size_t NumWorkers() const;

  /// Count of 1-votes on example i.
  size_t PositiveVotes(size_t i) const;
  /// Majority vote over crowd labels; ties break toward 1 (the majority
  /// class in both of the paper's datasets). Requires annotations.
  int MajorityVote(size_t i) const;
  /// All majority-vote labels.
  std::vector<int> MajorityVoteLabels() const;

  /// Fraction of examples whose true label is 1.
  double PositiveFraction() const;

  /// New dataset with the selected examples (annotations carried over).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Indices where labels[i]==1 / ==0 (caller supplies labels so the split
  /// can be based on inferred rather than expert labels).
  static std::vector<size_t> PositiveIndices(const std::vector<int>& labels);
  static std::vector<size_t> NegativeIndices(const std::vector<int>& labels);

 private:
  Matrix features_;
  std::vector<int> true_labels_;
  std::vector<std::vector<Annotation>> annotations_;
};

}  // namespace rll::data

#endif  // RLL_DATA_DATASET_H_
