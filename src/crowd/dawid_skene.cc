#include "crowd/dawid_skene.h"

#include <array>
#include <cmath>

namespace rll::crowd {

Result<AggregationResult> DawidSkene::Run(
    const data::Dataset& dataset) const {
  RLL_RETURN_IF_ERROR(CheckAnnotated(dataset));
  const size_t n = dataset.size();
  const size_t num_workers = dataset.NumWorkers();

  // Initialize posteriors from soft majority vote.
  std::vector<double> posterior(n);
  for (size_t i = 0; i < n; ++i) {
    posterior[i] = static_cast<double>(dataset.PositiveVotes(i)) /
                   static_cast<double>(dataset.annotations(i).size());
  }

  // confusion[w][c*2+l] = P(worker w says l | true class c).
  confusions_.assign(num_workers, {0.5, 0.5, 0.5, 0.5});
  double prior_pos = 0.5;
  int iter = 0;
  bool converged = false;

  for (; iter < options_.max_iterations; ++iter) {
    // ---- M-step: re-estimate prior and confusion from posteriors.
    double pos_mass = 0.0;
    for (double p : posterior) pos_mass += p;
    prior_pos = pos_mass / static_cast<double>(n);

    std::vector<std::array<double, 4>> counts(
        num_workers, {options_.smoothing, options_.smoothing,
                      options_.smoothing, options_.smoothing});
    for (size_t i = 0; i < n; ++i) {
      const double p1 = posterior[i];
      for (const data::Annotation& a : dataset.annotations(i)) {
        counts[a.worker_id][0 * 2 + a.label] += (1.0 - p1);
        counts[a.worker_id][1 * 2 + a.label] += p1;
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      for (int c = 0; c < 2; ++c) {
        const double total = counts[w][c * 2] + counts[w][c * 2 + 1];
        confusions_[w][c * 2] = counts[w][c * 2] / total;
        confusions_[w][c * 2 + 1] = counts[w][c * 2 + 1] / total;
      }
    }

    // ---- E-step: recompute posteriors under the new parameters.
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double log1 = std::log(std::max(prior_pos, 1e-12));
      double log0 = std::log(std::max(1.0 - prior_pos, 1e-12));
      for (const data::Annotation& a : dataset.annotations(i)) {
        log1 += std::log(
            std::max(confusions_[a.worker_id][1 * 2 + a.label], 1e-12));
        log0 += std::log(
            std::max(confusions_[a.worker_id][0 * 2 + a.label], 1e-12));
      }
      const double mx = std::max(log0, log1);
      const double z = std::exp(log0 - mx) + std::exp(log1 - mx);
      const double p1 = std::exp(log1 - mx) / z;
      max_delta = std::max(max_delta, std::fabs(p1 - posterior[i]));
      posterior[i] = p1;
    }
    if (max_delta < options_.tolerance) {
      converged = true;
      ++iter;
      break;
    }
  }

  AggregationResult result;
  result.prob_positive = std::move(posterior);
  result.labels = HardLabels(result.prob_positive);
  result.worker_quality.resize(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    // Balanced accuracy from the confusion diagonal.
    result.worker_quality[w] =
        0.5 * (confusions_[w][0 * 2 + 0] + confusions_[w][1 * 2 + 1]);
  }
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace rll::crowd
