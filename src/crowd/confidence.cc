#include "crowd/confidence.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"
#include "common/finite_check.h"
#include "crowd/dawid_skene.h"
#include "obs/metrics.h"

namespace rll::crowd {

const char* ConfidenceModeName(ConfidenceMode mode) {
  switch (mode) {
    case ConfidenceMode::kNone:
      return "none";
    case ConfidenceMode::kMle:
      return "MLE";
    case ConfidenceMode::kBayesian:
      return "Bayesian";
    case ConfidenceMode::kWorkerAware:
      return "WorkerAware";
  }
  return "?";
}

std::pair<double, double> BetaPriorFromClassPrior(
    const data::Dataset& dataset, double prior_strength) {
  RLL_CHECK_GT(prior_strength, 0.0);
  RLL_CHECK(dataset.FullyAnnotated());
  size_t pos = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    pos += (dataset.MajorityVote(i) == 1);
  }
  double prior = static_cast<double>(pos) / static_cast<double>(dataset.size());
  // Keep both pseudo-counts strictly positive.
  prior = std::min(std::max(prior, 0.01), 0.99);
  return {prior * prior_strength, (1.0 - prior) * prior_strength};
}

std::vector<double> LabelPositiveness(const data::Dataset& dataset,
                                      ConfidenceMode mode,
                                      double prior_strength) {
  RLL_CHECK(dataset.FullyAnnotated());
  if (mode == ConfidenceMode::kWorkerAware) {
    // Reliability-weighted posterior: P(y=1 | votes, worker confusions)
    // from the Dawid–Skene model.
    DawidSkene ds;
    Result<AggregationResult> result = ds.Run(dataset);
    RLL_CHECK_MSG(result.ok(), "Dawid-Skene inference failed");
    std::vector<double> posterior = std::move(*result).prob_positive;
    for (double p : posterior) RLL_DCHECK_PROB(p);
    return posterior;
  }
  std::vector<double> out(dataset.size());
  double alpha = 0.0, beta = 0.0;
  if (mode == ConfidenceMode::kBayesian) {
    std::tie(alpha, beta) = BetaPriorFromClassPrior(dataset, prior_strength);
  }
  for (size_t i = 0; i < dataset.size(); ++i) {
    const double votes = static_cast<double>(dataset.PositiveVotes(i));
    const double d = static_cast<double>(dataset.annotations(i).size());
    switch (mode) {
      case ConfidenceMode::kNone:
      case ConfidenceMode::kMle:
        out[i] = votes / d;  // eq. (1)
        break;
      case ConfidenceMode::kBayesian:
        out[i] = (alpha + votes) / (alpha + beta + d);  // eq. (2)
        break;
      case ConfidenceMode::kWorkerAware:
        break;  // Handled above.
    }
    RLL_DCHECK_PROB(out[i]);  // δᵢ (eq. 1/2) is a posterior probability.
  }
  return out;
}

std::vector<double> LabelConfidence(const data::Dataset& dataset,
                                    const std::vector<int>& labels,
                                    ConfidenceMode mode,
                                    double prior_strength) {
  RLL_CHECK_EQ(labels.size(), dataset.size());
  if (mode == ConfidenceMode::kNone) {
    return std::vector<double>(dataset.size(), 1.0);
  }
  std::vector<double> pos = LabelPositiveness(dataset, mode, prior_strength);
  std::vector<double> out(dataset.size());
  // δ ∈ [0, 1]: linear buckets resolve the whole range evenly, where
  // exponential buckets would lump everything above 0.5 together.
  obs::HistogramOptions delta_buckets;
  delta_buckets.buckets = obs::HistogramOptions::Buckets::kLinear;
  delta_buckets.min = 0.0;
  delta_buckets.max = 1.0;
  delta_buckets.count = 20;
  obs::Histogram* delta_histogram =
      obs::MetricRegistry::Global().GetHistogram(
          "rll_confidence_delta", {{"mode", ConfidenceModeName(mode)}},
          delta_buckets);
  for (size_t i = 0; i < dataset.size(); ++i) {
    out[i] = labels[i] == 1 ? pos[i] : 1.0 - pos[i];
    RLL_DCHECK_PROB(out[i]);
    delta_histogram->Observe(out[i]);
  }
  return out;
}

}  // namespace rll::crowd
