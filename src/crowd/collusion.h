// Colluding-annotator simulation. Every aggregator in this library (and
// the paper's group-1 baselines) assumes workers err independently; real
// crowdsourcing fraud breaks exactly that assumption — rings of accounts
// copying one low-effort "leader" vote. This module annotates a dataset
// with a mix of honest two-coin workers and such a ring, so robustness
// experiments can measure how fast majority vote, Dawid–Skene, GLAD, and
// RLL degrade as the ring grows.

#ifndef RLL_CROWD_COLLUSION_H_
#define RLL_CROWD_COLLUSION_H_

#include "common/status.h"
#include "crowd/worker_pool.h"

namespace rll::crowd {

struct CollusionOptions {
  /// Size of the colluding ring (distinct worker ids after the honest
  /// pool's ids).
  size_t num_colluders = 5;
  /// Probability a colluder copies the ring's leader vote on an item
  /// (otherwise they vote independently at leader_accuracy).
  double follow_probability = 0.9;
  /// Accuracy of the ring's leader vote (0.5 = random spam).
  double leader_accuracy = 0.55;
};

/// Annotates every example with `honest_votes` votes from distinct workers
/// of `honest_pool` plus `colluder_votes` votes from the ring (replacing
/// existing annotations). Colluder ids start at honest_pool.num_workers().
/// Fails when vote counts exceed the respective pools.
Status AnnotateWithCollusion(data::Dataset* dataset,
                             const WorkerPool& honest_pool,
                             size_t honest_votes,
                             const CollusionOptions& options,
                             size_t colluder_votes, Rng* rng);

}  // namespace rll::crowd

#endif  // RLL_CROWD_COLLUSION_H_
