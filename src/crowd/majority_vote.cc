#include "crowd/majority_vote.h"

namespace rll::crowd {

Status CheckAnnotated(const data::Dataset& dataset) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (!dataset.FullyAnnotated()) {
    return Status::FailedPrecondition(
        "every example needs at least one crowd annotation");
  }
  return Status::OK();
}

std::vector<int> HardLabels(const std::vector<double>& prob_positive) {
  std::vector<int> labels(prob_positive.size());
  for (size_t i = 0; i < prob_positive.size(); ++i) {
    labels[i] = prob_positive[i] >= 0.5 ? 1 : 0;
  }
  return labels;
}

Result<AggregationResult> MajorityVote::Run(
    const data::Dataset& dataset) const {
  RLL_RETURN_IF_ERROR(CheckAnnotated(dataset));
  AggregationResult result;
  result.prob_positive.resize(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const size_t d = dataset.annotations(i).size();
    result.prob_positive[i] =
        static_cast<double>(dataset.PositiveVotes(i)) /
        static_cast<double>(d);
  }
  result.labels = HardLabels(result.prob_positive);
  result.iterations = 0;
  result.converged = true;
  return result;
}

}  // namespace rll::crowd
