#include "crowd/worker_pool.h"

#include <algorithm>

#include "common/threading.h"

namespace rll::crowd {

WorkerPool::WorkerPool(const WorkerPoolConfig& config, Rng* rng)
    : config_(config) {
  RLL_CHECK_GT(config.num_workers, 0u);
  sensitivity_.reserve(config.num_workers);
  specificity_.reserve(config.num_workers);
  for (size_t w = 0; w < config.num_workers; ++w) {
    sensitivity_.push_back(
        rng->Beta(config.sensitivity_alpha, config.sensitivity_beta));
    specificity_.push_back(
        rng->Beta(config.specificity_alpha, config.specificity_beta));
  }
}

WorkerPool::WorkerPool(std::vector<double> sensitivity,
                       std::vector<double> specificity)
    : sensitivity_(std::move(sensitivity)),
      specificity_(std::move(specificity)) {
  RLL_CHECK_EQ(sensitivity_.size(), specificity_.size());
  RLL_CHECK(!sensitivity_.empty());
  config_.difficulty_alpha = 0.0;  // Pure two-coin model.
}

double WorkerPool::WorkerAccuracy(size_t w) const {
  RLL_CHECK_LT(w, num_workers());
  return 0.5 * (sensitivity_[w] + specificity_[w]);
}

int WorkerPool::Vote(size_t w, int true_label, double difficulty,
                     Rng* rng) const {
  RLL_CHECK_LT(w, num_workers());
  RLL_CHECK(true_label == 0 || true_label == 1);
  RLL_CHECK(difficulty >= 0.0 && difficulty <= 1.0);
  const double ability = true_label == 1 ? sensitivity_[w] : specificity_[w];
  // Difficulty attenuates ability toward a coin flip.
  const double p_correct = 0.5 + (ability - 0.5) * (1.0 - difficulty);
  const bool correct = rng->Bernoulli(p_correct);
  return correct ? true_label : 1 - true_label;
}

void WorkerPool::Drift(double magnitude, Rng* rng) {
  RLL_CHECK_GE(magnitude, 0.0);
  auto step = [&](double ability) {
    return std::min(std::max(ability + rng->Normal(0.0, magnitude), 0.05),
                    0.99);
  };
  for (size_t w = 0; w < num_workers(); ++w) {
    sensitivity_[w] = step(sensitivity_[w]);
    specificity_[w] = step(specificity_[w]);
  }
}

void WorkerPool::Annotate(data::Dataset* dataset, size_t votes_per_example,
                          Rng* rng) {
  RLL_CHECK_GT(votes_per_example, 0u);
  RLL_CHECK_LE(votes_per_example, num_workers());
  dataset->ClearAnnotations();
  last_difficulties_.resize(dataset->size());
  // One base draw, then a private stream per example: an example's vote
  // pattern depends only on (base seed, example index), never on how
  // examples are batched across pool workers. Distinct examples write
  // distinct annotation and difficulty slots, so no locking is needed.
  const uint64_t base_seed = rng->Next();
  ParallelFor(0, dataset->size(), 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      Rng ex_rng(SplitSeed(base_seed, i));
      const double t =
          config_.difficulty_alpha > 0.0
              ? ex_rng.Beta(config_.difficulty_alpha, config_.difficulty_beta)
              : 0.0;
      last_difficulties_[i] = t;
      const std::vector<size_t> workers =
          ex_rng.SampleWithoutReplacement(num_workers(), votes_per_example);
      for (size_t w : workers) {
        dataset->AddAnnotation(
            i, {w, Vote(w, dataset->true_label(i), t, &ex_rng)});
      }
    }
  });
}

}  // namespace rll::crowd
