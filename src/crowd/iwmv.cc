#include "crowd/iwmv.h"

#include <algorithm>
#include <cmath>

namespace rll::crowd {

Result<AggregationResult> Iwmv::Run(const data::Dataset& dataset) const {
  RLL_RETURN_IF_ERROR(CheckAnnotated(dataset));
  const size_t n = dataset.size();
  const size_t num_workers = dataset.NumWorkers();

  // Start from plain majority vote.
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = dataset.MajorityVote(i);

  std::vector<double> weights(num_workers, 1.0);
  std::vector<double> scores(n, 0.0);
  int iter = 0;
  bool converged = false;
  for (; iter < options_.max_iterations; ++iter) {
    // ---- Worker accuracies against the current consensus.
    std::vector<double> agree(num_workers, options_.smoothing);
    std::vector<double> total(num_workers, 2.0 * options_.smoothing);
    for (size_t i = 0; i < n; ++i) {
      for (const data::Annotation& a : dataset.annotations(i)) {
        total[a.worker_id] += 1.0;
        if (a.label == labels[i]) agree[a.worker_id] += 1.0;
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      const double acc =
          std::min(std::max(agree[w] / total[w], 1e-6), 1.0 - 1e-6);
      // Log-odds weight: 0 for coin-flippers, negative for adversaries.
      weights[w] = std::clamp(std::log(acc / (1.0 - acc)),
                              -options_.max_weight, options_.max_weight);
    }

    // ---- Weighted vote.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double score = 0.0;
      for (const data::Annotation& a : dataset.annotations(i)) {
        score += weights[a.worker_id] * (a.label == 1 ? 1.0 : -1.0);
      }
      scores[i] = score;
      const int new_label = score >= 0.0 ? 1 : 0;
      changed = changed || (new_label != labels[i]);
      labels[i] = new_label;
    }
    if (!changed) {
      converged = true;
      ++iter;
      break;
    }
  }

  AggregationResult result;
  result.labels = std::move(labels);
  result.prob_positive.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Squash the weighted-vote margin into a pseudo-probability.
    result.prob_positive[i] = 1.0 / (1.0 + std::exp(-scores[i]));
  }
  result.worker_quality = std::move(weights);
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace rll::crowd
