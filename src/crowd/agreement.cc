#include "crowd/agreement.h"

#include <cmath>

#include "crowd/aggregator.h"

namespace rll::crowd {

Result<AgreementStats> ComputeAgreement(const data::Dataset& dataset) {
  RLL_RETURN_IF_ERROR(CheckAnnotated(dataset));
  const size_t n = dataset.size();
  const size_t d = dataset.annotations(0).size();
  if (d < 2) {
    return Status::FailedPrecondition(
        "agreement statistics need >= 2 votes per example");
  }
  for (size_t i = 0; i < n; ++i) {
    if (dataset.annotations(i).size() != d) {
      return Status::FailedPrecondition(
          "agreement statistics require a fixed number of votes per example");
    }
  }

  AgreementStats stats;
  stats.vote_histogram.assign(d + 1, 0);

  double agreement_sum = 0.0;
  double p_pos_total = 0.0;  // Overall fraction of positive votes.
  size_t majority_correct = 0;
  size_t unanimous = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = dataset.PositiveVotes(i);
    const size_t neg = d - pos;
    stats.vote_histogram[pos]++;
    // Fraction of agreeing (unordered) pairs among the d votes.
    const double pairs = static_cast<double>(d * (d - 1));
    const double agree =
        (static_cast<double>(pos * (pos - 1)) +
         static_cast<double>(neg * (neg - 1))) /
        pairs;
    agreement_sum += agree;
    p_pos_total += static_cast<double>(pos) / static_cast<double>(d);
    majority_correct += (dataset.MajorityVote(i) == dataset.true_label(i));
    unanimous += (pos == 0 || pos == d);
  }

  stats.observed_agreement = agreement_sum / static_cast<double>(n);
  const double p1 = p_pos_total / static_cast<double>(n);
  const double pe = p1 * p1 + (1.0 - p1) * (1.0 - p1);
  stats.fleiss_kappa =
      pe >= 1.0 ? 1.0 : (stats.observed_agreement - pe) / (1.0 - pe);
  stats.majority_vote_accuracy =
      static_cast<double>(majority_correct) / static_cast<double>(n);
  stats.unanimous_fraction =
      static_cast<double>(unanimous) / static_cast<double>(n);
  return stats;
}

}  // namespace rll::crowd
