// Common interface for true-label inference from crowdsourced annotations
// (the paper's "group 1" methods and the label source for groups 2–4).

#ifndef RLL_CROWD_AGGREGATOR_H_
#define RLL_CROWD_AGGREGATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rll::crowd {

struct AggregationResult {
  /// Posterior P(true label = 1) per example.
  std::vector<double> prob_positive;
  /// Hard labels (prob thresholded at 0.5).
  std::vector<int> labels;
  /// Per-worker quality score; semantics depend on the method (accuracy for
  /// Dawid–Skene, ability α for GLAD). Empty for majority vote.
  std::vector<double> worker_quality;
  /// Per-item difficulty estimate (GLAD only; empty otherwise).
  std::vector<double> item_difficulty;
  int iterations = 0;
  bool converged = true;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Infers labels from the dataset's annotations. Fails with
  /// FailedPrecondition when any example lacks annotations.
  virtual Result<AggregationResult> Run(
      const data::Dataset& dataset) const = 0;

  virtual std::string name() const = 0;
};

/// Shared precondition check used by all implementations.
Status CheckAnnotated(const data::Dataset& dataset);

/// Thresholds probabilities at 0.5 into hard labels.
std::vector<int> HardLabels(const std::vector<double>& prob_positive);

}  // namespace rll::crowd

#endif  // RLL_CROWD_AGGREGATOR_H_
