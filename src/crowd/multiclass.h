// K-class crowdsourced-label aggregation — the full Dawid & Skene (1979)
// model with K×K per-worker confusion matrices, plus K-class majority vote.
// The paper restricts itself to binary labels "without loss of generality";
// this module supplies the generality: education tasks like rubric scoring
// (1–4) or error-type tagging are inherently multiclass.
//
// Self-contained annotation table (independent of data::Dataset, which is
// binary by construction) so multiclass inference composes with any source.

#ifndef RLL_CROWD_MULTICLASS_H_
#define RLL_CROWD_MULTICLASS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace rll::crowd {

/// One worker's class vote on one item.
struct MulticlassVote {
  size_t worker_id;
  size_t label;  // In [0, num_classes).
};

/// Long-format K-class annotation table.
struct MulticlassAnnotations {
  size_t num_classes = 0;
  /// votes[i] — all votes on item i.
  std::vector<std::vector<MulticlassVote>> votes;

  size_t num_items() const { return votes.size(); }
  /// Max worker id + 1 (0 when empty).
  size_t NumWorkers() const;
  /// Validates labels < num_classes and every item voted at least once.
  Status Validate() const;
};

struct MulticlassAggregation {
  /// posterior(i, c) = P(item i has class c); rows sum to 1.
  Matrix posterior;
  /// argmax of each posterior row.
  std::vector<size_t> labels;
  /// Per-worker estimated confusion matrices, row-major K×K each:
  /// confusion[w](c, l) = P(worker w votes l | true class c).
  std::vector<Matrix> confusions;
  int iterations = 0;
  bool converged = true;
};

/// Plurality vote per item; ties break toward the lower class id.
/// posterior rows are the empirical vote fractions.
Result<MulticlassAggregation> MulticlassMajorityVote(
    const MulticlassAnnotations& annotations);

struct MulticlassDawidSkeneOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;
  /// Laplace smoothing added to confusion counts.
  double smoothing = 0.01;
};

/// Full Dawid–Skene EM: latent item classes, per-worker K×K confusions,
/// class prior. Initialized from the plurality posterior.
Result<MulticlassAggregation> MulticlassDawidSkene(
    const MulticlassAnnotations& annotations,
    const MulticlassDawidSkeneOptions& options = {});

/// Simulation helper for tests/experiments: workers with planted confusion
/// matrices (each K×K, rows summing to 1) vote `votes_per_item` times on
/// items with the given true classes.
MulticlassAnnotations SimulateMulticlassVotes(
    const std::vector<size_t>& true_classes, size_t num_classes,
    const std::vector<Matrix>& worker_confusions, size_t votes_per_item,
    Rng* rng);

}  // namespace rll::crowd

#endif  // RLL_CROWD_MULTICLASS_H_
