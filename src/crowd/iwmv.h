// Iterative Weighted Majority Vote (Li & Yu, 2014 flavor): alternate
// between weighting workers by their agreement with the current consensus
// and recomputing the consensus with those weights. Converges in a handful
// of rounds, needs no confusion matrices, and sits between plain majority
// vote and Dawid–Skene in both cost and power.

#ifndef RLL_CROWD_IWMV_H_
#define RLL_CROWD_IWMV_H_

#include "crowd/aggregator.h"

namespace rll::crowd {

struct IwmvOptions {
  int max_iterations = 50;
  /// Converged when no hard label flips between rounds.
  double tolerance = 1e-9;
  /// Weights are log-odds of estimated worker accuracy, clamped to
  /// [-max_weight, max_weight] so perfect agreement cannot dominate.
  double max_weight = 6.0;
  /// Laplace smoothing on worker-accuracy estimates.
  double smoothing = 1.0;
};

class Iwmv : public Aggregator {
 public:
  explicit Iwmv(IwmvOptions options = {}) : options_(options) {}

  Result<AggregationResult> Run(const data::Dataset& dataset) const override;
  std::string name() const override { return "IWMV"; }

 private:
  IwmvOptions options_;
};

}  // namespace rll::crowd

#endif  // RLL_CROWD_IWMV_H_
