// Dawid & Skene (1979) EM for observer error rates — the classic "EM"
// baseline in the paper's group 1 (via Dempster et al.'s EM, ref [25]).
//
// Binary specialization: each worker w has a 2×2 confusion matrix
// π_w[c][l] = P(worker labels l | true class c); the true label of each
// example is a latent variable. EM alternates posterior inference (E) with
// confusion/prior re-estimation (M, Laplace-smoothed).

#ifndef RLL_CROWD_DAWID_SKENE_H_
#define RLL_CROWD_DAWID_SKENE_H_

#include <array>

#include "crowd/aggregator.h"

namespace rll::crowd {

struct DawidSkeneOptions {
  int max_iterations = 100;
  /// Converged when max |Δposterior| < tolerance between iterations.
  double tolerance = 1e-6;
  /// Laplace smoothing added to confusion-matrix counts.
  double smoothing = 0.01;
};

class DawidSkene : public Aggregator {
 public:
  explicit DawidSkene(DawidSkeneOptions options = {}) : options_(options) {}

  Result<AggregationResult> Run(const data::Dataset& dataset) const override;
  std::string name() const override { return "DawidSkeneEM"; }

  /// Estimated confusion matrices from the last Run (row-major
  /// [worker][true*2+label]); exposed for diagnostics and tests.
  const std::vector<std::array<double, 4>>& confusions() const {
    return confusions_;
  }

 private:
  DawidSkeneOptions options_;
  mutable std::vector<std::array<double, 4>> confusions_;
};

}  // namespace rll::crowd

#endif  // RLL_CROWD_DAWID_SKENE_H_
