#include "crowd/adaptive_annotation.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "crowd/confidence.h"

namespace rll::crowd {

namespace {

/// Distinct workers not yet used on this item, sampled uniformly.
std::vector<size_t> SampleFreshWorkers(const data::Dataset& dataset,
                                       size_t item, size_t count,
                                       size_t num_workers, Rng* rng) {
  std::vector<bool> used(num_workers, false);
  size_t available = num_workers;
  for (const data::Annotation& a : dataset.annotations(item)) {
    if (!used[a.worker_id]) {
      used[a.worker_id] = true;
      --available;
    }
  }
  std::vector<size_t> fresh;
  fresh.reserve(available);
  for (size_t w = 0; w < num_workers; ++w) {
    if (!used[w]) fresh.push_back(w);
  }
  rng->Shuffle(&fresh);
  fresh.resize(std::min(count, fresh.size()));
  return fresh;
}

}  // namespace

Result<AdaptiveAnnotationReport> AnnotateAdaptively(
    data::Dataset* dataset, const WorkerPool& pool,
    const AdaptiveAnnotationOptions& options, Rng* rng) {
  const size_t n = dataset->size();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.base_votes == 0) {
    return Status::InvalidArgument("base_votes must be >= 1");
  }
  if (options.base_votes > pool.num_workers()) {
    return Status::InvalidArgument("base_votes exceeds worker pool size");
  }
  if (options.total_budget < options.base_votes * n) {
    return Status::InvalidArgument(StrFormat(
        "budget %zu cannot cover base round (%zu items x %zu votes)",
        options.total_budget, n, options.base_votes));
  }
  if (options.votes_per_round == 0) {
    return Status::InvalidArgument("votes_per_round must be >= 1");
  }

  // Per-item difficulty fixed for the whole procedure (it is a property of
  // the item, not of the round).
  std::vector<double> difficulty(n);
  for (size_t i = 0; i < n; ++i) {
    difficulty[i] = rng->Beta(1.5, 2.5);
  }

  AdaptiveAnnotationReport report;
  dataset->ClearAnnotations();

  // ---- Base round: every item gets base_votes votes.
  for (size_t i = 0; i < n; ++i) {
    for (size_t w : rng->SampleWithoutReplacement(pool.num_workers(),
                                                  options.base_votes)) {
      dataset->AddAnnotation(
          i, {w, pool.Vote(w, dataset->true_label(i), difficulty[i], rng)});
    }
  }
  report.votes_spent = options.base_votes * n;

  // ---- Adaptive rounds: route remaining votes to the most uncertain item.
  while (report.votes_spent + options.votes_per_round <=
         options.total_budget) {
    const auto [alpha, beta] =
        BetaPriorFromClassPrior(*dataset, options.prior_strength);
    double best_uncertainty = -1.0;
    size_t best_item = n;
    for (size_t i = 0; i < n; ++i) {
      const size_t d = dataset->annotations(i).size();
      if (d >= pool.num_workers()) continue;  // No fresh workers left.
      const double delta =
          (alpha + static_cast<double>(dataset->PositiveVotes(i))) /
          (alpha + beta + static_cast<double>(d));
      const double uncertainty = 0.5 - std::fabs(delta - 0.5);
      if (uncertainty > best_uncertainty) {
        best_uncertainty = uncertainty;
        best_item = i;
      }
    }
    if (best_item == n) break;  // Every item exhausted its worker pool.

    const std::vector<size_t> workers = SampleFreshWorkers(
        *dataset, best_item, options.votes_per_round, pool.num_workers(),
        rng);
    if (workers.empty()) break;
    for (size_t w : workers) {
      dataset->AddAnnotation(
          best_item, {w, pool.Vote(w, dataset->true_label(best_item),
                                   difficulty[best_item], rng)});
      ++report.votes_spent;
    }
    ++report.rounds;
  }

  // ---- Histogram.
  size_t max_votes = 0;
  for (size_t i = 0; i < n; ++i) {
    max_votes = std::max(max_votes, dataset->annotations(i).size());
  }
  report.votes_histogram.assign(max_votes + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    report.votes_histogram[dataset->annotations(i).size()]++;
  }
  return report;
}

}  // namespace rll::crowd
