// Budget-aware adaptive annotation: given a total vote budget, spend a base
// number of votes on every item, then route the remaining votes to the
// items whose current label is least certain. Directly addresses the
// paper's motivating constraint — annotation in education is so expensive
// that d must stay small — by making every extra vote count.

#ifndef RLL_CROWD_ADAPTIVE_ANNOTATION_H_
#define RLL_CROWD_ADAPTIVE_ANNOTATION_H_

#include "common/status.h"
#include "crowd/worker_pool.h"

namespace rll::crowd {

struct AdaptiveAnnotationOptions {
  /// Votes given to every item in the first round. >= 1.
  size_t base_votes = 1;
  /// Total budget across all items; must cover the base round.
  size_t total_budget = 0;
  /// Votes added per round to each selected item.
  size_t votes_per_round = 2;
  /// Beta prior used for the uncertainty score (posterior of the item's
  /// label); matched to the class prior like eq. (2).
  double prior_strength = 2.0;
};

struct AdaptiveAnnotationReport {
  /// Votes actually spent.
  size_t votes_spent = 0;
  /// Rounds of adaptive allocation after the base round.
  size_t rounds = 0;
  /// Final votes-per-item histogram (index = votes, value = #items).
  std::vector<size_t> votes_histogram;
};

/// Annotates `dataset` in place using `pool`, spending at most
/// options.total_budget votes. Items with the most uncertain Beta-posterior
/// (closest to 0.5) receive extra votes first; each item is capped at
/// pool->num_workers() votes (distinct workers). Fails when the budget
/// cannot cover the base round.
Result<AdaptiveAnnotationReport> AnnotateAdaptively(
    data::Dataset* dataset, const WorkerPool& pool,
    const AdaptiveAnnotationOptions& options, Rng* rng);

}  // namespace rll::crowd

#endif  // RLL_CROWD_ADAPTIVE_ANNOTATION_H_
