// Simulated crowd-worker pool.
//
// Substitutes the paper's human annotators with the canonical generative
// model its own baselines assume: each worker is a "two-coin" annotator with
// latent sensitivity (accuracy on positives) and specificity (accuracy on
// negatives) drawn from Beta distributions, and each item has a GLAD-style
// difficulty that attenuates every worker's ability toward a coin flip. This
// produces exactly the inconsistency patterns the paper describes (unanimous
// 5–0 votes beside split 3–2 votes) and lets experiments vary d, worker
// quality, and task ambiguity.

#ifndef RLL_CROWD_WORKER_POOL_H_
#define RLL_CROWD_WORKER_POOL_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace rll::crowd {

struct WorkerPoolConfig {
  /// Total workers available; each example is labeled by a random subset.
  size_t num_workers = 25;
  /// Beta prior for per-worker sensitivity. Mean α/(α+β) = 0.78 by default:
  /// competent but far from expert, as in education crowdsourcing.
  double sensitivity_alpha = 7.0;
  double sensitivity_beta = 2.0;
  /// Beta prior for per-worker specificity.
  double specificity_alpha = 7.0;
  double specificity_beta = 2.0;
  /// Beta prior for per-item difficulty t ∈ [0,1]; t = 1 reduces every
  /// worker to a coin flip, t = 0 leaves ability intact. Education tasks
  /// are ambiguous, so difficulty is substantial by default (mean 0.375).
  /// Set difficulty_alpha <= 0 to disable difficulty entirely (t = 0).
  double difficulty_alpha = 1.5;
  double difficulty_beta = 2.5;
};

class WorkerPool {
 public:
  /// Draws per-worker abilities from the configured priors.
  WorkerPool(const WorkerPoolConfig& config, Rng* rng);

  /// Injects exact abilities (tests / planted-recovery experiments).
  /// Item difficulty is disabled — votes follow the pure two-coin model
  /// that Dawid–Skene and GLAD assume.
  WorkerPool(std::vector<double> sensitivity, std::vector<double> specificity);

  size_t num_workers() const { return sensitivity_.size(); }
  const std::vector<double>& sensitivity() const { return sensitivity_; }
  const std::vector<double>& specificity() const { return specificity_; }
  /// Per-item difficulties drawn during the last Annotate call.
  const std::vector<double>& last_difficulties() const {
    return last_difficulties_;
  }

  /// Expected accuracy of worker w marginalized over a balanced class prior
  /// at difficulty 0.
  double WorkerAccuracy(size_t w) const;

  /// Labels every example in the dataset with `votes_per_example` distinct
  /// random workers (replacing prior annotations). Requires
  /// votes_per_example <= num_workers(). Draws one base seed from `rng` and
  /// derives a private per-example stream from it, so examples are
  /// annotated as parallel pool tasks with thread-count-independent votes.
  void Annotate(data::Dataset* dataset, size_t votes_per_example, Rng* rng);

  /// One vote from worker w on an item with the given true label and
  /// difficulty t ∈ [0,1].
  int Vote(size_t w, int true_label, double difficulty, Rng* rng) const;

  /// Random-walks every worker's sensitivity/specificity by
  /// N(0, magnitude), clamped to [0.05, 0.99] — models fatigue or learning
  /// between annotation batches. Call between Annotate rounds.
  void Drift(double magnitude, Rng* rng);

 private:
  WorkerPoolConfig config_;
  std::vector<double> sensitivity_;
  std::vector<double> specificity_;
  std::vector<double> last_difficulties_;
};

}  // namespace rll::crowd

#endif  // RLL_CROWD_WORKER_POOL_H_
