#include "crowd/multiclass.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "tensor/ops.h"

namespace rll::crowd {

size_t MulticlassAnnotations::NumWorkers() const {
  size_t max_id = 0;
  bool any = false;
  for (const auto& item : votes) {
    for (const MulticlassVote& v : item) {
      max_id = std::max(max_id, v.worker_id);
      any = true;
    }
  }
  return any ? max_id + 1 : 0;
}

Status MulticlassAnnotations::Validate() const {
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  if (votes.empty()) return Status::InvalidArgument("no items");
  for (size_t i = 0; i < votes.size(); ++i) {
    if (votes[i].empty()) {
      return Status::FailedPrecondition(
          StrFormat("item %zu has no votes", i));
    }
    for (const MulticlassVote& v : votes[i]) {
      if (v.label >= num_classes) {
        return Status::OutOfRange(
            StrFormat("item %zu: label %zu >= num_classes %zu", i, v.label,
                      num_classes));
      }
    }
  }
  return Status::OK();
}

Result<MulticlassAggregation> MulticlassMajorityVote(
    const MulticlassAnnotations& annotations) {
  RLL_RETURN_IF_ERROR(annotations.Validate());
  const size_t n = annotations.num_items();
  const size_t k = annotations.num_classes;

  MulticlassAggregation result;
  result.posterior = Matrix(n, k);
  result.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (const MulticlassVote& v : annotations.votes[i]) {
      result.posterior(i, v.label) += 1.0;
    }
    const double total = static_cast<double>(annotations.votes[i].size());
    size_t best = 0;
    for (size_t c = 0; c < k; ++c) {
      result.posterior(i, c) /= total;
      if (result.posterior(i, c) > result.posterior(i, best)) best = c;
    }
    result.labels[i] = best;
  }
  return result;
}

Result<MulticlassAggregation> MulticlassDawidSkene(
    const MulticlassAnnotations& annotations,
    const MulticlassDawidSkeneOptions& options) {
  RLL_RETURN_IF_ERROR(annotations.Validate());
  const size_t n = annotations.num_items();
  const size_t k = annotations.num_classes;
  const size_t num_workers = annotations.NumWorkers();

  // Initialize posteriors from plurality fractions.
  RLL_ASSIGN_OR_RETURN(MulticlassAggregation result,
                       MulticlassMajorityVote(annotations));
  Matrix& posterior = result.posterior;

  result.confusions.assign(num_workers,
                           Matrix(k, k, 1.0 / static_cast<double>(k)));
  std::vector<double> prior(k, 1.0 / static_cast<double>(k));

  int iter = 0;
  bool converged = false;
  for (; iter < options.max_iterations; ++iter) {
    // ---- M-step: class prior and confusion matrices.
    for (size_t c = 0; c < k; ++c) {
      double mass = 0.0;
      for (size_t i = 0; i < n; ++i) mass += posterior(i, c);
      prior[c] = std::max(mass / static_cast<double>(n), 1e-12);
    }
    std::vector<Matrix> counts(num_workers,
                               Matrix(k, k, options.smoothing));
    for (size_t i = 0; i < n; ++i) {
      for (const MulticlassVote& v : annotations.votes[i]) {
        for (size_t c = 0; c < k; ++c) {
          counts[v.worker_id](c, v.label) += posterior(i, c);
        }
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      for (size_t c = 0; c < k; ++c) {
        double row_total = 0.0;
        for (size_t l = 0; l < k; ++l) row_total += counts[w](c, l);
        for (size_t l = 0; l < k; ++l) {
          result.confusions[w](c, l) = counts[w](c, l) / row_total;
        }
      }
    }

    // ---- E-step: recompute posteriors in log space.
    double max_delta = 0.0;
    std::vector<double> log_post(k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) log_post[c] = std::log(prior[c]);
      for (const MulticlassVote& v : annotations.votes[i]) {
        for (size_t c = 0; c < k; ++c) {
          log_post[c] += std::log(
              std::max(result.confusions[v.worker_id](c, v.label), 1e-12));
        }
      }
      const double mx = *std::max_element(log_post.begin(), log_post.end());
      double z = 0.0;
      for (size_t c = 0; c < k; ++c) z += std::exp(log_post[c] - mx);
      for (size_t c = 0; c < k; ++c) {
        const double p = std::exp(log_post[c] - mx) / z;
        max_delta = std::max(max_delta, std::fabs(p - posterior(i, c)));
        posterior(i, c) = p;
      }
    }
    if (max_delta < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
  }

  const std::vector<size_t> argmax = ArgmaxRows(posterior);
  result.labels.assign(argmax.begin(), argmax.end());
  result.iterations = iter;
  result.converged = converged;
  return result;
}

MulticlassAnnotations SimulateMulticlassVotes(
    const std::vector<size_t>& true_classes, size_t num_classes,
    const std::vector<Matrix>& worker_confusions, size_t votes_per_item,
    Rng* rng) {
  RLL_CHECK_GE(num_classes, 2u);
  RLL_CHECK(!worker_confusions.empty());
  RLL_CHECK_LE(votes_per_item, worker_confusions.size());
  for (const Matrix& confusion : worker_confusions) {
    RLL_CHECK_EQ(confusion.rows(), num_classes);
    RLL_CHECK_EQ(confusion.cols(), num_classes);
  }

  MulticlassAnnotations annotations;
  annotations.num_classes = num_classes;
  annotations.votes.resize(true_classes.size());
  for (size_t i = 0; i < true_classes.size(); ++i) {
    RLL_CHECK_LT(true_classes[i], num_classes);
    for (size_t w : rng->SampleWithoutReplacement(worker_confusions.size(),
                                                  votes_per_item)) {
      std::vector<double> row(num_classes);
      for (size_t l = 0; l < num_classes; ++l) {
        row[l] = worker_confusions[w](true_classes[i], l);
      }
      annotations.votes[i].push_back({w, rng->Categorical(row)});
    }
  }
  return annotations;
}

}  // namespace rll::crowd
