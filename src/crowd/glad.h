// GLAD (Whitehill et al., NIPS 2009): joint inference of true labels,
// worker expertise α_w, and per-item difficulty — the paper's "GLAD"
// baseline in group 1.
//
// Model: P(worker w correct on item i) = sigmoid(α_w · β_i), where β_i > 0
// is the item's inverse difficulty (β → 0 means a coin flip no matter how
// able the worker). EM with a gradient-ascent M-step; β is parameterized as
// exp(λ_i) to remain positive, with weak Gaussian priors on α and λ.

#ifndef RLL_CROWD_GLAD_H_
#define RLL_CROWD_GLAD_H_

#include "crowd/aggregator.h"

namespace rll::crowd {

struct GladOptions {
  int max_em_iterations = 50;
  /// Gradient-ascent steps per M-step.
  int m_step_iterations = 25;
  double m_step_learning_rate = 0.05;
  /// Converged when max |Δposterior| < tolerance between EM iterations.
  double tolerance = 1e-5;
  /// Gaussian prior precision on α (centered at 1) and λ (centered at 0).
  double alpha_prior_precision = 0.1;
  double lambda_prior_precision = 0.1;
};

class Glad : public Aggregator {
 public:
  explicit Glad(GladOptions options = {}) : options_(options) {}

  Result<AggregationResult> Run(const data::Dataset& dataset) const override;
  std::string name() const override { return "GLAD"; }

 private:
  GladOptions options_;
};

}  // namespace rll::crowd

#endif  // RLL_CROWD_GLAD_H_
