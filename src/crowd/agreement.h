// Inter-annotator agreement diagnostics: how inconsistent a crowdsourced
// dataset actually is (vote-split histograms, observed agreement, and
// Fleiss' kappa for fixed-d designs).

#ifndef RLL_CROWD_AGREEMENT_H_
#define RLL_CROWD_AGREEMENT_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rll::crowd {

struct AgreementStats {
  /// histogram[v] = #examples that received exactly v positive votes.
  /// Meaningful for fixed votes-per-example designs.
  std::vector<size_t> vote_histogram;
  /// Mean over examples of the fraction of agreeing annotation pairs.
  double observed_agreement = 0.0;
  /// Fleiss' kappa (chance-corrected agreement); 1 = perfect, 0 = chance.
  double fleiss_kappa = 0.0;
  /// Fraction of examples whose majority vote matches the expert label.
  double majority_vote_accuracy = 0.0;
  /// Fraction of unanimous examples.
  double unanimous_fraction = 0.0;
};

/// Computes agreement statistics. Requires every example annotated with the
/// same number (≥ 2) of votes for the kappa/histogram fields.
Result<AgreementStats> ComputeAgreement(const data::Dataset& dataset);

}  // namespace rll::crowd

#endif  // RLL_CROWD_AGREEMENT_H_
